"""Unit tests for timing attributes (repro.core.timing)."""

from __future__ import annotations

import math

import pytest

from repro.core.timing import TimingRecord


class TestConstruction:
    def test_pex_defaults_to_ex(self):
        record = TimingRecord(ar=0.0, ex=2.0)
        assert record.pex == 2.0

    def test_explicit_pex(self):
        record = TimingRecord(ar=0.0, ex=2.0, pex=3.0)
        assert record.pex == 3.0

    def test_negative_ex_rejected(self):
        with pytest.raises(ValueError):
            TimingRecord(ar=0.0, ex=-1.0)

    def test_negative_pex_rejected(self):
        with pytest.raises(ValueError):
            TimingRecord(ar=0.0, ex=1.0, pex=-0.5)


class TestDeadlineIdentity:
    def test_slack_identity(self):
        """The paper's identity dl = ar + ex + sl."""
        record = TimingRecord(ar=10.0, ex=2.0, dl=15.0)
        assert record.sl == 3.0
        assert record.dl == record.ar + record.ex + record.sl

    def test_set_deadline_from_slack(self):
        record = TimingRecord(ar=5.0, ex=1.5)
        record.set_deadline_from_slack(2.5)
        assert record.dl == 9.0
        assert record.sl == 2.5

    def test_negative_slack_rejected_in_setter(self):
        record = TimingRecord(ar=0.0, ex=1.0)
        with pytest.raises(ValueError):
            record.set_deadline_from_slack(-0.1)

    def test_slack_requires_deadline(self):
        record = TimingRecord(ar=0.0, ex=1.0)
        with pytest.raises(ValueError):
            _ = record.sl

    def test_has_deadline(self):
        record = TimingRecord(ar=0.0, ex=1.0)
        assert not record.has_deadline
        record.dl = 4.0
        assert record.has_deadline


class TestFlexibility:
    def test_flexibility_ratio(self):
        record = TimingRecord(ar=0.0, ex=2.0, dl=6.0)  # slack 4
        assert record.fl == 2.0

    def test_zero_execution_flexibility_is_infinite(self):
        record = TimingRecord(ar=0.0, ex=0.0, dl=1.0)
        assert math.isinf(record.fl)


class TestOutcome:
    def test_on_time_completion(self):
        record = TimingRecord(ar=0.0, ex=1.0, dl=5.0)
        record.completed_at = 4.0
        assert not record.missed
        assert record.lateness == -1.0
        assert record.response_time == 4.0

    def test_tardy_completion(self):
        record = TimingRecord(ar=0.0, ex=1.0, dl=5.0)
        record.completed_at = 6.5
        assert record.missed
        assert record.lateness == 1.5

    def test_completion_exactly_at_deadline_is_met(self):
        record = TimingRecord(ar=0.0, ex=1.0, dl=5.0)
        record.completed_at = 5.0
        assert not record.missed

    def test_aborted_counts_as_missed(self):
        record = TimingRecord(ar=0.0, ex=1.0, dl=5.0)
        record.aborted = True
        assert record.missed

    def test_missed_before_completion_raises(self):
        record = TimingRecord(ar=0.0, ex=1.0, dl=5.0)
        with pytest.raises(ValueError):
            _ = record.missed

    def test_lateness_before_completion_raises(self):
        record = TimingRecord(ar=0.0, ex=1.0, dl=5.0)
        with pytest.raises(ValueError):
            _ = record.lateness

    def test_response_before_completion_raises(self):
        record = TimingRecord(ar=0.0, ex=1.0)
        with pytest.raises(ValueError):
            _ = record.response_time

    def test_waiting_time(self):
        record = TimingRecord(ar=2.0, ex=1.0, dl=10.0)
        record.started_at = 5.0
        assert record.waiting_time == 3.0

    def test_waiting_before_start_raises(self):
        record = TimingRecord(ar=2.0, ex=1.0)
        with pytest.raises(ValueError):
            _ = record.waiting_time

    def test_finished_flag(self):
        record = TimingRecord(ar=0.0, ex=1.0)
        assert not record.finished
        record.completed_at = 3.0
        assert record.finished


class TestLaxity:
    def test_laxity_uses_predicted_time(self):
        record = TimingRecord(ar=0.0, ex=2.0, pex=3.0, dl=10.0)
        assert record.laxity(now=4.0) == 3.0  # 10 - 4 - 3

    def test_laxity_can_go_negative(self):
        record = TimingRecord(ar=0.0, ex=1.0, dl=2.0)
        assert record.laxity(now=5.0) == -4.0

    def test_laxity_requires_deadline(self):
        record = TimingRecord(ar=0.0, ex=1.0)
        with pytest.raises(ValueError):
            record.laxity(now=0.0)


def test_repr_with_and_without_deadline():
    record = TimingRecord(ar=0.0, ex=1.0)
    assert "dl=?" in repr(record)
    record.dl = 3.0
    assert "dl=3" in repr(record)
