"""Unit tests for the bracket-notation parser (repro.core.notation)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.notation import NotationError, format_tree, parse, tokenize
from repro.core.task import ParallelTask, SerialTask, SimpleTask


class TestTokenize:
    def test_basic_tokens(self):
        tokens = tokenize("[1 || x:2.5]")
        kinds = [k for k, _ in tokens]
        assert kinds == ["lbracket", "leaf", "par", "leaf", "rbracket"]

    def test_bad_character(self):
        with pytest.raises(NotationError):
            tokenize("[1 ? 2]")

    def test_scientific_notation(self):
        tokens = tokenize("1e-3")
        assert tokens == [("leaf", "1e-3")]


class TestParseLeaves:
    def test_bare_number(self):
        leaf = parse("2.5")
        assert isinstance(leaf, SimpleTask)
        assert leaf.ex == 2.5

    def test_named_leaf(self):
        leaf = parse("fetch:1.5")
        assert leaf.name == "fetch"
        assert leaf.ex == 1.5

    def test_integer_leaf(self):
        assert parse("3").ex == 3.0


class TestParseComposites:
    def test_serial_chain(self):
        tree = parse("[1 2 3]")
        assert isinstance(tree, SerialTask)
        assert [leaf.ex for leaf in tree.leaves()] == [1.0, 2.0, 3.0]

    def test_parallel_fan(self):
        tree = parse("[1 || 2 || 3]")
        assert isinstance(tree, ParallelTask)
        assert tree.subtask_count() == 3

    def test_nested_mixed(self):
        tree = parse("[fetch:1 [db:2 || net:0.5] 1]")
        assert isinstance(tree, SerialTask)
        assert len(tree.children) == 3
        assert isinstance(tree.children[1], ParallelTask)
        assert tree.total_ex() == 1 + 2 + 1

    def test_singleton_bracket_collapses(self):
        tree = parse("[2.0]")
        assert isinstance(tree, SimpleTask)

    def test_deep_nesting(self):
        tree = parse("[[1 || 2] [3 || [4 5]]]")
        assert tree.subtask_count() == 5
        assert tree.total_ex() == 2 + 9  # max(1,2) + max(3, 4+5)


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "[1 2",          # unclosed bracket
            "1 2",           # trailing tokens outside brackets
            "[1 || 2 3]",    # mixed separators
            "[1 2 || 3]",    # mixed separators, other order
            "]",
            "[]",
            "[1] extra:1",
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(NotationError):
            parse(text)


class TestFormatTree:
    def test_round_trip_structure(self):
        text = "[1 [2 || 3] 4]"
        tree = parse(text)
        assert format_tree(tree) == text

    def test_leaf_format(self):
        assert format_tree(parse("2.5")) == "2.5"


# -- property: format/parse round trip ---------------------------------------

leaf_ex = st.floats(min_value=0.001, max_value=1000.0, allow_nan=False).map(
    lambda v: round(v, 3)
)


def trees(max_depth=3):
    return st.recursive(
        leaf_ex.map(SimpleTask),
        lambda children: st.builds(
            lambda kids, is_par: (ParallelTask if is_par else SerialTask)(kids),
            st.lists(children, min_size=2, max_size=4),
            st.booleans(),
        ),
        max_leaves=12,
    )


@given(trees())
def test_format_parse_round_trip_preserves_structure(tree):
    reparsed = parse(format_tree(tree))
    assert _shape(reparsed) == _shape(tree)


def _shape(node):
    if node.is_leaf:
        return ("leaf", round(node.ex, 6))
    tag = "par" if isinstance(node, ParallelTask) else "ser"
    return (tag, tuple(_shape(child) for child in node.children))
