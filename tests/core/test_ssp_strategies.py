"""Unit tests for the SSP strategies (repro.core.strategies.ssp).

Every formula is checked against a hand-computed example, plus the paper's
qualitative invariants (who grants more slack to early stages).
"""

from __future__ import annotations

import pytest

from repro.core.strategies.base import SerialContext
from repro.core.strategies.ssp import (
    SSP_STRATEGIES,
    EffectiveDeadline,
    EqualFlexibility,
    EqualFlexibilityDamped,
    EqualSlack,
    UltimateDeadline,
    make_eqf_as,
)


def make_context(
    deadline=20.0, submit=2.0, remaining=(2.0, 3.0, 5.0), arrival=0.0
):
    return SerialContext(
        window_arrival=arrival,
        window_deadline=deadline,
        submit_time=submit,
        remaining_pex=tuple(remaining),
    )


class TestContext:
    def test_derived_quantities(self):
        ctx = make_context()
        assert ctx.current_pex == 2.0
        assert ctx.remaining_count == 3
        assert ctx.total_remaining_pex == 10.0
        # dl - submit - total pex = 20 - 2 - 10
        assert ctx.remaining_slack == 8.0

    def test_empty_remaining_rejected(self):
        with pytest.raises(ValueError):
            make_context(remaining=())

    def test_negative_pex_rejected(self):
        with pytest.raises(ValueError):
            make_context(remaining=(1.0, -2.0))


class TestUltimateDeadline:
    def test_inherits_global_deadline(self):
        assert UltimateDeadline().assign(make_context()) == 20.0

    def test_independent_of_position(self):
        strategy = UltimateDeadline()
        first = strategy.assign(make_context(remaining=(2.0, 3.0, 5.0)))
        last = strategy.assign(make_context(remaining=(5.0,), submit=14.0))
        assert first == last == 20.0

    def test_needs_no_estimates(self):
        assert not UltimateDeadline().uses_estimates


class TestEffectiveDeadline:
    def test_formula(self):
        # dl(Ti) = dl(T) - (pex of later stages) = 20 - (3 + 5) = 12.
        assert EffectiveDeadline().assign(make_context()) == 12.0

    def test_last_subtask_gets_global_deadline(self):
        ctx = make_context(remaining=(5.0,), submit=14.0)
        assert EffectiveDeadline().assign(ctx) == 20.0

    def test_never_later_than_ud(self):
        ctx = make_context()
        assert EffectiveDeadline().assign(ctx) <= UltimateDeadline().assign(ctx)

    def test_independent_of_submit_time(self):
        early = EffectiveDeadline().assign(make_context(submit=1.0))
        late = EffectiveDeadline().assign(make_context(submit=9.0))
        assert early == late


class TestEqualSlack:
    def test_formula(self):
        # slack share = (20 - 2 - 10)/3 = 8/3; dl = 2 + 2 + 8/3.
        assert EqualSlack().assign(make_context()) == pytest.approx(2 + 2 + 8 / 3)

    def test_last_subtask_gets_global_deadline(self):
        ctx = make_context(remaining=(5.0,), submit=14.0)
        assert EqualSlack().assign(ctx) == pytest.approx(20.0)

    def test_negative_slack_shared(self):
        # The chain is already doomed: dl - submit - pex = 20 - 18 - 10 < 0.
        ctx = make_context(submit=18.0)
        deadline = EqualSlack().assign(ctx)
        assert deadline < 18.0 + 2.0  # earlier than submit + pex

    def test_equal_shares_across_stages(self):
        """With on-time starts and perfect estimates, every stage receives
        the same slack share."""
        total_deadline = 26.0
        pex = (2.0, 3.0, 5.0)
        strategy = EqualSlack()
        now = 0.0
        shares = []
        for i in range(3):
            ctx = SerialContext(
                window_arrival=0.0,
                window_deadline=total_deadline,
                submit_time=now,
                remaining_pex=pex[i:],
            )
            deadline = strategy.assign(ctx)
            shares.append(deadline - now - pex[i])
            now = deadline  # next stage starts exactly at this one's deadline
        assert shares[0] == pytest.approx(shares[1])
        assert shares[1] == pytest.approx(shares[2])


class TestEqualFlexibility:
    def test_formula(self):
        # share = (20 - 2 - 10) * 2/10 = 1.6; dl = 2 + 2 + 1.6.
        assert EqualFlexibility().assign(make_context()) == pytest.approx(5.6)

    def test_last_subtask_gets_global_deadline(self):
        ctx = make_context(remaining=(5.0,), submit=14.0)
        assert EqualFlexibility().assign(ctx) == pytest.approx(20.0)

    def test_equal_flexibility_across_stages(self):
        """Slack shares are proportional to pex: fl is constant."""
        total_deadline = 26.0
        pex = (2.0, 3.0, 5.0)
        strategy = EqualFlexibility()
        now = 0.0
        flexibilities = []
        for i in range(3):
            ctx = SerialContext(
                window_arrival=0.0,
                window_deadline=total_deadline,
                submit_time=now,
                remaining_pex=pex[i:],
            )
            deadline = strategy.assign(ctx)
            flexibilities.append((deadline - now - pex[i]) / pex[i])
            now = deadline
        assert flexibilities[0] == pytest.approx(flexibilities[1])
        assert flexibilities[1] == pytest.approx(flexibilities[2])

    def test_zero_total_pex_falls_back_to_equal_split(self):
        ctx = make_context(remaining=(0.0, 0.0), submit=2.0, deadline=8.0)
        # remaining slack = 6, split over 2 -> 3 each.
        assert EqualFlexibility().assign(ctx) == pytest.approx(5.0)

    def test_leftover_slack_inherited_by_later_stages(self):
        """The paper's 'rich get richer' mechanism: a stage finishing early
        leaves its unused slack to the rest of the chain."""
        strategy = EqualFlexibility()
        pex = (2.0, 2.0)
        first = strategy.assign(
            SerialContext(0.0, 20.0, 0.0, tuple(pex))
        )
        # Suppose stage 1 finished at time 1 (well before its deadline).
        second_early = strategy.assign(
            SerialContext(0.0, 20.0, 1.0, (2.0,))
        )
        # Versus finishing exactly at its virtual deadline.
        second_on_time = strategy.assign(
            SerialContext(0.0, 20.0, first, (2.0,))
        )
        assert second_early == second_on_time == 20.0  # last stage: full dl
        # The early finisher has more slack left: dl - now - pex.
        assert (second_early - 1.0) > (second_on_time - first)


class TestEqualFlexibilityDamped:
    """The Sec. 7 future-work extension: EQF with artificial stages."""

    def test_zero_phantom_stages_is_eqf(self):
        ctx = make_context()
        assert EqualFlexibilityDamped(0).assign(ctx) == pytest.approx(
            EqualFlexibility().assign(ctx)
        )

    def test_formula_with_one_phantom_stage(self):
        # remaining pex (2,3,5): mean 10/3; denominator 10 + 10/3 = 40/3.
        # share = 8 * 2 / (40/3) = 1.2; dl = 2 + 2 + 1.2.
        ctx = make_context()
        assert EqualFlexibilityDamped(1).assign(ctx) == pytest.approx(5.2)

    def test_earlier_than_eqf_with_positive_slack(self):
        """Phantom stages siphon slack: deadlines move earlier."""
        ctx = make_context()
        eqf = EqualFlexibility().assign(ctx)
        as1 = EqualFlexibilityDamped(1).assign(ctx)
        as2 = EqualFlexibilityDamped(2).assign(ctx)
        assert as2 < as1 < eqf

    def test_final_stage_holds_back_a_reserve(self):
        """Unlike EQF, the last real subtask does not get the full global
        deadline -- the held-back share is the reserve."""
        ctx = make_context(remaining=(5.0,), submit=14.0, deadline=20.0)
        assigned = EqualFlexibilityDamped(1).assign(ctx)
        assert assigned < 20.0
        # Reserve = slack * phantom/(real+phantom) = 1 * 5/10 = 0.5.
        assert assigned == pytest.approx(19.5)

    def test_zero_total_pex_fallback(self):
        ctx = make_context(remaining=(0.0, 0.0), submit=2.0, deadline=8.0)
        # 6 slack over (2 real + 1 phantom) stages -> 2 each.
        assert EqualFlexibilityDamped(1).assign(ctx) == pytest.approx(4.0)

    def test_negative_stage_count_rejected(self):
        with pytest.raises(ValueError):
            EqualFlexibilityDamped(-1)

    def test_name_and_factory(self):
        assert EqualFlexibilityDamped(1).name == "EQFAS1"
        assert make_eqf_as(3).artificial_stages == 3

    def test_registered(self):
        assert "EQFAS1" in SSP_STRATEGIES
        assert "EQFAS2" in SSP_STRATEGIES


class TestRegistryAndOrdering:
    def test_registry_names(self):
        assert set(SSP_STRATEGIES) == {
            "UD", "ED", "EQS", "EQF", "EQFAS1", "EQFAS2",
        }

    def test_early_stage_deadline_ordering(self):
        """For a first-of-many subtask: EQS/EQF assign the earliest
        deadlines, ED intermediate, UD the latest -- the priority ordering
        that drives the paper's results."""
        ctx = make_context()
        ud = UltimateDeadline().assign(ctx)
        ed = EffectiveDeadline().assign(ctx)
        eqs = EqualSlack().assign(ctx)
        eqf = EqualFlexibility().assign(ctx)
        assert eqf < ed < ud
        assert eqs < ed < ud

    def test_paper_strategies_agree_on_single_subtask_with_zero_elapsed(self):
        """A one-subtask global task at its arrival instant: each of the
        paper's four strategies reduces to the global deadline.  (EQF-AS
        deliberately does not -- it holds back a reserve.)"""
        ctx = SerialContext(
            window_arrival=0.0,
            window_deadline=10.0,
            submit_time=0.0,
            remaining_pex=(4.0,),
        )
        for name in ("UD", "ED", "EQS", "EQF"):
            assert SSP_STRATEGIES[name].assign(ctx) == pytest.approx(10.0)
