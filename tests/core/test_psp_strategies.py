"""Unit tests for the PSP strategies (repro.core.strategies.psp)."""

from __future__ import annotations

import pytest

from repro.core.strategies.base import ParallelContext, PriorityClass
from repro.core.strategies.psp import (
    PSP_STRATEGIES,
    DivX,
    GlobalsFirst,
    UltimateDeadlineParallel,
    make_div,
)


def make_context(arrival=10.0, deadline=30.0, fan_out=4, index=0, pex=1.0):
    return ParallelContext(
        window_arrival=arrival,
        window_deadline=deadline,
        fan_out=fan_out,
        index=index,
        pex=pex,
    )


class TestContext:
    def test_window_length(self):
        assert make_context().window_length == 20.0

    def test_bad_fan_out_rejected(self):
        with pytest.raises(ValueError):
            make_context(fan_out=0)

    def test_index_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            make_context(fan_out=2, index=2)

    def test_negative_pex_rejected(self):
        with pytest.raises(ValueError):
            make_context(pex=-1.0)


class TestUltimateDeadline:
    def test_inherits_group_deadline(self):
        assert UltimateDeadlineParallel().assign(make_context()) == 30.0

    def test_normal_priority_class(self):
        assert UltimateDeadlineParallel().priority_class == PriorityClass.NORMAL


class TestDivX:
    def test_div1_formula(self):
        # dl = ar + (dl - ar)/(n*1) = 10 + 20/4 = 15.
        assert DivX(1.0).assign(make_context()) == pytest.approx(15.0)

    def test_div2_formula(self):
        # dl = 10 + 20/8 = 12.5.
        assert DivX(2.0).assign(make_context()) == pytest.approx(12.5)

    def test_monotone_in_x(self):
        ctx = make_context()
        deadlines = [DivX(x).assign(ctx) for x in (0.5, 1.0, 2.0, 4.0)]
        assert deadlines == sorted(deadlines, reverse=True)

    def test_monotone_in_fan_out(self):
        """The promotion grows automatically with the number of subtasks --
        the property the paper highlights."""
        deadlines = [
            DivX(1.0).assign(make_context(fan_out=n)) for n in (1, 2, 4, 8, 16)
        ]
        assert deadlines == sorted(deadlines, reverse=True)

    def test_always_later_than_arrival(self):
        """'With DIV-x, virtual deadlines are, however big x is, later than
        the task's arrival time' (Sec. 5.1)."""
        for x in (1.0, 10.0, 1000.0):
            for n in (1, 4, 64):
                deadline = DivX(x).assign(make_context(fan_out=n))
                assert deadline > 10.0

    def test_fan_out_one_x_one_is_ud(self):
        ctx = make_context(fan_out=1)
        assert DivX(1.0).assign(ctx) == UltimateDeadlineParallel().assign(ctx)

    def test_same_deadline_for_all_group_members(self):
        d = [DivX(1.0).assign(make_context(index=i)) for i in range(4)]
        assert len(set(d)) == 1

    def test_nonpositive_x_rejected(self):
        for bad in (0.0, -1.0):
            with pytest.raises(ValueError):
                DivX(bad)

    def test_name_rendering(self):
        assert DivX(1.0).name == "DIV-1"
        assert DivX(2.0).name == "DIV-2"
        assert DivX(0.5).name == "DIV-0.5"

    def test_make_div(self):
        assert make_div(3.0).x == 3.0


class TestGlobalsFirst:
    def test_keeps_group_deadline(self):
        assert GlobalsFirst().assign(make_context()) == 30.0

    def test_elevated_priority_class(self):
        assert GlobalsFirst().priority_class == PriorityClass.ELEVATED


class TestRegistry:
    def test_known_names(self):
        assert {"UD", "DIV-1", "DIV-2", "DIV-4", "GF"} <= set(PSP_STRATEGIES)

    def test_priority_classes(self):
        elevated = [n for n, s in PSP_STRATEGIES.items()
                    if s.priority_class == PriorityClass.ELEVATED]
        assert elevated == ["GF"]

    def test_aggressiveness_ordering(self):
        """UD is the laziest, DIV-x increasingly aggressive."""
        ctx = make_context()
        ud = PSP_STRATEGIES["UD"].assign(ctx)
        div1 = PSP_STRATEGIES["DIV-1"].assign(ctx)
        div2 = PSP_STRATEGIES["DIV-2"].assign(ctx)
        assert div2 < div1 < ud
