"""Unit tests for the serial-parallel task model (repro.core.task)."""

from __future__ import annotations

import pytest

from repro.core.task import (
    LocalTask,
    ParallelTask,
    SerialTask,
    SimpleTask,
    TaskClass,
    chain_of,
    fan_of,
    parallel,
    serial,
)


class TestSimpleTask:
    def test_defaults(self):
        leaf = SimpleTask(2.0)
        assert leaf.ex == 2.0
        assert leaf.pex == 2.0
        assert leaf.node_index is None
        assert leaf.is_leaf

    def test_explicit_pex(self):
        leaf = SimpleTask(2.0, pex=1.5)
        assert leaf.pex == 1.5

    def test_negative_ex_rejected(self):
        with pytest.raises(ValueError):
            SimpleTask(-1.0)

    def test_negative_pex_rejected(self):
        with pytest.raises(ValueError):
            SimpleTask(1.0, pex=-1.0)

    def test_envelopes(self):
        leaf = SimpleTask(2.0, pex=1.5)
        assert leaf.total_ex() == 2.0
        assert leaf.total_pex() == 1.5

    def test_depth_and_count(self):
        leaf = SimpleTask(1.0)
        assert leaf.depth() == 1
        assert leaf.subtask_count() == 1

    def test_negative_node_index_fails_validation(self):
        leaf = SimpleTask(1.0, node_index=-2)
        with pytest.raises(ValueError):
            leaf.validate()

    def test_unique_ids(self):
        a, b = SimpleTask(1.0), SimpleTask(1.0)
        assert a.id != b.id


class TestSerialTask:
    def test_total_pex_adds(self):
        task = chain_of([1.0, 2.0, 3.0])
        assert task.total_pex() == 6.0
        assert task.total_ex() == 6.0

    def test_leaves_in_order(self):
        leaves = [SimpleTask(float(i), name=f"t{i}") for i in range(4)]
        task = SerialTask(leaves)
        assert [leaf.name for leaf in task.leaves()] == ["t0", "t1", "t2", "t3"]

    def test_empty_children_rejected(self):
        with pytest.raises(ValueError):
            SerialTask([])

    def test_parent_links_set(self):
        leaves = [SimpleTask(1.0), SimpleTask(2.0)]
        task = SerialTask(leaves)
        assert all(leaf.parent is task for leaf in leaves)

    def test_shared_child_rejected(self):
        leaf = SimpleTask(1.0)
        SerialTask([leaf])
        with pytest.raises(ValueError):
            SerialTask([leaf])

    def test_single_child_allowed(self):
        task = SerialTask([SimpleTask(1.0)])
        assert task.subtask_count() == 1

    def test_validate_passes_for_well_formed_tree(self):
        chain_of([1.0, 2.0]).validate()


class TestParallelTask:
    def test_total_pex_is_max(self):
        task = fan_of([1.0, 5.0, 2.0])
        assert task.total_pex() == 5.0
        assert task.total_ex() == 5.0

    def test_empty_children_rejected(self):
        with pytest.raises(ValueError):
            ParallelTask([])

    def test_subtask_count(self):
        assert fan_of([1.0] * 4).subtask_count() == 4


class TestComposition:
    def test_nested_tree_envelopes(self):
        # [1 [2 || [3 4]] 5]: the middle group's envelope is max(2, 3+4)=7.
        tree = serial(
            SimpleTask(1.0),
            parallel(SimpleTask(2.0), serial(SimpleTask(3.0), SimpleTask(4.0))),
            SimpleTask(5.0),
        )
        assert tree.total_ex() == 1.0 + 7.0 + 5.0
        assert tree.subtask_count() == 5
        assert tree.depth() == 4

    def test_leaves_left_to_right_through_nesting(self):
        a, b, c = SimpleTask(1, name="a"), SimpleTask(2, name="b"), SimpleTask(3, name="c")
        tree = serial(a, parallel(b, c))
        assert [leaf.name for leaf in tree.leaves()] == ["a", "b", "c"]

    def test_notation_rendering(self):
        tree = serial(
            SimpleTask(1.0, name="T1"),
            parallel(SimpleTask(2.0, name="T2"), SimpleTask(3.0, name="T3")),
        )
        assert tree.notation() == "[T1 [T2 || T3]]"

    def test_validate_recurses(self):
        tree = serial(SimpleTask(1.0), parallel(SimpleTask(2.0), SimpleTask(3.0)))
        tree.validate()
        # Break a parent link behind the model's back.
        tree.children[1].children[0].parent = None
        with pytest.raises(ValueError):
            tree.validate()


class TestLocalTask:
    def test_attributes(self):
        task = LocalTask(ex=1.5, node_index=3)
        assert task.ex == 1.5
        assert task.node_index == 3
        assert task.task_class is TaskClass.LOCAL

    def test_negative_ex_rejected(self):
        with pytest.raises(ValueError):
            LocalTask(ex=-1.0, node_index=0)

    def test_repr(self):
        assert "node=2" in repr(LocalTask(ex=1.0, node_index=2))


class TestHelpers:
    def test_chain_of(self):
        task = chain_of([1.0, 2.0])
        assert isinstance(task, SerialTask)
        assert task.subtask_count() == 2

    def test_fan_of(self):
        task = fan_of([1.0, 2.0, 3.0])
        assert isinstance(task, ParallelTask)
        assert task.subtask_count() == 3

    def test_named_constructors(self):
        assert serial(SimpleTask(1.0), name="my-task").name == "my-task"
        assert parallel(SimpleTask(1.0), name="fan").name == "fan"
