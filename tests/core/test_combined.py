"""Unit tests for the recursive SSP+PSP assigner (repro.core.strategies.combined)."""

from __future__ import annotations

import pytest

from repro.core.strategies.base import PriorityClass
from repro.core.strategies.combined import (
    PAPER_COMBINATIONS,
    DeadlineAssigner,
    parse_assigner,
)
from repro.core.strategies.psp import DivX, GlobalsFirst, UltimateDeadlineParallel
from repro.core.strategies.ssp import EqualFlexibility, UltimateDeadline
from repro.core.task import SimpleTask, parallel, serial


class TestParseAssigner:
    def test_single_ssp_name(self):
        assigner = parse_assigner("EQF")
        assert isinstance(assigner.ssp, EqualFlexibility)
        assert isinstance(assigner.psp, UltimateDeadlineParallel)

    def test_single_psp_name(self):
        assigner = parse_assigner("GF")
        assert isinstance(assigner.ssp, UltimateDeadline)
        assert isinstance(assigner.psp, GlobalsFirst)

    def test_div_without_hyphen(self):
        assigner = parse_assigner("DIV1")
        assert isinstance(assigner.psp, DivX)
        assert assigner.psp.x == 1.0

    def test_div_with_hyphen(self):
        assert parse_assigner("DIV-2").psp.x == 2.0

    def test_combination(self):
        assigner = parse_assigner("EQF-DIV1")
        assert isinstance(assigner.ssp, EqualFlexibility)
        assert assigner.psp.x == 1.0

    def test_combination_with_inner_hyphen(self):
        assert parse_assigner("EQF-DIV-2").psp.x == 2.0

    def test_fractional_div(self):
        assert parse_assigner("UD-DIV0.5").psp.x == 0.5

    def test_case_insensitive(self):
        assert isinstance(parse_assigner("eqf-div1").ssp, EqualFlexibility)

    def test_ud_ud(self):
        assigner = parse_assigner("UD-UD")
        assert isinstance(assigner.ssp, UltimateDeadline)
        assert isinstance(assigner.psp, UltimateDeadlineParallel)

    @pytest.mark.parametrize("bad", ["", "XYZ", "EQF-XYZ", "XYZ-DIV1", "A-B-C-D"])
    def test_unknown_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_assigner(bad)

    def test_paper_combinations_all_parse(self):
        for name in PAPER_COMBINATIONS:
            parse_assigner(name)

    def test_name_round_trip(self):
        assert parse_assigner("EQF-DIV1").name == "EQF-DIV1"
        assert parse_assigner("UD-UD").name == "UD-UD"
        assert parse_assigner("EQS-GF").name == "EQS-GF"


class TestSerialChildDeadline:
    def test_complex_child_uses_tree_envelope(self):
        """A parallel child contributes max(pex), a serial child sum(pex)."""
        assigner = parse_assigner("ED")
        group = parallel(SimpleTask(4.0), SimpleTask(6.0))
        tail = SimpleTask(2.0)
        chain = serial(group, tail)
        assignment = assigner.serial_child_deadline(
            remaining=chain.children,
            now=0.0,
            window_arrival=0.0,
            window_deadline=20.0,
        )
        # ED: dl - downstream pex = 20 - 2 = 18.
        assert assignment.deadline == pytest.approx(18.0)

    def test_ud_psp_keeps_normal_class(self):
        assigner = parse_assigner("EQF-UD")
        assignment = assigner.serial_child_deadline(
            remaining=[SimpleTask(1.0)],
            now=0.0,
            window_arrival=0.0,
            window_deadline=5.0,
        )
        assert assignment.priority_class == PriorityClass.NORMAL

    def test_gf_elevates_serial_leaves_too(self):
        """Under GF, *all* global subtasks get class priority."""
        assigner = parse_assigner("EQF-GF")
        assignment = assigner.serial_child_deadline(
            remaining=[SimpleTask(1.0)],
            now=0.0,
            window_arrival=0.0,
            window_deadline=5.0,
        )
        assert assignment.priority_class == PriorityClass.ELEVATED


class TestParallelChildDeadline:
    def test_div1_on_group(self):
        assigner = parse_assigner("UD-DIV1")
        children = [SimpleTask(1.0) for _ in range(4)]
        group = parallel(*children)
        assignment = assigner.parallel_child_deadline(
            children=group.children,
            index=0,
            now=10.0,
            window_deadline=30.0,
        )
        assert assignment.deadline == pytest.approx(15.0)

    def test_fork_time_plays_arrival_role(self):
        """For a nested group the window starts at fork time, not at the
        global task's arrival."""
        assigner = parse_assigner("UD-DIV1")
        children = parallel(SimpleTask(1.0), SimpleTask(1.0)).children
        early = assigner.parallel_child_deadline(children, 0, now=0.0, window_deadline=20.0)
        late = assigner.parallel_child_deadline(children, 0, now=10.0, window_deadline=20.0)
        assert early.deadline == pytest.approx(10.0)
        assert late.deadline == pytest.approx(15.0)


def test_assigner_is_value_object():
    a = parse_assigner("EQF-DIV1")
    b = DeadlineAssigner(ssp=a.ssp, psp=a.psp)
    assert a == b
