"""Unit tests for execution-time estimators (repro.core.estimators)."""

from __future__ import annotations

import random

import pytest

from repro.core.estimators import (
    NoisyEstimator,
    PerfectEstimator,
    uniform_error_estimator,
)
from repro.sim.distributions import LognormalErrorFactor, UniformErrorFactor


class TestPerfectEstimator:
    def test_identity(self):
        estimator = PerfectEstimator()
        stream = random.Random(0)
        for ex in (0.0, 0.5, 10.0):
            assert estimator.predict(ex, stream) == ex

    def test_is_perfect_flag(self):
        assert PerfectEstimator().is_perfect


class TestNoisyEstimator:
    def test_bounded_relative_error(self):
        estimator = NoisyEstimator(UniformErrorFactor(0.3))
        stream = random.Random(1)
        for _ in range(500):
            pex = estimator.predict(2.0, stream)
            assert 1.4 <= pex <= 2.6

    def test_mean_error_is_unbiased(self):
        estimator = NoisyEstimator(UniformErrorFactor(0.5))
        stream = random.Random(2)
        n = 20_000
        mean = sum(estimator.predict(1.0, stream) for _ in range(n)) / n
        assert mean == pytest.approx(1.0, abs=0.01)

    def test_never_negative(self):
        estimator = NoisyEstimator(LognormalErrorFactor(1.0))
        stream = random.Random(3)
        assert all(estimator.predict(1.0, stream) >= 0 for _ in range(1000))

    def test_not_perfect_flag(self):
        assert not NoisyEstimator(UniformErrorFactor(0.1)).is_perfect


class TestUniformErrorFactory:
    def test_zero_error_gives_perfect(self):
        assert isinstance(uniform_error_estimator(0.0), PerfectEstimator)

    def test_nonzero_error_gives_noisy(self):
        estimator = uniform_error_estimator(0.25)
        assert isinstance(estimator, NoisyEstimator)

    def test_error_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            uniform_error_estimator(1.5)
