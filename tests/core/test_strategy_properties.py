"""Property-based tests of SDA strategy invariants (hypothesis).

These encode the DESIGN.md invariant list: what must hold for *any*
deadline, submit time, and pex vector -- not just the worked examples.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.strategies.base import ParallelContext, SerialContext
from repro.core.strategies.psp import DivX, UltimateDeadlineParallel
from repro.core.strategies.ssp import (
    EffectiveDeadline,
    EqualFlexibility,
    EqualSlack,
    UltimateDeadline,
)

pex_lists = st.lists(
    st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=10,
)
times = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)
positive = st.floats(min_value=0.01, max_value=1000.0, allow_nan=False)


def serial_ctx(deadline, submit, remaining):
    return SerialContext(
        window_arrival=0.0,
        window_deadline=deadline,
        submit_time=submit,
        remaining_pex=tuple(remaining),
    )


@given(times, times, pex_lists)
def test_ud_always_returns_global_deadline(deadline, submit, remaining):
    ctx = serial_ctx(deadline, submit, remaining)
    assert UltimateDeadline().assign(ctx) == deadline


@given(times, times, pex_lists)
def test_ed_never_exceeds_ud(deadline, submit, remaining):
    ctx = serial_ctx(deadline, submit, remaining)
    assert EffectiveDeadline().assign(ctx) <= deadline


@given(times, times, pex_lists)
def test_ed_equals_ud_minus_downstream(deadline, submit, remaining):
    ctx = serial_ctx(deadline, submit, remaining)
    downstream = sum(remaining[1:])
    assert EffectiveDeadline().assign(ctx) == pytest.approx(deadline - downstream)


@given(times, times, pex_lists)
def test_eqs_grants_current_pex_plus_fair_share(deadline, submit, remaining):
    ctx = serial_ctx(deadline, submit, remaining)
    assigned = EqualSlack().assign(ctx)
    share = (deadline - submit - sum(remaining)) / len(remaining)
    assert assigned == pytest.approx(submit + remaining[0] + share)


@given(times, times, pex_lists)
def test_eqf_share_proportional_to_pex(deadline, submit, remaining):
    ctx = serial_ctx(deadline, submit, remaining)
    assigned = EqualFlexibility().assign(ctx)
    total = sum(remaining)
    slack = deadline - submit - total
    assert assigned == pytest.approx(
        submit + remaining[0] + slack * remaining[0] / total
    )


@given(times, times, pex_lists)
def test_single_remaining_subtask_all_strategies_converge(deadline, submit, remaining):
    """With one subtask left, ED, EQS, and EQF all give the global deadline."""
    ctx = serial_ctx(deadline, submit, remaining[:1])
    for strategy in (EffectiveDeadline(), EqualSlack(), EqualFlexibility()):
        assert strategy.assign(ctx) == pytest.approx(deadline)


@given(times, positive, pex_lists)
def test_positive_slack_deadline_ordering(submit, extra_slack, remaining):
    """With positive remaining slack: EQS/EQF earlier than or equal to ED,
    ED earlier than or equal to UD (the slack-hoarding hierarchy)."""
    deadline = submit + sum(remaining) + extra_slack
    ctx = serial_ctx(deadline, submit, remaining)
    ud = UltimateDeadline().assign(ctx)
    ed = EffectiveDeadline().assign(ctx)
    eqs = EqualSlack().assign(ctx)
    eqf = EqualFlexibility().assign(ctx)
    assert eqs <= ed + 1e-9
    assert eqf <= ed + 1e-9
    assert ed <= ud + 1e-9


@given(times, positive, pex_lists)
def test_eqs_eqf_deadline_is_feasible_start(submit, extra_slack, remaining):
    """With positive slack, EQS/EQF deadlines leave room for the current
    subtask: dl(Ti) >= submit + pex(Ti)."""
    deadline = submit + sum(remaining) + extra_slack
    ctx = serial_ctx(deadline, submit, remaining)
    assert EqualSlack().assign(ctx) >= submit + remaining[0]
    assert EqualFlexibility().assign(ctx) >= submit + remaining[0]


@given(
    times,
    positive,
    st.integers(min_value=1, max_value=32),
    st.floats(min_value=1.0, max_value=16.0),
)
def test_divx_bounds(arrival, window, fan_out, x):
    """For x >= 1 (the paper's regime), DIV-x lies strictly after the
    group's arrival and never after its deadline.  (x < 1 *stretches* the
    window and may exceed the deadline; only monotonicity holds there.)"""
    ctx = ParallelContext(
        window_arrival=arrival,
        window_deadline=arrival + window,
        fan_out=fan_out,
        index=0,
    )
    assigned = DivX(x).assign(ctx)
    assert arrival < assigned <= arrival + window + 1e-9
    assert assigned <= UltimateDeadlineParallel().assign(ctx)


@given(times, positive, st.integers(min_value=1, max_value=16))
def test_divx_monotone_decreasing_in_x(arrival, window, fan_out):
    ctx = ParallelContext(
        window_arrival=arrival,
        window_deadline=arrival + window,
        fan_out=fan_out,
        index=0,
    )
    previous = float("inf")
    for x in (0.5, 1.0, 2.0, 4.0, 8.0):
        current = DivX(x).assign(ctx)
        assert current <= previous
        previous = current
