"""Unit tests for the closed-form queueing results (repro.stats.queueing)
and batch means (repro.stats.batch_means)."""

from __future__ import annotations

import math
import random

import pytest

from repro.stats.batch_means import batch_means_interval, split_batches
from repro.stats.queueing import (
    erlang_mean_and_variance,
    expected_max_exponential,
    md1_mean_wait,
    mg1_mean_wait,
    mm1_mean_number_in_queue,
    mm1_mean_response,
    mm1_mean_wait,
    utilization,
)


class TestMM1:
    def test_known_values(self):
        # lambda=0.5, mu=1: rho=.5, Wq = .5/.5 = 1, W = 2, Lq = .5.
        assert mm1_mean_wait(0.5, 1.0) == pytest.approx(1.0)
        assert mm1_mean_response(0.5, 1.0) == pytest.approx(2.0)
        assert mm1_mean_number_in_queue(0.5, 1.0) == pytest.approx(0.5)

    def test_littles_law_consistency(self):
        """Lq = lambda * Wq must hold for any stable parameters."""
        for lam, mu in ((0.1, 1.0), (0.5, 1.0), (0.9, 1.0), (2.0, 3.0)):
            assert mm1_mean_number_in_queue(lam, mu) == pytest.approx(
                lam * mm1_mean_wait(lam, mu)
            )

    def test_response_is_wait_plus_service(self):
        assert mm1_mean_response(0.7, 1.0) == pytest.approx(
            mm1_mean_wait(0.7, 1.0) + 1.0
        )

    def test_unstable_rejected(self):
        with pytest.raises(ValueError, match="unstable"):
            mm1_mean_wait(1.0, 1.0)

    def test_bad_rates_rejected(self):
        with pytest.raises(ValueError):
            utilization(-1.0, 1.0)
        with pytest.raises(ValueError):
            utilization(1.0, 0.0)


class TestMG1:
    def test_exponential_service_reduces_to_mm1(self):
        """P-K with E[S^2] = 2/mu^2 must equal the M/M/1 formula."""
        lam, mu = 0.6, 1.0
        assert mg1_mean_wait(lam, 1.0 / mu, 2.0 / mu**2) == pytest.approx(
            mm1_mean_wait(lam, mu)
        )

    def test_deterministic_service_halves_the_wait(self):
        lam, s = 0.5, 1.0
        assert md1_mean_wait(lam, s) == pytest.approx(
            mm1_mean_wait(lam, 1.0 / s) / 2.0
        )

    def test_invalid_second_moment_rejected(self):
        with pytest.raises(ValueError):
            mg1_mean_wait(0.5, 1.0, 0.5)  # E[S^2] < E[S]^2

    def test_unstable_rejected(self):
        with pytest.raises(ValueError, match="unstable"):
            mg1_mean_wait(2.0, 1.0, 2.0)


class TestExpectedMax:
    def test_matches_harmonic(self):
        assert expected_max_exponential(1, 2.0) == pytest.approx(2.0)
        assert expected_max_exponential(4, 1.0) == pytest.approx(25 / 12)

    def test_monte_carlo_agreement(self):
        rng = random.Random(0)
        n, mean, reps = 4, 1.0, 40_000
        total = 0.0
        for _ in range(reps):
            total += max(rng.expovariate(1.0 / mean) for _ in range(n))
        assert total / reps == pytest.approx(
            expected_max_exponential(n, mean), rel=0.03
        )

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            expected_max_exponential(0, 1.0)
        with pytest.raises(ValueError):
            expected_max_exponential(2, 0.0)


class TestErlang:
    def test_mean_and_variance(self):
        mean, var = erlang_mean_and_variance(4, 0.5)
        assert mean == 2.0
        assert var == 1.0

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            erlang_mean_and_variance(0, 1.0)


class TestSplitBatches:
    def test_even_split(self):
        batches = split_batches(list(range(10)), 5)
        assert batches == [[0, 1], [2, 3], [4, 5], [6, 7], [8, 9]]

    def test_remainder_dropped(self):
        batches = split_batches(list(range(11)), 5)
        assert sum(len(b) for b in batches) == 10

    def test_too_few_observations_rejected(self):
        with pytest.raises(ValueError):
            split_batches([1.0], 2)

    def test_minimum_batch_count(self):
        with pytest.raises(ValueError):
            split_batches(list(range(10)), 1)


class TestBatchMeansInterval:
    def test_iid_data_mean_recovered(self):
        rng = random.Random(1)
        data = [rng.gauss(10.0, 2.0) for _ in range(5_000)]
        estimate = batch_means_interval(data, batch_count=10)
        assert estimate.contains(10.0)
        assert estimate.half_width < 0.5

    def test_discard_fraction_removes_transient(self):
        # A gross transient at the front biases the plain estimate.
        data = [100.0] * 500 + [10.0] * 4_500
        plain = batch_means_interval(data, batch_count=10)
        truncated = batch_means_interval(data, batch_count=10,
                                         discard_fraction=0.2)
        assert abs(truncated.mean - 10.0) < abs(plain.mean - 10.0)
        assert truncated.mean == pytest.approx(10.0)

    def test_bad_discard_fraction(self):
        with pytest.raises(ValueError):
            batch_means_interval([1.0] * 100, discard_fraction=1.0)

    def test_constant_series_zero_width(self):
        estimate = batch_means_interval([3.0] * 100, batch_count=5)
        assert estimate.mean == 3.0
        assert estimate.half_width == 0.0
