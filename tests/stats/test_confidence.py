"""Unit tests for confidence intervals (repro.stats.confidence)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.confidence import (
    IntervalEstimate,
    _t_quantile_approx,
    interval_from_samples,
    t_quantile,
)


class TestTQuantile:
    @pytest.mark.parametrize(
        "level,dof,expected",
        [
            (0.95, 1, 12.706),
            (0.95, 4, 2.776),
            (0.95, 9, 2.262),
            (0.99, 9, 3.250),
            (0.90, 29, 1.699),
        ],
    )
    def test_matches_published_tables(self, level, dof, expected):
        assert t_quantile(level, dof) == pytest.approx(expected, abs=2e-3)

    def test_approximation_agrees_with_scipy(self):
        """The no-scipy fallback stays close to the real quantile.

        Hill's expansion is weakest at very low degrees of freedom combined
        with extreme levels (dof=2 @ 0.99 is ~4% off), hence the looser
        tolerance there.
        """
        pytest.importorskip("scipy")
        for dof in (2, 5, 10, 30, 100):
            for level in (0.90, 0.95, 0.99):
                exact = t_quantile(level, dof)
                approx = _t_quantile_approx((1 + level) / 2, dof)
                tolerance = 0.05 if dof < 3 else 0.01
                assert approx == pytest.approx(exact, rel=tolerance)

    def test_bad_level_rejected(self):
        for bad in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError):
                t_quantile(bad, 5)

    def test_bad_dof_rejected(self):
        with pytest.raises(ValueError):
            t_quantile(0.95, 0)

    def test_larger_dof_smaller_quantile(self):
        values = [t_quantile(0.95, dof) for dof in (1, 2, 5, 20, 200)]
        assert values == sorted(values, reverse=True)


class TestIntervalFromSamples:
    def test_known_example(self):
        samples = [10.0, 12.0, 11.0, 13.0, 9.0]
        estimate = interval_from_samples(samples, level=0.95)
        assert estimate.mean == pytest.approx(11.0)
        # sd = sqrt(2.5), half = t(.95, 4) * sd / sqrt(5).
        assert estimate.half_width == pytest.approx(
            2.776 * math.sqrt(2.5) / math.sqrt(5), abs=1e-3
        )
        assert estimate.n == 5

    def test_single_sample_infinite_half_width(self):
        estimate = interval_from_samples([5.0])
        assert estimate.mean == 5.0
        assert math.isinf(estimate.half_width)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            interval_from_samples([])

    def test_identical_samples_zero_width(self):
        estimate = interval_from_samples([2.0, 2.0, 2.0])
        assert estimate.half_width == 0.0

    def test_contains_and_bounds(self):
        estimate = IntervalEstimate(mean=10.0, half_width=1.0, level=0.95, n=3)
        assert estimate.low == 9.0
        assert estimate.high == 11.0
        assert estimate.contains(10.5)
        assert not estimate.contains(12.0)

    def test_overlaps(self):
        a = IntervalEstimate(mean=10.0, half_width=1.0, level=0.95, n=3)
        b = IntervalEstimate(mean=11.5, half_width=1.0, level=0.95, n=3)
        c = IntervalEstimate(mean=20.0, half_width=1.0, level=0.95, n=3)
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(c)

    def test_str_formatting(self):
        estimate = IntervalEstimate(mean=0.25, half_width=0.01, level=0.95, n=2)
        assert "0.25" in str(estimate)

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=2,
            max_size=30,
        )
    )
    def test_mean_always_inside_interval(self, samples):
        estimate = interval_from_samples(samples)
        assert estimate.low <= estimate.mean <= estimate.high

    @given(
        st.floats(min_value=-10, max_value=10, allow_nan=False),
        st.integers(min_value=2, max_value=20),
    )
    def test_more_replications_never_widen(self, value, n):
        """With identical dispersion, more samples shrink the interval."""
        few = interval_from_samples([value, value + 1.0] * 2)
        many = interval_from_samples([value, value + 1.0] * (2 * n))
        assert many.half_width <= few.half_width
