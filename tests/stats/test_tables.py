"""Unit tests for ASCII rendering (repro.stats.tables)."""

from __future__ import annotations

import math

import pytest

from repro.stats.tables import format_percent, render_chart, render_table


class TestRenderTable:
    def test_basic_table(self):
        text = render_table(["name", "value"], [["alpha", 1.5], ["b", 22]])
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert "alpha" in lines[2]
        assert "22" in lines[3]

    def test_title(self):
        text = render_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_alignment_consistent_width(self):
        text = render_table(["col"], [["short"], ["much longer cell"]])
        lines = text.splitlines()
        assert len(lines[0]) == len(lines[2]) == len(lines[3])

    def test_nan_rendered_as_dash(self):
        text = render_table(["x"], [[math.nan]])
        assert "-" in text.splitlines()[-1]

    def test_float_formatting(self):
        text = render_table(["x"], [[0.123456789]])
        assert "0.1235" in text

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text


class TestRenderChart:
    def test_single_series(self):
        text = render_chart([0, 1, 2], {"s": [0.0, 0.5, 1.0]})
        assert "o=s" in text
        assert text.count("o") >= 3

    def test_multiple_series_get_distinct_markers(self):
        text = render_chart([0, 1], {"a": [0, 1], "b": [1, 0]})
        assert "o=a" in text
        assert "x=b" in text

    def test_title_and_labels(self):
        text = render_chart([0, 1], {"s": [0, 1]}, title="T", x_label="load",
                            y_label="miss ratio")
        assert text.splitlines()[0] == "T"
        assert "load" in text
        assert "miss ratio" in text

    def test_nan_points_skipped(self):
        text = render_chart([0, 1, 2], {"s": [0.0, math.nan, 1.0]})
        assert text.count("o") >= 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_chart([0, 1], {"s": [1.0]})

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            render_chart([0], {})

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError):
            render_chart([0, 1], {"s": [math.nan, math.nan]})

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            render_chart([0, 1], {"s": [0, 1]}, width=4, height=2)

    def test_too_many_series_rejected(self):
        series = {f"s{i}": [0, 1] for i in range(9)}
        with pytest.raises(ValueError):
            render_chart([0, 1], series)

    def test_constant_series_plot(self):
        text = render_chart([0, 1, 2], {"s": [0.5, 0.5, 0.5]})
        assert "o" in text


class TestFormatPercent:
    def test_basic(self):
        assert format_percent(0.237) == "23.7%"

    def test_zero(self):
        assert format_percent(0.0) == "0.0%"

    def test_nan(self):
        assert format_percent(math.nan) == "-"
