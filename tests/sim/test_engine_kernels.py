"""Engine-kernel contract tests, parametrized over implementations.

The compile-ready split put the kernel's hot loop into
``repro.sim._engine`` with an optional compiled twin
(``repro.sim._engine_c``, built by ``setup.py`` when a toolchain is
available).  Both are one source file and must behave identically; these
tests pin the event-ordering contract on every importable
implementation, skipping the compiled leg cleanly when the extension
was never built.

The second half pins :meth:`Environment.step` as the faithful reference
implementation of the inlined run loop: a manually stepped, traced
simulation must match ``run()`` event for event and metric for metric.
"""

from __future__ import annotations

import importlib

import pytest

from repro.sim.errors import EventLifecycleError, SimulationError


def _engine_implementations():
    """(param-id, module) pairs for every importable engine."""
    impls = [("python", importlib.import_module("repro.sim._engine"))]
    try:
        compiled = importlib.import_module("repro.sim._engine_c")
    except ImportError:
        compiled = None
    if compiled is not None and not (
        (getattr(compiled, "__file__", None) or "").endswith((".py", ".pyc"))
    ):
        impls.append(("compiled", compiled))
    return impls


_IMPLS = _engine_implementations()


@pytest.fixture(
    params=[impl for _, impl in _IMPLS],
    ids=[name for name, _ in _IMPLS],
)
def engine(request):
    """One engine implementation module (pure Python, and compiled when
    built).  The compiled leg simply does not appear when absent --
    pytest reports it neither failed nor errored, per the fallback
    contract."""
    return request.param


class TestEventOrdering:
    def test_time_order(self, engine):
        env = engine.Environment()
        order = []
        for delay in (5.0, 1.0, 3.0, 2.0, 4.0):
            env.timeout(delay, value=delay).callbacks.append(
                lambda e: order.append(e.value)
            )
        env.run()
        assert order == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_fifo_among_simultaneous(self, engine):
        env = engine.Environment()
        order = []
        for tag in "abcde":
            env.timeout(1.0, value=tag).callbacks.append(
                lambda e: order.append(e.value)
            )
        env.run()
        assert order == list("abcde")

    def test_urgent_calls_run_before_normal_events_at_same_time(self, engine):
        """An urgent ``_schedule_call`` issued while dispatching an event
        must run before every already-scheduled normal event at the same
        timestamp -- the deque bypass must be order-equivalent to the old
        ``(time, URGENT, seq)`` heap entries."""
        env = engine.Environment()
        order = []
        first = env.timeout(1.0)
        env.timeout(1.0, value="normal-later").callbacks.append(
            lambda e: order.append(e.value)
        )

        def schedule_urgent(_event):
            env._schedule_call(lambda e: order.append("urgent"))

        first.callbacks.append(schedule_urgent)
        env.run()
        assert order == ["urgent", "normal-later"]

    def test_urgent_calls_are_fifo(self, engine):
        env = engine.Environment()
        order = []
        env._schedule_call(lambda e: order.append(1))
        env._schedule_call(lambda e: order.append(2))
        env._schedule_call(lambda e: order.append(3))
        env.run()
        assert order == [1, 2, 3]

    def test_normal_schedule_call_keeps_heap_fifo(self, engine):
        """NORMAL-priority calls interleave with other normal events by
        schedule order (they consume sequence keys)."""
        env = engine.Environment()
        order = []
        env.timeout(0.0, value="t1").callbacks.append(
            lambda e: order.append(e.value)
        )
        env._schedule_call(
            lambda e: order.append("call"), priority=engine.NORMAL
        )
        env.timeout(0.0, value="t2").callbacks.append(
            lambda e: order.append(e.value)
        )
        env.run()
        assert order == ["t1", "call", "t2"]

    def test_run_until_horizon(self, engine):
        env = engine.Environment()
        fired = []
        env.timeout(20.0).callbacks.append(lambda e: fired.append(env.now))
        env.run(until=10.0)
        assert fired == []
        assert env.now == 10.0
        env.run(until=30.0)
        assert fired == [20.0]
        assert env.now == 30.0

    def test_event_at_horizon_instant_runs(self, engine):
        env = engine.Environment()
        fired = []
        env.timeout(10.0).callbacks.append(lambda e: fired.append(env.now))
        env.run(until=10.0)
        assert fired == [10.0]

    def test_run_until_event(self, engine):
        env = engine.Environment()
        event = env.timeout(4.0, value="done")
        assert env.run(until=event) == "done"
        assert env.now == 4.0

    def test_user_stop_inside_timed_run_withdraws_horizon(self, engine):
        """A StopSimulation raised by user code during ``run(until=t)``
        must not leave the horizon sentinel behind: a later run past
        ``t`` keeps going."""
        from repro.sim.errors import StopSimulation

        env = engine.Environment()

        def stopper(_event):
            raise StopSimulation("early")

        env.timeout(1.0).callbacks.append(stopper)
        fired = []
        env.timeout(5.0).callbacks.append(lambda e: fired.append(env.now))
        assert env.run(until=10.0) == "early"
        env.run(until=20.0)
        assert fired == [5.0]
        assert env.now == 20.0

    def test_sleep_pooling_and_cancel(self, engine):
        env = engine.Environment()
        fired = []
        sleep = env._sleep(2.0, lambda e: fired.append(env.now))
        env.run(until=3.0)
        assert fired == [2.0]
        assert sleep in env._sleep_pool
        with pytest.raises(EventLifecycleError):
            sleep.cancel()
        again = env._sleep(1.0, lambda e: fired.append(env.now))
        assert again is sleep
        again.cancel()
        env.run(until=5.0)
        assert fired == [2.0]
        assert sleep in env._sleep_pool

    def test_peek_and_step(self, engine):
        env = engine.Environment()
        assert env.peek() == float("inf")
        env.timeout(9.0)
        env.timeout(2.0)
        assert env.peek() == 2.0
        env.step()
        assert env.now == 2.0
        env._schedule_call(lambda e: None)
        assert env.peek() == env.now  # urgent call is due immediately
        env.step()
        env.step()
        assert env.now == 9.0
        with pytest.raises(SimulationError):
            env.step()

    def test_run_until_pooled_sleep_is_rejected(self, engine):
        """A pooled sleep is recycled at expiry, so waiting on one is
        always a bug -- the kernel fails loudly instead of returning
        instantly (pending sleeps carry no callback list)."""
        env = engine.Environment()
        sleep = env._sleep(5.0, lambda e: None)
        with pytest.raises(SimulationError, match="pooled kernel sleep"):
            env.run(until=sleep)

    def test_condition_over_pooled_sleep_is_rejected(self, engine):
        from repro.sim.core import Environment as SelectedEnvironment

        if engine.Environment is not SelectedEnvironment:
            pytest.skip("conditions are bound to the selected kernel")
        env = engine.Environment()
        sleep = env._sleep(5.0, lambda e: None)
        with pytest.raises(SimulationError, match="pooled kernel sleep"):
            env.all_of([sleep, env.timeout(1.0)])

    def test_process_yielding_pooled_sleep_fails_loudly(self, engine):
        from repro.sim.core import Environment as SelectedEnvironment
        from repro.sim.errors import ProcessError

        if engine.Environment is not SelectedEnvironment:
            pytest.skip("Process is bound to the selected kernel")
        env = engine.Environment()
        failures = []

        def sleeper(env):
            try:
                yield env._sleep(5.0, lambda e: None)
            except ProcessError as exc:
                failures.append(exc)

        env.process(sleeper(env))
        env.run()
        assert len(failures) == 1
        assert "pooled kernel sleep" in str(failures[0])

    def test_failed_event_crashes_unless_defused(self, engine):
        env = engine.Environment()
        env.event().fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            env.run()
        env2 = engine.Environment()
        env2.event().fail(RuntimeError("ok")).defuse()
        env2.run()


class TestStepMatchesRunLoop:
    """``Environment.step()`` is the reference implementation of one run
    loop iteration; a stepped, traced simulation must reproduce the
    inlined loop event for event (same trace) and bit for bit (same
    RunResult)."""

    CONFIGS = [
        dict(seed=42),
        dict(seed=13, preemptive=True, strategy="EQF"),
    ]

    @pytest.mark.parametrize("overrides", CONFIGS)
    def test_stepped_equals_run(self, overrides):
        from repro.system.config import baseline_config
        from repro.system.simulation import Simulation

        config = baseline_config(
            sim_time=600.0, warmup_time=60.0, trace=True, **overrides
        )

        reference = Simulation(config)
        reference_result = reference.run()

        stepped = Simulation(config)
        env = stepped.env
        for horizon, at_end in (
            (config.warmup_time, stepped.metrics.reset),
            (config.sim_time, None),
        ):
            while env.peek() <= horizon:
                env.step()
            if env.now < horizon:
                env._now = horizon  # run(until=t) advances the clock too
            if at_end is not None:
                at_end(env.now)
        stepped_result = stepped.metrics.snapshot(env.now)

        def key(event):
            # Everything but unit_name: the lazy display name embeds the
            # process-global unit id, which keeps counting across the two
            # back-to-back simulations (the ordering-relevant identity --
            # time, kind, node, class, deadline -- is all here).
            return (
                event.time, event.kind, event.node_index,
                event.task_class, event.deadline,
            )

        assert (
            [key(e) for e in stepped.trace_log.events]
            == [key(e) for e in reference.trace_log.events]
        )
        assert stepped_result == reference_result