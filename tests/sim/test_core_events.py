"""Unit tests for the event lifecycle (repro.sim.core)."""

from __future__ import annotations

import pytest

from repro.sim.core import AllOf, AnyOf, ConditionValue, Environment, Event, Timeout
from repro.sim.errors import EventLifecycleError, SimulationError


class TestEventLifecycle:
    def test_new_event_is_pending(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_value_before_trigger_raises(self, env):
        event = env.event()
        with pytest.raises(EventLifecycleError):
            _ = event.value

    def test_ok_before_trigger_raises(self, env):
        event = env.event()
        with pytest.raises(EventLifecycleError):
            _ = event.ok

    def test_succeed_sets_value(self, env):
        event = env.event().succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_succeed_with_none_value_still_triggered(self, env):
        event = env.event().succeed()
        assert event.triggered
        assert event.value is None

    def test_double_succeed_raises(self, env):
        event = env.event().succeed(1)
        with pytest.raises(EventLifecycleError):
            event.succeed(2)

    def test_fail_then_succeed_raises(self, env):
        event = env.event().fail(RuntimeError("boom"))
        event.defuse()
        with pytest.raises(EventLifecycleError):
            event.succeed(1)

    def test_fail_requires_exception(self, env):
        event = env.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")  # type: ignore[arg-type]

    def test_fail_stores_exception(self, env):
        error = ValueError("bad")
        event = env.event().fail(error)
        event.defuse()
        assert not event.ok
        assert event.value is error

    def test_undefused_failure_crashes_run(self, env):
        env.event().fail(RuntimeError("unhandled"))
        with pytest.raises(RuntimeError, match="unhandled"):
            env.run()

    def test_defused_failure_does_not_crash_run(self, env):
        event = env.event().fail(RuntimeError("handled"))
        event.defuse()
        env.run()  # must not raise

    def test_callbacks_run_on_processing(self, env):
        event = env.event()
        seen = []
        event.callbacks.append(lambda e: seen.append(e.value))
        event.succeed("payload")
        env.run()
        assert seen == ["payload"]
        assert event.processed

    def test_repr_shows_state(self, env):
        event = env.event()
        assert "pending" in repr(event)
        event.succeed()
        assert "triggered" in repr(event)
        env.run()
        assert "processed" in repr(event)


class TestTimeout:
    def test_timeout_fires_after_delay(self, env):
        times = []
        event = env.timeout(5.5)
        event.callbacks.append(lambda e: times.append(env.now))
        env.run()
        assert times == [5.5]

    def test_timeout_carries_value(self, env):
        event = env.timeout(1.0, value="tick")
        env.run()
        assert event.value == "tick"

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-0.1)

    def test_zero_delay_fires_at_current_time(self, env):
        event = env.timeout(0.0)
        env.run()
        assert event.processed
        assert env.now == 0.0


class TestConditions:
    def test_all_of_waits_for_all(self, env):
        a, b = env.timeout(1, value="a"), env.timeout(3, value="b")
        joined = env.all_of([a, b])
        env.run(until=joined)
        assert env.now == 3

    def test_any_of_fires_on_first(self, env):
        a, b = env.timeout(1, value="a"), env.timeout(3, value="b")
        either = env.any_of([a, b])
        env.run(until=either)
        assert env.now == 1

    def test_all_of_value_maps_events(self, env):
        a, b = env.timeout(1, value="a"), env.timeout(2, value="b")
        joined = env.all_of([a, b])
        env.run()
        value = joined.value
        assert isinstance(value, ConditionValue)
        assert value[a] == "a"
        assert value[b] == "b"
        assert value.todict() == {a: "a", b: "b"}

    def test_condition_value_len_and_iter(self, env):
        a, b = env.timeout(1), env.timeout(2)
        joined = env.all_of([a, b])
        env.run()
        assert len(joined.value) == 2
        assert list(joined.value) == [a, b]

    def test_condition_value_missing_event_raises(self, env):
        a = env.timeout(1)
        other = env.timeout(2)
        joined = env.all_of([a])
        env.run()
        with pytest.raises(KeyError):
            joined.value[other]

    def test_empty_all_of_fires_immediately(self, env):
        joined = env.all_of([])
        assert joined.triggered
        env.run()
        assert len(joined.value) == 0

    def test_operator_and(self, env):
        a, b = env.timeout(1), env.timeout(2)
        both = a & b
        assert isinstance(both, AllOf)
        env.run(until=both)
        assert env.now == 2

    def test_operator_or(self, env):
        a, b = env.timeout(1), env.timeout(2)
        either = a | b
        assert isinstance(either, AnyOf)
        env.run(until=either)
        assert env.now == 1

    def test_all_of_with_already_processed_event(self, env):
        a = env.timeout(1)
        env.run()
        b = env.timeout(1)
        joined = env.all_of([a, b])
        env.run(until=joined)
        assert joined.value[a] == a.value

    def test_failed_member_fails_condition(self, env):
        def failer(env):
            yield env.timeout(1)
            raise RuntimeError("branch died")

        proc = env.process(failer(env))
        other = env.timeout(5)
        joined = env.all_of([proc, other])
        joined.defuse()
        env.run(until=10)
        assert joined.triggered
        assert not joined.ok
        assert isinstance(joined.value, RuntimeError)

    def test_cross_environment_events_rejected(self, env):
        other_env = Environment()
        a = env.timeout(1)
        b = other_env.timeout(1)
        with pytest.raises(SimulationError):
            env.all_of([a, b])


class TestCancellableSleep:
    """The kernel's cancellable-timer primitive: ``_Sleep.cancel()``.

    Preemptive servers schedule a completion timer per dispatch and must
    be able to revoke it without firing its callbacks (and without
    leaking the pooled object or corrupting a later reuse of it).
    """

    def test_cancelled_sleep_never_fires_callback(self, env):
        fired = []
        sleep = env._sleep(5.0, lambda event: fired.append(event))
        sleep.cancel()
        env.run(until=10.0)
        assert fired == []

    def test_cancelled_sleep_returns_to_pool_at_expiry(self, env):
        sleep = env._sleep(5.0, lambda event: None)
        sleep.cancel()
        assert sleep not in env._sleep_pool  # still parked in the heap
        env.run(until=10.0)
        assert sleep in env._sleep_pool

    def test_cancel_then_resleep_uses_a_fresh_object(self, env):
        """Until its stale heap entry pops, a cancelled sleep must NOT be
        reused -- a second heap entry for the same object would fire the
        new owner's callback at the old expiry."""
        fired = []
        first = env._sleep(5.0, lambda event: None)
        first.cancel()
        second = env._sleep(1.0, lambda event: fired.append(env.now))
        assert second is not first
        env.run(until=10.0)
        assert fired == [1.0]

    def test_recycled_after_cancellation_fires_normally(self, env):
        """Once recycled through the pool, a previously cancelled object
        serves later sleeps exactly like a fresh one."""
        first = env._sleep(2.0, lambda event: None)
        first.cancel()
        env.run(until=3.0)  # stale entry pops; object returns to the pool
        assert first in env._sleep_pool

        fired = []
        reused = env._sleep(4.0, lambda event: fired.append(env.now))
        assert reused is first
        env.run(until=10.0)
        assert fired == [7.0]

    def test_cancel_processed_sleep_raises(self, env):
        sleep = env._sleep(1.0, lambda event: None)
        env.run(until=2.0)
        with pytest.raises(EventLifecycleError):
            sleep.cancel()

    def test_cancellation_does_not_disturb_other_events(self, env):
        order = []
        env._sleep(3.0, lambda event: order.append("keep"))
        victim = env._sleep(1.0, lambda event: order.append("victim"))
        late = env.timeout(5.0)
        late.callbacks.append(lambda event: order.append("late"))
        victim.cancel()
        env.run(until=10.0)
        assert order == ["keep", "late"]

    def test_cancel_at_expiry_instant_is_honored(self, env):
        """Cancelling at the very instant the sleep expires (same time,
        earlier event) still suppresses the callback -- the preemption
        boundary case where a preemption lands at the completion
        instant."""
        fired = []
        # The trigger is created first, so at t=1.0 it is processed
        # before the sleep (same time, smaller sequence key).
        trigger = env.timeout(1.0)
        sleep = env._sleep(1.0, lambda event: fired.append(event))
        trigger.callbacks.append(lambda event: sleep.cancel())
        env.run(until=2.0)
        assert fired == []
        assert sleep in env._sleep_pool
