"""Unit tests for the monitors (repro.sim.monitor)."""

from __future__ import annotations

import math
import statistics

import pytest

from repro.sim.monitor import (
    DecayedMean,
    DecayedRate,
    MeanTally,
    Series,
    Tally,
    TimeWeighted,
)


class TestTally:
    def test_empty_tally(self):
        tally = Tally("t")
        assert tally.count == 0
        assert math.isnan(tally.mean)
        assert math.isnan(tally.variance)

    def test_single_observation(self):
        tally = Tally()
        tally.observe(5.0)
        assert tally.count == 1
        assert tally.mean == 5.0
        assert math.isnan(tally.variance)  # undefined with one point
        assert tally.min == tally.max == 5.0

    def test_mean_and_variance_match_statistics_module(self):
        values = [3.1, -2.0, 5.5, 0.0, 7.25, 1.125]
        tally = Tally()
        for v in values:
            tally.observe(v)
        assert tally.mean == pytest.approx(statistics.fmean(values))
        assert tally.variance == pytest.approx(statistics.variance(values))
        assert tally.stdev == pytest.approx(statistics.stdev(values))

    def test_total_min_max(self):
        tally = Tally()
        for v in (2.0, -1.0, 4.0):
            tally.observe(v)
        assert tally.total == 5.0
        assert tally.min == -1.0
        assert tally.max == 4.0

    def test_reset_clears_everything(self):
        tally = Tally()
        tally.observe(1.0)
        tally.reset()
        assert tally.count == 0
        assert math.isnan(tally.mean)
        assert tally.total == 0.0

    def test_merge_matches_pooled_statistics(self):
        xs = [1.0, 2.0, 3.0]
        ys = [10.0, 20.0, 30.0, 40.0]
        a, b = Tally(), Tally()
        for x in xs:
            a.observe(x)
        for y in ys:
            b.observe(y)
        a.merge(b)
        pooled = xs + ys
        assert a.count == len(pooled)
        assert a.mean == pytest.approx(statistics.fmean(pooled))
        assert a.variance == pytest.approx(statistics.variance(pooled))
        assert a.min == 1.0
        assert a.max == 40.0

    def test_merge_empty_into_full(self):
        a, b = Tally(), Tally()
        a.observe(3.0)
        a.merge(b)
        assert a.count == 1
        assert a.mean == 3.0

    def test_merge_full_into_empty(self):
        a, b = Tally(), Tally()
        b.observe(3.0)
        b.observe(5.0)
        a.merge(b)
        assert a.count == 2
        assert a.mean == 4.0

    def test_repr(self):
        tally = Tally("demo")
        tally.observe(1.0)
        tally.observe(2.0)
        assert "demo" in repr(tally)


class TestTimeWeighted:
    def test_piecewise_constant_mean(self):
        signal = TimeWeighted(initial=0.0, start_time=0.0)
        signal.update(1.0, now=2.0)   # 0 over [0, 2)
        signal.update(0.0, now=5.0)   # 1 over [2, 5)
        assert signal.mean_at(10.0) == pytest.approx(0.3)

    def test_value_tracks_updates(self):
        signal = TimeWeighted(initial=2.0)
        signal.update(7.0, now=1.0)
        assert signal.value == 7.0

    def test_increment(self):
        signal = TimeWeighted(initial=0.0)
        signal.increment(+1, now=1.0)
        signal.increment(+1, now=2.0)
        signal.increment(-1, now=3.0)
        assert signal.value == 1.0
        # area: 0*1 + 1*1 + 2*1 = 3 over [0, 3]
        assert signal.mean_at(3.0) == pytest.approx(1.0)

    def test_min_max(self):
        signal = TimeWeighted(initial=5.0)
        signal.update(2.0, now=1.0)
        signal.update(9.0, now=2.0)
        assert signal.min == 2.0
        assert signal.max == 9.0

    def test_time_backwards_rejected(self):
        signal = TimeWeighted()
        signal.update(1.0, now=5.0)
        with pytest.raises(ValueError):
            signal.update(2.0, now=4.0)

    def test_mean_before_start_is_nan(self):
        signal = TimeWeighted(start_time=10.0)
        assert math.isnan(signal.mean_at(10.0))

    def test_reset_restarts_accumulation(self):
        signal = TimeWeighted(initial=0.0)
        signal.update(1.0, now=10.0)
        signal.reset(now=10.0)
        # Value (1.0) persists; history does not.
        assert signal.value == 1.0
        assert signal.mean_at(20.0) == pytest.approx(1.0)

    def test_busy_fraction_usage(self):
        """The utilization idiom used by Node."""
        busy = TimeWeighted(initial=0.0)
        busy.update(1, now=1.0)   # serve [1, 3)
        busy.update(0, now=3.0)
        busy.update(1, now=4.0)   # serve [4, 5)
        busy.update(0, now=5.0)
        assert busy.mean_at(10.0) == pytest.approx(0.3)


class TestSeries:
    def test_records_pairs(self):
        series = Series("s")
        series.record(1.0, 10.0)
        series.record(2.0, 20.0)
        assert series.times == [1.0, 2.0]
        assert series.values == [10.0, 20.0]
        assert len(series) == 2

    def test_limit_truncates(self):
        series = Series("s", limit=2)
        for i in range(5):
            series.record(float(i), float(i))
        assert len(series) == 2

    def test_repr(self):
        assert "n=0" in repr(Series("x"))


class TestDecayedMean:
    def test_empty_is_nan(self):
        assert math.isnan(DecayedMean(tau=10.0).value)

    def test_single_observation_is_exact(self):
        mean = DecayedMean(tau=10.0)
        mean.observe(4.0, now=1.0)
        assert mean.value == 4.0

    def test_simultaneous_observations_average_plainly(self):
        mean = DecayedMean(tau=10.0)
        mean.observe(2.0, now=1.0)
        mean.observe(4.0, now=1.0)
        assert mean.value == pytest.approx(3.0)

    def test_recent_regime_dominates(self):
        mean = DecayedMean(tau=5.0)
        for t in range(100):
            mean.observe(0.0, now=float(t))
        for t in range(100, 160):
            mean.observe(10.0, now=float(t))
        # 60 time units = 12 tau after the regime change: old zeros are gone.
        assert mean.value > 9.9

    def test_mean_invariant_under_pure_decay(self):
        mean = DecayedMean(tau=2.0)
        mean.observe(7.0, now=0.0)
        # A long silence shrinks the weight but not the mean itself.
        assert mean.weight_at(100.0) < 1e-10
        assert mean.value == 7.0

    def test_weight_decays_exponentially(self):
        mean = DecayedMean(tau=10.0)
        mean.observe(1.0, now=0.0)
        assert mean.weight_at(10.0) == pytest.approx(math.exp(-1.0))

    def test_time_backwards_rejected(self):
        mean = DecayedMean(tau=1.0)
        mean.observe(1.0, now=5.0)
        with pytest.raises(ValueError):
            mean.observe(1.0, now=4.0)

    def test_reset_forgets(self):
        mean = DecayedMean(tau=1.0)
        mean.observe(3.0, now=1.0)
        mean.reset(now=2.0)
        assert math.isnan(mean.value)

    def test_rejects_nonpositive_tau(self):
        with pytest.raises(ValueError):
            DecayedMean(tau=0.0)


class TestDecayedRate:
    def test_empty_rate_is_zero(self):
        assert DecayedRate(tau=10.0).rate_at(5.0) == 0.0

    def test_steady_stream_converges_to_true_rate(self):
        # Deterministic rate-2 stream: one tick every 0.5 time units.
        rate = DecayedRate(tau=10.0)
        t = 0.0
        for _ in range(400):
            t += 0.5
            rate.tick(t)
        assert rate.rate_at(t) == pytest.approx(2.0, rel=0.06)

    def test_rate_decays_after_stream_stops(self):
        rate = DecayedRate(tau=5.0)
        for t in range(1, 100):
            rate.tick(float(t))
        at_stop = rate.rate_at(99.0)
        assert rate.rate_at(99.0 + 5.0) == pytest.approx(
            at_stop * math.exp(-1.0)
        )

    def test_weighted_ticks(self):
        a = DecayedRate(tau=10.0)
        b = DecayedRate(tau=10.0)
        a.tick(1.0, weight=3.0)
        for _ in range(3):
            b.tick(1.0)
        assert a.rate_at(2.0) == b.rate_at(2.0)

    def test_time_backwards_rejected(self):
        rate = DecayedRate(tau=1.0)
        rate.tick(5.0)
        with pytest.raises(ValueError):
            rate.tick(4.0)

    def test_reset_forgets(self):
        rate = DecayedRate(tau=1.0)
        rate.tick(1.0)
        rate.reset(now=2.0)
        assert rate.rate_at(3.0) == 0.0

    def test_rejects_nonpositive_tau(self):
        with pytest.raises(ValueError):
            DecayedRate(tau=-1.0)


class TestMeanTallyStillMatchesTally:
    def test_mean_bit_identical_to_tally(self):
        tally = Tally("t")
        mean = MeanTally("m")
        values = [1.5, -2.25, 7.0, 0.125, 3.875, 2.0]
        for value in values:
            tally.observe(value)
            mean.observe(value)
        assert mean.mean == tally.mean
