"""Unit tests for named random streams (repro.sim.rng)."""

from __future__ import annotations

from repro.sim.rng import StreamFactory


class TestStreamFactory:
    def test_same_name_returns_same_stream(self):
        factory = StreamFactory(seed=1)
        assert factory.get("a") is factory.get("a")

    def test_same_seed_same_sequences(self):
        f1, f2 = StreamFactory(seed=9), StreamFactory(seed=9)
        xs = [f1.get("arrivals").random() for _ in range(20)]
        ys = [f2.get("arrivals").random() for _ in range(20)]
        assert xs == ys

    def test_different_names_give_different_sequences(self):
        factory = StreamFactory(seed=3)
        xs = [factory.get("a").random() for _ in range(10)]
        ys = [factory.get("b").random() for _ in range(10)]
        assert xs != ys

    def test_different_seeds_give_different_sequences(self):
        xs = [StreamFactory(seed=1).get("a").random() for _ in range(10)]
        ys = [StreamFactory(seed=2).get("a").random() for _ in range(10)]
        assert xs != ys

    def test_stream_isolation(self):
        """Consuming one stream must not perturb another."""
        factory = StreamFactory(seed=7)
        reference = StreamFactory(seed=7)
        expected = [reference.get("b").random() for _ in range(5)]
        for _ in range(1000):
            factory.get("a").random()  # heavy use of an unrelated stream
        actual = [factory.get("b").random() for _ in range(5)]
        assert actual == expected

    def test_spawn_namespaces_streams(self):
        factory = StreamFactory(seed=5)
        child1 = factory.spawn("rep-1")
        child2 = factory.spawn("rep-2")
        xs = [child1.get("a").random() for _ in range(10)]
        ys = [child2.get("a").random() for _ in range(10)]
        assert xs != ys

    def test_spawn_is_reproducible(self):
        a = StreamFactory(seed=5).spawn("rep-1").get("x").random()
        b = StreamFactory(seed=5).spawn("rep-1").get("x").random()
        assert a == b

    def test_names_lists_created_streams(self):
        factory = StreamFactory(seed=0)
        factory.get("one")
        factory.get("two")
        assert sorted(factory.names()) == ["one", "two"]

    def test_repr_mentions_seed(self):
        assert "seed=11" in repr(StreamFactory(seed=11))
