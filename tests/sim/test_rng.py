"""Unit tests for named random streams (repro.sim.rng)."""

from __future__ import annotations

from repro.sim.rng import StreamFactory


class TestStreamFactory:
    def test_same_name_returns_same_stream(self):
        factory = StreamFactory(seed=1)
        assert factory.get("a") is factory.get("a")

    def test_same_seed_same_sequences(self):
        f1, f2 = StreamFactory(seed=9), StreamFactory(seed=9)
        xs = [f1.get("arrivals").random() for _ in range(20)]
        ys = [f2.get("arrivals").random() for _ in range(20)]
        assert xs == ys

    def test_different_names_give_different_sequences(self):
        factory = StreamFactory(seed=3)
        xs = [factory.get("a").random() for _ in range(10)]
        ys = [factory.get("b").random() for _ in range(10)]
        assert xs != ys

    def test_different_seeds_give_different_sequences(self):
        xs = [StreamFactory(seed=1).get("a").random() for _ in range(10)]
        ys = [StreamFactory(seed=2).get("a").random() for _ in range(10)]
        assert xs != ys

    def test_stream_isolation(self):
        """Consuming one stream must not perturb another."""
        factory = StreamFactory(seed=7)
        reference = StreamFactory(seed=7)
        expected = [reference.get("b").random() for _ in range(5)]
        for _ in range(1000):
            factory.get("a").random()  # heavy use of an unrelated stream
        actual = [factory.get("b").random() for _ in range(5)]
        assert actual == expected

    def test_spawn_namespaces_streams(self):
        factory = StreamFactory(seed=5)
        child1 = factory.spawn("rep-1")
        child2 = factory.spawn("rep-2")
        xs = [child1.get("a").random() for _ in range(10)]
        ys = [child2.get("a").random() for _ in range(10)]
        assert xs != ys

    def test_spawn_is_reproducible(self):
        a = StreamFactory(seed=5).spawn("rep-1").get("x").random()
        b = StreamFactory(seed=5).spawn("rep-1").get("x").random()
        assert a == b

    def test_names_lists_created_streams(self):
        factory = StreamFactory(seed=0)
        factory.get("one")
        factory.get("two")
        assert sorted(factory.names()) == ["one", "two"]

    def test_repr_mentions_seed(self):
        assert "seed=11" in repr(StreamFactory(seed=11))

    def test_spawn_same_name_returns_same_child(self):
        factory = StreamFactory(seed=5)
        assert factory.spawn("rep-1") is factory.spawn("rep-1")


class TestStreamFactoryStateRoundtrip:
    """getstate/setstate must capture every stream's exact Mersenne
    position (the checkpoint subsystem rides on this)."""

    def test_all_streams_resume_exactly(self):
        factory = StreamFactory(seed=31)
        # Streams at different positions, created in a specific order.
        for name, draws in (("a", 3), ("b", 17), ("c", 0)):
            stream = factory.get(name)
            for _ in range(draws):
                stream.random()
        state = factory.getstate()

        expected = {
            name: [factory.get(name).random() for _ in range(5)]
            for name in ("a", "b", "c")
        }
        restored = StreamFactory(seed=31)
        restored.setstate(state)
        actual = {
            name: [restored.get(name).random() for _ in range(5)]
            for name in ("a", "b", "c")
        }
        assert actual == expected

    def test_restore_is_creation_order_independent(self):
        """A factory whose streams were first touched in a different
        order must still restore every stream's position by name."""
        factory = StreamFactory(seed=31)
        for name in ("a", "b", "c"):
            factory.get(name).random()
        state = factory.getstate()
        expected = {
            name: factory.get(name).random() for name in ("a", "b", "c")
        }

        restored = StreamFactory(seed=31)
        for name in ("c", "a", "b"):  # different creation order
            restored.get(name)
        restored.setstate(state)
        actual = {
            name: restored.get(name).random() for name in ("a", "b", "c")
        }
        assert actual == expected

    def test_spawned_children_roundtrip(self):
        factory = StreamFactory(seed=9)
        factory.get("top").random()
        child = factory.spawn("rep-1")
        child.get("inner").random()
        child.get("inner").random()
        state = factory.getstate()
        expected = (
            factory.get("top").random(),
            factory.spawn("rep-1").get("inner").random(),
        )

        restored = StreamFactory(seed=9)
        restored.setstate(state)
        actual = (
            restored.get("top").random(),
            restored.spawn("rep-1").get("inner").random(),
        )
        assert actual == expected

    def test_seed_mismatch_is_rejected(self):
        import pytest

        state = StreamFactory(seed=1).getstate()
        with pytest.raises(ValueError, match="seed"):
            StreamFactory(seed=2).setstate(state)

    def test_untouched_restore_equals_fresh_factory(self):
        """Restoring a virgin factory's state is a no-op: draws match a
        fresh factory with the same seed."""
        state = StreamFactory(seed=4).getstate()
        restored = StreamFactory(seed=4)
        restored.setstate(state)
        assert (
            restored.get("x").random()
            == StreamFactory(seed=4).get("x").random()
        )
