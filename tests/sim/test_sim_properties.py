"""Property-based tests of kernel invariants (hypothesis)."""

from __future__ import annotations

import statistics

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.core import Environment
from repro.sim.monitor import Tally, TimeWeighted

delays = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=60,
)

values = st.lists(
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False),
    min_size=2,
    max_size=80,
)


@given(delays)
def test_events_always_fire_in_nondecreasing_time_order(ds):
    env = Environment()
    fired = []
    for d in ds:
        event = env.timeout(d)
        event.callbacks.append(lambda e: fired.append(env.now))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(ds)


@given(delays)
def test_run_until_horizon_never_overshoots(ds):
    env = Environment()
    for d in ds:
        env.timeout(d)
    horizon = max(ds) / 2 if max(ds) > 0 else 1.0
    env.run(until=horizon)
    assert env.now == horizon


@given(st.lists(st.text(alphabet="abc", min_size=1, max_size=3), min_size=1, max_size=30))
def test_simultaneous_events_fire_fifo(tags):
    env = Environment()
    fired = []
    for tag in tags:
        event = env.timeout(1.0, value=tag)
        event.callbacks.append(lambda e: fired.append(e.value))
    env.run()
    assert fired == tags


@given(values)
def test_tally_matches_statistics_module(xs):
    tally = Tally()
    for x in xs:
        tally.observe(x)
    assert tally.count == len(xs)
    assert tally.mean == pytest_approx(statistics.fmean(xs))
    assert tally.variance == pytest_approx(statistics.variance(xs))
    assert tally.min == min(xs)
    assert tally.max == max(xs)


@given(values, values)
def test_tally_merge_equals_pooled(xs, ys):
    a, b, pooled = Tally(), Tally(), Tally()
    for x in xs:
        a.observe(x)
        pooled.observe(x)
    for y in ys:
        b.observe(y)
        pooled.observe(y)
    a.merge(b)
    assert a.count == pooled.count
    assert a.mean == pytest_approx(pooled.mean)
    assert a.variance == pytest_approx(pooled.variance, abs_tol=1e-6)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.001, max_value=100.0, allow_nan=False),
            st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=60)
def test_time_weighted_mean_matches_manual_integration(steps):
    """The streaming time-weighted mean equals the explicit integral."""
    signal = TimeWeighted(initial=0.0, start_time=0.0)
    now = 0.0
    area = 0.0
    value = 0.0
    for dt, new_value in steps:
        area += value * dt
        now += dt
        signal.update(new_value, now=now)
        value = new_value
    horizon = now + 1.0
    area += value * 1.0
    assert signal.mean_at(horizon) == pytest_approx(area / horizon, abs_tol=1e-6)


def pytest_approx(expected, rel_tol=1e-9, abs_tol=1e-9):
    """Local approx helper tolerant of large magnitudes."""
    import pytest

    return pytest.approx(expected, rel=max(rel_tol, 1e-9), abs=abs_tol)
