"""P² quantile sketch: accuracy against exact quantiles, and state safety.

The pinned tolerances here are the contract the metrics layer relies on:
adversarial orderings (sorted, reverse-sorted) and nasty shapes (constant,
bimodal, heavy-tail Pareto) must stay within a usable distance of the
exact sorted-list quantile, and pickling must round-trip the internal
state bit for bit (checkpoints depend on it).
"""

import math
import pickle

import pytest

from repro.sim.distributions import Pareto
from repro.sim.rng import StreamFactory
from repro.sim.sketch import CHUNK, DEFAULT_QUANTILES, QuantileSketch


def exact_quantile(values, p):
    """Nearest-rank quantile of a finite sample (the sketch's ground truth)."""
    ordered = sorted(values)
    rank = math.ceil(p * len(ordered)) - 1
    return ordered[max(0, min(len(ordered) - 1, rank))]


def feed(values, probs=DEFAULT_QUANTILES):
    sketch = QuantileSketch(probs=probs)
    for value in values:
        sketch.observe(value)
    return sketch


def uniform_stream(n, seed=1):
    rng = StreamFactory(seed).get("sketch-test")
    return [rng.random() * 100.0 for _ in range(n)]


class TestConstruction:
    def test_needs_at_least_one_probability(self):
        with pytest.raises(ValueError):
            QuantileSketch(probs=())

    def test_rejects_out_of_range_probability(self):
        with pytest.raises(ValueError):
            QuantileSketch(probs=(0.5, 1.0))
        with pytest.raises(ValueError):
            QuantileSketch(probs=(0.0,))

    def test_untracked_quantile_raises_key_error(self):
        sketch = feed([1.0, 2.0, 3.0])
        with pytest.raises(KeyError):
            sketch.quantile(0.25)


class TestSmallStreams:
    def test_empty_is_nan(self):
        sketch = QuantileSketch()
        assert math.isnan(sketch.quantile(0.5))
        assert all(math.isnan(v) for v in sketch.estimates())

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_exact_up_to_five_observations(self, n):
        values = [9.0, 1.0, 7.0, 3.0, 5.0][:n]
        sketch = feed(values)
        for p in DEFAULT_QUANTILES:
            assert sketch.quantile(p) == exact_quantile(values, p)

    def test_observation_order_irrelevant_below_marker_init(self):
        a = feed([3.0, 1.0, 2.0])
        b = feed([1.0, 2.0, 3.0])
        assert a.quantile(0.5) == b.quantile(0.5)


class TestChunkBoundary:
    """The chunked commit must be invisible at the seams."""

    def test_exact_through_one_full_chunk(self):
        values = uniform_stream(CHUNK - 1, seed=5)
        sketch = feed(values)
        for p in DEFAULT_QUANTILES:
            assert sketch.quantile(p) == exact_quantile(values, p)

    def test_estimates_continuous_across_first_commit(self):
        values = uniform_stream(CHUNK + 50, seed=5)
        sketch = feed(values)
        spread = max(values) - min(values)
        for p in DEFAULT_QUANTILES:
            exact = exact_quantile(values, p)
            assert abs(sketch.quantile(p) - exact) <= 0.03 * spread

    def test_queries_never_mutate_state(self):
        sketch = feed(uniform_stream(CHUNK + 100, seed=5))
        before = sketch.state()
        for _ in range(3):
            sketch.estimates()
        assert sketch.state() == before

    def test_pending_block_included_in_estimate(self):
        # Committed chunk near 0, pending values near 100: the estimate
        # must see the pending block, not just the committed markers.
        sketch = QuantileSketch(probs=(0.99,))
        for value in uniform_stream(CHUNK, seed=5):
            sketch.observe(value * 0.01)  # committed: all < 1.0
        for _ in range(CHUNK // 2):
            sketch.observe(100.0)  # pending: a new upper mode
        assert sketch.quantile(0.99) > 50.0


class TestAccuracy:
    """Estimates vs exact quantiles on adversarial streams.

    Tolerances are relative to the sample's spread (max - min): P² is a
    five-marker estimator, so a few percent of the range is the realistic
    contract -- tight enough to rank strategies by tail latency, loose
    enough to hold on hostile orderings.
    """

    def assert_close(self, values, rel_tol, probs=DEFAULT_QUANTILES):
        sketch = feed(values, probs)
        spread = max(values) - min(values)
        scale = spread if spread > 0 else 1.0
        for p in probs:
            exact = exact_quantile(values, p)
            estimate = sketch.quantile(p)
            assert abs(estimate - exact) <= rel_tol * scale, (
                f"p={p}: estimate {estimate} vs exact {exact} "
                f"(spread {spread})"
            )

    def test_uniform_random_stream(self):
        self.assert_close(uniform_stream(5_000), rel_tol=0.02)

    def test_sorted_stream(self):
        self.assert_close(sorted(uniform_stream(2_000)), rel_tol=0.05)

    def test_reverse_sorted_stream(self):
        self.assert_close(
            sorted(uniform_stream(2_000), reverse=True), rel_tol=0.05
        )

    def test_constant_stream(self):
        sketch = feed([4.25] * 1_000)
        for p in DEFAULT_QUANTILES:
            assert sketch.quantile(p) == 4.25

    def test_bimodal_stream_tails(self):
        # 50/50 mixture of clusters at 0 and 100: the tail estimates must
        # stay tight.  The *median* of this stream sits exactly at the
        # cliff between clusters, where P²'s continuous marker
        # interpolation is known to land inside the gap -- so the median
        # is only required to stay within the sample's range (the
        # documented limitation), not near the exact value.
        rng = StreamFactory(7).get("sketch-test")
        values = [
            (0.0 if rng.random() < 0.5 else 100.0) + rng.random()
            for _ in range(4_000)
        ]
        sketch = feed(values)
        spread = max(values) - min(values)
        for p in (0.95, 0.99):
            exact = exact_quantile(values, p)
            assert abs(sketch.quantile(p) - exact) <= 0.02 * spread
        assert min(values) <= sketch.quantile(0.5) <= max(values)

    def test_bimodal_stream_off_center_median(self):
        # With a 30/70 mixture the median lies inside the upper cluster,
        # away from the gap, and all three quantiles must be accurate.
        rng = StreamFactory(19).get("sketch-test")
        values = [
            (0.0 if rng.random() < 0.3 else 100.0) + rng.random()
            for _ in range(4_000)
        ]
        self.assert_close(values, rel_tol=0.02)

    def test_heavy_tail_pareto_stream(self):
        rng = StreamFactory(11).get("sketch-test")
        pareto = Pareto(mean_value=1.0, shape=2.5)
        values = [pareto.sample(rng) for _ in range(5_000)]
        # Heavy tails stretch the range; judge p50/p95 against the bulk
        # and only require the p99 estimate to land inside the right
        # order of magnitude of the exact tail.
        sketch = feed(values)
        for p in (0.5, 0.95):
            exact = exact_quantile(values, p)
            assert abs(sketch.quantile(p) - exact) <= 0.15 * exact
        exact99 = exact_quantile(values, 0.99)
        assert 0.5 * exact99 <= sketch.quantile(0.99) <= 2.0 * exact99

    def test_median_on_shuffled_integers(self):
        rng = StreamFactory(3).get("sketch-test")
        values = list(range(1, 1_001))
        for i in range(len(values) - 1, 0, -1):
            j = int(rng.random() * (i + 1))
            values[i], values[j] = values[j], values[i]
        sketch = feed([float(v) for v in values], probs=(0.5,))
        assert abs(sketch.quantile(0.5) - 500.5) <= 15.0


class TestLifecycle:
    def test_reset_forgets_everything(self):
        sketch = feed(uniform_stream(100))
        sketch.reset()
        assert sketch.count == 0
        assert math.isnan(sketch.quantile(0.5))
        fresh = QuantileSketch()
        assert sketch == fresh

    def test_estimates_matches_quantile(self):
        sketch = feed(uniform_stream(500))
        assert sketch.estimates() == tuple(
            sketch.quantile(p) for p in DEFAULT_QUANTILES
        )

    def test_repr_mentions_estimates(self):
        sketch = feed([1.0, 2.0])
        assert "p50" in repr(sketch)
        assert "empty" in repr(QuantileSketch())


class TestPickleRoundTrip:
    @pytest.mark.parametrize("n", [0, 3, 5, 1_000])
    def test_state_survives_pickle_bit_for_bit(self, n):
        sketch = feed(uniform_stream(n, seed=13))
        clone = pickle.loads(pickle.dumps(sketch))
        assert clone == sketch
        assert clone.state() == sketch.state()

    def test_clone_continues_identically(self):
        values = uniform_stream(2_000, seed=17)
        sketch = feed(values[:1_000])
        clone = pickle.loads(pickle.dumps(sketch))
        for value in values[1_000:]:
            sketch.observe(value)
            clone.observe(value)
        assert clone.state() == sketch.state()
        assert clone.estimates() == sketch.estimates()
