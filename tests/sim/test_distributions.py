"""Unit tests for the distribution library (repro.sim.distributions)."""

from __future__ import annotations

import math
import random

import pytest

from repro.sim.distributions import (
    Choice,
    Deterministic,
    DiscreteUniform,
    Erlang,
    Exponential,
    LognormalErrorFactor,
    Uniform,
    UniformErrorFactor,
    exponential_interarrival,
)


def sample_mean(dist, n=40_000, seed=0):
    stream = random.Random(seed)
    return sum(dist.sample(stream) for _ in range(n)) / n


class TestExponential:
    def test_mean_property(self):
        assert Exponential(2.5).mean == 2.5

    def test_rate_property(self):
        assert Exponential(0.5).rate == 2.0

    def test_sample_mean_converges(self):
        assert sample_mean(Exponential(2.0)) == pytest.approx(2.0, rel=0.05)

    def test_samples_positive(self):
        stream = random.Random(1)
        dist = Exponential(1.0)
        assert all(dist.sample(stream) > 0 for _ in range(1000))

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_nonpositive_mean_rejected(self, bad):
        with pytest.raises(ValueError):
            Exponential(bad)


class TestUniform:
    def test_mean(self):
        assert Uniform(1.0, 3.0).mean == 2.0

    def test_samples_within_bounds(self):
        stream = random.Random(2)
        dist = Uniform(0.25, 2.5)
        for _ in range(1000):
            value = dist.sample(stream)
            assert 0.25 <= value <= 2.5

    def test_degenerate_range_allowed(self):
        dist = Uniform(1.0, 1.0)
        assert dist.sample(random.Random(0)) == 1.0

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            Uniform(2.0, 1.0)

    def test_scaled(self):
        scaled = Uniform(0.25, 2.5).scaled(4.0)
        assert scaled.low == 1.0
        assert scaled.high == 10.0

    def test_scaled_by_zero_collapses(self):
        scaled = Uniform(1.0, 2.0).scaled(0.0)
        assert scaled.low == scaled.high == 0.0

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            Uniform(0.0, 1.0).scaled(-1.0)


class TestDeterministic:
    def test_always_returns_value(self):
        dist = Deterministic(7.0)
        stream = random.Random(0)
        assert all(dist.sample(stream) == 7.0 for _ in range(10))

    def test_mean(self):
        assert Deterministic(3.5).mean == 3.5


class TestErlang:
    def test_mean_property(self):
        assert Erlang(k=4, stage_mean=1.0).mean == 4.0

    def test_sample_mean_converges(self):
        assert sample_mean(Erlang(k=4, stage_mean=0.5), n=20_000) == pytest.approx(
            2.0, rel=0.05
        )

    def test_variance_smaller_than_exponential(self):
        """An m-stage Erlang is less variable than one exponential of the
        same mean -- the whole reason global task totals differ from local
        execution times."""
        stream = random.Random(3)
        erlang = Erlang(k=4, stage_mean=1.0)
        expo = Exponential(4.0)
        n = 20_000
        erl = [erlang.sample(stream) for _ in range(n)]
        exp = [expo.sample(stream) for _ in range(n)]
        var = lambda xs: sum((x - sum(xs) / n) ** 2 for x in xs) / n
        assert var(erl) < var(exp)

    @pytest.mark.parametrize("k,mean", [(0, 1.0), (1, 0.0), (-2, 1.0)])
    def test_bad_parameters_rejected(self, k, mean):
        with pytest.raises(ValueError):
            Erlang(k=k, stage_mean=mean)


class TestDiscreteUniform:
    def test_bounds_inclusive(self):
        stream = random.Random(4)
        dist = DiscreteUniform(2, 6)
        values = {dist.sample(stream) for _ in range(2000)}
        assert values == {2, 3, 4, 5, 6}

    def test_mean(self):
        assert DiscreteUniform(2, 6).mean == 4.0

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            DiscreteUniform(5, 2)


class TestChoice:
    def test_only_listed_values(self):
        stream = random.Random(5)
        dist = Choice([1, 5, 9])
        assert {dist.sample(stream) for _ in range(500)} == {1, 5, 9}

    def test_mean(self):
        assert Choice([1, 5, 9]).mean == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Choice([])


class TestErrorFactors:
    def test_uniform_error_bounds(self):
        stream = random.Random(6)
        dist = UniformErrorFactor(0.5)
        for _ in range(1000):
            factor = dist.sample(stream)
            assert 0.5 <= factor <= 1.5

    def test_zero_error_is_exactly_one(self):
        dist = UniformErrorFactor(0.0)
        assert dist.sample(random.Random(0)) == 1.0

    def test_uniform_error_mean_is_one(self):
        assert UniformErrorFactor(0.9).mean == 1.0

    @pytest.mark.parametrize("bad", [-0.1, 1.0, 2.0])
    def test_bad_error_rejected(self, bad):
        with pytest.raises(ValueError):
            UniformErrorFactor(bad)

    def test_lognormal_median_one(self):
        stream = random.Random(7)
        dist = LognormalErrorFactor(0.5)
        values = sorted(dist.sample(stream) for _ in range(20_001))
        assert values[10_000] == pytest.approx(1.0, abs=0.05)

    def test_lognormal_zero_sigma(self):
        assert LognormalErrorFactor(0.0).sample(random.Random(0)) == 1.0

    def test_lognormal_mean(self):
        assert LognormalErrorFactor(0.5).mean == pytest.approx(math.exp(0.125))

    def test_lognormal_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            LognormalErrorFactor(-0.5)


class TestInterarrivalHelper:
    def test_rate_to_mean(self):
        dist = exponential_interarrival(4.0)
        assert dist.mean == 0.25

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            exponential_interarrival(0.0)


# -- scenario-subsystem distributions ---------------------------------------

from repro.sim.distributions import (  # noqa: E402  (grouped with their tests)
    Hyperexponential,
    Lognormal,
    MMPP2Interarrival,
    Pareto,
)


class TestPareto:
    def test_mean_is_pinned(self):
        assert Pareto(2.0, 2.2).mean == 2.0

    def test_sample_mean_converges(self):
        # Heavy tail: slower convergence, generous tolerance.
        assert sample_mean(Pareto(1.0, 2.5), n=200_000) == pytest.approx(
            1.0, rel=0.1
        )

    def test_samples_at_least_scale(self):
        dist = Pareto(1.0, 2.2)
        stream = random.Random(3)
        assert all(dist.sample(stream) >= dist.scale for _ in range(2000))

    def test_bind_matches_sample(self):
        dist = Pareto(1.0, 2.2)
        bound = dist.bind(random.Random(11))
        reference = random.Random(11)
        assert [bound() for _ in range(100)] == [
            dist.sample(reference) for _ in range(100)
        ]

    @pytest.mark.parametrize("bad", [1.0, 0.5, -2.0, math.nan])
    def test_bad_shape_rejected(self, bad):
        with pytest.raises(ValueError):
            Pareto(1.0, bad)

    @pytest.mark.parametrize("bad", [0.0, -1.0, math.inf])
    def test_bad_mean_rejected(self, bad):
        with pytest.raises(ValueError):
            Pareto(bad, 2.2)


class TestLognormal:
    def test_mean_is_pinned(self):
        assert Lognormal(3.0, 1.2).mean == 3.0

    def test_sample_mean_converges(self):
        assert sample_mean(Lognormal(1.0, 1.0), n=200_000) == pytest.approx(
            1.0, rel=0.05
        )

    def test_samples_positive(self):
        dist = Lognormal(1.0, 1.5)
        stream = random.Random(4)
        assert all(dist.sample(stream) > 0 for _ in range(2000))

    def test_bind_matches_sample(self):
        dist = Lognormal(1.0, 1.2)
        bound = dist.bind(random.Random(12))
        reference = random.Random(12)
        assert [bound() for _ in range(100)] == [
            dist.sample(reference) for _ in range(100)
        ]

    @pytest.mark.parametrize("bad", [0.0, -1.0, math.nan])
    def test_bad_sigma_rejected(self, bad):
        with pytest.raises(ValueError):
            Lognormal(1.0, bad)


class TestHyperexponential:
    def test_mean_is_pinned(self):
        assert Hyperexponential(2.0, 4.0).mean == 2.0

    def test_sample_mean_converges(self):
        assert sample_mean(Hyperexponential(1.0, 4.0), n=200_000) == pytest.approx(
            1.0, rel=0.05
        )

    def test_cv2_shows_in_samples(self):
        dist = Hyperexponential(1.0, 9.0)
        stream = random.Random(5)
        values = [dist.sample(stream) for _ in range(100_000)]
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert var / mean**2 == pytest.approx(9.0, rel=0.2)

    def test_unit_cv2_degenerates_to_exponential(self):
        dist = Hyperexponential(1.0, 1.0)
        assert dist.phase_probability == 0.5
        rate_fast, rate_slow = dist.rates
        assert rate_fast == pytest.approx(rate_slow)

    def test_bind_matches_sample(self):
        dist = Hyperexponential(1.0, 4.0)
        bound = dist.bind(random.Random(13))
        reference = random.Random(13)
        assert [bound() for _ in range(100)] == [
            dist.sample(reference) for _ in range(100)
        ]

    @pytest.mark.parametrize("bad", [0.5, 0.99, -1.0, math.nan])
    def test_cv2_below_one_rejected(self, bad):
        with pytest.raises(ValueError):
            Hyperexponential(1.0, bad)


class TestMMPP2Interarrival:
    def make(self, **overrides):
        params = dict(
            mean_value=1.0, burst_ratio=4.0, burst_fraction=0.2,
            cycle_time=50.0,
        )
        params.update(overrides)
        return MMPP2Interarrival(**params)

    def test_long_run_rate_is_pinned(self):
        draw = self.make().bind(random.Random(6))
        n = 200_000
        total = sum(draw() for _ in range(n))
        assert total / n == pytest.approx(1.0, rel=0.05)

    def test_rates_mix_to_mean(self):
        dist = self.make()
        rate_calm, rate_burst = dist.arrival_rates
        f = dist.burst_fraction
        assert f * rate_burst + (1 - f) * rate_calm == pytest.approx(1.0)
        assert rate_burst == pytest.approx(4.0 * rate_calm)

    def test_sojourns_follow_cycle(self):
        calm, burst = self.make().sojourn_means
        assert calm == pytest.approx(40.0)
        assert burst == pytest.approx(10.0)

    def test_stateful_sample_refused(self):
        with pytest.raises(TypeError, match="bind"):
            self.make().sample(random.Random(0))

    def test_bound_streams_are_independent_chains(self):
        dist = self.make()
        a = dist.bind(random.Random(1))
        b = dist.bind(random.Random(1))
        first = [a() for _ in range(50)]
        # Same seed, fresh state: the second closure replays identically,
        # proving state lives per-bind, not on the shared description.
        assert [b() for _ in range(50)] == first

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(burst_ratio=0.5),
            dict(burst_fraction=0.0),
            dict(burst_fraction=1.0),
            dict(cycle_time=0.0),
            dict(mean_value=-1.0),
        ],
    )
    def test_bad_parameters_rejected(self, overrides):
        with pytest.raises(ValueError):
            self.make(**overrides)


class TestUniformValidation:
    """Satellite fix: degenerate inputs rejected uniformly, with the
    offending value in the message."""

    def test_erlang_non_integer_k_rejected(self):
        with pytest.raises(ValueError, match="2.5"):
            Erlang(2.5, 1.0)

    def test_erlang_bool_k_rejected(self):
        with pytest.raises(ValueError):
            Erlang(True, 1.0)

    def test_choice_non_numeric_rejected(self):
        with pytest.raises(ValueError, match="two"):
            Choice([1, "two"])

    def test_choice_nan_rejected(self):
        with pytest.raises(ValueError):
            Choice([1.0, math.nan])

    def test_discrete_uniform_non_integer_rejected(self):
        with pytest.raises(ValueError, match="1.5"):
            DiscreteUniform(1.5, 3)

    @pytest.mark.parametrize(
        "build",
        [
            lambda: Exponential(math.nan),
            lambda: Exponential(math.inf),
            lambda: Uniform(math.nan, 1.0),
            lambda: Uniform(0.0, math.inf),
            lambda: Deterministic(math.nan),
            lambda: Erlang(2, math.nan),
            lambda: UniformErrorFactor(math.nan),
            lambda: LognormalErrorFactor(math.nan),
        ],
    )
    def test_non_finite_parameters_rejected(self, build):
        with pytest.raises(ValueError):
            build()

    def test_message_carries_offending_value(self):
        with pytest.raises(ValueError, match="-3.0"):
            Exponential(-3.0)


class TestParetoZeroDraw:
    """Regression: a stream draw of exactly 0.0 must not crash (stdlib
    paretovariate's 1 - random() guard)."""

    def test_zero_uniform_draw_is_finite(self):
        class ZeroStream:
            def random(self):
                return 0.0

        value = Pareto(1.0, 2.2).sample(ZeroStream())
        assert math.isfinite(value)
        assert value == Pareto(1.0, 2.2).scale
