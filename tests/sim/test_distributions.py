"""Unit tests for the distribution library (repro.sim.distributions)."""

from __future__ import annotations

import math
import random

import pytest

from repro.sim.distributions import (
    Choice,
    Deterministic,
    DiscreteUniform,
    Erlang,
    Exponential,
    LognormalErrorFactor,
    Uniform,
    UniformErrorFactor,
    exponential_interarrival,
)


def sample_mean(dist, n=40_000, seed=0):
    stream = random.Random(seed)
    return sum(dist.sample(stream) for _ in range(n)) / n


class TestExponential:
    def test_mean_property(self):
        assert Exponential(2.5).mean == 2.5

    def test_rate_property(self):
        assert Exponential(0.5).rate == 2.0

    def test_sample_mean_converges(self):
        assert sample_mean(Exponential(2.0)) == pytest.approx(2.0, rel=0.05)

    def test_samples_positive(self):
        stream = random.Random(1)
        dist = Exponential(1.0)
        assert all(dist.sample(stream) > 0 for _ in range(1000))

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_nonpositive_mean_rejected(self, bad):
        with pytest.raises(ValueError):
            Exponential(bad)


class TestUniform:
    def test_mean(self):
        assert Uniform(1.0, 3.0).mean == 2.0

    def test_samples_within_bounds(self):
        stream = random.Random(2)
        dist = Uniform(0.25, 2.5)
        for _ in range(1000):
            value = dist.sample(stream)
            assert 0.25 <= value <= 2.5

    def test_degenerate_range_allowed(self):
        dist = Uniform(1.0, 1.0)
        assert dist.sample(random.Random(0)) == 1.0

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            Uniform(2.0, 1.0)

    def test_scaled(self):
        scaled = Uniform(0.25, 2.5).scaled(4.0)
        assert scaled.low == 1.0
        assert scaled.high == 10.0

    def test_scaled_by_zero_collapses(self):
        scaled = Uniform(1.0, 2.0).scaled(0.0)
        assert scaled.low == scaled.high == 0.0

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            Uniform(0.0, 1.0).scaled(-1.0)


class TestDeterministic:
    def test_always_returns_value(self):
        dist = Deterministic(7.0)
        stream = random.Random(0)
        assert all(dist.sample(stream) == 7.0 for _ in range(10))

    def test_mean(self):
        assert Deterministic(3.5).mean == 3.5


class TestErlang:
    def test_mean_property(self):
        assert Erlang(k=4, stage_mean=1.0).mean == 4.0

    def test_sample_mean_converges(self):
        assert sample_mean(Erlang(k=4, stage_mean=0.5), n=20_000) == pytest.approx(
            2.0, rel=0.05
        )

    def test_variance_smaller_than_exponential(self):
        """An m-stage Erlang is less variable than one exponential of the
        same mean -- the whole reason global task totals differ from local
        execution times."""
        stream = random.Random(3)
        erlang = Erlang(k=4, stage_mean=1.0)
        expo = Exponential(4.0)
        n = 20_000
        erl = [erlang.sample(stream) for _ in range(n)]
        exp = [expo.sample(stream) for _ in range(n)]
        var = lambda xs: sum((x - sum(xs) / n) ** 2 for x in xs) / n
        assert var(erl) < var(exp)

    @pytest.mark.parametrize("k,mean", [(0, 1.0), (1, 0.0), (-2, 1.0)])
    def test_bad_parameters_rejected(self, k, mean):
        with pytest.raises(ValueError):
            Erlang(k=k, stage_mean=mean)


class TestDiscreteUniform:
    def test_bounds_inclusive(self):
        stream = random.Random(4)
        dist = DiscreteUniform(2, 6)
        values = {dist.sample(stream) for _ in range(2000)}
        assert values == {2, 3, 4, 5, 6}

    def test_mean(self):
        assert DiscreteUniform(2, 6).mean == 4.0

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            DiscreteUniform(5, 2)


class TestChoice:
    def test_only_listed_values(self):
        stream = random.Random(5)
        dist = Choice([1, 5, 9])
        assert {dist.sample(stream) for _ in range(500)} == {1, 5, 9}

    def test_mean(self):
        assert Choice([1, 5, 9]).mean == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Choice([])


class TestErrorFactors:
    def test_uniform_error_bounds(self):
        stream = random.Random(6)
        dist = UniformErrorFactor(0.5)
        for _ in range(1000):
            factor = dist.sample(stream)
            assert 0.5 <= factor <= 1.5

    def test_zero_error_is_exactly_one(self):
        dist = UniformErrorFactor(0.0)
        assert dist.sample(random.Random(0)) == 1.0

    def test_uniform_error_mean_is_one(self):
        assert UniformErrorFactor(0.9).mean == 1.0

    @pytest.mark.parametrize("bad", [-0.1, 1.0, 2.0])
    def test_bad_error_rejected(self, bad):
        with pytest.raises(ValueError):
            UniformErrorFactor(bad)

    def test_lognormal_median_one(self):
        stream = random.Random(7)
        dist = LognormalErrorFactor(0.5)
        values = sorted(dist.sample(stream) for _ in range(20_001))
        assert values[10_000] == pytest.approx(1.0, abs=0.05)

    def test_lognormal_zero_sigma(self):
        assert LognormalErrorFactor(0.0).sample(random.Random(0)) == 1.0

    def test_lognormal_mean(self):
        assert LognormalErrorFactor(0.5).mean == pytest.approx(math.exp(0.125))

    def test_lognormal_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            LognormalErrorFactor(-0.5)


class TestInterarrivalHelper:
    def test_rate_to_mean(self):
        dist = exponential_interarrival(4.0)
        assert dist.mean == 0.25

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            exponential_interarrival(0.0)
