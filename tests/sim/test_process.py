"""Unit tests for generator-based processes (repro.sim.process)."""

from __future__ import annotations

import pytest

from repro.sim.core import Environment
from repro.sim.errors import Interrupt, ProcessError


class TestProcessBasics:
    def test_process_runs_to_completion(self, env):
        trace = []

        def body(env):
            trace.append(("start", env.now))
            yield env.timeout(2)
            trace.append(("middle", env.now))
            yield env.timeout(3)
            trace.append(("end", env.now))

        env.process(body(env))
        env.run()
        assert trace == [("start", 0), ("middle", 2), ("end", 5)]

    def test_process_return_value_becomes_event_value(self, env):
        def body(env):
            yield env.timeout(1)
            return "result"

        proc = env.process(body(env))
        env.run()
        assert proc.value == "result"

    def test_process_is_alive_until_done(self, env):
        def body(env):
            yield env.timeout(5)

        proc = env.process(body(env))
        assert proc.is_alive
        env.run()
        assert not proc.is_alive

    def test_non_generator_rejected(self, env):
        with pytest.raises(ProcessError):
            env.process(lambda: None)  # type: ignore[arg-type]

    def test_yielding_non_event_raises_in_process(self, env):
        caught = []

        def body(env):
            try:
                yield 42  # type: ignore[misc]
            except ProcessError as exc:
                caught.append(exc)

        env.process(body(env))
        env.run()
        assert len(caught) == 1

    def test_process_waiting_on_process(self, env):
        def child(env):
            yield env.timeout(3)
            return "child-done"

        def parent(env):
            result = yield env.process(child(env))
            return f"saw {result}"

        proc = env.process(parent(env))
        env.run()
        assert proc.value == "saw child-done"

    def test_yield_already_processed_event_resumes_immediately(self, env):
        def body(env):
            early = env.timeout(0)
            yield env.timeout(5)
            value = yield early  # fired long ago
            assert env.now == 5
            return value

        proc = env.process(body(env))
        env.run()
        assert not proc.is_alive

    def test_uncaught_exception_fails_process_event(self, env):
        def body(env):
            yield env.timeout(1)
            raise KeyError("oops")

        def watcher(env, proc):
            try:
                yield proc
            except KeyError as exc:
                return f"caught {exc}"

        proc = env.process(body(env))
        watcher_proc = env.process(watcher(env, proc))
        env.run()
        assert "caught" in watcher_proc.value

    def test_unwatched_process_exception_crashes_run(self, env):
        def body(env):
            yield env.timeout(1)
            raise RuntimeError("nobody catches this")

        env.process(body(env))
        with pytest.raises(RuntimeError):
            env.run()

    def test_processes_start_in_creation_order(self, env):
        order = []

        def body(env, tag):
            order.append(tag)
            yield env.timeout(0)

        for tag in "abc":
            env.process(body(env, tag))
        env.run()
        assert order[:3] == list("abc")

    def test_active_process_visible_during_execution(self, env):
        seen = []

        def body(env):
            seen.append(env.active_process)
            yield env.timeout(1)

        proc = env.process(body(env))
        env.run()
        assert seen == [proc]
        assert env.active_process is None


class TestInterrupts:
    def test_interrupt_wakes_process_early(self, env):
        log = []

        def sleeper(env):
            try:
                yield env.timeout(100)
                log.append("slept full")
            except Interrupt as interrupt:
                log.append(("interrupted", env.now, interrupt.cause))

        def interrupter(env, victim):
            yield env.timeout(4)
            victim.interrupt(cause="reason")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert log == [("interrupted", 4, "reason")]

    def test_interrupted_process_can_continue(self, env):
        log = []

        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt:
                pass
            yield env.timeout(1)
            log.append(env.now)

        def interrupter(env, victim):
            yield env.timeout(10)
            victim.interrupt()

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert log == [11]

    def test_interrupting_dead_process_raises(self, env):
        def body(env):
            yield env.timeout(1)

        proc = env.process(body(env))
        env.run()
        with pytest.raises(ProcessError):
            proc.interrupt()

    def test_self_interrupt_rejected(self, env):
        failures = []

        def body(env):
            try:
                env.active_process.interrupt()
            except ProcessError as exc:
                failures.append(exc)
            yield env.timeout(1)

        env.process(body(env))
        env.run()
        assert len(failures) == 1

    def test_unhandled_interrupt_fails_process(self, env):
        def sleeper(env):
            yield env.timeout(100)

        def interrupter(env, victim):
            yield env.timeout(1)
            victim.interrupt(cause="kill")

        def watcher(env, victim):
            try:
                yield victim
                return "no exception"
            except Interrupt as interrupt:
                return ("interrupt escaped", interrupt.cause)

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        watcher_proc = env.process(watcher(env, victim))
        env.run()
        assert watcher_proc.value == ("interrupt escaped", "kill")

    def test_original_target_does_not_resume_interrupted_process_again(self, env):
        resumes = []

        def sleeper(env):
            try:
                yield env.timeout(5)
                resumes.append("timeout fired in process")
            except Interrupt:
                resumes.append("interrupt")
            yield env.timeout(100)

        def interrupter(env, victim):
            yield env.timeout(1)
            victim.interrupt()

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run(until=50)
        # Only the interrupt resumption; the original t=5 timeout must not
        # wake the process a second time.
        assert resumes == ["interrupt"]
