"""Unit tests for Environment scheduling semantics (repro.sim.core)."""

from __future__ import annotations

import pytest

from repro.sim.core import Environment
from repro.sim.errors import SimulationError


class TestClockAndRun:
    def test_initial_time_defaults_to_zero(self):
        assert Environment().now == 0.0

    def test_initial_time_override(self):
        assert Environment(initial_time=100.0).now == 100.0

    def test_run_until_time_advances_clock(self, env):
        env.timeout(3)
        env.run(until=10)
        assert env.now == 10

    def test_run_until_time_stops_before_later_events(self, env):
        fired = []
        late = env.timeout(20)
        late.callbacks.append(lambda e: fired.append(env.now))
        env.run(until=10)
        assert fired == []
        assert env.now == 10

    def test_run_until_event_returns_value(self, env):
        event = env.timeout(4, value="done")
        assert env.run(until=event) == "done"
        assert env.now == 4

    def test_run_until_already_triggered_event(self, env):
        event = env.timeout(0, value="early")
        env.run()
        assert env.run(until=event) == "early"

    def test_run_until_past_raises(self, env):
        env.timeout(5)
        env.run(until=5)
        with pytest.raises(SimulationError):
            env.run(until=1)

    def test_run_until_event_never_triggered_raises(self, env):
        pending = env.event()
        env.timeout(1)
        with pytest.raises(SimulationError):
            env.run(until=pending)

    def test_run_without_until_exhausts_queue(self, env):
        env.timeout(1)
        env.timeout(7)
        env.run()
        assert env.now == 7

    def test_resumable_runs(self, env):
        env.timeout(5)
        env.timeout(15)
        env.run(until=10)
        assert env.now == 10
        env.run(until=20)
        assert env.now == 20


class TestStepAndPeek:
    def test_peek_empty_is_infinite(self, env):
        assert env.peek() == float("inf")

    def test_peek_returns_next_event_time(self, env):
        env.timeout(9)
        env.timeout(2)
        assert env.peek() == 2

    def test_step_on_empty_queue_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()

    def test_step_processes_one_event(self, env):
        env.timeout(1)
        env.timeout(2)
        env.step()
        assert env.now == 1
        env.step()
        assert env.now == 2


class TestOrdering:
    def test_events_fire_in_time_order(self, env):
        order = []
        for delay in (5, 1, 3, 2, 4):
            event = env.timeout(delay, value=delay)
            event.callbacks.append(lambda e: order.append(e.value))
        env.run()
        assert order == [1, 2, 3, 4, 5]

    def test_fifo_among_simultaneous_events(self, env):
        order = []
        for tag in "abcde":
            event = env.timeout(1.0, value=tag)
            event.callbacks.append(lambda e: order.append(e.value))
        env.run()
        assert order == list("abcde")

    def test_scheduling_into_the_past_rejected(self, env):
        event = env.event()
        with pytest.raises(SimulationError):
            env._schedule(event, 1, -1.0)

    def test_clock_never_goes_backwards(self, env):
        stamps = []

        def observer(env):
            for _ in range(10):
                yield env.timeout(0.5)
                stamps.append(env.now)

        env.process(observer(env))
        env.timeout(0)
        env.timeout(2.5)
        env.run()
        assert stamps == sorted(stamps)
