"""Tests for the scenario sweep runner and ranking report."""

from __future__ import annotations

import pytest

from repro.experiments.runner import RunScale
from repro.scenarios import (
    ScenarioSpec,
    get_scenario,
    run_scenario_sweep,
    scenario_grid_configs,
)

TINY = RunScale(sim_time=800.0, warmup_time=100.0, replications=1, label="tiny")

SPECS = (get_scenario("baseline"), get_scenario("smart-routing"))
STRATEGIES = ("UD", "EQF")


@pytest.fixture(scope="module")
def sweep_result():
    return run_scenario_sweep(SPECS, STRATEGIES, scale=TINY, seed=11)


class TestGridConfigs:
    def test_row_major_and_scale_applied(self):
        configs = scenario_grid_configs(SPECS, STRATEGIES, TINY, seed=11)
        assert len(configs) == 4
        assert [c.strategy for c in configs] == ["UD", "EQF", "UD", "EQF"]
        assert all(c.sim_time == TINY.sim_time for c in configs)

    def test_cells_get_distinct_seeds(self):
        configs = scenario_grid_configs(SPECS, STRATEGIES, TINY, seed=11)
        seeds = [c.seed for c in configs]
        assert len(set(seeds)) == len(seeds)
        assert seeds[0] == 11
        assert seeds[2] == 1_011  # scenario index advances by 1_000


class TestSweepResult:
    def test_every_cell_present(self, sweep_result):
        for spec in SPECS:
            for strategy in STRATEGIES:
                cell = sweep_result.cell(spec.name, strategy)
                assert cell.scenario == spec.name
                assert cell.strategy == strategy

    def test_missing_cell_raises(self, sweep_result):
        with pytest.raises(KeyError):
            sweep_result.cell("baseline", "nope")

    def test_ranking_sorted_by_global_miss_ratio(self, sweep_result):
        for spec in SPECS:
            ranked = sweep_result.ranking(spec.name)
            values = [cell.estimate.md_global.mean for cell in ranked]
            assert values == sorted(values)

    def test_best_strategy_is_rank_one(self, sweep_result):
        for spec in SPECS:
            assert (
                sweep_result.best_strategy(spec.name)
                == sweep_result.ranking(spec.name)[0].strategy
            )

    def test_unknown_scenario_raises(self, sweep_result):
        with pytest.raises(KeyError):
            sweep_result.ranking("no-such")

    def test_table_lists_scenarios_ranks_and_seed(self, sweep_result):
        table = sweep_result.table()
        for spec in SPECS:
            assert spec.name in table
        assert "MD_global" in table
        assert "seed 11" in table

    def test_table_surfaces_preemption_counts(self, sweep_result):
        """The sweep report carries the per-cell preemption total (0 for
        these non-preemptive scenarios, > 0 for preemptive ones)."""
        table = sweep_result.table()
        assert "preempt" in table
        for cell in sweep_result.cells:
            assert cell.estimate.preemptions == 0

    def test_deterministic_across_invocations(self, sweep_result):
        again = run_scenario_sweep(SPECS, STRATEGIES, scale=TINY, seed=11)
        for cell, cell2 in zip(sweep_result.cells, again.cells):
            assert cell.estimate.md_global.mean == cell2.estimate.md_global.mean
            assert cell.estimate.md_local.mean == cell2.estimate.md_local.mean


class TestValidation:
    def test_empty_specs_rejected(self):
        with pytest.raises(ValueError):
            run_scenario_sweep([], STRATEGIES, scale=TINY)

    def test_empty_strategies_rejected(self):
        with pytest.raises(ValueError):
            run_scenario_sweep(SPECS, [], scale=TINY)


class TestInjectedRunner:
    def test_runner_sees_every_grid_cell(self):
        seen = []

        def fake_runner(config):
            seen.append(config)
            from repro.system.simulation import Simulation

            return Simulation(config.with_(sim_time=400.0, warmup_time=50.0)).run()

        specs = (ScenarioSpec(name="one"),)
        run_scenario_sweep(
            specs, ("UD", "EQF"), scale=TINY, seed=2, runner=fake_runner
        )
        assert [c.strategy for c in seen] == ["UD", "EQF"]
