"""Property tests over the whole scenario library.

Three invariants every library scenario must satisfy (the ISSUE's
acceptance bar for the scenario subsystem):

* *stability*: the worst-case normalized load stays below 1, so every
  scenario has a steady state to measure;
* *round-trip*: ``from_dict(json(to_dict()))`` is the identity, so
  scenarios can be archived and reloaded;
* *runnability*: a short run completes with a finite missed-deadline
  ratio under every strategy of the default panel.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.experiments.runner import RunScale
from repro.scenarios import (
    DEFAULT_STRATEGIES,
    LIBRARY,
    ScenarioSpec,
    get_scenario,
    register_scenario,
    run_scenario,
    scenario_names,
)

#: Short but non-trivial runs: every task class sees hundreds of
#: completions, so miss ratios are finite and meaningful.
TINY = RunScale(sim_time=1_000.0, warmup_time=100.0, replications=1, label="tiny")


@pytest.mark.parametrize("spec", LIBRARY, ids=lambda s: s.name)
class TestEveryLibraryScenario:
    def test_stable(self, spec):
        assert spec.peak_load < 1.0

    def test_round_trips_unchanged(self, spec):
        restored = ScenarioSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert restored == spec

    def test_has_name_and_description(self, spec):
        assert spec.name
        assert spec.description


@pytest.mark.parametrize("spec", LIBRARY, ids=lambda s: s.name)
@pytest.mark.parametrize("strategy", DEFAULT_STRATEGIES)
class TestFiniteMissRatios:
    def test_run_completes_with_finite_miss_ratios(self, spec, strategy):
        estimate = run_scenario(spec, strategy=strategy, scale=TINY, seed=3)
        assert math.isfinite(estimate.md_global.mean)
        assert 0.0 <= estimate.md_global.mean <= 1.0
        assert estimate.global_completed > 0
        if spec.to_config().frac_local > 0:
            assert math.isfinite(estimate.md_local.mean)
            assert 0.0 <= estimate.md_local.mean <= 1.0
            assert estimate.local_completed > 0
        else:
            # Global-only scenarios (the fleet tier) have no local
            # stream: nothing local to complete or miss.
            assert estimate.local_completed == 0


class TestLibraryShape:
    def test_names_unique(self):
        names = [spec.name for spec in LIBRARY]
        assert len(names) == len(set(names))

    def test_baseline_first(self):
        assert LIBRARY[0].name == "baseline"

    def test_library_size(self):
        # The ISSUE asks for a curated library of ~8 named scenarios.
        assert len(LIBRARY) >= 8


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert get_scenario("Bursty-MMPP").name == "bursty-mmpp"

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="baseline"):
            get_scenario("no-such-scenario")

    def test_names_match_library(self):
        assert scenario_names() == [spec.name for spec in LIBRARY]

    def test_register_identical_is_idempotent(self):
        spec = get_scenario("baseline")
        assert register_scenario(spec) is spec

    def test_register_conflict_rejected(self):
        imposter = ScenarioSpec(name="baseline", description="not the same")
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(imposter)

    def test_register_and_remove_new_scenario(self):
        from repro.scenarios import SCENARIOS

        spec = ScenarioSpec(name="test-only", base={"load": 0.4})
        try:
            register_scenario(spec)
            assert get_scenario("test-only") == spec
        finally:
            SCENARIOS.pop("test-only", None)


class TestRegistryCaseConsistency:
    """Regression: a case-variant name must hit the same registry slot
    for both lookup and registration."""

    def test_case_variant_conflict_rejected(self):
        from repro.scenarios import ScenarioSpec, register_scenario
        import pytest as _pytest

        imposter = ScenarioSpec(name="Baseline", description="not the same")
        with _pytest.raises(ValueError, match="already registered"):
            register_scenario(imposter)

    def test_case_variant_replace_rekeys(self):
        from repro.scenarios import (
            SCENARIOS,
            ScenarioSpec,
            get_scenario,
            register_scenario,
        )

        spec = ScenarioSpec(name="Test-Case", base={"load": 0.4})
        try:
            register_scenario(spec)
            variant = ScenarioSpec(name="TEST-CASE", base={"load": 0.3})
            register_scenario(variant, replace=True)
            assert get_scenario("test-case") == variant
            assert "Test-Case" not in SCENARIOS  # old key removed
        finally:
            SCENARIOS.pop("TEST-CASE", None)
            SCENARIOS.pop("Test-Case", None)
