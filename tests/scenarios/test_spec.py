"""Unit tests for ScenarioSpec (repro.scenarios.spec)."""

from __future__ import annotations

import json

import pytest

from repro.scenarios import (
    ArrivalSpec,
    PlacementSpec,
    ScenarioSpec,
    ServiceSpec,
)
from repro.system.config import SystemConfig


class TestConstruction:
    def test_defaults_are_the_paper(self):
        spec = ScenarioSpec(name="plain")
        assert spec.arrival.model == "poisson"
        assert spec.service.model == "exponential"
        assert spec.placement.model == "uniform"
        assert spec.node_speed_factors is None
        assert spec.load_profile is None

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="")

    def test_base_mapping_normalized_to_sorted_pairs(self):
        spec = ScenarioSpec(name="s", base={"load": 0.6, "frac_local": 0.5})
        assert spec.base == (("frac_local", 0.5), ("load", 0.6))

    def test_base_list_values_become_tuples(self):
        spec = ScenarioSpec(name="s", base={"slack_range": [0.5, 3.0]})
        assert spec.base == (("slack_range", (0.5, 3.0)),)
        assert spec.to_config().slack_range == (0.5, 3.0)

    def test_unknown_base_field_rejected(self):
        with pytest.raises(ValueError, match="unknown SystemConfig field"):
            ScenarioSpec(name="s", base={"not_a_field": 1})

    def test_dimension_field_in_base_rejected(self):
        with pytest.raises(ValueError, match="scenario dimension"):
            ScenarioSpec(name="s", base={"arrival_model": "hyperexp"})

    def test_invalid_dimension_fails_at_definition_time(self):
        with pytest.raises(ValueError, match="scenario 'bad' is invalid"):
            ScenarioSpec(name="bad", arrival=ArrivalSpec(model="nope"))

    def test_unstable_profile_rejected(self):
        with pytest.raises(ValueError, match="invalid"):
            ScenarioSpec(
                name="unstable",
                load_profile=((0.5, 0.5), (0.5, 2.5)),
                base={"load": 0.5},
            )


class TestToConfig:
    def test_baseline_reduces_to_plain_config(self):
        assert ScenarioSpec(name="baseline").to_config() == SystemConfig()

    def test_run_overrides_win_over_base(self):
        spec = ScenarioSpec(name="s", base={"load": 0.6, "strategy": "UD"})
        config = spec.to_config(strategy="EQF", seed=9)
        assert config.load == 0.6
        assert config.strategy == "EQF"
        assert config.seed == 9

    def test_dimensions_reach_the_config(self):
        spec = ScenarioSpec(
            name="s",
            arrival=ArrivalSpec(model="hyperexp", cv2=4.0),
            service=ServiceSpec(model="pareto", shape=2.5),
            placement=PlacementSpec(model="zipf", zipf_s=0.8),
            node_speed_factors=(1.0,) * 6,
            load_profile=((1.0, 1.0),),
        )
        config = spec.to_config()
        assert config.arrival_model == "hyperexp"
        assert config.arrival_cv2 == 4.0
        assert config.service_model == "pareto"
        assert config.service_shape == 2.5
        assert config.placement == "zipf"
        assert config.placement_zipf_s == 0.8
        assert config.node_speed_factors == (1.0,) * 6
        assert config.load_profile == ((1.0, 1.0),)


class TestRoundTrip:
    def test_json_round_trip_identity(self):
        spec = ScenarioSpec(
            name="full",
            description="all dimensions on",
            arrival=ArrivalSpec(model="mmpp2", burst_ratio=3.0),
            service=ServiceSpec(model="lognormal", sigma=1.1),
            placement=PlacementSpec(model="least-outstanding"),
            node_speed_factors=(1.2, 1.2, 1.0, 1.0, 0.8, 0.8),
            load_profile=((0.5, 0.8), (0.5, 1.2)),
            base={"load": 0.55, "subtask_count_range": (2, 6)},
        )
        restored = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec

    def test_to_dict_is_json_serializable(self):
        spec = ScenarioSpec(name="s", node_speed_factors=(1.0,) * 6)
        json.dumps(spec.to_dict())  # must not raise

    def test_from_dict_tolerates_missing_sections(self):
        spec = ScenarioSpec.from_dict({"name": "bare"})
        assert spec == ScenarioSpec(name="bare")


class TestDescribe:
    def test_baseline_describes_itself(self):
        assert ScenarioSpec(name="b").describe() == "paper baseline"

    def test_dimensions_listed(self):
        spec = ScenarioSpec(
            name="s",
            arrival=ArrivalSpec(model="hyperexp", cv2=2.0),
            base={"load": 0.55},
        )
        described = spec.describe()
        assert "arrival=hyperexp" in described
        assert "load=0.55" in described
