"""Smoke tests for the example scripts.

Each example guards its entry point with ``__name__ == "__main__"``, so
importing is safe; the fast helpers are exercised directly.  (The full
example mains simulate tens of thousands of time units and are run
manually / in CI's long lane, not here.)
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

EXAMPLES = [
    "quickstart",
    "stock_trading",
    "web_pipeline",
    "strategy_playground",
    "trace_debugging",
]


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples.{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_imports_cleanly(name):
    module = load_example(name)
    assert hasattr(module, "main")


class TestStrategyPlayground:
    def test_walk_assignments_serial(self):
        playground = load_example("strategy_playground")
        from repro.core.notation import parse

        tree = parse("[2 3 5]")
        rows, finish = playground.walk_assignments(tree, deadline=20.0,
                                                   strategy="EQF")
        assert finish == pytest.approx(10.0)
        assert len(rows) == 3
        # Final stage's virtual deadline reaches the global deadline.
        assert float(rows[-1][3]) == pytest.approx(20.0)

    def test_walk_assignments_nested(self):
        playground = load_example("strategy_playground")
        from repro.core.notation import parse

        tree = parse("[1 [2 || 2] 1]")
        rows, finish = playground.walk_assignments(tree, deadline=15.0,
                                                   strategy="UD-DIV1")
        assert finish == pytest.approx(4.0)
        assert len(rows) == 4


class TestStockTradingHelpers:
    def test_build_trade_task_shape(self):
        trading = load_example("stock_trading")
        from repro.sim.rng import StreamFactory

        tree = trading.build_trade_task(StreamFactory(1))
        assert tree.subtask_count() == 6  # 3 feeds + filter + expert + order
        leaves = list(tree.leaves())
        assert leaves[0].node_index in trading.FEED_NODES
        assert leaves[-1].node_index == trading.ORDER_NODE

    def test_trade_nodes_disjoint(self):
        trading = load_example("stock_trading")
        roles = set(trading.FEED_NODES) | {
            trading.FILTER_NODE, trading.EXPERT_NODE, trading.ORDER_NODE
        }
        assert len(roles) == 6


class TestWebPipelineHelpers:
    def test_build_request_shape(self):
        web = load_example("web_pipeline")
        from repro.sim.rng import StreamFactory

        tree = web.build_request(StreamFactory(1))
        assert tree.subtask_count() == 5  # gateway + 3 backends + render
        # The middle child is the parallel fan-out.
        assert len(tree.children) == 3
        assert tree.children[1].kind == "parallel"
