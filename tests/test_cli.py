"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("Fig2", "Fig3", "Fig4", "Sec6", "V1", "V6"):
            assert experiment_id in out


class TestTable1:
    def test_prints_baseline(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Earliest Deadline First" not in out  # CLI prints config value
        assert "EDF" in out
        assert "frac_local" in out
        assert "0.375" in out     # derived per-node local rate
        assert "0.1875" in out    # derived global rate

    def test_load_check_matches(self, capsys):
        main(["table1"])
        out = capsys.readouterr().out
        assert "load check (recomputed)" in out
        assert "0.5" in out


class TestRun:
    def test_runs_variation_at_smoke_scale(self, capsys):
        assert main(["run", "V4", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "MD_global" in out
        assert "m~U{2..6}" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "Fig99"])

    def test_case_insensitive_id(self, capsys):
        assert main(["run", "v4", "--scale", "smoke"]) == 0


class TestSimulate:
    def test_basic_simulation(self, capsys):
        code = main(
            [
                "simulate",
                "--strategy", "EQF",
                "--load", "0.4",
                "--sim-time", "1500",
                "--warmup", "150",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MD_local" in out
        assert "MD_global" in out
        assert "strategy=EQF" in out

    def test_parallel_structure(self, capsys):
        code = main(
            [
                "simulate",
                "--strategy", "DIV-1",
                "--structure", "parallel",
                "--sim-time", "1500",
                "--warmup", "150",
            ]
        )
        assert code == 0
        assert "MD_global" in capsys.readouterr().out

    def test_bad_strategy_errors(self):
        with pytest.raises(ValueError):
            main(["simulate", "--strategy", "BOGUS",
                  "--sim-time", "500", "--warmup", "50"])


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_bad_scale_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "Fig2", "--scale", "huge"])


class TestSimulateSeedEcho:
    def test_resolved_seed_echoed(self, capsys):
        assert main([
            "simulate", "--sim-time", "600", "--warmup", "60", "--seed", "77",
        ]) == 0
        out = capsys.readouterr().out
        assert "resolved seed: 77" in out


class TestScenarios:
    def test_list_names_the_library(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("baseline", "bursty-mmpp", "smart-routing", "rush-hour"):
            assert name in out

    def test_run_prints_metrics_and_seed(self, capsys):
        assert main([
            "scenarios", "run", "baseline",
            "--strategy", "EQF", "--scale", "smoke", "--seed", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "MD_global" in out
        assert "resolved seed: 5" in out

    def test_run_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["scenarios", "run", "no-such"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_rejects_negative_batch_size(self, capsys):
        assert main([
            "scenarios", "run", "baseline", "--batch-size", "-1",
        ]) == 2
        assert "batch_size" in capsys.readouterr().err

    def test_sweep_ranks_strategies_per_scenario(self, capsys):
        assert main([
            "scenarios", "sweep",
            "--scenario", "baseline", "--scenario", "hotspot-zipf",
            "--strategies", "UD", "EQF",
            "--scale", "smoke", "--seed", "3",
        ]) == 0
        captured = capsys.readouterr()
        assert "baseline" in captured.out
        assert "hotspot-zipf" in captured.out
        assert "rank" in captured.out
        assert "resolved seed: 3" in captured.out
        assert "2 scenario(s) x 2 strategies" in captured.err

    def test_sweep_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["scenarios", "sweep", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_unknown_strategy_fails_cleanly(self, capsys):
        assert main([
            "scenarios", "run", "baseline", "--strategy", "BOGUS",
        ]) == 2
        assert "unknown strategy" in capsys.readouterr().err

    def test_sweep_unknown_strategy_fails_cleanly(self, capsys):
        assert main([
            "scenarios", "sweep", "--scenario", "baseline",
            "--strategies", "BOGUS", "UD",
        ]) == 2
        assert "unknown strategy" in capsys.readouterr().err


class TestSimulateCheckpointFlags:
    def test_checkpoint_and_resume_print_identical_tables(
        self, capsys, tmp_path
    ):
        path = str(tmp_path / "run.ckpt")
        base = [
            "simulate", "--strategy", "EQF",
            "--sim-time", "600", "--warmup", "60", "--seed", "42",
        ]
        assert main(base) == 0
        plain = capsys.readouterr().out
        assert main(
            base + ["--checkpoint", path, "--checkpoint-events", "500"]
        ) == 0
        assert capsys.readouterr().out == plain
        import os as _os

        assert _os.path.exists(path)
        assert main(["simulate", "--resume", path]) == 0
        captured = capsys.readouterr()
        assert captured.out == plain
        assert "resumed from" in captured.err

    def test_trigger_flags_without_path_fail_cleanly(self, capsys):
        assert main(["simulate", "--checkpoint-events", "10"]) == 2
        assert "--checkpoint PATH" in capsys.readouterr().err

    def test_resume_from_junk_fails_cleanly(self, capsys, tmp_path):
        bogus = tmp_path / "bogus.ckpt"
        bogus.write_bytes(b"junk")
        assert main(["simulate", "--resume", str(bogus)]) == 2
        assert "not a repro checkpoint" in capsys.readouterr().err

    def test_resume_from_missing_file_fails_cleanly(self, capsys, tmp_path):
        assert main(
            ["simulate", "--resume", str(tmp_path / "absent.ckpt")]
        ) == 2
        assert "no such checkpoint file" in capsys.readouterr().err


class TestSweepJournalFlags:
    _BASE = [
        "scenarios", "sweep", "--scenario", "baseline",
        "--strategies", "UD", "EQF", "--scale", "smoke", "--seed", "17",
    ]

    def test_journal_path_echoed_and_rerun_identical(self, capsys, tmp_path):
        journal = str(tmp_path / "sweep.json")
        assert main(self._BASE + ["--journal", journal]) == 0
        first = capsys.readouterr()
        import os as _os

        assert f"journal: {_os.path.abspath(journal)}" in first.err
        assert _os.path.exists(journal)

        assert main(self._BASE + ["--journal", journal]) == 0
        second = capsys.readouterr()
        assert second.out == first.out  # byte-identical report
        assert "restored 2 completed run(s)" in second.err

    def test_foreign_journal_fails_cleanly(self, capsys, tmp_path):
        journal = str(tmp_path / "sweep.json")
        assert main(self._BASE + ["--journal", journal]) == 0
        capsys.readouterr()
        other = self._BASE[:-1] + ["18", "--journal", journal]
        assert main(other) == 2
        assert "different sweep" in capsys.readouterr().err


class TestSimulateMetricsFlags:
    _BASE = [
        "simulate", "--strategy", "EQF",
        "--sim-time", "600", "--warmup", "60", "--seed", "42",
    ]

    def test_metrics_out_writes_series_and_output_unchanged(
        self, capsys, tmp_path
    ):
        assert main(self._BASE) == 0
        plain = capsys.readouterr().out
        path = str(tmp_path / "m.jsonl")
        assert main(
            self._BASE
            + ["--metrics-out", path, "--metrics-every-events", "500"]
        ) == 0
        captured = capsys.readouterr()
        assert captured.out == plain  # emission is invisible to the table
        assert f"metrics series: " in captured.err

        from repro.system.emission import read_metrics_series

        records = read_metrics_series(path)
        assert records[0]["type"] == "header"
        assert records[-1]["type"] == "final"

    def test_table_prints_percentiles(self, capsys):
        assert main(self._BASE) == 0
        out = capsys.readouterr().out
        assert "global p99 response" in out
        assert "global p99 lateness" in out

    def test_trigger_flags_without_path_fail_cleanly(self, capsys):
        assert main(["simulate", "--metrics-every-events", "10"]) == 2
        assert "--metrics-out PATH" in capsys.readouterr().err

    def test_default_event_trigger_when_only_path_given(
        self, capsys, tmp_path
    ):
        path = str(tmp_path / "m.jsonl")
        assert main(self._BASE + ["--metrics-out", path]) == 0
        capsys.readouterr()
        from repro.system.emission import read_metrics_series

        # Default cadence is coarse (100k events), so a short run still
        # produces a valid header + final pair.
        records = read_metrics_series(path)
        assert records[0]["type"] == "header"
        assert records[-1]["type"] == "final"


class TestMetricsVerb:
    def _write_series(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        assert main([
            "simulate", "--strategy", "EQF",
            "--sim-time", "600", "--warmup", "60", "--seed", "42",
            "--metrics-out", path, "--metrics-every-events", "300",
        ]) == 0
        return path

    def test_tail(self, capsys, tmp_path):
        path = self._write_series(tmp_path)
        capsys.readouterr()
        assert main(["metrics", "tail", path]) == 0
        out = capsys.readouterr().out
        assert "MD_global" in out
        assert "p99_resp" in out

    def test_summarize(self, capsys, tmp_path):
        path = self._write_series(tmp_path)
        capsys.readouterr()
        assert main(["metrics", "summarize", path]) == 0
        out = capsys.readouterr().out
        assert "seed=42" in out
        assert "final:" in out

    def test_torn_final_record_warns_and_proceeds(self, capsys, tmp_path):
        # A run killed mid-write leaves a partial trailing record; both
        # verbs must still serve the intact prefix, with a stderr
        # warning naming the skipped tail instead of silent loss.
        path = self._write_series(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "interval", "now": 9')  # torn
        capsys.readouterr()
        assert main(["metrics", "tail", path]) == 0
        captured = capsys.readouterr()
        assert "MD_global" in captured.out
        assert "warning:" in captured.err
        assert "torn final record" in captured.err
        assert main(["metrics", "summarize", path]) == 0
        captured = capsys.readouterr()
        assert "final:" in captured.out
        assert "torn final record" in captured.err

    def test_missing_file_fails_cleanly(self, capsys, tmp_path):
        assert main(
            ["metrics", "tail", str(tmp_path / "absent.jsonl")]
        ) == 2
        assert "no such metrics series" in capsys.readouterr().err

    def test_junk_file_fails_cleanly(self, capsys, tmp_path):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text('{"type": "interval"}\n')
        assert main(["metrics", "summarize", str(bogus)]) == 2
        assert capsys.readouterr().err  # explains the rejection


class TestScenarioRunMetricsFlag:
    _BASE = [
        "scenarios", "run", "baseline",
        "--scale", "smoke", "--seed", "17",
    ]

    def test_metrics_out_report_matches_plain_run(self, capsys, tmp_path):
        assert main(self._BASE) == 0
        plain = capsys.readouterr().out
        path = str(tmp_path / "m.jsonl")
        assert main(self._BASE + ["--metrics-out", path]) == 0
        captured = capsys.readouterr()
        assert captured.out == plain  # serial in-process run, same numbers
        assert "peak RSS:" in captured.err
        assert "unit pool high-water:" in captured.err
        from repro.system.emission import read_metrics_series

        assert read_metrics_series(path)[-1]["type"] == "final"

    def test_plain_run_omits_footprint_lines(self, capsys):
        assert main(self._BASE) == 0
        err = capsys.readouterr().err
        assert "peak RSS:" not in err
        assert "unit pool high-water:" not in err

    def test_metrics_out_rejects_journal(self, capsys, tmp_path):
        assert main(
            self._BASE
            + ["--metrics-out", str(tmp_path / "m.jsonl"),
               "--journal", str(tmp_path / "j.json")]
        ) == 2
        assert "--journal" in capsys.readouterr().err

    def test_report_has_p99_lateness_row(self, capsys):
        assert main(self._BASE) == 0
        assert "global p99 lateness" in capsys.readouterr().out

    def test_sweep_report_has_p99_late_column(self, capsys):
        assert main([
            "scenarios", "sweep", "--scenario", "baseline",
            "--strategies", "UD", "EQF", "--scale", "smoke", "--seed", "17",
        ]) == 0
        assert "p99_late" in capsys.readouterr().out
