"""Structural tests for figure and variation definitions.

These run the real simulator at a tiny scale: the goal is that every
experiment definition executes end to end and produces well-formed output
(the *statistical* claims are asserted in test_paper_claims.py at a larger
scale).
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import FigureResult, fig2, fig3, fig4, ssp_psp
from repro.experiments.registry import EXPERIMENTS, experiment_ids, get_experiment
from repro.experiments.runner import RunScale
from repro.experiments.variations import (
    VariationResult,
    abort_policy_comparison,
    heterogeneous_nodes,
    pex_error_sweep,
    scheduler_comparison,
    slack_sweep,
    variable_subtasks,
)

TINY = RunScale(sim_time=300.0, warmup_time=30.0, replications=1, label="tiny")


class TestFigureDefinitions:
    def test_fig2_structure(self):
        result = fig2(scale=TINY)
        assert isinstance(result, FigureResult)
        assert result.sweep.strategies == ["UD", "ED", "EQS", "EQF"]
        assert len(result.sweep.points) == 5 * 4

    def test_fig3_structure(self):
        result = fig3(scale=TINY)
        assert result.sweep.parameter == "frac_local"
        assert result.sweep.strategies == ["UD", "EQF"]

    def test_fig4_structure(self):
        result = fig4(scale=TINY)
        assert result.sweep.strategies == ["UD", "DIV-1", "DIV-2", "GF"]

    def test_fig4_without_gf(self):
        result = fig4(scale=TINY, include_gf=False)
        assert result.sweep.strategies == ["UD", "DIV-1", "DIV-2"]

    def test_ssp_psp_structure(self):
        result = ssp_psp(scale=TINY)
        assert result.sweep.strategies == ["UD-UD", "UD-DIV1", "EQF-UD", "EQF-DIV1"]

    def test_figure_rendering(self):
        result = fig3(scale=TINY)
        table = result.table()
        assert "MD_glo[UD]" in table
        chart = result.chart("global")
        assert "miss ratio" in chart
        full = result.render()
        assert "local" in full and "global" in full


class TestVariationDefinitions:
    @pytest.mark.parametrize(
        "fn,expected_settings",
        [
            (pex_error_sweep, 4),
            (abort_policy_comparison, 3),
            (scheduler_comparison, 3),
            (variable_subtasks, 2),
            (heterogeneous_nodes, 2),
            (slack_sweep, 6),
        ],
    )
    def test_variation_runs(self, fn, expected_settings):
        result = fn(scale=TINY)
        assert isinstance(result, VariationResult)
        settings = {row.setting for row in result.rows}
        assert len(settings) == expected_settings
        # Two strategies per setting by default.
        assert len(result.rows) == expected_settings * 2

    def test_variation_table_renders(self):
        result = abort_policy_comparison(scale=TINY)
        table = result.table()
        assert "MD_global" in table
        assert "abort-tardy" in table

    def test_row_lookup(self):
        result = abort_policy_comparison(scale=TINY)
        row = result.row("no-abort", "UD")
        assert row.strategy == "UD"
        with pytest.raises(KeyError):
            result.row("nonexistent", "UD")


class TestRegistry:
    def test_all_design_ids_present(self):
        expected = {"Fig2", "Fig3", "Fig4", "Sec6", "V1", "V2", "V3", "V4", "V5", "V6"}
        assert set(experiment_ids()) == expected

    def test_lookup_case_insensitive(self):
        assert get_experiment("fig2").experiment_id == "Fig2"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_experiment("Fig99")

    def test_entries_are_runnable(self):
        entry = get_experiment("V2")
        result = entry.run(TINY)
        assert isinstance(result, VariationResult)

    def test_descriptions_nonempty(self):
        for entry in EXPERIMENTS.values():
            assert entry.description
            assert entry.paper_artifact
