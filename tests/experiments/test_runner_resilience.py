"""Regression tests for sweep-pool resilience to worker death.

A process-pool worker that dies mid-batch (OOM killer, a segfaulting
extension) poisons the whole :class:`ProcessPoolExecutor` and raises
:class:`BrokenProcessPool` for every outstanding future.  ``run_grid``
must degrade gracefully: keep the batches that finished, resubmit the
unfinished ones once on a fresh pool, and as a last resort run the
remainder in-process -- with results positionally identical to a serial
run on every path.

Mechanics: the pool executes ``runner.run_config_batch``, which these
tests monkeypatch with :func:`_killing_batch`.  The multiprocessing
start method on Linux is ``fork``, so workers inherit the patched module
state; the killer takes ``os._exit`` (un-catchable, exactly what a
SIGKILL looks like to the executor) only when

* it is running in a *forked child* (``os.getpid() != _MAIN_PID`` --
  the in-process fallback must never kill the test process), and
* an atomic marker-file slot is still free (``O_CREAT | O_EXCL``), so
  each test controls exactly how many kills happen across rounds.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import runner
from repro.experiments.runner import run_config_batch, run_grid
from repro.system.config import baseline_config

#: The pytest process; forked pool workers see a different getpid().
_MAIN_PID = os.getpid()

#: The real batch executor, captured before any monkeypatching.
_REAL_BATCH = run_config_batch


def _killing_batch(configs):
    """``run_config_batch`` with a self-destruct: claim a kill slot and
    die, or (slots exhausted / not in a worker) run the real batch."""
    kill_dir = os.environ.get("REPRO_TEST_KILL_DIR")
    limit = int(os.environ.get("REPRO_TEST_KILL_LIMIT", "0"))
    if kill_dir and os.getpid() != _MAIN_PID:
        for slot in range(limit):
            try:
                fd = os.open(
                    os.path.join(kill_dir, f"kill-{slot}"),
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                )
            except FileExistsError:
                continue
            os.close(fd)
            os._exit(1)
    return _REAL_BATCH(configs)


def _grid_configs():
    """Four tiny, distinct cells: enough batches that some finish before
    the kill and some are still pending when the pool breaks."""
    return [
        baseline_config(sim_time=300.0, warmup_time=50.0, seed=seed)
        for seed in (101, 102, 103, 104)
    ]


@pytest.fixture
def kill_switch(monkeypatch, tmp_path):
    """Arm the killer for a test; returns a setter for the kill budget."""
    monkeypatch.setattr(runner, "run_config_batch", _killing_batch)
    # run_grid clamps the pool to the CPU count; on a single-core runner
    # that would silently skip the pool path these tests exist to cover.
    monkeypatch.setattr(runner.multiprocessing, "cpu_count", lambda: 2)
    monkeypatch.setenv("REPRO_TEST_KILL_DIR", str(tmp_path))

    def arm(limit: int) -> None:
        monkeypatch.setenv("REPRO_TEST_KILL_LIMIT", str(limit))

    return arm


class TestWorkerDeathResilience:
    def test_single_worker_death_resubmits_and_matches_serial(
        self, kill_switch
    ):
        configs = _grid_configs()
        expected = run_grid(configs, replications=1, workers=1)
        kill_switch(1)
        with pytest.warns(RuntimeWarning, match="sweep worker died"):
            survived = run_grid(
                configs, replications=1, workers=2, batch_size=1
            )
        assert survived == expected

    def test_double_pool_break_falls_back_in_process(self, kill_switch):
        """A single-worker pool killed in both rounds: the remaining
        batches must complete in-process (where the killer stands down --
        the pid guard -- exactly like a healthy interpreter would)."""
        batches = [[config] for config in _grid_configs()]
        expected = [_REAL_BATCH(batch) for batch in batches]
        kill_switch(2)
        with pytest.warns(RuntimeWarning) as record:
            survived, recovered = runner._run_batches_resilient(
                batches, processes=1
            )
        messages = [str(w.message) for w in record]
        assert any("sweep worker died" in m for m in messages)
        assert any("broke twice" in m for m in messages)
        assert survived == expected
        # Every fallback-touched run is surfaced with its identity.
        assert recovered
        assert {cell.mode for cell in recovered} <= {
            "resubmitted", "in-process"
        }
        assert all(f"seed={cell.seed}" in cell.description for cell in recovered)

    def test_no_kill_is_warning_free(self, kill_switch):
        """The patched pool path without any kill must stay silent and
        positionally identical to the serial run."""
        configs = _grid_configs()
        expected = run_grid(configs, replications=1, workers=1)
        kill_switch(0)
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            survived = run_grid(
                configs, replications=1, workers=2, batch_size=1
            )
        assert survived == expected
