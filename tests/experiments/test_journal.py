"""Tests for restart-safe sweep journals (runner.run_grid_report).

A journal makes a sweep resumable: completed runs land in a JSON file
(written atomically per cell) and a re-run with the same journal skips
them and reproduces the identical report.  These tests cover the skip
logic (counting actual runner invocations), the fingerprint guard
against mixing different sweeps, corruption handling, and the
acceptance scenario: SIGKILL a sweep mid-flight, re-run with the same
journal, and get a byte-identical report while re-running only the
unfinished cells.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.experiments.runner import (
    JournalError,
    RunScale,
    run_config,
    run_grid_report,
)
from repro.system.config import baseline_config

#: Tiny cells: journal mechanics do not need statistics.
def _configs(seeds=(201, 202)):
    return [
        baseline_config(sim_time=250.0, warmup_time=50.0, seed=seed)
        for seed in seeds
    ]


class TestJournalRoundtrip:
    def test_fresh_run_writes_journal(self, tmp_path):
        journal = str(tmp_path / "sweep.json")
        report = run_grid_report(_configs(), replications=2, journal=journal)
        assert report.journal_path == journal
        assert report.journal_restored == 0
        data = json.loads(open(journal).read())
        assert data["magic"] == "repro-sweep-journal"
        assert len(data["cells"]) == 4  # 2 cells x 2 replications

    def test_rerun_restores_everything_and_runs_nothing(self, tmp_path):
        journal = str(tmp_path / "sweep.json")
        first = run_grid_report(_configs(), replications=2, journal=journal)

        calls = []

        def forbidden(config):
            calls.append(config.seed)
            raise AssertionError("journal should have skipped this run")

        second = run_grid_report(
            _configs(), replications=2, runner=forbidden, journal=journal
        )
        assert calls == []
        assert second.journal_restored == 4
        assert second.estimates == first.estimates

    def test_partial_journal_reruns_only_missing_cells(self, tmp_path):
        journal = str(tmp_path / "sweep.json")
        first = run_grid_report(_configs(), replications=2, journal=journal)

        data = json.loads(open(journal).read())
        data["cells"] = {
            k: v for k, v in data["cells"].items() if int(k) < 2
        }
        open(journal, "w").write(json.dumps(data))

        calls = []

        def counting(config):
            calls.append(config.seed)
            return run_config(config)

        second = run_grid_report(
            _configs(), replications=2, runner=counting, journal=journal
        )
        assert len(calls) == 2  # only the two deleted entries
        assert second.journal_restored == 2
        assert second.estimates == first.estimates
        # The journal is whole again afterwards.
        data = json.loads(open(journal).read())
        assert len(data["cells"]) == 4

    def test_journal_works_through_the_process_pool(self, tmp_path):
        journal = str(tmp_path / "pooled.json")
        serial = run_grid_report(_configs(), replications=2)
        pooled = run_grid_report(
            _configs(),
            replications=2,
            workers=2,
            batch_size=1,
            journal=journal,
        )
        assert pooled.estimates == serial.estimates
        assert len(json.loads(open(journal).read())["cells"]) == 4
        resumed = run_grid_report(
            _configs(), replications=2, workers=2, journal=journal
        )
        assert resumed.journal_restored == 4
        assert resumed.estimates == serial.estimates


class TestJournalGuards:
    def test_different_grid_is_refused(self, tmp_path):
        journal = str(tmp_path / "sweep.json")
        run_grid_report(_configs(), replications=2, journal=journal)
        with pytest.raises(JournalError, match="different sweep"):
            run_grid_report(
                _configs(seeds=(301, 302)), replications=2, journal=journal
            )

    def test_different_replication_count_is_refused(self, tmp_path):
        journal = str(tmp_path / "sweep.json")
        run_grid_report(_configs(), replications=2, journal=journal)
        with pytest.raises(JournalError, match="different sweep"):
            run_grid_report(_configs(), replications=3, journal=journal)

    def test_unreadable_file_is_refused(self, tmp_path):
        journal = tmp_path / "sweep.json"
        journal.write_text("{not json")
        with pytest.raises(JournalError, match="unreadable"):
            run_grid_report(_configs(), replications=1, journal=str(journal))

    def test_foreign_json_is_refused(self, tmp_path):
        journal = tmp_path / "sweep.json"
        journal.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(JournalError, match="not a sweep journal"):
            run_grid_report(_configs(), replications=1, journal=str(journal))

    def test_future_version_is_refused(self, tmp_path):
        journal = str(tmp_path / "sweep.json")
        run_grid_report(_configs(), replications=1, journal=journal)
        data = json.loads(open(journal).read())
        data["version"] = 999
        open(journal, "w").write(json.dumps(data))
        with pytest.raises(JournalError, match="version"):
            run_grid_report(_configs(), replications=1, journal=journal)


#: Sweeps two scenarios x two strategies serially with a journal, and
#: SIGKILLs itself when the third cell starts -- the journal holds
#: exactly the two finished runs.
_KILLED_SWEEP_DRIVER = """
import os, signal, sys
from repro.experiments.runner import RunScale, run_config
from repro.scenarios import get_scenario
from repro.scenarios.report import run_scenario_sweep

scale = RunScale(sim_time=250.0, warmup_time=50.0, replications=1)
count = [0]

def killing(config):
    if count[0] == 2:
        os.kill(os.getpid(), signal.SIGKILL)
    count[0] += 1
    return run_config(config)

run_scenario_sweep(
    [get_scenario("baseline"), get_scenario("steady-churn")],
    strategies=["UD", "EQF"],
    scale=scale,
    seed=17,
    runner=killing,
    journal=sys.argv[1],
)
raise SystemExit("unreachable: cell 3 must have killed us")
"""

#: Finishes (or freshly runs) the same sweep and prints the rendered
#: table plus how many runs the journal restored.
_FINISH_SWEEP_DRIVER = """
import json, sys
from repro.experiments.runner import RunScale, run_config
from repro.scenarios import get_scenario
from repro.scenarios.report import run_scenario_sweep

scale = RunScale(sim_time=250.0, warmup_time=50.0, replications=1)
calls = [0]

def counting(config):
    calls[0] += 1
    return run_config(config)

result = run_scenario_sweep(
    [get_scenario("baseline"), get_scenario("steady-churn")],
    strategies=["UD", "EQF"],
    scale=scale,
    seed=17,
    runner=counting,
    journal=sys.argv[1] if len(sys.argv) > 1 else None,
)
print(json.dumps({
    "table": result.table(),
    "restored": result.journal_restored,
    "ran": calls[0],
}))
"""


class TestKillMinusNineSweepResume:
    """SIGKILL a journaled sweep mid-flight; the re-run must skip the
    completed cells and render the byte-identical report."""

    def _run(self, script, *argv, check=True):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (
                os.path.join(os.path.dirname(__file__), "..", "..", "src"),
                env.get("PYTHONPATH", ""),
            ) if p
        )
        return subprocess.run(
            [sys.executable, "-c", script, *argv],
            env=env, capture_output=True, text=True, check=check,
        )

    def test_killed_sweep_resumes_byte_identically(self, tmp_path):
        journal = str(tmp_path / "sweep.json")
        killed = self._run(_KILLED_SWEEP_DRIVER, journal, check=False)
        assert killed.returncode == -signal.SIGKILL, killed.stderr
        assert len(json.loads(open(journal).read())["cells"]) == 2

        resumed = json.loads(self._run(_FINISH_SWEEP_DRIVER, journal).stdout)
        straight = json.loads(self._run(_FINISH_SWEEP_DRIVER).stdout)
        assert resumed["restored"] == 2
        assert resumed["ran"] == 2  # only the unfinished half
        assert straight["restored"] == 0
        assert straight["ran"] == 4
        assert resumed["table"] == straight["table"]
