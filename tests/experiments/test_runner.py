"""Unit tests for the experiment runner (repro.experiments.runner).

A fake runner replaces the real simulation so these tests are instant and
deterministic: it returns canned RunResults keyed off the config.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments.runner import (
    FULL,
    QUICK,
    SCALES,
    SMOKE,
    RunScale,
    replicate,
    sweep,
)
from repro.system.config import baseline_config
from repro.system.metrics import ClassStats, RunResult


def fake_result(md_local=0.2, md_global=0.4, completed=100):
    def stats(miss_ratio):
        missed = int(round(miss_ratio * completed))
        return ClassStats(
            completed=completed, missed=missed, aborted=0,
            mean_response=1.0, mean_lateness=0.0, mean_waiting=0.5,
        )

    return RunResult(
        sim_time=1000.0,
        warmup=100.0,
        per_class={"local": stats(md_local), "global": stats(md_global)},
        per_node=[],
    )


class TestRunScale:
    def test_presets_registered(self):
        assert set(SCALES) == {"smoke", "quick", "full"}

    def test_full_matches_paper(self):
        assert FULL.sim_time == 1_000_000.0
        assert FULL.replications == 2

    def test_apply_stamps_run_lengths(self):
        config = SMOKE.apply(baseline_config())
        assert config.sim_time == SMOKE.sim_time
        assert config.warmup_time == SMOKE.warmup_time

    def test_bad_replications_rejected(self):
        with pytest.raises(ValueError):
            RunScale(sim_time=10.0, warmup_time=1.0, replications=0)

    def test_bad_warmup_rejected(self):
        with pytest.raises(ValueError):
            RunScale(sim_time=10.0, warmup_time=10.0, replications=1)


class TestReplicate:
    def test_aggregates_runs(self):
        seeds = []

        def runner(config):
            seeds.append(config.seed)
            return fake_result(md_local=0.2, md_global=0.4)

        estimate = replicate(baseline_config(seed=3), replications=4, runner=runner)
        assert len(seeds) == 4
        assert len(set(seeds)) == 4  # distinct seeds per replication
        assert estimate.md_local.mean == pytest.approx(0.2)
        assert estimate.md_global.mean == pytest.approx(0.4)
        assert estimate.md_global.n == 4
        assert estimate.local_completed == 400

    def test_gap(self):
        estimate = replicate(
            baseline_config(), replications=2,
            runner=lambda c: fake_result(md_local=0.1, md_global=0.35),
        )
        assert estimate.gap == pytest.approx(0.25)

    def test_single_replication_infinite_ci(self):
        estimate = replicate(
            baseline_config(), replications=1, runner=lambda c: fake_result()
        )
        assert math.isinf(estimate.md_local.half_width)

    def test_variance_reflected_in_ci(self):
        results = iter([fake_result(md_local=0.1), fake_result(md_local=0.3)])
        estimate = replicate(
            baseline_config(), replications=2, runner=lambda c: next(results)
        )
        assert estimate.md_local.mean == pytest.approx(0.2)
        assert estimate.md_local.half_width > 0

    def test_parallel_workers_match_serial(self):
        """workers > 1 must reproduce the serial result exactly (the seeds
        are fixed up front, so process scheduling cannot leak in)."""
        config = baseline_config(sim_time=800.0, warmup_time=80.0, seed=5)
        serial = replicate(config, replications=2, workers=1)
        parallel = replicate(config, replications=2, workers=2)
        assert parallel.md_local.mean == serial.md_local.mean
        assert parallel.md_global.mean == serial.md_global.mean
        assert parallel.local_completed == serial.local_completed

    def test_workers_with_injected_runner_warns_and_runs_serially(self):
        """An injected runner cannot cross process boundaries; asking for
        workers anyway must be loud (a RuntimeWarning), not silent."""
        calls = []

        def runner(config):
            calls.append(config.seed)
            return fake_result()

        with pytest.warns(RuntimeWarning, match="picklable"):
            estimate = replicate(
                baseline_config(seed=3), replications=3, runner=runner,
                workers=4,
            )
        assert len(calls) == 3
        assert estimate.md_local.n == 3

    def test_forked_pool_path_matches_serial(self, monkeypatch):
        """Force the process-pool branch (pool size is capped at the host's
        cpu_count, so a 1-CPU box would otherwise run serially) and check
        the forked results -- including config/result pickling -- match."""
        import repro.experiments.runner as runner_mod

        monkeypatch.setattr(
            runner_mod.multiprocessing, "cpu_count", lambda: 2
        )
        config = baseline_config(sim_time=400.0, warmup_time=40.0, seed=5)
        serial = replicate(config, replications=2, workers=1)
        pooled = replicate(config, replications=2, workers=2)
        assert pooled.md_local.mean == serial.md_local.mean
        assert pooled.md_global.mean == serial.md_global.mean
        assert pooled.local_completed == serial.local_completed

    def test_workers_zero_means_all_cores(self):
        from repro.experiments.runner import resolve_workers
        import multiprocessing

        assert resolve_workers(0) == multiprocessing.cpu_count()
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestBatchExecutor:
    def test_resolve_batch_size_auto(self):
        from repro.experiments.runner import resolve_batch_size

        # ~4 batches per worker: 40 runs / (2 workers * 4) = 5 per batch.
        assert resolve_batch_size(0, runs=40, workers=2) == 5
        # Rounds up so no runs are dropped.
        assert resolve_batch_size(0, runs=41, workers=2) == 6
        # Never below one run per batch.
        assert resolve_batch_size(0, runs=3, workers=4) == 1

    def test_resolve_batch_size_explicit_and_invalid(self):
        from repro.experiments.runner import resolve_batch_size

        assert resolve_batch_size(7, runs=40, workers=2) == 7
        with pytest.raises(ValueError):
            resolve_batch_size(-1, runs=40, workers=2)

    def test_run_config_batch_preserves_order(self):
        """One warm-interpreter batch returns results positionally."""
        from repro.experiments.runner import run_config_batch

        configs = [
            baseline_config(sim_time=400.0, warmup_time=40.0, seed=s)
            for s in (5, 6)
        ]
        batch = run_config_batch(configs)
        singles = [run_config_batch([config])[0] for config in configs]
        assert batch == singles

    def test_batched_pool_matches_serial(self, monkeypatch):
        """Force the process-pool branch and check the batched grid --
        including the batch slicing and result flattening -- reproduces
        the serial sweep bit for bit at several batch sizes."""
        import repro.experiments.runner as runner_mod

        monkeypatch.setattr(
            runner_mod.multiprocessing, "cpu_count", lambda: 2
        )
        scale = RunScale(sim_time=400.0, warmup_time=40.0, replications=2)
        kwargs = dict(
            base=baseline_config(),
            parameter="load",
            values=[0.2, 0.4],
            strategies=["UD"],
            scale=scale,
        )
        serial = sweep(**kwargs)
        for batch_size in (0, 1, 3, 100):
            batched = sweep(**kwargs, workers=2, batch_size=batch_size)
            for s, p in zip(serial.points, batched.points):
                assert (s.x, s.strategy) == (p.x, p.strategy)
                assert s.estimate.md_local.mean == p.estimate.md_local.mean
                assert s.estimate.md_global.mean == p.estimate.md_global.mean
                assert (
                    s.estimate.local_completed == p.estimate.local_completed
                )


class TestSweep:
    def test_grid_shape(self):
        result = sweep(
            base=baseline_config(),
            parameter="load",
            values=[0.1, 0.3],
            strategies=["UD", "EQF"],
            scale=RunScale(sim_time=10, warmup_time=0, replications=1),
            runner=lambda c: fake_result(),
        )
        assert len(result.points) == 4
        assert result.x_values == [0.1, 0.3]
        assert result.strategies == ["UD", "EQF"]

    def test_config_carries_parameters(self):
        seen = []

        def runner(config):
            seen.append((config.load, config.strategy))
            return fake_result()

        sweep(
            base=baseline_config(),
            parameter="load",
            values=[0.1, 0.3],
            strategies=["UD"],
            scale=RunScale(sim_time=10, warmup_time=0, replications=1),
            runner=runner,
        )
        assert set(seen) == {(0.1, "UD"), (0.3, "UD")}

    def test_series_extraction(self):
        def runner(config):
            # Make MD_global a function of (load, strategy) to check routing.
            md = config.load + (0.1 if config.strategy == "UD" else 0.0)
            return fake_result(md_global=md, md_local=md / 2)

        result = sweep(
            base=baseline_config(),
            parameter="load",
            values=[0.1, 0.3],
            strategies=["UD", "EQF"],
            scale=RunScale(sim_time=10, warmup_time=0, replications=1),
            runner=runner,
        )
        assert result.series("UD", "global") == pytest.approx([0.2, 0.4])
        assert result.series("EQF", "global") == pytest.approx([0.1, 0.3])
        assert result.series("UD", "local") == pytest.approx([0.1, 0.2])

    def test_point_lookup(self):
        result = sweep(
            base=baseline_config(),
            parameter="load",
            values=[0.1],
            strategies=["UD"],
            scale=RunScale(sim_time=10, warmup_time=0, replications=1),
            runner=lambda c: fake_result(),
        )
        assert result.point(0.1, "UD").strategy == "UD"
        with pytest.raises(KeyError):
            result.point(0.9, "UD")

    def test_distinct_seeds_across_grid(self):
        seeds = []
        sweep(
            base=baseline_config(),
            parameter="load",
            values=[0.1, 0.2, 0.3],
            strategies=["UD", "EQF"],
            scale=RunScale(sim_time=10, warmup_time=0, replications=2),
            runner=lambda c: (seeds.append(c.seed), fake_result())[1],
        )
        assert len(seeds) == len(set(seeds)) == 12

    def test_grid_parallel_sweep_matches_serial(self):
        """sweep(workers>1) flattens the whole grid into one pool and must
        reproduce the single-worker sweep bit-for-bit."""
        scale = RunScale(sim_time=500.0, warmup_time=50.0, replications=2)
        kwargs = dict(
            base=baseline_config(),
            parameter="load",
            values=[0.2, 0.4],
            strategies=["UD", "EQF"],
            scale=scale,
        )
        serial = sweep(**kwargs)
        parallel = sweep(**kwargs, workers=4)
        for s, p in zip(serial.points, parallel.points):
            assert (s.x, s.strategy) == (p.x, p.strategy)
            assert s.estimate.md_local.mean == p.estimate.md_local.mean
            assert s.estimate.md_global.mean == p.estimate.md_global.mean
            assert s.estimate.local_completed == p.estimate.local_completed
