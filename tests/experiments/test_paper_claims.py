"""Integration tests asserting the paper's qualitative claims.

Each test reruns a slice of the evaluation at a reduced scale and checks
the *robust* orderings the paper reports -- who beats whom -- not absolute
percentages.  Seeds and run lengths were chosen so these orderings are
stable; if a refactoring flips one of them, the reproduction is broken.

These are the slowest tests in the suite (a few seconds each).
"""

from __future__ import annotations

import pytest

from repro.system.config import (
    baseline_config,
    parallel_baseline_config,
    serial_parallel_config,
)
from repro.system.simulation import simulate

RUN = dict(sim_time=8_000.0, warmup_time=800.0)


def md(config):
    result = simulate(config)
    return result.md_local, result.md_global


class TestSec4SerialClaims:
    """Sec. 4.2: the SSP baseline experiment."""

    def test_ud_discriminates_against_global_tasks(self):
        """At load 0.5 under UD, global tasks miss far more often than
        locals (paper: 40% vs 24%)."""
        local, global_ = md(baseline_config(strategy="UD", seed=11, **RUN))
        assert global_ > 1.4 * local

    def test_eqf_beats_ud_for_globals(self):
        """EQF significantly improves global tasks (Fig. 2b)."""
        _, ud = md(baseline_config(strategy="UD", seed=12, **RUN))
        _, eqf = md(baseline_config(strategy="EQF", seed=12, **RUN))
        assert eqf < ud * 0.9

    def test_local_tasks_barely_affected_by_strategy(self):
        """Fig. 2a: local miss ratios are close across SSP strategies
        (within a few points at the baseline's 75% local share)."""
        locals_ = [
            md(baseline_config(strategy=s, seed=13, **RUN))[0]
            for s in ("UD", "ED", "EQS", "EQF")
        ]
        assert max(locals_) - min(locals_) < 0.06

    def test_ed_lies_between_ud_and_eqf(self):
        """Sec. 4.2.1: 'the performance of ED lies between that of UD and
        EQF' (allowing statistical slop at reduced scale)."""
        _, ud = md(baseline_config(strategy="UD", seed=14, **RUN))
        _, ed = md(baseline_config(strategy="ED", seed=14, **RUN))
        _, eqf = md(baseline_config(strategy="EQF", seed=14, **RUN))
        assert eqf <= ed + 0.03
        assert ed <= ud + 0.03

    def test_eqs_close_to_eqf(self):
        """Sec. 4.2.1: 'EQS's performance is very close to that of EQF'."""
        _, eqs = md(baseline_config(strategy="EQS", seed=15, **RUN))
        _, eqf = md(baseline_config(strategy="EQF", seed=15, **RUN))
        assert abs(eqs - eqf) < 0.05

    def test_light_load_strategies_indistinguishable(self):
        """Fig. 2b: differences vanish when the load is very light."""
        _, ud = md(baseline_config(strategy="UD", load=0.1, seed=16, **RUN))
        _, eqf = md(baseline_config(strategy="EQF", load=0.1, seed=16, **RUN))
        assert abs(ud - eqf) < 0.04


class TestFig3FracLocalClaims:
    """Fig. 3: discrimination grows with the local-task share under UD."""

    def test_ud_global_worsens_with_more_locals(self):
        _, few_locals = md(
            baseline_config(strategy="UD", frac_local=0.1, seed=21, **RUN)
        )
        _, many_locals = md(
            baseline_config(strategy="UD", frac_local=0.9, seed=21, **RUN)
        )
        assert many_locals > few_locals + 0.05

    def test_eqf_flat_in_frac_local(self):
        """'MD_local^EQF and MD_global^EQF hardly change as frac_local
        varies.'"""
        _, low = md(baseline_config(strategy="EQF", frac_local=0.1, seed=22, **RUN))
        _, high = md(baseline_config(strategy="EQF", frac_local=0.9, seed=22, **RUN))
        assert abs(high - low) < 0.08

    def test_ud_gap_exceeds_eqf_gap_at_high_frac_local(self):
        config = dict(frac_local=0.9, seed=23, **RUN)
        ud_local, ud_global = md(baseline_config(strategy="UD", **config))
        eqf_local, eqf_global = md(baseline_config(strategy="EQF", **config))
        assert (ud_global - ud_local) > (eqf_global - eqf_local)


class TestFig4ParallelClaims:
    """Fig. 4 / Sec. 5.3: the PSP baseline experiment."""

    def test_ud_globals_miss_much_more_than_locals(self):
        """'UD causes global tasks to miss their deadlines almost three
        times as often as locals' -- we require at least 1.5x at our scale
        and the paper's qualitative point (a large multiple) holds."""
        local, global_ = md(parallel_baseline_config(strategy="UD", seed=31, **RUN))
        assert global_ > 1.5 * local

    def test_div1_narrows_the_gap(self):
        """DIV-1 keeps the two classes' miss rates at similar levels."""
        ud_local, ud_global = md(
            parallel_baseline_config(strategy="UD", seed=32, **RUN)
        )
        d1_local, d1_global = md(
            parallel_baseline_config(strategy="DIV-1", seed=32, **RUN)
        )
        assert abs(d1_global - d1_local) < abs(ud_global - ud_local)
        assert d1_global < ud_global

    def test_div1_costs_locals_only_marginally(self):
        """'this increment is marginal compared with the improvement'."""
        ud_local, ud_global = md(
            parallel_baseline_config(strategy="UD", seed=33, **RUN)
        )
        d1_local, d1_global = md(
            parallel_baseline_config(strategy="DIV-1", seed=33, **RUN)
        )
        local_cost = d1_local - ud_local
        global_gain = ud_global - d1_global
        assert local_cost < global_gain

    def test_div2_close_to_div1(self):
        """'The difference between their performance is hardly
        noticeable.'"""
        _, d1 = md(parallel_baseline_config(strategy="DIV-1", seed=34, **RUN))
        _, d2 = md(parallel_baseline_config(strategy="DIV-2", seed=34, **RUN))
        assert abs(d1 - d2) < 0.05

    def test_gf_significantly_beats_div1(self):
        """Sec. 5.3: 'GF does further reduce MD_global by a significant
        amount.'"""
        _, d1 = md(parallel_baseline_config(strategy="DIV-1", seed=35, **RUN))
        _, gf = md(parallel_baseline_config(strategy="GF", seed=35, **RUN))
        assert gf < d1 * 0.8


class TestSec6CombinedClaims:
    """Sec. 6: SSP + PSP are complementary and additive."""

    CONFIG = dict(load=0.6, seed=41, **RUN)

    def test_ud_ud_misses_vastly_more_globals(self):
        local, global_ = md(serial_parallel_config(strategy="UD-UD", **self.CONFIG))
        assert global_ > 1.3 * local

    def test_each_fix_alone_helps(self):
        _, udud = md(serial_parallel_config(strategy="UD-UD", **self.CONFIG))
        _, uddiv = md(serial_parallel_config(strategy="UD-DIV1", **self.CONFIG))
        _, eqfud = md(serial_parallel_config(strategy="EQF-UD", **self.CONFIG))
        assert uddiv < udud
        assert eqfud < udud

    def test_combination_is_best_and_closes_gap(self):
        """'when applied at the same time, [they] are able to keep
        MD_global close to MD_local even under a high load'."""
        _, udud = md(serial_parallel_config(strategy="UD-UD", **self.CONFIG))
        both_local, both_global = md(
            serial_parallel_config(strategy="EQF-DIV1", **self.CONFIG)
        )
        assert both_global < udud
        assert abs(both_global - both_local) < 0.1


class TestVariationClaims:
    """Sec. 4.3: 'the results do not change the basic conclusions'."""

    def test_eqf_still_wins_with_noisy_estimates(self):
        config = dict(pex_error=0.5, seed=51, **RUN)
        _, ud = md(baseline_config(strategy="UD", **config))
        _, eqf = md(baseline_config(strategy="EQF", **config))
        assert eqf < ud

    def test_eqf_still_wins_under_mlf(self):
        config = dict(scheduler="MLF", seed=52, **RUN)
        _, ud = md(baseline_config(strategy="UD", **config))
        _, eqf = md(baseline_config(strategy="EQF", **config))
        assert eqf < ud

    def test_eqf_still_wins_with_abort(self):
        """Firm overload management on the *natural* deadline preserves the
        conclusion."""
        config = dict(overload_policy="abort-tardy", seed=53, **RUN)
        _, ud = md(baseline_config(strategy="UD", **config))
        _, eqf = md(baseline_config(strategy="EQF", **config))
        assert eqf < ud

    def test_virtual_deadline_abort_punishes_eqf(self):
        """The GF caveat generalizes: components that blindly discard work
        past its *virtual* deadline turn EQF's tight subtask deadlines into
        spurious aborts, erasing (even reversing) its advantage."""
        config = dict(overload_policy="abort-virtual", seed=53, **RUN)
        _, ud = md(baseline_config(strategy="UD", **config))
        _, eqf = md(baseline_config(strategy="EQF", **config))
        assert eqf > ud

    def test_eqf_still_wins_with_variable_subtask_counts(self):
        config = dict(subtask_count_range=(2, 6), seed=54, **RUN)
        _, ud = md(baseline_config(strategy="UD", **config))
        _, eqf = md(baseline_config(strategy="EQF", **config))
        assert eqf < ud

    def test_eqf_still_wins_with_heterogeneous_nodes(self):
        config = dict(local_load_weights=(2, 2, 1, 1, 0.5, 0.5), seed=55, **RUN)
        _, ud = md(baseline_config(strategy="UD", **config))
        _, eqf = md(baseline_config(strategy="EQF", **config))
        assert eqf < ud

    def test_eqf_gain_peaks_at_moderate_slack(self):
        """V6: at extreme slack settings the strategies converge; the gain
        is largest in between."""
        gains = {}
        for flex in (0.25, 1.0, 8.0):
            config = dict(rel_flex=flex, seed=56, **RUN)
            _, ud = md(baseline_config(strategy="UD", **config))
            _, eqf = md(baseline_config(strategy="EQF", **config))
            gains[flex] = ud - eqf
        assert gains[1.0] > gains[0.25] - 0.02
        assert gains[1.0] > gains[8.0]
