"""Unit tests for the processing node (repro.system.node)."""

from __future__ import annotations

import pytest

from repro.core.strategies.base import PriorityClass
from repro.core.task import TaskClass
from repro.core.timing import TimingRecord
from repro.sim.core import Environment
from repro.system.metrics import MetricsCollector
from repro.system.node import Node
from repro.system.overload import AbortTardyAtDispatch
from repro.system.schedulers import EarliestDeadlineFirst
from repro.system.work import WorkUnit


@pytest.fixture
def metrics():
    return MetricsCollector(node_count=1)


@pytest.fixture
def node(env, metrics):
    return Node(env=env, index=0, policy=EarliestDeadlineFirst(), metrics=metrics)


def submit(env, node, ex, dl, name="u", task_class=TaskClass.LOCAL, ar=None):
    timing = TimingRecord(ar=env.now if ar is None else ar, ex=ex, dl=dl)
    unit = WorkUnit(env=env, name=name, task_class=task_class,
                    node_index=0, timing=timing)
    node.submit(unit)
    return unit


class TestService:
    def test_single_unit_served_for_ex(self, env, node):
        unit = submit(env, node, ex=2.5, dl=10.0)
        env.run()
        assert unit.timing.started_at == 0.0
        assert unit.timing.completed_at == 2.5
        assert unit.done.processed

    def test_edf_order(self, env, node):
        late = submit(env, node, ex=1.0, dl=20.0, name="late")
        early = submit(env, node, ex=1.0, dl=5.0, name="early")
        env.run()
        # Both queued at t=0 while server idle wakes; earliest deadline first.
        assert early.timing.completed_at < late.timing.completed_at

    def test_non_preemptive(self, env, node):
        """A newly arrived urgent unit must wait for the unit in service."""
        running = submit(env, node, ex=10.0, dl=100.0, name="running")

        def late_arrival(env, node):
            yield env.timeout(1.0)
            submit(env, node, ex=1.0, dl=2.0, name="urgent")

        env.process(late_arrival(env, node))
        env.run()
        assert running.timing.completed_at == 10.0

    def test_sequential_service(self, env, node):
        a = submit(env, node, ex=2.0, dl=4.0, name="a")
        b = submit(env, node, ex=3.0, dl=9.0, name="b")
        env.run()
        assert a.timing.completed_at == 2.0
        assert b.timing.started_at == 2.0
        assert b.timing.completed_at == 5.0

    def test_server_idles_between_arrivals(self, env, node):
        def arrivals(env, node):
            submit(env, node, ex=1.0, dl=5.0)
            yield env.timeout(10.0)
            late = submit(env, node, ex=1.0, dl=20.0)
            return late

        proc = env.process(arrivals(env, node))
        env.run()
        late = proc.value
        assert late.timing.started_at == 10.0

    def test_wrong_node_rejected(self, env, node):
        timing = TimingRecord(ar=0.0, ex=1.0, dl=5.0)
        unit = WorkUnit(env=env, name="u", task_class=TaskClass.LOCAL,
                        node_index=3, timing=timing)
        with pytest.raises(ValueError, match="routed to node"):
            node.submit(unit)

    def test_busy_and_queue_length(self, env, node):
        submit(env, node, ex=5.0, dl=100.0)
        submit(env, node, ex=5.0, dl=100.0)

        def probe(env, node, out):
            yield env.timeout(1.0)
            out.append((node.busy, node.queue_length))

        observed = []
        env.process(probe(env, node, observed))
        env.run()
        assert observed == [(True, 1)]
        assert not node.busy
        assert node.queue_length == 0


class TestMetricsIntegration:
    def test_local_completion_recorded(self, env, node, metrics):
        submit(env, node, ex=1.0, dl=0.5)   # will miss
        submit(env, node, ex=1.0, dl=50.0)  # will meet
        env.run()
        stats = metrics.snapshot(env.now).local
        assert stats.completed == 2
        assert stats.missed == 1

    def test_global_subtask_not_recorded_as_local(self, env, node, metrics):
        submit(env, node, ex=1.0, dl=5.0, task_class=TaskClass.GLOBAL)
        env.run()
        snapshot = metrics.snapshot(env.now)
        assert snapshot.local.completed == 0
        assert snapshot.global_.completed == 0  # end-to-end is the PM's job

    def test_utilization_signal(self, env, node, metrics):
        submit(env, node, ex=4.0, dl=100.0)
        env.run(until=10.0)
        assert metrics.snapshot(10.0).per_node[0].utilization == pytest.approx(0.4)

    def test_dispatch_count(self, env, node, metrics):
        for _ in range(3):
            submit(env, node, ex=0.5, dl=100.0)
        env.run()
        assert metrics.snapshot(env.now).per_node[0].dispatched == 3


class TestAbortAtDispatch:
    @pytest.fixture
    def abort_node(self, env, metrics):
        return Node(env=env, index=0, policy=EarliestDeadlineFirst(),
                    metrics=metrics, overload_policy=AbortTardyAtDispatch())

    def test_expired_unit_dropped_without_service(self, env, abort_node, metrics):
        # The blocker has the earliest deadline, so EDF serves it first and
        # the doomed unit's deadline expires while it waits.
        blocker = submit(env, abort_node, ex=10.0, dl=2.0, name="blocker")
        doomed = submit(env, abort_node, ex=1.0, dl=5.0, name="doomed")
        env.run()
        assert doomed.timing.aborted
        assert doomed.timing.started_at is None
        assert doomed.done.processed
        stats = metrics.snapshot(env.now).local
        assert stats.aborted == 1
        assert stats.missed == 2  # the blocker itself finished tardy too
        assert stats.completed == 1  # only the blocker ran

    def test_unit_within_deadline_not_dropped(self, env, abort_node):
        unit = submit(env, abort_node, ex=1.0, dl=50.0)
        env.run()
        assert not unit.timing.aborted
        assert unit.timing.completed_at == 1.0

    def test_abort_frees_capacity_for_queue(self, env, abort_node):
        """Dropping an expired unit lets the next one start immediately."""
        submit(env, abort_node, ex=10.0, dl=1.0, name="blocker")  # served first
        submit(env, abort_node, ex=5.0, dl=5.0, name="doomed")
        survivor = submit(env, abort_node, ex=1.0, dl=50.0, name="survivor")
        env.run()
        assert survivor.timing.started_at == 10.0  # right after blocker
