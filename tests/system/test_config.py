"""Unit tests for SystemConfig (repro.system.config)."""

from __future__ import annotations

import math

import pytest

from repro.sim.distributions import Deterministic, DiscreteUniform
from repro.system.config import (
    PARALLEL,
    SERIAL,
    SERIAL_PARALLEL,
    SystemConfig,
    baseline_config,
    expected_frac_local,
    harmonic,
    parallel_baseline_config,
    serial_parallel_config,
    verify_load_arithmetic,
)


class TestTable1Defaults:
    def test_baseline_matches_table1(self):
        config = baseline_config()
        assert config.node_count == 6
        assert config.subtask_count == 4
        assert config.load == 0.5
        assert config.frac_local == 0.75
        assert config.mu_local == 1.0
        assert config.mu_subtask == 1.0
        assert config.slack_range == (0.25, 2.5)
        assert config.rel_flex == 1.0
        assert config.pex_error == 0.0
        assert config.scheduler == "EDF"
        assert config.overload_policy == "no-abort"

    def test_baseline_overrides(self):
        config = baseline_config(strategy="EQF", load=0.3)
        assert config.strategy == "EQF"
        assert config.load == 0.3

    def test_parallel_baseline(self):
        config = parallel_baseline_config()
        assert config.task_structure == PARALLEL
        assert config.parallel_slack_range == (1.25, 5.0)

    def test_serial_parallel_baseline(self):
        config = serial_parallel_config()
        assert config.task_structure == SERIAL_PARALLEL
        assert config.stages == 2
        assert config.stage_width == 2
        assert config.strategy == "UD-UD"


class TestDerivedRates:
    def test_baseline_rates(self):
        """By hand: lambda_local = 0.5 * 0.75 * 1 = 0.375 per node;
        lambda_global = 0.5 * 0.25 * 6 * 1 / 4 = 0.1875."""
        config = baseline_config()
        assert config.local_arrival_rate == pytest.approx(0.375)
        assert config.global_arrival_rate == pytest.approx(0.1875)

    @pytest.mark.parametrize("load", [0.1, 0.3, 0.5, 0.8])
    @pytest.mark.parametrize("frac_local", [0.1, 0.5, 0.75, 0.95])
    def test_load_arithmetic_inverts(self, load, frac_local):
        config = baseline_config(load=load, frac_local=frac_local)
        assert verify_load_arithmetic(config) == pytest.approx(load)
        assert expected_frac_local(config) == pytest.approx(frac_local)

    def test_frac_local_one_disables_globals(self):
        config = baseline_config(frac_local=1.0)
        assert config.global_arrival_rate == 0.0

    def test_variable_count_uses_mean(self):
        config = baseline_config(subtask_count_range=(2, 6))
        assert config.mean_subtask_count == 4.0
        assert verify_load_arithmetic(config) == pytest.approx(config.load)

    def test_serial_parallel_count(self):
        config = serial_parallel_config(stages=3, stage_width=2)
        assert config.mean_subtask_count == 6.0


class TestHeterogeneousLoads:
    def test_homogeneous_default(self):
        rates = baseline_config().node_local_rates()
        assert len(rates) == 6
        assert len(set(rates)) == 1

    def test_weights_preserve_total(self):
        config = baseline_config(local_load_weights=(2, 2, 1, 1, 0.5, 0.5))
        rates = config.node_local_rates()
        assert sum(rates) == pytest.approx(6 * config.local_arrival_rate)

    def test_weights_shape(self):
        config = baseline_config(local_load_weights=(2, 2, 1, 1, 0.5, 0.5))
        rates = config.node_local_rates()
        assert rates[0] == pytest.approx(4 * rates[4])

    def test_wrong_weight_count_rejected(self):
        with pytest.raises(ValueError, match="one weight per node"):
            baseline_config(local_load_weights=(1, 2))

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            baseline_config(local_load_weights=(1, 1, 1, 1, 1, -1))

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            baseline_config(local_load_weights=(0,) * 6)


class TestSlackScaling:
    def test_serial_scale_matches_hand_computation(self):
        """Baseline: rel_flex * m * mu_local / mu_subtask = 1 * 4 * 1 / 1."""
        config = baseline_config()
        assert config.global_slack_scale == pytest.approx(4.0)
        dist = config.global_slack_distribution()
        assert dist.low == pytest.approx(1.0)
        assert dist.high == pytest.approx(10.0)

    def test_rel_flex_scales_linearly(self):
        tight = baseline_config(rel_flex=0.5).global_slack_distribution()
        loose = baseline_config(rel_flex=2.0).global_slack_distribution()
        assert loose.high == pytest.approx(4 * tight.high)

    def test_parallel_uses_paper_range(self):
        dist = parallel_baseline_config().global_slack_distribution()
        assert (dist.low, dist.high) == (1.25, 5.0)

    def test_serial_parallel_uses_critical_path(self):
        config = serial_parallel_config()
        # critical path = stages * H(width) = 2 * 1.5 = 3.
        assert config.mean_critical_path == pytest.approx(3.0)
        assert config.global_slack_scale == pytest.approx(3.0)

    def test_parallel_critical_path_is_harmonic(self):
        config = parallel_baseline_config()
        assert config.mean_critical_path == pytest.approx(harmonic(4))


class TestHarmonic:
    def test_values(self):
        assert harmonic(1) == 1.0
        assert harmonic(2) == 1.5
        assert harmonic(4) == pytest.approx(25 / 12)

    def test_bad_input(self):
        with pytest.raises(ValueError):
            harmonic(0)


class TestDistributionBuilders:
    def test_local_execution_mean(self):
        config = baseline_config(mu_local=2.0)
        assert config.local_execution_distribution().mean == pytest.approx(0.5)

    def test_subtask_execution_mean(self):
        config = baseline_config(mu_subtask=4.0)
        assert config.subtask_execution_distribution().mean == pytest.approx(0.25)

    def test_count_distribution_fixed(self):
        assert isinstance(baseline_config().subtask_count_distribution(), Deterministic)

    def test_count_distribution_variable(self):
        config = baseline_config(subtask_count_range=(2, 6))
        assert isinstance(config.subtask_count_distribution(), DiscreteUniform)

    def test_estimator_perfect_by_default(self):
        assert baseline_config().make_estimator().is_perfect

    def test_estimator_noisy_with_error(self):
        assert not baseline_config(pex_error=0.5).make_estimator().is_perfect


class TestValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"node_count": 0},
            {"subtask_count": 0},
            {"load": 1.0},
            {"load": -0.1},
            {"frac_local": 1.5},
            {"mu_local": 0.0},
            {"mu_subtask": -1.0},
            {"slack_range": (2.0, 1.0)},
            {"slack_range": (-1.0, 1.0)},
            {"rel_flex": -1.0},
            {"pex_error": 1.0},
            {"task_structure": "ring"},
            {"warmup_time": -1.0},
            {"warmup_time": 100.0, "sim_time": 100.0},
            {"subtask_count_range": (0, 3)},
            {"subtask_count_range": (5, 3)},
            {"task_structure": PARALLEL, "subtask_count": 7},
            {"task_structure": SERIAL_PARALLEL, "stage_width": 7},
        ],
    )
    def test_rejects_bad_settings(self, overrides):
        with pytest.raises(ValueError):
            SystemConfig(**{**{}, **overrides})


class TestConvenience:
    def test_with_returns_new_instance(self):
        config = baseline_config()
        other = config.with_(load=0.2)
        assert config.load == 0.5
        assert other.load == 0.2

    def test_describe_mentions_strategy(self):
        assert "strategy=EQF" in baseline_config(strategy="EQF").describe()
