"""Engine-level tests of the scenario workload dimensions.

Covers the pieces :mod:`repro.scenarios` relies on: the piecewise load
profile, modulated arrival sources, heterogeneous node speeds, and the
RNG-stream isolation rule (new dimensions must never perturb the draw
sequences of the baseline streams).
"""

from __future__ import annotations

import pytest

from repro.system.config import baseline_config
from repro.system.simulation import Simulation, simulate
from repro.system.workload import PiecewiseProfile

SMOKE = dict(sim_time=2_500.0, warmup_time=250.0)


class TestPiecewiseProfile:
    def test_segment_lookup(self):
        profile = PiecewiseProfile(((0.25, 0.5), (0.5, 2.0), (0.25, 1.0)), 100.0)
        assert profile(0.0) == 0.5
        assert profile(24.9) == 0.5
        assert profile(25.1) == 2.0
        assert profile(74.9) == 2.0
        assert profile(80.0) == 1.0

    def test_last_segment_persists_past_the_end(self):
        profile = PiecewiseProfile(((1.0, 1.5),), 100.0)
        assert profile(250.0) == 1.5

    def test_empty_segments_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseProfile((), 100.0)

    def test_nonpositive_values_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseProfile(((0.5, 0.0), (0.5, 1.0)), 100.0)


class TestLoadProfileSimulation:
    def test_flat_profile_changes_nothing_but_stream_alignment(self):
        """A constant 1.0 profile consumes the same base draws as the
        stationary path, so tasks and outcomes are identical."""
        base = simulate(baseline_config(**SMOKE, seed=21))
        flat = simulate(
            baseline_config(**SMOKE, seed=21, load_profile=((1.0, 1.0),))
        )
        assert flat == base

    def test_peak_segments_generate_more_arrivals(self):
        config = baseline_config(**SMOKE, seed=21)
        surge = config.with_(load_profile=((0.5, 0.5), (0.5, 1.9)))
        sim_flat = Simulation(config)
        sim_surge = Simulation(surge)
        sim_flat.run()
        sim_surge.run()
        flat_generated = sum(s.generated for s in sim_flat.local_sources)
        surge_generated = sum(s.generated for s in sim_surge.local_sources)
        # Mean multiplier is 1.2: visibly more arrivals than the flat run.
        assert surge_generated > flat_generated * 1.1


class TestNodeSpeeds:
    def test_speed_scales_service_time(self):
        homogeneous = simulate(baseline_config(**SMOKE, seed=5))
        fast = simulate(
            baseline_config(**SMOKE, seed=5, node_speed_factors=(2.0,) * 6)
        )
        # Doubling every speed halves service everywhere: utilization and
        # response times drop sharply.
        assert fast.mean_utilization < homogeneous.mean_utilization * 0.6
        assert fast.local.mean_response < homogeneous.local.mean_response

    def test_slow_node_is_busier(self):
        result = simulate(
            baseline_config(
                **SMOKE, seed=5,
                node_speed_factors=(1.0, 1.0, 1.0, 1.0, 1.0, 0.6),
            )
        )
        slow = result.per_node[5].utilization
        others = [n.utilization for n in result.per_node[:5]]
        assert slow > max(others)

    def test_preemptive_with_speeds_supported(self):
        """The callback-server rewrite lifted the old restriction:
        preemptive nodes scale remaining demand by per-node speed."""
        homogeneous = simulate(baseline_config(**SMOKE, seed=5, preemptive=True))
        fast = simulate(
            baseline_config(
                **SMOKE, seed=5, preemptive=True,
                node_speed_factors=(2.0,) * 6,
            )
        )
        assert fast.mean_utilization < homogeneous.mean_utilization * 0.6
        assert fast.local.mean_response < homogeneous.local.mean_response

    def test_preemptive_unit_speeds_match_homogeneous_exactly(self):
        """All-1.0 speed factors must take the exact no-division code
        path: bit-identical to the homogeneous preemptive run."""
        plain = simulate(baseline_config(**SMOKE, seed=6, preemptive=True))
        unit_speeds = simulate(
            baseline_config(
                **SMOKE, seed=6, preemptive=True,
                node_speed_factors=(1.0,) * 6,
            )
        )
        assert unit_speeds == plain

    def test_preemptive_slow_node_is_busier(self):
        result = simulate(
            baseline_config(
                **SMOKE, seed=5, preemptive=True,
                node_speed_factors=(1.0, 1.0, 1.0, 1.0, 1.0, 0.6),
            )
        )
        slow = result.per_node[5].utilization
        others = [n.utilization for n in result.per_node[:5]]
        assert slow > max(others)


class TestStreamIsolation:
    """Adding scenario dimensions must not move baseline random draws."""

    def test_non_uniform_placement_leaves_route_stream_cold(self):
        sim = Simulation(
            baseline_config(**SMOKE, seed=8, placement="least-outstanding")
        )
        sim.run()
        names = set(sim.streams.names())
        assert "placement-lo" in names
        assert "global-route" not in names

    def test_zipf_uses_its_own_stream(self):
        sim = Simulation(
            baseline_config(**SMOKE, seed=8, placement="zipf")
        )
        sim.run()
        assert "placement-zipf" in set(sim.streams.names())

    def test_local_results_immune_to_global_placement_policy(self):
        """Local tasks never touch placement; switching the policy must
        leave every local-stream draw untouched (only global routing and
        thus queueing interleaving may shift outcomes)."""
        uniform = Simulation(baseline_config(**SMOKE, seed=8))
        roundrobin = Simulation(
            baseline_config(**SMOKE, seed=8, placement="round-robin")
        )
        uniform.run()
        roundrobin.run()
        assert (
            sum(s.generated for s in uniform.local_sources)
            == sum(s.generated for s in roundrobin.local_sources)
        )


class TestArrivalAndServiceModels:
    def test_bursty_arrivals_preserve_mean_rate(self):
        config = baseline_config(**SMOKE, seed=13)
        base = Simulation(config)
        bursty = Simulation(
            config.with_(arrival_model="hyperexp", arrival_cv2=4.0)
        )
        base.run()
        bursty.run()
        base_generated = sum(s.generated for s in base.local_sources)
        bursty_generated = sum(s.generated for s in bursty.local_sources)
        assert bursty_generated == pytest.approx(base_generated, rel=0.15)

    def test_bursty_arrivals_miss_more_deadlines(self):
        base = simulate(baseline_config(**SMOKE, seed=13))
        bursty = simulate(
            baseline_config(
                **SMOKE, seed=13, arrival_model="hyperexp", arrival_cv2=4.0
            )
        )
        assert bursty.md_local > base.md_local

    def test_heavy_tailed_service_keeps_utilization(self):
        base = simulate(baseline_config(**SMOKE, seed=13))
        pareto = simulate(
            baseline_config(**SMOKE, seed=13, service_model="pareto")
        )
        # Same offered load: utilization close to the exponential baseline.
        assert pareto.mean_utilization == pytest.approx(
            base.mean_utilization, rel=0.15
        )


class TestNonFiniteScenarioParameters:
    """Regression: NaN slips past `< 0` / `<= 0` comparisons; the
    config-only scenario knobs must reject non-finite values."""

    def test_nan_zipf_exponent_rejected(self):
        with pytest.raises(ValueError, match="placement_zipf_s"):
            baseline_config(placement="zipf", placement_zipf_s=float("nan"))

    def test_nan_speed_factor_rejected(self):
        with pytest.raises(ValueError, match="speed factors"):
            baseline_config(node_speed_factors=(float("nan"),) * 6)

    def test_inf_speed_factor_rejected(self):
        with pytest.raises(ValueError, match="speed factors"):
            baseline_config(
                node_speed_factors=(float("inf"), 1.0, 1.0, 1.0, 1.0, 1.0)
            )

    def test_nan_profile_multiplier_rejected(self):
        with pytest.raises(ValueError, match="multipliers"):
            baseline_config(load_profile=((0.5, float("nan")), (0.5, 1.0)))

    def test_nan_profile_fraction_rejected(self):
        with pytest.raises(ValueError, match="fractions"):
            baseline_config(load_profile=((float("nan"), 1.0), (1.0, 1.0)))
