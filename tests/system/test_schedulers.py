"""Unit tests for scheduling policies and the ready queue
(repro.system.schedulers)."""

from __future__ import annotations

import pytest

from repro.core.strategies.base import PriorityClass
from repro.core.task import TaskClass
from repro.core.timing import TimingRecord
from repro.sim.core import Environment
from repro.system.schedulers import (
    POLICIES,
    EarliestDeadlineFirst,
    FirstComeFirstServed,
    MinimumLaxityFirst,
    ReadyQueue,
    get_policy,
)
from repro.system.work import WorkUnit


def unit(env, dl, pex=1.0, ar=0.0, ex=None, priority=PriorityClass.NORMAL, name="u"):
    timing = TimingRecord(ar=ar, ex=ex if ex is not None else pex, pex=pex, dl=dl)
    return WorkUnit(
        env=env,
        name=name,
        task_class=TaskClass.LOCAL,
        node_index=0,
        timing=timing,
        priority_class=priority,
    )


class TestPolicyKeys:
    def test_edf_key_is_deadline(self, env):
        assert EarliestDeadlineFirst().key(unit(env, dl=7.5)) == 7.5

    def test_mlf_key_is_deadline_minus_pex(self, env):
        assert MinimumLaxityFirst().key(unit(env, dl=7.5, pex=2.0)) == 5.5

    def test_fcfs_key_constant(self, env):
        assert FirstComeFirstServed().key(unit(env, dl=7.5)) == 0.0


class TestPolicyRegistry:
    def test_known_policies(self):
        assert set(POLICIES) == {"EDF", "MLF", "FCFS"}

    def test_lookup_case_insensitive(self):
        assert get_policy("edf").name == "EDF"

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            get_policy("RM")


class TestReadyQueueEDF:
    def test_pops_earliest_deadline(self, env):
        queue = ReadyQueue(EarliestDeadlineFirst())
        for dl in (5.0, 2.0, 9.0, 3.0):
            queue.push(unit(env, dl=dl, name=f"dl{dl}"))
        popped = [queue.pop().timing.dl for _ in range(4)]
        assert popped == [2.0, 3.0, 5.0, 9.0]

    def test_fifo_tiebreak(self, env):
        queue = ReadyQueue(EarliestDeadlineFirst())
        for tag in "abc":
            queue.push(unit(env, dl=4.0, name=tag))
        assert [queue.pop().name for _ in range(3)] == ["a", "b", "c"]

    def test_peek_does_not_remove(self, env):
        queue = ReadyQueue(EarliestDeadlineFirst())
        queue.push(unit(env, dl=1.0))
        assert queue.peek() is queue.peek()
        assert len(queue) == 1

    def test_peek_empty_returns_none(self):
        assert ReadyQueue(EarliestDeadlineFirst()).peek() is None

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            ReadyQueue(EarliestDeadlineFirst()).pop()

    def test_len_and_bool(self, env):
        queue = ReadyQueue(EarliestDeadlineFirst())
        assert not queue
        queue.push(unit(env, dl=1.0))
        assert queue
        assert len(queue) == 1


class TestReadyQueueMLF:
    def test_orders_by_laxity(self, env):
        queue = ReadyQueue(MinimumLaxityFirst())
        # dl=10,pex=8 -> laxity key 2; dl=5,pex=1 -> key 4; dl=6,pex=5 -> 1.
        a = unit(env, dl=10.0, pex=8.0, name="a")
        b = unit(env, dl=5.0, pex=1.0, name="b")
        c = unit(env, dl=6.0, pex=5.0, name="c")
        for u in (a, b, c):
            queue.push(u)
        assert [queue.pop().name for _ in range(3)] == ["c", "a", "b"]

    def test_differs_from_edf(self, env):
        """MLF can dispatch a later-deadline task first when it is bigger --
        the core difference between the two policies."""
        edf = ReadyQueue(EarliestDeadlineFirst())
        mlf = ReadyQueue(MinimumLaxityFirst())
        small_urgent = dict(dl=5.0, pex=0.5)
        big_later = dict(dl=6.0, pex=5.0)
        for queue in (edf, mlf):
            queue.push(unit(env, **small_urgent, name="small"))
            queue.push(unit(env, **big_later, name="big"))
        assert edf.pop().name == "small"
        assert mlf.pop().name == "big"


class TestReadyQueueFCFS:
    def test_insertion_order(self, env):
        queue = ReadyQueue(FirstComeFirstServed())
        for i, dl in enumerate((9.0, 1.0, 5.0)):
            queue.push(unit(env, dl=dl, name=f"u{i}"))
        assert [queue.pop().name for _ in range(3)] == ["u0", "u1", "u2"]


class TestGlobalsFirstClassPriority:
    def test_elevated_class_always_wins(self, env):
        queue = ReadyQueue(EarliestDeadlineFirst())
        queue.push(unit(env, dl=1.0, priority=PriorityClass.NORMAL, name="local"))
        queue.push(unit(env, dl=100.0, priority=PriorityClass.ELEVATED, name="global"))
        assert queue.pop().name == "global"

    def test_edf_within_each_class(self, env):
        queue = ReadyQueue(EarliestDeadlineFirst())
        queue.push(unit(env, dl=50.0, priority=PriorityClass.ELEVATED, name="g-late"))
        queue.push(unit(env, dl=10.0, priority=PriorityClass.ELEVATED, name="g-early"))
        queue.push(unit(env, dl=2.0, priority=PriorityClass.NORMAL, name="l-early"))
        queue.push(unit(env, dl=3.0, priority=PriorityClass.NORMAL, name="l-late"))
        order = [queue.pop().name for _ in range(4)]
        assert order == ["g-early", "g-late", "l-early", "l-late"]
