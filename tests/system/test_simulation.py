"""Integration tests for the simulation façade (repro.system.simulation)."""

from __future__ import annotations

import math

import pytest

from repro.system.config import baseline_config, parallel_baseline_config
from repro.system.simulation import Simulation, simulate


SHORT = dict(sim_time=2_000.0, warmup_time=200.0)


class TestWiring:
    def test_builds_configured_node_count(self):
        sim = Simulation(baseline_config(node_count=3, subtask_count=3, **SHORT))
        assert len(sim.nodes) == 3

    def test_local_sources_per_node(self):
        sim = Simulation(baseline_config(**SHORT))
        assert len(sim.local_sources) == 6

    def test_no_global_source_when_frac_local_one(self):
        sim = Simulation(baseline_config(frac_local=1.0, **SHORT))
        assert sim.global_source is None

    def test_no_local_sources_when_frac_local_zero(self):
        sim = Simulation(baseline_config(frac_local=0.0, **SHORT))
        assert sim.local_sources == []
        assert sim.global_source is not None

    def test_strategy_parsed(self):
        sim = Simulation(baseline_config(strategy="EQF-DIV1", **SHORT))
        assert sim.assigner.name == "EQF-DIV1"

    def test_zero_load_runs_empty(self):
        result = simulate(baseline_config(load=0.0, **SHORT))
        assert math.isnan(result.md_local)
        assert math.isnan(result.md_global)


class TestRunBehaviour:
    def test_miss_ratios_are_probabilities(self):
        result = simulate(baseline_config(**SHORT))
        assert 0.0 <= result.md_local <= 1.0
        assert 0.0 <= result.md_global <= 1.0

    def test_tasks_flow(self):
        result = simulate(baseline_config(**SHORT))
        assert result.local.completed > 500
        assert result.global_.completed > 50

    def test_utilization_tracks_load(self):
        result = simulate(baseline_config(load=0.4, sim_time=8_000.0,
                                          warmup_time=500.0))
        assert result.mean_utilization == pytest.approx(0.4, abs=0.05)

    def test_same_seed_reproduces_exactly(self):
        config = baseline_config(seed=77, **SHORT)
        a, b = simulate(config), simulate(config)
        assert a.md_local == b.md_local
        assert a.md_global == b.md_global
        assert a.local.completed == b.local.completed

    def test_different_seeds_differ(self):
        a = simulate(baseline_config(seed=1, **SHORT))
        b = simulate(baseline_config(seed=2, **SHORT))
        assert (a.md_local, a.local.completed) != (b.md_local, b.local.completed)

    def test_warmup_excluded_from_counts(self):
        whole = simulate(baseline_config(sim_time=2_000.0, warmup_time=0.0))
        trimmed = simulate(baseline_config(sim_time=2_000.0, warmup_time=1_000.0))
        assert trimmed.local.completed < whole.local.completed
        assert trimmed.warmup == 1_000.0

    def test_sim_time_respected(self):
        result = simulate(baseline_config(**SHORT))
        assert result.sim_time == 2_000.0


class TestStructures:
    def test_parallel_structure_runs(self):
        result = simulate(parallel_baseline_config(**SHORT))
        assert result.global_.completed > 50

    def test_serial_parallel_structure_runs(self):
        from repro.system.config import serial_parallel_config

        result = simulate(serial_parallel_config(**SHORT))
        assert result.global_.completed > 50

    def test_mlf_scheduler_runs(self):
        result = simulate(baseline_config(scheduler="MLF", **SHORT))
        assert result.local.completed > 0

    def test_fcfs_scheduler_runs(self):
        result = simulate(baseline_config(scheduler="FCFS", **SHORT))
        assert result.local.completed > 0

    def test_abort_policy_runs(self):
        result = simulate(baseline_config(overload_policy="abort-tardy",
                                          load=0.8, **SHORT))
        assert result.local.aborted > 0

    def test_noisy_estimates_run(self):
        result = simulate(baseline_config(pex_error=0.5, strategy="EQF", **SHORT))
        assert result.global_.completed > 0

    def test_gf_strategy_runs(self):
        result = simulate(parallel_baseline_config(strategy="GF", **SHORT))
        assert result.global_.completed > 0


class TestStatisticalSanity:
    def test_higher_load_more_misses(self):
        light = simulate(baseline_config(load=0.1, seed=5, **SHORT))
        heavy = simulate(baseline_config(load=0.7, seed=5, **SHORT))
        assert heavy.md_local > light.md_local
        assert heavy.md_global > light.md_global

    def test_generous_slack_reduces_misses(self):
        tight = simulate(baseline_config(rel_flex=0.25, seed=6, **SHORT))
        loose = simulate(baseline_config(rel_flex=8.0, seed=6, **SHORT))
        assert loose.md_global < tight.md_global
