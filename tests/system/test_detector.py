"""Failure-detection subsystem (repro.system.detector).

The load-bearing claims, in order:

* a perfect channel (zero loss, zero delay, tight timeout) makes the
  observed :class:`SuspicionView` *converge* to the oracle
  :class:`LiveSet` trajectory -- no false positives, no missed
  detections, and view == truth everywhere outside the detection
  horizon of the last true transition (checked in-process and under
  both ``REPRO_KERNEL`` legs);
* a config with a detector left unset (or a disabled spec) is
  bit-identical to the pinned pre-detector engine;
* lossy/delayed channels produce the pathologies the scenarios study
  (false suspicions, missed detections, misroutes) without breaking
  the run;
* :class:`DetectorSpec` validates eagerly and round-trips through
  JSON, alone and riding a :class:`ScenarioSpec`;
* checkpoint/resume reproduces a detector run bit-identically.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.checkpoint import load_checkpoint, save_checkpoint
from repro.scenarios import get_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.system.config import baseline_config
from repro.system.detector import DetectorSpec, FailureDetector, SuspicionView
from repro.system.faults import FaultSpec
from repro.system.simulation import Simulation, simulate

SIM_TIME = 2_500.0
WARMUP = 250.0

#: A detector that cannot be wrong for long: perfect links and a
#: timeout barely above one heartbeat period.  Detection horizon
#: (worst crash-to-suspicion lag) = interval + timeout = 2.0.
PERFECT_DETECTOR = DetectorSpec(
    kind="timeout",
    heartbeat_interval=0.5,
    timeout=1.5,
)

#: Churn with *deterministic* 20-time-unit repairs: every downtime is
#: far longer than the detection horizon, so a perfect-channel detector
#: must catch every crash (exponential repairs would occasionally be
#: shorter than the timeout -- legitimately invisible to any detector).
CONVERGE_FAULTS = FaultSpec(
    mttf=400.0,
    mttr=20.0,
    repair_model="deterministic",
    in_flight="resume",
    queued="preserved",
    retry_limit=2,
    retry_timeout=30.0,
    retry_backoff=1.0,
)


class TestDetectorSpecValidation:
    def test_defaults_are_disabled(self):
        spec = DetectorSpec()
        assert not spec.enabled
        assert spec.delay_distribution() is None

    def test_enabled_iff_positive_interval(self):
        assert DetectorSpec(heartbeat_interval=2.0).enabled

    @pytest.mark.parametrize("bad", [
        dict(kind="psychic"),
        dict(heartbeat_interval=-1.0),
        dict(heartbeat_interval=float("inf")),
        dict(timeout=0.0),
        dict(phi_threshold=-2.0),
        dict(window=0),
        dict(window=1.5),
        dict(delay_model="telepathy"),
        dict(delay_mean=-0.5),
        dict(loss_probability=1.0),
        dict(loss_probability=-0.1),
        dict(misroute_delay=-1.0),
        dict(max_redirects=-1),
    ])
    def test_bad_values_rejected(self, bad):
        with pytest.raises(ValueError):
            DetectorSpec(**bad)

    def test_prior_mean_includes_channel_delay(self):
        spec = DetectorSpec(heartbeat_interval=2.0, delay_mean=0.5)
        assert spec.prior_mean == 2.5

    def test_round_trip(self):
        spec = DetectorSpec(
            kind="phi",
            heartbeat_interval=2.0,
            phi_threshold=3.0,
            window=16,
            delay_model="erlang",
            delay_mean=0.25,
            delay_shape=3.0,
            loss_probability=0.05,
            misroute_delay=0.5,
            max_redirects=2,
        )
        clone = DetectorSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown DetectorSpec"):
            DetectorSpec.from_dict({"heartbeat_interval": 2.0, "typo": 1})

    def test_describe_names_the_algorithm(self):
        assert "timeout" in DetectorSpec(heartbeat_interval=2.0).describe()
        assert "phi" in DetectorSpec(
            kind="phi", heartbeat_interval=2.0
        ).describe()

    def test_detector_requires_enabled_spec(self):
        with pytest.raises(ValueError, match="enabled"):
            FailureDetector(
                env=None, nodes=[], spec=DetectorSpec(), streams=None,
                metrics=None, view=SuspicionView(0),
            )


class TestSuspicionView:
    def test_starts_all_trusted(self):
        view = SuspicionView(4)
        assert view.live_count == 4
        assert view.node_count == 4
        assert all(i in view for i in range(4))
        assert view.live_indices() == [0, 1, 2, 3]

    def test_flips_update_count_and_version(self):
        view = SuspicionView(3)
        view.mark_suspected(1)
        assert 1 not in view
        assert view.live_count == 2
        assert view.version == 1
        assert view.live_indices() == [0, 2]
        # Idempotent: re-suspecting is not a flip.
        view.mark_suspected(1)
        assert view.version == 1
        view.mark_trusted(1)
        assert 1 in view
        assert view.live_count == 3
        assert view.version == 2
        view.mark_trusted(1)
        assert view.version == 2


def _converged_sim() -> Simulation:
    config = baseline_config(
        sim_time=SIM_TIME, warmup_time=WARMUP, seed=17, strategy="EQF",
        faults=CONVERGE_FAULTS, detector=PERFECT_DETECTOR,
    )
    sim = Simulation(config)
    sim.run()
    return sim


class TestConvergenceToOracle:
    """Perfect channel + tight timeout == the oracle, up to the horizon."""

    @pytest.fixture(scope="class")
    def sim(self):
        return _converged_sim()

    def test_no_false_positives_or_missed_detections(self, sim):
        result = sim.metrics.snapshot(sim.env.now)
        assert result.false_suspicions == 0
        assert result.missed_detections == 0
        assert result.detections > 0
        # Crash-to-suspicion lag is bounded by interval + timeout.
        assert 0.0 < result.detection_latency <= 2.0

    def test_view_matches_truth_outside_horizon(self, sim):
        detector = sim.failure_detector
        view = sim.suspicion_view
        horizon = (
            PERFECT_DETECTOR.heartbeat_interval + PERFECT_DETECTOR.timeout
        )
        now = sim.env.now
        for i, node in enumerate(sim.nodes):
            if now - detector.last_transition[i] <= horizon:
                continue  # detection/rehabilitation may still be in flight
            assert (i in view) == node._up, f"node {i}"

    def test_fault_trajectory_matches_oracle_run(self, sim):
        """The fault clocks draw from their own streams, so observing
        through a detector must not move a single crash: per-node crash
        counts and downtime equal the oracle (detector-off) run's."""
        result = sim.metrics.snapshot(sim.env.now)
        oracle = simulate(
            baseline_config(
                sim_time=SIM_TIME, warmup_time=WARMUP, seed=17,
                strategy="EQF", faults=CONVERGE_FAULTS,
            )
        )
        assert result.total_crashes > 0
        assert (
            [n.crashes for n in result.per_node]
            == [n.crashes for n in oracle.per_node]
        )
        assert (
            [n.downtime for n in result.per_node]
            == [n.downtime for n in oracle.per_node]
        )


#: Kernel-leg driver: the convergence property must hold under both
#: engine kernels (import-time switch, hence the subprocess).
_KERNEL_CONVERGENCE_DRIVER = """
import json
from repro.sim.core import KERNEL
from repro.system.config import baseline_config
from repro.system.detector import DetectorSpec
from repro.system.faults import FaultSpec
from repro.system.simulation import Simulation

config = baseline_config(
    sim_time=2_500.0, warmup_time=250.0, seed=17, strategy="EQF",
    faults=FaultSpec(
        mttf=400.0, mttr=20.0, repair_model="deterministic",
        in_flight="resume", queued="preserved",
        retry_limit=2, retry_timeout=30.0, retry_backoff=1.0,
    ),
    detector=DetectorSpec(
        kind="timeout", heartbeat_interval=0.5, timeout=1.5,
    ),
)
sim = Simulation(config)
result = sim.run()
detector = sim.failure_detector
now = sim.env.now
agree = all(
    (i in sim.suspicion_view) == node._up
    for i, node in enumerate(sim.nodes)
    if now - detector.last_transition[i] > 2.0
)
print(json.dumps({
    "kernel": KERNEL,
    "false_suspicions": result.false_suspicions,
    "missed_detections": result.missed_detections,
    "detections": result.detections,
    "crashes": result.total_crashes,
    "agree": agree,
}))
"""


def _compiled_kernel_available() -> bool:
    import importlib.util

    spec = importlib.util.find_spec("repro.sim._engine_c")
    if spec is None or spec.origin is None:
        return False
    return not spec.origin.endswith((".py", ".pyc"))


class TestConvergenceAcrossKernels:
    @pytest.mark.parametrize("kernel", ["python", "compiled"])
    def test_converges_under_kernel(self, kernel):
        if kernel == "compiled" and not _compiled_kernel_available():
            pytest.skip("compiled kernel extension not built")
        env = dict(os.environ, REPRO_KERNEL=kernel)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (
                os.path.join(os.path.dirname(__file__), "..", "..", "src"),
                env.get("PYTHONPATH", ""),
            ) if p
        )
        output = subprocess.run(
            [sys.executable, "-c", _KERNEL_CONVERGENCE_DRIVER],
            env=env, capture_output=True, text=True, check=True,
        ).stdout
        values = json.loads(output)
        assert values["kernel"] == kernel
        assert values["false_suspicions"] == 0
        assert values["missed_detections"] == 0
        assert values["detections"] > 0
        assert values["crashes"] > 0
        assert values["agree"] is True


class TestObservedModePathologies:
    def test_lossy_channel_produces_misroutes_and_errors(self):
        config = get_scenario("lossy-heartbeats").to_config(
            sim_time=SIM_TIME, warmup_time=WARMUP, seed=17, strategy="EQF",
        )
        result = simulate(config)
        assert result.total_crashes > 0
        assert result.detections > 0
        assert result.detection_latency > 0
        assert result.misroutes > 0
        assert result.total_suspicions >= result.detections
        # The run still makes progress through all the confusion.
        assert result.global_.completed > 0

    def test_phi_detector_false_suspicions_without_faults(self):
        config = get_scenario("paranoid-detector").to_config(
            sim_time=SIM_TIME, warmup_time=WARMUP, seed=17, strategy="EQF",
        )
        result = simulate(config)
        # Perfectly reliable nodes: every suspicion is false, nothing
        # is ever detected or missed, and no submit can misroute.
        assert result.total_crashes == 0
        assert result.false_suspicions > 0
        assert result.false_suspicions == result.total_suspicions
        assert result.detections == 0
        assert result.missed_detections == 0
        assert result.misroutes == 0
        # Falsely drained nodes rehabilitate: the system keeps completing.
        assert result.global_.completed > 0

    def test_sluggish_detector_misses_detections(self):
        config = get_scenario("slow-detector-churn").to_config(
            sim_time=SIM_TIME, warmup_time=WARMUP, seed=17, strategy="EQF",
        )
        result = simulate(config)
        assert result.missed_detections > 0
        assert result.misroutes > 0


class TestScenarioIntegration:
    def test_detector_scenarios_round_trip(self):
        for name in (
            "lossy-heartbeats", "slow-detector-churn",
            "paranoid-detector", "detector-preemptive",
        ):
            spec = get_scenario(name)
            assert spec.detector is not None and spec.detector.enabled
            clone = ScenarioSpec.from_dict(
                json.loads(json.dumps(spec.to_dict()))
            )
            assert clone == spec

    def test_describe_mentions_detector(self):
        assert "detector(" in get_scenario("lossy-heartbeats").describe()

    def test_detector_rides_config(self):
        config = get_scenario("paranoid-detector").to_config(seed=3)
        assert config.detector is not None
        assert config.detector.kind == "phi"

    def test_mapping_detector_is_converted(self):
        spec = ScenarioSpec(
            name="adhoc",
            detector={"heartbeat_interval": 2.0, "timeout": 5.0},
        )
        assert isinstance(spec.detector, DetectorSpec)
        assert spec.detector.timeout == 5.0


class TestCheckpointResume:
    def test_detector_resume_is_bit_identical(self, tmp_path):
        """Heartbeat channels, expiry timers, phi windows, and the
        suspicion view must all survive a snapshot: resuming mid-run
        finishes bit-identically to the uninterrupted run."""
        config = get_scenario("lossy-heartbeats").to_config(
            sim_time=SIM_TIME, warmup_time=WARMUP, seed=17, strategy="EQF",
        )
        straight = simulate(config)
        assert straight.misroutes > 0  # the snapshot covers a busy run

        sim = Simulation(config)
        sim.env.run(until=config.warmup_time)
        sim.metrics.reset(sim.env.now)
        sim._warmup_done = True
        sim.env.run(until=1_200.0)
        path = str(tmp_path / "detector.ckpt")
        save_checkpoint(sim, path)
        assert load_checkpoint(path).run() == straight

    def test_phi_detector_resume_is_bit_identical(self, tmp_path):
        """The phi leg additionally carries per-node sample windows."""
        config = get_scenario("paranoid-detector").to_config(
            sim_time=SIM_TIME, warmup_time=WARMUP, seed=17, strategy="UD",
        )
        straight = simulate(config)
        sim = Simulation(config)
        sim.env.run(until=config.warmup_time)
        sim.metrics.reset(sim.env.now)
        sim._warmup_done = True
        sim.env.run(until=1_200.0)
        path = str(tmp_path / "phi.ckpt")
        save_checkpoint(sim, path)
        assert load_checkpoint(path).run() == straight
