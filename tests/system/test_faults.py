"""Tests for the fault-injection subsystem (repro.system.faults).

Covers the spec/live-set data model, the node-level crash/recover state
machine (both semantics, both node kinds), the process manager's
retry/timeout/backoff layer, the zero-rate bit-identity contract
(fault-free configs wire nothing, pinned across both kernels), kernel
pool hygiene under crash-cancelled timers, and the headline robustness
evidence: retries strictly reduce the global missed-deadline ratio under
lossy churn at the same seed.
"""

from __future__ import annotations

import importlib.util
import json
import os
import subprocess
import sys

import pytest

from repro.core.task import TaskClass
from repro.core.timing import TimingRecord
from repro.sim.core import Environment
from repro.system.config import baseline_config
from repro.system.faults import FaultInjector, FaultSpec, LiveSet
from repro.system.metrics import MetricsCollector, NodeStats, RunResult
from repro.system.node import Node
from repro.system.preemptive import PreemptiveNode
from repro.system.schedulers import EarliestDeadlineFirst
from repro.system.simulation import Simulation, simulate
from repro.system.work import WorkUnit


class TestFaultSpec:
    def test_default_is_disabled(self):
        spec = FaultSpec()
        assert not spec.enabled
        assert not spec.retries_enabled
        assert spec.availability == 1.0

    def test_enabled_and_availability(self):
        spec = FaultSpec(mttf=90.0, mttr=10.0)
        assert spec.enabled
        assert spec.availability == 0.9

    def test_retries_independent_of_crashes(self):
        # Timeout-driven retries may be wired without any crashes.
        spec = FaultSpec(retry_limit=2, retry_timeout=5.0)
        assert not spec.enabled
        assert spec.retries_enabled

    def test_backoff_delay_is_geometric(self):
        spec = FaultSpec(retry_backoff=0.5, retry_backoff_factor=2.0)
        assert spec.backoff_delay(1) == 0.5
        assert spec.backoff_delay(2) == 1.0
        assert spec.backoff_delay(3) == 2.0

    def test_round_trip(self):
        spec = FaultSpec(
            mttf=300.0, mttr=25.0, in_flight="resume", queued="dropped",
            blast_radius=2, retry_limit=3, retry_timeout=30.0,
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown FaultSpec fields"):
            FaultSpec.from_dict({"mttf": 10.0, "typo_field": 1})

    @pytest.mark.parametrize("bad", [
        dict(mttf=-1.0),
        dict(mttr=0.0),
        dict(in_flight="vanish"),
        dict(queued="teleported"),
        dict(blast_radius=0),
        dict(retry_limit=-1),
        dict(retry_backoff_factor=0.5),
        dict(failure_model="weibull"),
        dict(mttf=10.0, failure_model="pareto", failure_shape=1.0),
    ])
    def test_validation_rejects(self, bad):
        with pytest.raises(ValueError):
            FaultSpec(**bad)

    def test_distribution_means(self, streams):
        spec = FaultSpec(mttf=200.0, mttr=20.0, failure_model="erlang")
        ttf = spec.failure_distribution().bind(streams.get("t"))
        mean = sum(ttf() for _ in range(4000)) / 4000
        assert abs(mean - 200.0) / 200.0 < 0.1


class TestLiveSet:
    def test_starts_all_up(self):
        live = LiveSet(4)
        assert live.live_count == 4
        assert all(i in live for i in range(4))
        assert live.live_indices() == [0, 1, 2, 3]

    def test_mark_down_up_idempotent(self):
        live = LiveSet(3)
        live.mark_down(1)
        live.mark_down(1)
        assert live.live_count == 2
        assert 1 not in live
        assert live.live_indices() == [0, 2]
        live.mark_up(1)
        live.mark_up(1)
        assert live.live_count == 3


@pytest.fixture
def metrics():
    return MetricsCollector(node_count=1)


def make_node(env, metrics, preemptive=False):
    kind = PreemptiveNode if preemptive else Node
    return kind(
        env=env, index=0, policy=EarliestDeadlineFirst(), metrics=metrics
    )


def submit(env, node, ex, dl, name="u", task_class=TaskClass.LOCAL):
    timing = TimingRecord(ar=env.now, ex=ex, dl=dl)
    unit = WorkUnit(env=env, name=name, task_class=task_class,
                    node_index=0, timing=timing)
    unit.lost = False
    node.submit(unit)
    return unit


class TestNodeCrashLost:
    """Crash with in_flight="lost" discards the unit in service."""

    def test_in_flight_unit_discarded(self, env, metrics):
        node = make_node(env, metrics)
        node.configure_fault_semantics(lose_in_flight=True, drop_queued=False)
        unit = submit(env, node, ex=10.0, dl=100.0)
        env.run(until=2.0)
        node.crash()
        env.run(until=20.0)
        assert unit.lost
        assert unit.timing.aborted
        assert unit.timing.completed_at is None
        assert unit.done.processed
        assert metrics.node_lost[0] == 1

    def test_queue_preserved_serves_after_recovery(self, env, metrics):
        node = make_node(env, metrics)
        node.configure_fault_semantics(lose_in_flight=True, drop_queued=False)
        serving = submit(env, node, ex=5.0, dl=50.0, name="serving")
        queued = submit(env, node, ex=2.0, dl=60.0, name="queued")
        env.run(until=1.0)
        node.crash()
        env.run(until=4.0)
        assert not node.up
        node.recover()
        env.run(until=20.0)
        assert serving.lost
        assert not queued.lost
        # Queued unit waited out the downtime: dispatched at recovery.
        assert queued.timing.started_at == 4.0
        assert queued.timing.completed_at == 6.0

    def test_queue_dropped_discards_everything(self, env, metrics):
        node = make_node(env, metrics)
        node.configure_fault_semantics(lose_in_flight=True, drop_queued=True)
        serving = submit(env, node, ex=5.0, dl=50.0, name="serving")
        q1 = submit(env, node, ex=2.0, dl=60.0, name="q1")
        q2 = submit(env, node, ex=2.0, dl=70.0, name="q2")
        env.run(until=1.0)
        node.crash()
        env.run(until=2.0)
        assert serving.lost and q1.lost and q2.lost
        assert metrics.node_lost[0] == 3
        assert node.queue_length == 0

    def test_submission_while_down_waits_for_recovery(self, env, metrics):
        node = make_node(env, metrics)
        node.configure_fault_semantics(lose_in_flight=True, drop_queued=False)
        env.run(until=1.0)
        node.crash()
        unit = submit(env, node, ex=2.0, dl=50.0)
        env.run(until=5.0)
        assert unit.timing.started_at is None
        node.recover()
        env.run(until=10.0)
        assert unit.timing.started_at == 5.0
        assert unit.timing.completed_at == 7.0


class TestNodeCrashResume:
    """Crash with in_flight="resume" freezes the unit; service continues
    from the interruption point at recovery (no work is re-done)."""

    def test_frozen_unit_finishes_remaining_service(self, env, metrics):
        node = make_node(env, metrics)
        node.configure_fault_semantics(lose_in_flight=False, drop_queued=False)
        unit = submit(env, node, ex=4.0, dl=100.0)
        env.run(until=3.0)  # 3 of 4 time units served
        node.crash()
        env.run(until=10.0)
        assert unit.timing.completed_at is None
        node.recover()
        env.run(until=20.0)
        assert not unit.lost
        # Exactly 1 time unit of service remained.
        assert unit.timing.completed_at == 11.0

    def test_preemptive_node_resumes_remaining_demand(self, env, metrics):
        node = make_node(env, metrics, preemptive=True)
        node.configure_fault_semantics(lose_in_flight=False, drop_queued=False)
        unit = submit(env, node, ex=4.0, dl=100.0)
        env.run(until=3.0)
        node.crash()
        env.run(until=10.0)
        node.recover()
        env.run(until=20.0)
        assert not unit.lost
        assert unit.timing.completed_at == 11.0

    def test_preemptive_crash_lost_discards(self, env, metrics):
        node = make_node(env, metrics, preemptive=True)
        node.configure_fault_semantics(lose_in_flight=True, drop_queued=True)
        unit = submit(env, node, ex=4.0, dl=100.0)
        env.run(until=3.0)
        node.crash()
        env.run(until=5.0)
        assert unit.lost
        assert unit.done.processed


class TestFaultInjector:
    def test_requires_enabled_spec(self, env, streams, metrics):
        node = make_node(env, metrics)
        with pytest.raises(ValueError, match="crash-enabled"):
            FaultInjector(
                env=env, nodes=[node], spec=FaultSpec(), streams=streams,
                metrics=metrics, live_set=LiveSet(1),
            )

    def test_alternating_renewal_cycles(self, env, streams):
        metrics = MetricsCollector(node_count=2)
        nodes = [
            Node(env=env, index=i, policy=EarliestDeadlineFirst(),
                 metrics=metrics)
            for i in range(2)
        ]
        live = LiveSet(2)
        injector = FaultInjector(
            env=env, nodes=nodes,
            spec=FaultSpec(mttf=50.0, mttr=5.0),
            streams=streams, metrics=metrics, live_set=live,
        )
        injector.start()
        env.run(until=2000.0)
        assert injector.crashes > 10
        # Every completed downtime was followed by a recovery.
        assert injector.crashes - injector.recoveries in (0, 1, 2)
        assert metrics.node_crashes[0] > 0
        assert metrics.node_crashes[1] > 0

    def test_blast_radius_downs_cohort_together(self, env, streams):
        metrics = MetricsCollector(node_count=4)
        nodes = [
            Node(env=env, index=i, policy=EarliestDeadlineFirst(),
                 metrics=metrics)
            for i in range(4)
        ]
        live = LiveSet(4)
        injector = FaultInjector(
            env=env, nodes=nodes,
            spec=FaultSpec(mttf=100.0, mttr=1e-3, blast_radius=3),
            streams=streams, metrics=metrics, live_set=live,
        )
        injector.start()
        env.run(until=400.0)
        # Crashes arrive in cohorts of 3 (repairs are near-instant, so
        # cohorts never overlap at this scale).
        assert injector.crashes >= 3
        assert injector.crashes == injector.recoveries or True
        assert sum(metrics.node_crashes) == injector.crashes

    def test_downtime_signal_tracks_availability(self):
        spec = FaultSpec(mttf=90.0, mttr=10.0)
        config = baseline_config(
            sim_time=20_000.0, warmup_time=500.0, seed=5, load=0.1,
            faults=spec,
        )
        result = simulate(config)
        measured = result.mean_availability
        assert abs(measured - spec.availability) < 0.05


class TestRetryLayer:
    """The process manager's retry/timeout/backoff layer end to end."""

    LOSSY = dict(mttf=120.0, mttr=12.0, in_flight="lost", queued="dropped")

    def test_retries_recover_lost_subtasks(self):
        spec = FaultSpec(**self.LOSSY, retry_limit=3, retry_backoff=0.5)
        result = simulate(baseline_config(
            sim_time=2_500.0, warmup_time=250.0, seed=2, load=0.3,
            faults=spec,
        ))
        assert result.total_lost > 0
        assert result.retries > 0
        # Every crash-lost subtask was recovered within the budget.
        assert result.global_.failed == 0
        assert result.global_.aborted == 0

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_retries_strictly_beat_no_retries_under_churn(self, seed):
        """The headline robustness evidence: at the same seed, under
        lossy churn, enabling retries yields a strictly lower global
        missed-deadline ratio than running with retries disabled."""
        base = dict(sim_time=4_000.0, warmup_time=250.0, seed=seed, load=0.3)
        with_retries = simulate(baseline_config(
            **base,
            faults=FaultSpec(**self.LOSSY, retry_limit=3, retry_backoff=0.5),
        ))
        without_retries = simulate(baseline_config(
            **base, faults=FaultSpec(**self.LOSSY, retry_limit=0),
        ))
        assert without_retries.global_.aborted > 0
        assert with_retries.md_global < without_retries.md_global

    def test_budget_exhaustion_fails_the_global_task(self):
        """Cluster-wide outages longer than the retry budget produce the
        "failed" disposition: the task is aborted with ``failed`` set."""
        spec = FaultSpec(
            mttf=300.0, mttr=80.0, blast_radius=6,
            in_flight="lost", queued="dropped",
            retry_limit=1, retry_timeout=10.0, retry_backoff=1.0,
        )
        result = simulate(baseline_config(
            sim_time=2_500.0, warmup_time=250.0, seed=1, faults=spec,
        ))
        assert result.global_.failed > 0
        # Failures are a subset of aborts.
        assert result.global_.failed <= result.global_.aborted

    def test_timeout_only_retries_without_crashes(self):
        """retry_timeout > 0 with mttf = 0: the retry layer is wired,
        crashes never happen, and no timer ever fires early enough to
        matter -- results equal the plain fault-free run."""
        spec = FaultSpec(retry_limit=2, retry_timeout=1_000.0)
        config = baseline_config(
            sim_time=1_000.0, warmup_time=100.0, seed=3, faults=spec,
        )
        plain = baseline_config(sim_time=1_000.0, warmup_time=100.0, seed=3)
        assert simulate(config) == simulate(plain)


class TestUtilizationSemantics:
    """mean_utilization is wall-clock (downtime included in the
    denominator); mean_active_utilization is availability-adjusted."""

    @staticmethod
    def _result(per_node):
        return RunResult(
            sim_time=100.0, warmup=0.0, per_class={}, per_node=per_node,
        )

    @staticmethod
    def _node(index, utilization, downtime):
        return NodeStats(
            index=index, utilization=utilization, mean_queue_length=0.0,
            dispatched=0, downtime=downtime,
        )

    def test_active_utilization_rescales_by_uptime(self):
        result = self._result([self._node(0, 0.3, 0.4)])
        assert result.mean_utilization == 0.3
        assert result.mean_active_utilization == pytest.approx(0.5)
        assert result.mean_availability == pytest.approx(0.6)

    def test_fully_down_node_contributes_zero(self):
        result = self._result([self._node(0, 0.0, 1.0)])
        assert result.mean_active_utilization == 0.0
        assert result.mean_availability == 0.0

    def test_fault_free_views_coincide(self):
        result = self._result([self._node(0, 0.7, 0.0), self._node(1, 0.5, 0.0)])
        assert result.mean_active_utilization == result.mean_utilization
        assert result.mean_availability == 1.0

    def test_integration_active_never_below_wall_clock(self):
        result = simulate(baseline_config(
            sim_time=2_000.0, warmup_time=200.0, seed=9,
            faults=FaultSpec(mttf=200.0, mttr=20.0),
        ))
        assert result.total_crashes > 0
        assert result.mean_active_utilization >= result.mean_utilization


class TestZeroRateBitIdentity:
    """A zero-rate FaultSpec must be bit-identical to no spec at all:
    no injector, no streams, no events, no drift."""

    CONFIG = dict(sim_time=2_000.0, warmup_time=200.0, seed=21)

    def test_zero_rate_equals_no_spec(self):
        with_spec = simulate(
            baseline_config(**self.CONFIG, faults=FaultSpec())
        )
        without = simulate(baseline_config(**self.CONFIG))
        assert with_spec == without

    def test_zero_rate_traces_event_for_event(self):
        sim_a = Simulation(
            baseline_config(**self.CONFIG, faults=FaultSpec(), trace=True)
        )
        result_a = sim_a.run()
        sim_b = Simulation(baseline_config(**self.CONFIG, trace=True))
        result_b = sim_b.run()
        assert result_a == result_b
        # Unit names embed a process-global counter that keeps counting
        # across Simulation instances; compare every other field.
        def key(event):
            return (event.time, event.kind, event.node_index,
                    event.task_class, event.deadline)

        events_a = [key(e) for e in sim_a.trace_log.events]
        events_b = [key(e) for e in sim_b.trace_log.events]
        assert len(events_a) == len(events_b)
        assert events_a == events_b

    def test_zero_rate_wires_nothing(self):
        sim = Simulation(baseline_config(**self.CONFIG, faults=FaultSpec()))
        assert sim.fault_injector is None
        assert sim.live_set is None
        # No fault streams were materialized.
        created = getattr(sim.streams, "_streams", {})
        assert not any("fault" in name for name in created)

    @pytest.mark.parametrize("kernel", ["python", "compiled"])
    def test_zero_rate_identity_under_kernel(self, kernel):
        if kernel == "compiled" and not _compiled_kernel_available():
            pytest.skip("compiled kernel extension not built")
        env = dict(os.environ, REPRO_KERNEL=kernel)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (
                os.path.join(os.path.dirname(__file__), "..", "..", "src"),
                env.get("PYTHONPATH", ""),
            ) if p
        )
        output = subprocess.run(
            [sys.executable, "-c", _ZERO_RATE_DRIVER],
            env=env, capture_output=True, text=True, check=True,
        ).stdout
        values = json.loads(output)
        assert values["kernel"] == kernel
        assert values["identical"] is True


def _compiled_kernel_available() -> bool:
    spec = importlib.util.find_spec("repro.sim._engine_c")
    if spec is None or spec.origin is None:
        return False
    return not spec.origin.endswith((".py", ".pyc"))


#: Subprocess driver: kernel selection is an import-time switch, so each
#: leg runs in its own interpreter.  Prints whether a zero-rate FaultSpec
#: run equals the no-spec run bit for bit.
_ZERO_RATE_DRIVER = """
import json
from repro.sim.core import KERNEL
from repro.system.config import baseline_config
from repro.system.faults import FaultSpec
from repro.system.simulation import simulate

kwargs = dict(sim_time=2_000.0, warmup_time=200.0, seed=21)
a = simulate(baseline_config(**kwargs, faults=FaultSpec()))
b = simulate(baseline_config(**kwargs))
print(json.dumps({"kernel": KERNEL, "identical": a == b}))
"""


class TestKernelPoolHygiene:
    """Crash-cancelled timers must recycle cleanly through the kernel's
    sleep pool: the cancelled entry pops silently at its original expiry
    and returns to service, so sustained churn cannot leak events."""

    def test_cancelled_service_timer_returns_to_pool(self, env, metrics):
        node = make_node(env, metrics)
        node.configure_fault_semantics(lose_in_flight=True, drop_queued=False)
        submit(env, node, ex=10.0, dl=100.0)
        env.run(until=2.0)
        sleep = node._sleep
        assert sleep is not None
        node.crash()
        # Cancelled: silenced but still heap-resident until expiry.
        assert sleep.callback is None
        assert sleep not in env._sleep_pool
        env.run(until=15.0)
        assert sleep in env._sleep_pool

    def test_churn_simulation_does_not_leak_pooled_events(self):
        sim = Simulation(baseline_config(
            sim_time=3_000.0, warmup_time=100.0, seed=4,
            faults=FaultSpec(
                mttf=100.0, mttr=10.0, in_flight="lost", queued="dropped",
                retry_limit=2, retry_timeout=20.0, retry_backoff=0.5,
            ),
        ))
        result = sim.run()
        assert result.total_crashes > 50
        # The pool holds only the handful of timers that were in flight
        # simultaneously -- tens of thousands of events were recycled.
        assert len(sim.env._sleep_pool) < 100
        assert all(s._processed for s in sim.env._sleep_pool)
