"""Unit tests for execution tracing (repro.system.tracing)."""

from __future__ import annotations

import pytest

from repro.core.task import TaskClass
from repro.core.timing import TimingRecord
from repro.system.config import baseline_config
from repro.system.metrics import MetricsCollector
from repro.system.node import Node
from repro.system.preemptive import PreemptiveNode
from repro.system.schedulers import EarliestDeadlineFirst
from repro.system.simulation import Simulation
from repro.system.tracing import (
    COMPLETE,
    DISPATCH,
    PREEMPT,
    SUBMIT,
    JsonlTraceSink,
    TraceLog,
    load_trace_events,
)
from repro.system.work import WorkUnit


def submit(env, node, ex, dl, name):
    timing = TimingRecord(ar=env.now, ex=ex, dl=dl)
    unit = WorkUnit(env=env, name=name, task_class=TaskClass.LOCAL,
                    node_index=node.index, timing=timing)
    node.submit(unit)
    return unit


@pytest.fixture
def traced_node(env):
    metrics = MetricsCollector(node_count=1)
    metrics.tracer = TraceLog()
    node = Node(env=env, index=0, policy=EarliestDeadlineFirst(), metrics=metrics)
    return node, metrics.tracer


class TestRecording:
    def test_lifecycle_events_in_order(self, env, traced_node):
        node, log = traced_node
        submit(env, node, ex=2.0, dl=10.0, name="a")
        env.run()
        kinds = [event.kind for event in log.filter(unit_name="a")]
        assert kinds == [SUBMIT, DISPATCH, COMPLETE]

    def test_event_payload(self, env, traced_node):
        node, log = traced_node
        submit(env, node, ex=2.0, dl=10.0, name="a")
        env.run()
        complete = log.filter(kind=COMPLETE)[0]
        assert complete.time == 2.0
        assert complete.node_index == 0
        assert complete.task_class == "local"
        assert complete.deadline == 10.0

    def test_unknown_kind_rejected(self, env, traced_node):
        node, log = traced_node
        unit = submit(env, node, ex=1.0, dl=5.0, name="a")
        with pytest.raises(ValueError):
            log.record(0.0, "explode", unit, 0)

    def test_limit_caps_events(self, env):
        metrics = MetricsCollector(node_count=1)
        metrics.tracer = TraceLog(limit=4)
        node = Node(env=env, index=0, policy=EarliestDeadlineFirst(),
                    metrics=metrics)
        for i in range(5):
            submit(env, node, ex=0.5, dl=50.0, name=f"u{i}")
        env.run()
        assert len(metrics.tracer) == 4

    def test_preemption_recorded(self, env):
        metrics = MetricsCollector(node_count=1)
        metrics.tracer = TraceLog()
        node = PreemptiveNode(env=env, index=0, policy=EarliestDeadlineFirst(),
                              metrics=metrics)
        submit(env, node, ex=10.0, dl=100.0, name="long")

        def late(env, node):
            yield env.timeout(2.0)
            submit(env, node, ex=1.0, dl=4.0, name="urgent")

        env.process(late(env, node))
        env.run()
        preempts = metrics.tracer.filter(kind=PREEMPT)
        assert len(preempts) == 1
        assert preempts[0].unit_name == "long"
        assert preempts[0].time == 2.0


class TestQueriesAndRendering:
    def test_busy_intervals(self, env, traced_node):
        node, log = traced_node
        submit(env, node, ex=2.0, dl=10.0, name="a")
        submit(env, node, ex=3.0, dl=20.0, name="b")
        env.run()
        intervals = log.busy_intervals(0)
        assert intervals == [(0.0, 2.0, "a"), (2.0, 5.0, "b")]

    def test_busy_intervals_across_preemption(self, env):
        metrics = MetricsCollector(node_count=1)
        metrics.tracer = TraceLog()
        node = PreemptiveNode(env=env, index=0, policy=EarliestDeadlineFirst(),
                              metrics=metrics)
        submit(env, node, ex=4.0, dl=100.0, name="long")

        def late(env, node):
            yield env.timeout(1.0)
            submit(env, node, ex=1.0, dl=3.0, name="urgent")

        env.process(late(env, node))
        env.run()
        intervals = metrics.tracer.busy_intervals(0)
        # long [0,1] (preempted), urgent [1,2], long [2,5].
        assert intervals == [
            (0.0, 1.0, "long"), (1.0, 2.0, "urgent"), (2.0, 5.0, "long"),
        ]

    def test_render_events_listing(self, env, traced_node):
        node, log = traced_node
        submit(env, node, ex=1.0, dl=5.0, name="a")
        env.run()
        text = log.render_events()
        assert "dispatch" in text
        assert "a" in text

    def test_render_events_truncation_note(self, env, traced_node):
        node, log = traced_node
        for i in range(4):
            submit(env, node, ex=0.1, dl=50.0, name=f"u{i}")
        env.run()
        text = log.render_events(limit=2)
        assert "more events" in text

    def test_render_timeline(self, env, traced_node):
        node, log = traced_node
        submit(env, node, ex=5.0, dl=50.0, name="a")
        env.run()
        text = log.render_timeline(node_count=1, width=20)
        assert "node 0" in text
        assert "#" in text

    def test_render_empty_timeline(self):
        assert "(empty trace)" in TraceLog().render_timeline(node_count=1)


class TestSimulationIntegration:
    def test_trace_flag_attaches_log(self):
        sim = Simulation(baseline_config(trace=True, sim_time=100.0,
                                         warmup_time=0.0))
        sim.run()
        assert sim.trace_log is not None
        assert len(sim.trace_log) > 0

    def test_no_trace_by_default(self):
        sim = Simulation(baseline_config(sim_time=100.0, warmup_time=0.0))
        sim.run()
        assert sim.trace_log is None
        assert sim.metrics.tracer is None

    def test_global_subtasks_traced(self):
        sim = Simulation(baseline_config(trace=True, sim_time=300.0,
                                         warmup_time=0.0, seed=3))
        sim.run()
        classes = {event.task_class for event in sim.trace_log.events}
        assert classes == {"local", "global"}


class TestTruncationAccounting:
    def test_dropped_counts_everything_past_the_cap(self, env):
        metrics = MetricsCollector(node_count=1)
        metrics.tracer = TraceLog(limit=4)
        node = Node(env=env, index=0, policy=EarliestDeadlineFirst(),
                    metrics=metrics)
        for i in range(5):
            submit(env, node, ex=0.5, dl=50.0, name=f"u{i}")
        env.run()
        log = metrics.tracer
        # 5 units x (submit, dispatch, complete) = 15 events, 4 kept.
        assert len(log) == 4
        assert log.dropped == 11
        assert log.truncated

    def test_fresh_log_is_not_truncated(self):
        log = TraceLog(limit=10)
        assert not log.truncated
        assert log.dropped == 0

    def test_render_events_notes_the_drop(self, env, traced_node_small):
        node, log = traced_node_small
        for i in range(5):
            submit(env, node, ex=0.5, dl=50.0, name=f"u{i}")
        env.run()
        rendered = log.render_events()
        assert "trace truncated" in rendered
        assert f"{log.dropped} events dropped" in rendered

    def test_repr_mentions_truncation(self, env, traced_node_small):
        node, log = traced_node_small
        for i in range(5):
            submit(env, node, ex=0.5, dl=50.0, name=f"u{i}")
        env.run()
        assert "truncated" in repr(log)
        assert str(log.dropped) in repr(log)

    def test_untruncated_render_has_no_note(self, env, traced_node):
        node, log = traced_node
        submit(env, node, ex=1.0, dl=5.0, name="a")
        env.run()
        assert "truncated" not in log.render_events()
        assert "truncated" not in repr(log)


@pytest.fixture
def traced_node_small(env):
    metrics = MetricsCollector(node_count=1)
    metrics.tracer = TraceLog(limit=4)
    node = Node(env=env, index=0, policy=EarliestDeadlineFirst(),
                metrics=metrics)
    return node, metrics.tracer


class TestJsonlTraceSink:
    def test_records_full_lifecycle_to_disk(self, env, tmp_path):
        path = tmp_path / "trace.jsonl"
        metrics = MetricsCollector(node_count=1)
        metrics.tracer = JsonlTraceSink(path)
        node = Node(env=env, index=0, policy=EarliestDeadlineFirst(),
                    metrics=metrics)
        submit(env, node, ex=2.0, dl=10.0, name="a")
        env.run()
        metrics.tracer.close()
        events = load_trace_events(path)
        assert [e.kind for e in events] == [SUBMIT, DISPATCH, COMPLETE]
        complete = events[-1]
        assert complete.time == 2.0
        assert complete.unit_name == "a"
        assert complete.node_index == 0
        assert complete.task_class == "local"
        assert complete.deadline == 10.0

    def test_unknown_kind_rejected(self, env, tmp_path):
        metrics = MetricsCollector(node_count=1)
        sink = JsonlTraceSink(tmp_path / "trace.jsonl")
        metrics.tracer = sink
        node = Node(env=env, index=0, policy=EarliestDeadlineFirst(),
                    metrics=metrics)
        unit = submit(env, node, ex=1.0, dl=5.0, name="a")
        with pytest.raises(ValueError):
            sink.record(0.0, "explode", unit, 0)

    def test_no_cap_unlike_trace_log(self, env, tmp_path):
        path = tmp_path / "trace.jsonl"
        metrics = MetricsCollector(node_count=1)
        metrics.tracer = JsonlTraceSink(path)
        node = Node(env=env, index=0, policy=EarliestDeadlineFirst(),
                    metrics=metrics)
        for i in range(40):
            submit(env, node, ex=0.1, dl=500.0, name=f"u{i}")
        env.run()
        metrics.tracer.close()
        assert len(load_trace_events(path)) == 120  # 40 x 3 lifecycle events

    def test_len_and_repr(self, env, tmp_path):
        sink = JsonlTraceSink(tmp_path / "trace.jsonl")
        assert len(sink) == 0
        assert "written=0" in repr(sink)
        metrics = MetricsCollector(node_count=1)
        metrics.tracer = sink
        node = Node(env=env, index=0, policy=EarliestDeadlineFirst(),
                    metrics=metrics)
        submit(env, node, ex=1.0, dl=5.0, name="a")
        env.run()
        assert len(sink) == 3

    def test_pickle_reopens_appending(self, env, tmp_path):
        import pickle

        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(path)
        metrics = MetricsCollector(node_count=1)
        metrics.tracer = sink
        node = Node(env=env, index=0, policy=EarliestDeadlineFirst(),
                    metrics=metrics)
        unit = submit(env, node, ex=1.0, dl=5.0, name="a")
        env.run()
        clone = pickle.loads(pickle.dumps(sink))
        sink.close()
        clone.record(9.0, COMPLETE, unit, 0)
        clone.close()
        events = load_trace_events(path)
        assert len(events) == 4
        assert events[-1].time == 9.0

    def test_attaches_to_a_full_simulation(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        config = baseline_config(sim_time=100.0, warmup_time=0.0, seed=5)
        simulation = Simulation(config)
        simulation.metrics.tracer = JsonlTraceSink(path)
        result = simulation.run()
        simulation.metrics.tracer.close()
        events = load_trace_events(path)
        assert len(events) > 0
        completes = [e for e in events if e.kind == COMPLETE]
        assert len(completes) >= result.local.completed
