"""Unit tests for metrics collection (repro.system.metrics)."""

from __future__ import annotations

import math

import pytest

from repro.core.task import TaskClass
from repro.core.timing import TimingRecord
from repro.system.metrics import ClassStats, MetricsCollector
from repro.system.work import WorkUnit


def finished_unit(env, task_class=TaskClass.LOCAL, ar=0.0, ex=1.0, dl=5.0,
                  started=1.0, completed=2.0, aborted=False):
    timing = TimingRecord(ar=ar, ex=ex, dl=dl)
    timing.started_at = started
    timing.completed_at = None if aborted else completed
    timing.aborted = aborted
    return WorkUnit(env=env, name="u", task_class=task_class,
                    node_index=0, timing=timing)


class TestClassStats:
    def test_miss_ratio(self):
        stats = ClassStats(completed=8, missed=2, aborted=2,
                           mean_response=1.0, mean_lateness=0.0, mean_waiting=0.0)
        assert stats.miss_ratio == 0.2  # 2 / (8 + 2)

    def test_miss_ratio_empty_is_nan(self):
        stats = ClassStats(completed=0, missed=0, aborted=0,
                           mean_response=math.nan, mean_lateness=math.nan,
                           mean_waiting=math.nan)
        assert math.isnan(stats.miss_ratio)


class TestUnitRecording:
    def test_met_deadline(self, env):
        collector = MetricsCollector(node_count=1)
        collector.record_unit_completion(finished_unit(env, completed=2.0, dl=5.0))
        stats = collector.snapshot(10.0).local
        assert stats.completed == 1
        assert stats.missed == 0
        assert stats.mean_response == pytest.approx(2.0)
        assert stats.mean_lateness == pytest.approx(-3.0)
        assert stats.mean_waiting == pytest.approx(1.0)

    def test_missed_deadline(self, env):
        collector = MetricsCollector(node_count=1)
        collector.record_unit_completion(finished_unit(env, completed=9.0, dl=5.0))
        stats = collector.snapshot(10.0).local
        assert stats.missed == 1

    def test_aborted_unit(self, env):
        collector = MetricsCollector(node_count=1)
        collector.record_unit_completion(finished_unit(env, aborted=True))
        stats = collector.snapshot(10.0).local
        assert stats.aborted == 1
        assert stats.missed == 1
        assert stats.completed == 0

    def test_global_units_ignored(self, env):
        collector = MetricsCollector(node_count=1)
        collector.record_unit_completion(
            finished_unit(env, task_class=TaskClass.GLOBAL)
        )
        snapshot = collector.snapshot(10.0)
        assert snapshot.local.completed == 0
        assert snapshot.global_.completed == 0


class TestGlobalRecording:
    def test_met(self):
        collector = MetricsCollector(node_count=1)
        collector.record_global_completion(
            timing_missed=False, aborted=False, response_time=4.0, lateness=-1.0
        )
        stats = collector.snapshot(10.0).global_
        assert stats.completed == 1
        assert stats.missed == 0
        assert stats.mean_response == pytest.approx(4.0)

    def test_missed(self):
        collector = MetricsCollector(node_count=1)
        collector.record_global_completion(
            timing_missed=True, aborted=False, response_time=9.0, lateness=2.0
        )
        stats = collector.snapshot(10.0).global_
        assert stats.missed == 1
        assert stats.miss_ratio == 1.0

    def test_aborted(self):
        collector = MetricsCollector(node_count=1)
        collector.record_global_completion(
            timing_missed=True, aborted=True, response_time=0.0, lateness=0.0
        )
        stats = collector.snapshot(10.0).global_
        assert stats.aborted == 1
        assert stats.missed == 1
        assert stats.completed == 0


class TestWarmupReset:
    def test_reset_discards_counts(self, env):
        collector = MetricsCollector(node_count=2)
        collector.record_unit_completion(finished_unit(env))
        collector.node_busy[0].update(1, now=0.0)
        collector.reset(now=100.0)
        snapshot = collector.snapshot(200.0)
        assert snapshot.local.completed == 0
        assert snapshot.warmup == 100.0
        # Busy signal keeps its current value but restarts integration.
        assert snapshot.per_node[0].utilization == pytest.approx(1.0)

    def test_dispatch_counters_reset(self, env):
        collector = MetricsCollector(node_count=1)
        collector.count_dispatch(0)
        collector.reset(now=10.0)
        assert collector.snapshot(20.0).per_node[0].dispatched == 0


class TestRunResult:
    def test_md_properties(self, env):
        collector = MetricsCollector(node_count=1)
        collector.record_unit_completion(finished_unit(env, completed=9.0, dl=5.0))
        collector.record_global_completion(
            timing_missed=False, aborted=False, response_time=1.0, lateness=-1.0
        )
        result = collector.snapshot(10.0)
        assert result.md_local == 1.0
        assert result.md_global == 0.0
        assert result.sim_time == 10.0

    def test_mean_utilization_averages_nodes(self, env):
        collector = MetricsCollector(node_count=2)
        collector.node_busy[0].update(1, now=0.0)   # busy whole window
        # node 1 stays idle
        result = collector.snapshot(10.0)
        assert result.mean_utilization == pytest.approx(0.5)
