"""Unit tests for metrics collection (repro.system.metrics)."""

from __future__ import annotations

import math

import pytest

from repro.core.task import TaskClass
from repro.core.timing import TimingRecord
from repro.system.metrics import ClassStats, MetricsCollector
from repro.system.work import WorkUnit


def finished_unit(env, task_class=TaskClass.LOCAL, ar=0.0, ex=1.0, dl=5.0,
                  started=1.0, completed=2.0, aborted=False):
    timing = TimingRecord(ar=ar, ex=ex, dl=dl)
    timing.started_at = started
    timing.completed_at = None if aborted else completed
    timing.aborted = aborted
    return WorkUnit(env=env, name="u", task_class=task_class,
                    node_index=0, timing=timing)


class TestClassStats:
    def test_miss_ratio(self):
        stats = ClassStats(completed=8, missed=2, aborted=2,
                           mean_response=1.0, mean_lateness=0.0, mean_waiting=0.0)
        assert stats.miss_ratio == 0.2  # 2 / (8 + 2)

    def test_miss_ratio_empty_is_nan(self):
        stats = ClassStats(completed=0, missed=0, aborted=0,
                           mean_response=math.nan, mean_lateness=math.nan,
                           mean_waiting=math.nan)
        assert math.isnan(stats.miss_ratio)


class TestUnitRecording:
    def test_met_deadline(self, env):
        collector = MetricsCollector(node_count=1)
        collector.record_unit_completion(finished_unit(env, completed=2.0, dl=5.0))
        stats = collector.snapshot(10.0).local
        assert stats.completed == 1
        assert stats.missed == 0
        assert stats.mean_response == pytest.approx(2.0)
        assert stats.mean_lateness == pytest.approx(-3.0)
        assert stats.mean_waiting == pytest.approx(1.0)

    def test_missed_deadline(self, env):
        collector = MetricsCollector(node_count=1)
        collector.record_unit_completion(finished_unit(env, completed=9.0, dl=5.0))
        stats = collector.snapshot(10.0).local
        assert stats.missed == 1

    def test_aborted_unit(self, env):
        collector = MetricsCollector(node_count=1)
        collector.record_unit_completion(finished_unit(env, aborted=True))
        stats = collector.snapshot(10.0).local
        assert stats.aborted == 1
        assert stats.missed == 1
        assert stats.completed == 0

    def test_global_units_ignored(self, env):
        collector = MetricsCollector(node_count=1)
        collector.record_unit_completion(
            finished_unit(env, task_class=TaskClass.GLOBAL)
        )
        snapshot = collector.snapshot(10.0)
        assert snapshot.local.completed == 0
        assert snapshot.global_.completed == 0


class TestGlobalRecording:
    def test_met(self):
        collector = MetricsCollector(node_count=1)
        collector.record_global_completion(
            timing_missed=False, aborted=False, response_time=4.0, lateness=-1.0
        )
        stats = collector.snapshot(10.0).global_
        assert stats.completed == 1
        assert stats.missed == 0
        assert stats.mean_response == pytest.approx(4.0)

    def test_missed(self):
        collector = MetricsCollector(node_count=1)
        collector.record_global_completion(
            timing_missed=True, aborted=False, response_time=9.0, lateness=2.0
        )
        stats = collector.snapshot(10.0).global_
        assert stats.missed == 1
        assert stats.miss_ratio == 1.0

    def test_aborted(self):
        collector = MetricsCollector(node_count=1)
        collector.record_global_completion(
            timing_missed=True, aborted=True, response_time=0.0, lateness=0.0
        )
        stats = collector.snapshot(10.0).global_
        assert stats.aborted == 1
        assert stats.missed == 1
        assert stats.completed == 0


class TestWarmupReset:
    def test_reset_discards_counts(self, env):
        collector = MetricsCollector(node_count=2)
        collector.record_unit_completion(finished_unit(env))
        collector.node_busy[0].update(1, now=0.0)
        collector.reset(now=100.0)
        snapshot = collector.snapshot(200.0)
        assert snapshot.local.completed == 0
        assert snapshot.warmup == 100.0
        # Busy signal keeps its current value but restarts integration.
        assert snapshot.per_node[0].utilization == pytest.approx(1.0)

    def test_dispatch_counters_reset(self, env):
        collector = MetricsCollector(node_count=1)
        collector.count_dispatch(0)
        collector.reset(now=10.0)
        assert collector.snapshot(20.0).per_node[0].dispatched == 0


class TestRunResult:
    def test_md_properties(self, env):
        collector = MetricsCollector(node_count=1)
        collector.record_unit_completion(finished_unit(env, completed=9.0, dl=5.0))
        collector.record_global_completion(
            timing_missed=False, aborted=False, response_time=1.0, lateness=-1.0
        )
        result = collector.snapshot(10.0)
        assert result.md_local == 1.0
        assert result.md_global == 0.0
        assert result.sim_time == 10.0

    def test_mean_utilization_averages_nodes(self, env):
        collector = MetricsCollector(node_count=2)
        collector.node_busy[0].update(1, now=0.0)   # busy whole window
        # node 1 stays idle
        result = collector.snapshot(10.0)
        assert result.mean_utilization == pytest.approx(0.5)


class TestStreamingPercentiles:
    """ClassStats p50/p95/p99 from the inline P² sketches."""

    def test_percentiles_track_completions(self, env):
        collector = MetricsCollector(node_count=1)
        for i in range(1, 101):
            collector.record_unit_completion(
                finished_unit(env, ar=0.0, completed=float(i), dl=50.0),
                now=float(i),
            )
        stats = collector.snapshot(200.0).local
        # Responses are exactly 1..100: small-n P² stays close to exact.
        assert abs(stats.p50_response - 50.0) <= 5.0
        assert abs(stats.p95_response - 95.0) <= 5.0
        assert stats.p50_response <= stats.p95_response <= stats.p99_response
        # Lateness is response - 50 shifted.
        assert abs(stats.p50_lateness - 0.0) <= 5.0

    def test_empty_percentiles_are_nan_and_snapshots_compare_equal(self):
        collector = MetricsCollector(node_count=1)
        a = collector.snapshot(1.0)
        b = collector.snapshot(1.0)
        assert math.isnan(a.local.p99_response)
        # The nan singleton keeps dataclass equality working.
        assert a == b

    def test_warmup_reset_clears_sketches(self, env):
        collector = MetricsCollector(node_count=1)
        collector.record_unit_completion(finished_unit(env), now=2.0)
        collector.reset(5.0)
        assert math.isnan(collector.snapshot(10.0).local.p50_response)


class TestFromDictTolerance:
    """Journals written before a field existed must stay loadable."""

    #: A faithful result record from the PR-7-era journal format (before
    #: the percentile fields landed): ClassStats had through "failed",
    #: NodeStats through "downtime", RunResult through "retries".
    PR7_RECORD = {
        "sim_time": 2500.0,
        "warmup": 250.0,
        "per_class": {
            "local": {
                "completed": 5136, "missed": 1204, "aborted": 0,
                "mean_response": 1.783879225470131,
                "mean_lateness": -0.581420252394006,
                "mean_waiting": 0.7793337698086901,
                "failed": 0,
            },
            "global": {
                "completed": 402, "missed": 163, "aborted": 0,
                "mean_response": 8.579486447843847,
                "mean_lateness": -0.9237181639001631,
                "mean_waiting": float("nan"),
                "failed": 0,
            },
        },
        "per_node": [
            {
                "index": 0, "utilization": 0.5153333521237488,
                "mean_queue_length": 0.4392931486126085,
                "dispatched": 1155, "preemptions": 0, "crashes": 0,
                "lost": 0, "downtime": 0.0,
            },
        ],
        "retries": 0,
    }

    def test_pr7_era_record_loads_with_nan_percentiles(self):
        from repro.system.metrics import RunResult

        result = RunResult.from_dict(self.PR7_RECORD)
        assert result.local.completed == 5136
        assert result.local.failed == 0
        assert math.isnan(result.local.p99_response)
        assert math.isnan(result.global_.p50_lateness)

    def test_pre_retries_record_loads(self):
        from repro.system.metrics import RunResult

        record = {k: v for k, v in self.PR7_RECORD.items() if k != "retries"}
        assert RunResult.from_dict(record).retries == 0

    def test_pre_fault_node_record_loads(self):
        from repro.system.metrics import NodeStats

        stats = NodeStats.from_dict({
            "index": 1, "utilization": 0.5,
            "mean_queue_length": 0.25, "dispatched": 10,
        })
        assert stats.preemptions == 0
        assert stats.crashes == 0
        assert stats.lost == 0
        assert stats.downtime == 0.0

    def test_pre_failed_class_record_loads(self):
        stats = ClassStats.from_dict({
            "completed": 5, "missed": 1, "aborted": 0,
            "mean_response": 1.0, "mean_lateness": -0.5,
            "mean_waiting": 0.25,
        })
        assert stats.failed == 0
        assert math.isnan(stats.p95_response)

    def test_unknown_future_keys_ignored(self):
        stats = ClassStats.from_dict({
            "completed": 5, "missed": 1, "aborted": 0,
            "mean_response": 1.0, "mean_lateness": -0.5,
            "mean_waiting": 0.25, "some_future_field": 123,
        })
        assert stats.completed == 5

    def test_round_trip_still_exact(self, env):
        from repro.system.metrics import RunResult

        collector = MetricsCollector(node_count=2)
        collector.record_unit_completion(finished_unit(env), now=2.0)
        result = collector.snapshot(10.0)
        assert RunResult.from_dict(result.to_dict()) == result
