"""Unit tests for the preemptive-resume node (repro.system.preemptive)."""

from __future__ import annotations

import pytest

from repro.core.strategies.base import PriorityClass
from repro.core.task import TaskClass
from repro.core.timing import TimingRecord
from repro.system.config import baseline_config
from repro.system.metrics import MetricsCollector
from repro.system.preemptive import PreemptiveNode
from repro.system.schedulers import EarliestDeadlineFirst
from repro.system.simulation import simulate
from repro.system.work import WorkUnit


@pytest.fixture
def metrics():
    return MetricsCollector(node_count=1)


@pytest.fixture
def node(env, metrics):
    return PreemptiveNode(
        env=env, index=0, policy=EarliestDeadlineFirst(), metrics=metrics
    )


def submit(env, node, ex, dl, name="u", priority=PriorityClass.NORMAL):
    timing = TimingRecord(ar=env.now, ex=ex, dl=dl)
    unit = WorkUnit(env=env, name=name, task_class=TaskClass.LOCAL,
                    node_index=0, timing=timing, priority_class=priority)
    node.submit(unit)
    return unit


class TestPreemption:
    def test_urgent_arrival_preempts(self, env, node):
        long_unit = submit(env, node, ex=10.0, dl=100.0, name="long")

        def late_arrival(env, node, out):
            yield env.timeout(2.0)
            out.append(submit(env, node, ex=1.0, dl=4.0, name="urgent"))

        arrivals = []
        env.process(late_arrival(env, node, arrivals))
        env.run()
        urgent = arrivals[0]
        # The urgent unit ran immediately: [2, 3].
        assert urgent.timing.completed_at == 3.0
        assert not urgent.timing.missed
        # The long unit resumed and finished with its full 10 units served:
        # [0, 2] + [3, 11].
        assert long_unit.timing.completed_at == 11.0
        assert node.preemptions == 1

    def test_equal_priority_does_not_preempt(self, env, node):
        running = submit(env, node, ex=5.0, dl=50.0, name="running")

        def late_arrival(env, node):
            yield env.timeout(1.0)
            submit(env, node, ex=1.0, dl=50.0, name="tie")

        env.process(late_arrival(env, node))
        env.run()
        assert running.timing.completed_at == 5.0
        assert node.preemptions == 0

    def test_lower_priority_does_not_preempt(self, env, node):
        running = submit(env, node, ex=5.0, dl=10.0, name="running")

        def late_arrival(env, node):
            yield env.timeout(1.0)
            submit(env, node, ex=1.0, dl=99.0, name="later-dl")

        env.process(late_arrival(env, node))
        env.run()
        assert running.timing.completed_at == 5.0
        assert node.preemptions == 0

    def test_nested_preemption(self, env, node):
        """A preempting unit can itself be preempted."""
        first = submit(env, node, ex=10.0, dl=100.0, name="first")

        def arrivals(env, node, out):
            yield env.timeout(2.0)
            out.append(submit(env, node, ex=4.0, dl=20.0, name="second"))
            yield env.timeout(1.0)
            out.append(submit(env, node, ex=1.0, dl=5.0, name="third"))

        created = []
        env.process(arrivals(env, node, created))
        env.run()
        second, third = created
        assert third.timing.completed_at == 4.0      # [3, 4]: 1 unit
        assert second.timing.completed_at == 7.0     # [2, 3] + [4, 7]: 4 units
        assert first.timing.completed_at == 15.0     # [0, 2] + [7, 15]: 10 units
        assert node.preemptions == 2

    def test_started_at_is_first_service(self, env, node):
        long_unit = submit(env, node, ex=10.0, dl=100.0, name="long")

        def late_arrival(env, node):
            yield env.timeout(2.0)
            submit(env, node, ex=1.0, dl=4.0, name="urgent")

        env.process(late_arrival(env, node))
        env.run()
        assert long_unit.timing.started_at == 0.0

    def test_elevated_class_preempts_normal(self, env, node):
        """Globals-First semantics carry over: an elevated unit preempts a
        normal one regardless of deadlines."""
        running = submit(env, node, ex=5.0, dl=6.0, name="local")

        def late_arrival(env, node, out):
            yield env.timeout(1.0)
            out.append(submit(env, node, ex=1.0, dl=99.0, name="global",
                              priority=PriorityClass.ELEVATED))

        created = []
        env.process(late_arrival(env, node, created))
        env.run()
        assert created[0].timing.completed_at == 2.0
        assert running.timing.completed_at == 6.0

    def test_utilization_accounting_across_preemption(self, env, node, metrics):
        submit(env, node, ex=4.0, dl=100.0, name="long")

        def late_arrival(env, node):
            yield env.timeout(1.0)
            submit(env, node, ex=2.0, dl=5.0, name="urgent")

        env.process(late_arrival(env, node))
        env.run(until=10.0)
        # Total service = 6 units over [0, 10]: no double counting.
        assert metrics.snapshot(10.0).per_node[0].utilization == pytest.approx(0.6)


class TestIntegration:
    def test_preemptive_baseline_runs(self):
        result = simulate(
            baseline_config(preemptive=True, sim_time=2_000.0, warmup_time=200.0)
        )
        assert 0.0 <= result.md_local <= 1.0
        assert result.global_.completed > 50

    def test_preemption_helps_short_local_tasks(self):
        """Short local tasks no longer wait behind long subtasks."""
        config = dict(sim_time=4_000.0, warmup_time=400.0, seed=9)
        blocking = simulate(baseline_config(preemptive=False, **config))
        preemptive = simulate(baseline_config(preemptive=True, **config))
        assert preemptive.md_local < blocking.md_local

    def test_same_seed_deterministic(self):
        config = baseline_config(preemptive=True, sim_time=1_500.0,
                                 warmup_time=150.0, seed=4)
        a, b = simulate(config), simulate(config)
        assert a.md_local == b.md_local
        assert a.md_global == b.md_global
