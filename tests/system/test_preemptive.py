"""Unit tests for the preemptive-resume node (repro.system.preemptive)."""

from __future__ import annotations

import pytest

from repro.core.strategies.base import PriorityClass
from repro.core.task import TaskClass
from repro.core.timing import TimingRecord
from repro.system.config import baseline_config
from repro.system.metrics import MetricsCollector
from repro.system.preemptive import PreemptiveNode
from repro.system.schedulers import EarliestDeadlineFirst
from repro.system.simulation import simulate
from repro.system.work import WorkUnit


@pytest.fixture
def metrics():
    return MetricsCollector(node_count=1)


@pytest.fixture
def node(env, metrics):
    return PreemptiveNode(
        env=env, index=0, policy=EarliestDeadlineFirst(), metrics=metrics
    )


def submit(env, node, ex, dl, name="u", priority=PriorityClass.NORMAL):
    timing = TimingRecord(ar=env.now, ex=ex, dl=dl)
    unit = WorkUnit(env=env, name=name, task_class=TaskClass.LOCAL,
                    node_index=0, timing=timing, priority_class=priority)
    node.submit(unit)
    return unit


class TestPreemption:
    def test_urgent_arrival_preempts(self, env, node):
        long_unit = submit(env, node, ex=10.0, dl=100.0, name="long")

        def late_arrival(env, node, out):
            yield env.timeout(2.0)
            out.append(submit(env, node, ex=1.0, dl=4.0, name="urgent"))

        arrivals = []
        env.process(late_arrival(env, node, arrivals))
        env.run()
        urgent = arrivals[0]
        # The urgent unit ran immediately: [2, 3].
        assert urgent.timing.completed_at == 3.0
        assert not urgent.timing.missed
        # The long unit resumed and finished with its full 10 units served:
        # [0, 2] + [3, 11].
        assert long_unit.timing.completed_at == 11.0
        assert node.preemptions == 1

    def test_equal_priority_does_not_preempt(self, env, node):
        running = submit(env, node, ex=5.0, dl=50.0, name="running")

        def late_arrival(env, node):
            yield env.timeout(1.0)
            submit(env, node, ex=1.0, dl=50.0, name="tie")

        env.process(late_arrival(env, node))
        env.run()
        assert running.timing.completed_at == 5.0
        assert node.preemptions == 0

    def test_lower_priority_does_not_preempt(self, env, node):
        running = submit(env, node, ex=5.0, dl=10.0, name="running")

        def late_arrival(env, node):
            yield env.timeout(1.0)
            submit(env, node, ex=1.0, dl=99.0, name="later-dl")

        env.process(late_arrival(env, node))
        env.run()
        assert running.timing.completed_at == 5.0
        assert node.preemptions == 0

    def test_nested_preemption(self, env, node):
        """A preempting unit can itself be preempted."""
        first = submit(env, node, ex=10.0, dl=100.0, name="first")

        def arrivals(env, node, out):
            yield env.timeout(2.0)
            out.append(submit(env, node, ex=4.0, dl=20.0, name="second"))
            yield env.timeout(1.0)
            out.append(submit(env, node, ex=1.0, dl=5.0, name="third"))

        created = []
        env.process(arrivals(env, node, created))
        env.run()
        second, third = created
        assert third.timing.completed_at == 4.0      # [3, 4]: 1 unit
        assert second.timing.completed_at == 7.0     # [2, 3] + [4, 7]: 4 units
        assert first.timing.completed_at == 15.0     # [0, 2] + [7, 15]: 10 units
        assert node.preemptions == 2

    def test_started_at_is_first_service(self, env, node):
        long_unit = submit(env, node, ex=10.0, dl=100.0, name="long")

        def late_arrival(env, node):
            yield env.timeout(2.0)
            submit(env, node, ex=1.0, dl=4.0, name="urgent")

        env.process(late_arrival(env, node))
        env.run()
        assert long_unit.timing.started_at == 0.0

    def test_elevated_class_preempts_normal(self, env, node):
        """Globals-First semantics carry over: an elevated unit preempts a
        normal one regardless of deadlines."""
        running = submit(env, node, ex=5.0, dl=6.0, name="local")

        def late_arrival(env, node, out):
            yield env.timeout(1.0)
            out.append(submit(env, node, ex=1.0, dl=99.0, name="global",
                              priority=PriorityClass.ELEVATED))

        created = []
        env.process(late_arrival(env, node, created))
        env.run()
        assert created[0].timing.completed_at == 2.0
        assert running.timing.completed_at == 6.0

    def test_utilization_accounting_across_preemption(self, env, node, metrics):
        submit(env, node, ex=4.0, dl=100.0, name="long")

        def late_arrival(env, node):
            yield env.timeout(1.0)
            submit(env, node, ex=2.0, dl=5.0, name="urgent")

        env.process(late_arrival(env, node))
        env.run(until=10.0)
        # Total service = 6 units over [0, 10]: no double counting.
        assert metrics.snapshot(10.0).per_node[0].utilization == pytest.approx(0.6)


class TestSameInstantArrivals:
    """Regression tests for the double-interrupt bug: every same-instant
    higher-priority arrival used to issue its own ``process.interrupt()``,
    and the queued second interrupt fired at the *next* service interval,
    charging a spurious preemption to the wrong unit."""

    def test_two_simultaneous_urgent_arrivals_preempt_once(self, env, node):
        long_unit = submit(env, node, ex=10.0, dl=100.0, name="long")

        def storm(env, node, out):
            yield env.timeout(2.0)
            # Two arrivals at the same instant, both beating the unit in
            # service, submitted within one event callback.
            out.append(submit(env, node, ex=1.0, dl=4.0, name="urgent-a"))
            out.append(submit(env, node, ex=1.0, dl=5.0, name="urgent-b"))

        arrivals = []
        env.process(storm(env, node, arrivals))
        env.run()
        a, b = arrivals
        # One preemption: the server re-picks the best queued unit once.
        assert node.preemptions == 1
        # EDF order among the newcomers: a then b, then the long unit.
        assert a.timing.completed_at == 3.0
        assert b.timing.completed_at == 4.0
        # The long unit got 2 units in [0, 2] and its remaining 8 after
        # the storm -- no spurious second preemption at the re-dispatch.
        assert long_unit.timing.completed_at == 12.0
        assert node._remaining == {}

    def test_storm_preemption_counter_exact(self, env, node):
        """An N-arrival same-instant storm is exactly one preemption."""
        submit(env, node, ex=20.0, dl=200.0, name="long")

        def storm(env, node):
            yield env.timeout(1.0)
            for i in range(5):
                submit(env, node, ex=0.5, dl=2.0 + 0.1 * i, name=f"s{i}")

        env.process(storm(env, node))
        env.run()
        assert node.preemptions == 1
        assert node._remaining == {}

    def test_sequential_preemptions_still_count_individually(self, env, node):
        """The pending-interrupt guard must not swallow preemptions that
        happen at distinct instants."""
        submit(env, node, ex=20.0, dl=200.0, name="long")

        def arrivals(env, node):
            yield env.timeout(1.0)
            submit(env, node, ex=1.0, dl=5.0, name="first")
            yield env.timeout(2.0)
            submit(env, node, ex=1.0, dl=6.0, name="second")

        env.process(arrivals(env, node))
        env.run()
        assert node.preemptions == 2
        assert node._remaining == {}


class TestCompletionInstantInterrupt:
    """Regression tests for the negative-remaining-demand bug: an
    interrupt landing at the completion instant produced
    ``remaining = demand - consumed < 0`` by a float ulp, and later a
    negative sleep delay."""

    def test_interrupt_at_completion_instant_clamps_remaining(self, env, node):
        # "first" is served over [0.1, 0.4], and in float arithmetic
        # (0.1 + 0.3) - 0.1 = 0.30000000000000004 > 0.3: an interrupt at
        # the completion instant computes consumed > demand by an ulp.
        # The background unit makes the target's service *sleep* get a
        # larger event sequence number than the preempter's arrival
        # timeout (scheduled at t=0), so the arrival wins the same-time
        # tie and the interrupt really lands before the completion event.
        # Unclamped, the negative remainder became a negative sleep delay
        # (ValueError) at the re-dispatch.
        submit(env, node, ex=0.1, dl=1.0, name="background")
        first = submit(env, node, ex=0.3, dl=100.0, name="first")

        def urgent_at_completion(env, node, out):
            yield env.timeout(0.4)
            out.append(submit(env, node, ex=0.1, dl=0.6, name="urgent"))

        arrivals = []
        env.process(urgent_at_completion(env, node, arrivals))
        env.run()
        urgent = arrivals[0]
        assert node.preemptions == 1
        assert urgent.timing.completed_at == 0.5
        # The fully-served first unit was re-queued with exactly zero
        # remaining demand (never negative) and completed right after.
        assert first.timing.completed_at == 0.5
        assert node._remaining == {}

    def test_remaining_demand_never_negative(self, env, node):
        """Drive many preemptions at awkward float instants and assert the
        remaining-demand table never goes negative."""
        for i in range(10):
            submit(env, node, ex=0.1 * (i + 1), dl=100.0 + i, name=f"bg{i}")

        seen = []

        def storm(env, node):
            t = 0.0
            for i in range(30):
                step = 0.07 * ((i % 5) + 1)
                t += step
                yield env.timeout(step)
                submit(env, node, ex=0.05, dl=env.now + 0.2, name=f"hi{i}")
                seen.append(min(node._remaining.values(), default=0.0))

        env.process(storm(env, node))
        env.run()
        assert all(value >= 0.0 for value in seen)
        assert min(node._remaining.values(), default=0.0) >= 0.0
        assert node._remaining == {}


class TestEdgeCases:
    def test_zero_demand_unit_completes_instantly(self, env, node):
        zero = submit(env, node, ex=0.0, dl=10.0, name="zero")
        env.run()
        assert zero.timing.completed_at == 0.0
        assert not zero.timing.missed
        assert node.preemptions == 0
        assert node._remaining == {}

    def test_zero_demand_unit_under_storm(self, env, node):
        """Zero-demand units interleaved with preemption churn neither
        preempt wrongly nor leak remaining-demand entries."""
        long_unit = submit(env, node, ex=10.0, dl=100.0, name="long")

        def arrivals(env, node, out):
            yield env.timeout(1.0)
            out.append(submit(env, node, ex=0.0, dl=2.0, name="zero"))
            yield env.timeout(1.0)
            out.append(submit(env, node, ex=1.0, dl=4.0, name="urgent"))

        created = []
        env.process(arrivals(env, node, created))
        env.run()
        zero, urgent = created
        assert zero.timing.completed_at == 1.0
        assert urgent.timing.completed_at == 3.0
        # long: [0, 1] + [1, 2] + [3, 11] = its full 10 units.
        assert long_unit.timing.completed_at == 11.0
        assert node.preemptions == 2
        assert node._remaining == {}

    def test_preempted_then_aborted_leaves_no_remaining_leak(self, env, metrics):
        """A unit preempted once and later aborted at re-dispatch must be
        scrubbed from the remaining-demand table."""
        from repro.system.overload import AbortTardyAtDispatch

        node = PreemptiveNode(
            env=env, index=0, policy=EarliestDeadlineFirst(),
            metrics=metrics, overload_policy=AbortTardyAtDispatch(),
        )
        doomed = submit(env, node, ex=10.0, dl=5.0, name="doomed")

        def arrivals(env, node):
            yield env.timeout(2.0)
            # Preempts "doomed" and serves past its deadline, so the
            # re-dispatch of "doomed" aborts it.
            submit(env, node, ex=4.0, dl=4.5, name="urgent")

        env.process(arrivals(env, node))
        env.run()
        assert doomed.timing.aborted
        assert doomed.timing.completed_at is None
        assert node.preemptions == 1
        assert node._remaining == {}

    def test_remaining_cleared_on_completion(self, env, node):
        preempted = submit(env, node, ex=5.0, dl=50.0, name="victim")

        def arrival(env, node):
            yield env.timeout(1.0)
            submit(env, node, ex=1.0, dl=3.0, name="urgent")

        env.process(arrival(env, node))
        env.run()
        # victim: [0, 1] + [2, 6] = its full 5 units.
        assert preempted.timing.completed_at == 6.0
        assert node._remaining == {}


class TestSpeedFactors:
    """Per-node speed factors on the preemptive server: service time is
    remaining demand / speed, recomputed at every (re-)dispatch."""

    def make_node(self, env, metrics, speed):
        return PreemptiveNode(
            env=env, index=0, policy=EarliestDeadlineFirst(),
            metrics=metrics, speed=speed,
        )

    def test_fast_node_halves_service_time(self, env, metrics):
        node = self.make_node(env, metrics, speed=2.0)
        unit = submit(env, node, ex=10.0, dl=100.0, name="u")
        env.run()
        assert unit.timing.completed_at == 5.0

    def test_remaining_demand_scales_across_preemption(self, env, metrics):
        """On a speed-2 node: 10 demand = 5 time units.  Preempt after 2
        time units (4 demand consumed); the resume needs (10-4)/2 = 3."""
        node = self.make_node(env, metrics, speed=2.0)
        long_unit = submit(env, node, ex=10.0, dl=100.0, name="long")

        def arrival(env, node):
            yield env.timeout(2.0)
            submit(env, node, ex=2.0, dl=5.0, name="urgent")

        env.process(arrival(env, node))
        env.run()
        # urgent: [2, 3] (2 demand at speed 2); long: [0, 2] + [3, 6].
        assert long_unit.timing.completed_at == 6.0
        assert node.preemptions == 1
        assert node._remaining == {}

    def test_slow_node_stretches_service(self, env, metrics):
        node = self.make_node(env, metrics, speed=0.5)
        unit = submit(env, node, ex=3.0, dl=100.0, name="u")
        env.run()
        assert unit.timing.completed_at == 6.0

    def test_invalid_speed_rejected(self, env, metrics):
        with pytest.raises(ValueError, match="speed"):
            self.make_node(env, metrics, speed=0.0)


class TestIntegration:
    def test_preemptive_baseline_runs(self):
        result = simulate(
            baseline_config(preemptive=True, sim_time=2_000.0, warmup_time=200.0)
        )
        assert 0.0 <= result.md_local <= 1.0
        assert result.global_.completed > 50

    def test_preemption_helps_short_local_tasks(self):
        """Short local tasks no longer wait behind long subtasks."""
        config = dict(sim_time=4_000.0, warmup_time=400.0, seed=9)
        blocking = simulate(baseline_config(preemptive=False, **config))
        preemptive = simulate(baseline_config(preemptive=True, **config))
        assert preemptive.md_local < blocking.md_local

    def test_same_seed_deterministic(self):
        config = baseline_config(preemptive=True, sim_time=1_500.0,
                                 warmup_time=150.0, seed=4)
        a, b = simulate(config), simulate(config)
        assert a.md_local == b.md_local
        assert a.md_global == b.md_global


class TestPreemptionsInRunResult:
    """The per-node preemption counter surfaced through RunResult
    (ROADMAP open item: sweeps could not rank by preemption rate when
    only the node object exposed it)."""

    def test_preemptive_run_reports_per_node_preemptions(self):
        result = simulate(
            baseline_config(preemptive=True, sim_time=2_000.0,
                            warmup_time=200.0, seed=5)
        )
        assert result.total_preemptions > 0
        assert result.total_preemptions == sum(
            n.preemptions for n in result.per_node
        )
        assert all(n.preemptions >= 0 for n in result.per_node)

    def test_non_preemptive_run_reports_zero(self):
        result = simulate(
            baseline_config(preemptive=False, sim_time=1_000.0,
                            warmup_time=100.0, seed=5)
        )
        assert result.total_preemptions == 0
        assert all(n.preemptions == 0 for n in result.per_node)

    def test_counter_resets_at_warmup(self):
        """RunResult counts the measured window only; the node object's
        lifetime diagnostic keeps counting from t=0."""
        config = baseline_config(preemptive=True, sim_time=2_000.0,
                                 warmup_time=500.0, seed=5)
        from repro.system.simulation import Simulation

        sim = Simulation(config)
        result = sim.run()
        lifetime = sum(node.preemptions for node in sim.nodes)
        assert lifetime > result.total_preemptions > 0

    def test_point_estimate_aggregates_preemptions(self):
        from repro.experiments.runner import replicate

        config = baseline_config(preemptive=True, sim_time=1_000.0,
                                 warmup_time=100.0, seed=5)
        estimate = replicate(config, replications=2)
        assert estimate.preemptions > 0
