"""Tests for the checkpoint/resume subsystem (repro.checkpoint).

The bit-identity of resumed runs is pinned by the golden gate
(``tests/system/test_golden_determinism.py``); this file covers the
mechanics around it: atomic writes that survive a SIGKILL, policy
validation, the header contract (magic/version/kernel refusal with
clear messages), counter restoration, and a full kill -9 mid-run →
resume cycle whose traced event stream matches the uninterrupted run.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import signal
import subprocess
import sys
import time

import pytest

from repro.checkpoint import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    CheckpointError,
    CheckpointPolicy,
    atomic_write,
    load_checkpoint,
    read_checkpoint_header,
    save_checkpoint,
)
from repro.sim.core import KERNEL
from repro.system.config import baseline_config
from repro.system.simulation import Simulation, simulate

#: Short runs: checkpoint mechanics do not need SMOKE-scale statistics.
SIM_TIME = 600.0
WARMUP = 60.0


def _sim(seed: int = 5, **overrides) -> Simulation:
    return Simulation(
        baseline_config(
            sim_time=SIM_TIME, warmup_time=WARMUP, seed=seed, **overrides
        )
    )


class TestAtomicWrite:
    def test_creates_file_with_exact_bytes(self, tmp_path):
        path = tmp_path / "out.bin"
        atomic_write(path, b"payload")
        assert path.read_bytes() == b"payload"

    def test_replaces_existing_content(self, tmp_path):
        path = tmp_path / "out.bin"
        path.write_bytes(b"old")
        atomic_write(path, b"new")
        assert path.read_bytes() == b"new"

    def test_failed_write_keeps_old_content_and_no_litter(
        self, tmp_path, monkeypatch
    ):
        """A failure before the rename must leave the destination's old
        bytes untouched and clean up its temp file."""
        path = tmp_path / "out.bin"
        path.write_bytes(b"old")

        def boom(src, dst):
            raise OSError("disk detached")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="disk detached"):
            atomic_write(path, b"new")
        assert path.read_bytes() == b"old"
        assert os.listdir(tmp_path) == ["out.bin"]

    def test_sigkill_never_tears_the_file(self, tmp_path):
        """Kill -9 a writer loop at a random moment: the destination must
        hold one *complete* payload, never a prefix or a mix."""
        path = tmp_path / "torn.bin"
        writer = (
            "import sys, itertools\n"
            "from repro.checkpoint import atomic_write\n"
            "payloads = [bytes([65 + i]) * 4096 for i in range(4)]\n"
            "for i in itertools.count():\n"
            "    atomic_write(sys.argv[1], payloads[i % 4])\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (
                os.path.join(os.path.dirname(__file__), "..", "..", "src"),
                env.get("PYTHONPATH", ""),
            ) if p
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", writer, str(path)], env=env
        )
        try:
            deadline = time.monotonic() + 10.0
            while not path.exists() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert path.exists(), "writer never produced the file"
            time.sleep(0.2)
        finally:
            proc.kill()
            proc.wait()
        data = path.read_bytes()
        assert len(data) == 4096
        assert data in {bytes([65 + i]) * 4096 for i in range(4)}


class TestCheckpointPolicy:
    def test_requires_at_least_one_trigger(self):
        with pytest.raises(ValueError, match="at least one trigger"):
            CheckpointPolicy(path="x.ckpt")

    def test_rejects_negative_events(self):
        with pytest.raises(ValueError, match="every_events"):
            CheckpointPolicy(path="x.ckpt", every_events=-1)

    def test_rejects_negative_seconds(self):
        with pytest.raises(ValueError, match="every_seconds"):
            CheckpointPolicy(path="x.ckpt", every_seconds=-0.5)

    def test_single_trigger_forms_are_valid(self):
        CheckpointPolicy(path="x.ckpt", every_events=10)
        CheckpointPolicy(path="x.ckpt", every_seconds=1.0)


class TestHeaderContract:
    def test_header_records_run_identity(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        sim = _sim(seed=21)
        sim.env.run(until=100.0)
        save_checkpoint(sim, path)
        header = read_checkpoint_header(path)
        assert header["magic"] == CHECKPOINT_MAGIC
        assert header["version"] == CHECKPOINT_VERSION
        assert header["kernel"] == KERNEL
        assert header["seed"] == 21
        assert header["now"] == sim.env.now
        assert "seed=21" in header["config"]

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_checkpoint_header(tmp_path / "absent.ckpt")

    def test_junk_file_is_refused(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"this is not a pickle")
        with pytest.raises(CheckpointError, match="not a repro checkpoint"):
            read_checkpoint_header(path)
        with pytest.raises(CheckpointError, match="not a repro checkpoint"):
            load_checkpoint(path)

    def _crafted(self, tmp_path, **header_overrides):
        header = {
            "magic": CHECKPOINT_MAGIC,
            "version": CHECKPOINT_VERSION,
            "kernel": KERNEL,
            "seed": 1,
            "config": "crafted",
            "now": 0.0,
        }
        header.update(header_overrides)
        path = tmp_path / "crafted.ckpt"
        path.write_bytes(pickle.dumps(header, protocol=4))
        return path

    def test_wrong_magic_is_refused(self, tmp_path):
        path = self._crafted(tmp_path, magic="something-else")
        with pytest.raises(CheckpointError, match="not a repro checkpoint"):
            read_checkpoint_header(path)

    def test_future_version_is_refused(self, tmp_path):
        path = self._crafted(tmp_path, version=CHECKPOINT_VERSION + 1)
        with pytest.raises(CheckpointError, match="version"):
            read_checkpoint_header(path)

    def test_kernel_mismatch_names_the_remedy(self, tmp_path):
        other = "compiled" if KERNEL == "python" else "python"
        path = self._crafted(tmp_path, kernel=other)
        with pytest.raises(
            CheckpointError, match=f"REPRO_KERNEL={other}"
        ):
            read_checkpoint_header(path)


class TestSaveLoadRoundtrip:
    def test_resumed_run_matches_straight_through(self, tmp_path):
        path = str(tmp_path / "mid.ckpt")
        config = baseline_config(
            sim_time=SIM_TIME, warmup_time=WARMUP, seed=5
        )
        straight = simulate(config)
        sim = Simulation(config)
        sim.env.run(until=config.warmup_time)
        sim.metrics.reset(sim.env.now)
        sim._warmup_done = True
        sim.env.run(until=300.0)
        save_checkpoint(sim, path)
        restored = load_checkpoint(path)
        assert restored.env.now == sim.env.now
        assert restored.config == config
        assert restored.run() == straight

    def test_saving_is_read_only(self, tmp_path):
        """Snapshotting mid-run must not perturb the run being saved."""
        config = baseline_config(
            sim_time=SIM_TIME, warmup_time=WARMUP, seed=5
        )
        straight = simulate(config)
        sim = Simulation(config)
        sim.env.run(until=config.warmup_time)
        sim.metrics.reset(sim.env.now)
        sim._warmup_done = True
        for stop in (150.0, 300.0, 450.0):
            sim.env.run(until=stop)
            save_checkpoint(sim, str(tmp_path / f"at-{stop:g}.ckpt"))
        sim.env.run(until=config.sim_time)
        assert sim.metrics.snapshot(sim.env.now) == straight

    def test_resume_before_warmup_completes_warmup(self, tmp_path):
        """A snapshot taken inside the warmup phase must still warm up
        (reset metrics at the boundary) when resumed."""
        path = str(tmp_path / "early.ckpt")
        config = baseline_config(
            sim_time=SIM_TIME, warmup_time=WARMUP, seed=5
        )
        straight = simulate(config)
        sim = Simulation(config)
        sim.env.run(until=WARMUP / 2)
        save_checkpoint(sim, path)
        restored = load_checkpoint(path)
        assert not restored._warmup_done
        assert restored.run() == straight

    def test_generator_processes_are_not_checkpointable(self):
        """The system model is a pure callback machine; hand-built
        generator processes fail at save time with a clear TypeError
        instead of pickling a half-captured coroutine."""
        from repro.sim.core import Environment
        from repro.sim.process import Process

        env = Environment()

        def proc(env):
            yield env.timeout(1.0)

        process = Process(env, proc(env))
        with pytest.raises(TypeError, match="not checkpointable"):
            pickle.dumps(process)


class TestPeriodicTriggers:
    def test_event_trigger_writes_checkpoints(self, tmp_path):
        path = str(tmp_path / "events.ckpt")
        saves = []
        import repro.system.simulation as simulation_module

        real = simulation_module.save_checkpoint

        def counting(sim, p):
            saves.append(sim.env.now)
            real(sim, p)

        simulation_module.save_checkpoint = counting
        try:
            result = _sim(seed=5).run(
                checkpoint=CheckpointPolicy(path=path, every_events=500)
            )
        finally:
            simulation_module.save_checkpoint = real
        assert len(saves) >= 2  # several snapshots across the run
        assert os.path.exists(path)
        assert result == simulate(
            baseline_config(sim_time=SIM_TIME, warmup_time=WARMUP, seed=5)
        )

    def test_wall_clock_trigger_fires(self, tmp_path):
        path = str(tmp_path / "wall.ckpt")
        # Any elapsed wall time satisfies a tiny threshold, so every
        # slice boundary checkpoints; existence is the point here.
        _sim(seed=5).run(
            checkpoint=CheckpointPolicy(path=path, every_seconds=1e-9)
        )
        assert os.path.exists(path)


#: Runs a traced checkpointed run and SIGKILLs itself right after the
#: second snapshot lands -- from inside the save path, exactly where a
#: real crash is most dangerous.  The checkpoint file must stay valid.
_KILLED_RUN_DRIVER = """
import os, signal, sys
import repro.system.simulation as simulation_module
from repro.checkpoint import CheckpointPolicy
from repro.system.config import baseline_config
from repro.system.simulation import Simulation

path = sys.argv[1]
real = simulation_module.save_checkpoint
saves = [0]

def killing_save(sim, p):
    real(sim, p)
    saves[0] += 1
    if saves[0] == 2:
        os.kill(os.getpid(), signal.SIGKILL)

simulation_module.save_checkpoint = killing_save
config = baseline_config(
    sim_time=600.0, warmup_time=60.0, seed=23, trace=True
)
Simulation(config).run(
    checkpoint=CheckpointPolicy(path=path, every_events=500)
)
raise SystemExit("unreachable: the second save must have killed us")
"""

#: Resumes (or runs straight through) and prints digests of the traced
#: event stream and the final result -- exact float reprs, so equality
#: of digests is bit-identity of the observables.
_FINISH_DRIVER = """
import hashlib, json, sys
from repro.checkpoint import load_checkpoint
from repro.system.config import baseline_config
from repro.system.simulation import Simulation

if sys.argv[1] == "resume":
    sim = load_checkpoint(sys.argv[2])
else:
    sim = Simulation(baseline_config(
        sim_time=600.0, warmup_time=60.0, seed=23, trace=True
    ))
result = sim.run()
events = repr([
    (e.time, e.kind, e.unit_name, e.node_index, e.task_class, e.deadline)
    for e in sim.trace_log.events
]).encode()
print(json.dumps({
    "trace": hashlib.sha256(events).hexdigest(),
    "result": hashlib.sha256(
        json.dumps(result.to_dict(), sort_keys=True).encode()
    ).hexdigest(),
}))
"""


class TestKillMinusNineResume:
    """The acceptance scenario: SIGKILL a checkpointed run mid-flight,
    resume from the surviving file, and the traced event stream (labels
    included -- the id counters must continue the original numbering)
    matches the uninterrupted run exactly."""

    def _run(self, script, *argv, check=True):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (
                os.path.join(os.path.dirname(__file__), "..", "..", "src"),
                env.get("PYTHONPATH", ""),
            ) if p
        )
        return subprocess.run(
            [sys.executable, "-c", script, *argv],
            env=env, capture_output=True, text=True, check=check,
        )

    def test_killed_run_resumes_bit_identically(self, tmp_path):
        path = str(tmp_path / "killed.ckpt")
        killed = self._run(_KILLED_RUN_DRIVER, path, check=False)
        assert killed.returncode == -signal.SIGKILL, killed.stderr
        assert os.path.exists(path)

        resumed = json.loads(self._run(_FINISH_DRIVER, "resume", path).stdout)
        straight = json.loads(self._run(_FINISH_DRIVER, "straight").stdout)
        assert resumed["trace"] == straight["trace"]
        assert resumed["result"] == straight["result"]
