"""Unit/integration tests for the process manager
(repro.system.process_manager).

These are deterministic scenarios: hand-built trees on dedicated idle
nodes, so completion times and assigned virtual deadlines can be computed
exactly.
"""

from __future__ import annotations

import pytest

from repro.core.strategies import parse_assigner
from repro.core.task import SimpleTask, parallel, serial
from repro.sim.core import Environment
from repro.system.metrics import MetricsCollector
from repro.system.node import Node
from repro.system.overload import AbortTardyAtDispatch
from repro.system.process_manager import ProcessManager
from repro.system.schedulers import EarliestDeadlineFirst


def build_system(env, node_count=3, strategy="UD", overload=None):
    metrics = MetricsCollector(node_count)
    nodes = [
        Node(env=env, index=i, policy=EarliestDeadlineFirst(),
             metrics=metrics, overload_policy=overload)
        for i in range(node_count)
    ]
    manager = ProcessManager(
        env=env, nodes=nodes, assigner=parse_assigner(strategy), metrics=metrics
    )
    return manager, metrics, nodes


class TestSerialExecution:
    def test_stages_run_in_order_on_idle_nodes(self, env):
        manager, metrics, _ = build_system(env)
        tree = serial(
            SimpleTask(1.0, node_index=0, name="s0"),
            SimpleTask(2.0, node_index=1, name="s1"),
            SimpleTask(3.0, node_index=2, name="s2"),
        )
        proc = manager.submit(tree, deadline=20.0)
        env.run()
        outcome = proc.value
        assert outcome.completed_at == 6.0
        assert not outcome.missed
        leaves = list(tree.leaves())
        assert leaves[0].timing.completed_at == 1.0
        assert leaves[1].timing.ar == 1.0      # submitted when stage 0 ended
        assert leaves[2].timing.ar == 3.0

    def test_end_to_end_miss_recorded(self, env):
        manager, metrics, _ = build_system(env)
        tree = serial(
            SimpleTask(2.0, node_index=0),
            SimpleTask(2.0, node_index=1),
        )
        manager.submit(tree, deadline=3.0)  # needs 4 time units
        env.run()
        stats = metrics.snapshot(env.now).global_
        assert stats.completed == 1
        assert stats.missed == 1

    def test_ud_assigns_global_deadline_to_every_stage(self, env):
        manager, _, _ = build_system(env, strategy="UD")
        tree = serial(
            SimpleTask(1.0, node_index=0),
            SimpleTask(1.0, node_index=1),
        )
        manager.submit(tree, deadline=9.0)
        env.run()
        assert [leaf.timing.dl for leaf in tree.leaves()] == [9.0, 9.0]

    def test_eqf_assigns_proportional_deadlines(self, env):
        manager, _, _ = build_system(env, strategy="EQF")
        tree = serial(
            SimpleTask(2.0, node_index=0),
            SimpleTask(2.0, node_index=1),
        )
        manager.submit(tree, deadline=8.0)
        env.run()
        leaves = list(tree.leaves())
        # Stage 0 at t=0: slack 8-0-4=4, share 4*2/4=2 -> dl 0+2+2=4.
        assert leaves[0].timing.dl == pytest.approx(4.0)
        # Stage 1 submitted at t=2 (idle node, no queueing): last stage -> 8.
        assert leaves[1].timing.dl == pytest.approx(8.0)

    def test_ed_uses_downstream_estimates(self, env):
        manager, _, _ = build_system(env, strategy="ED")
        tree = serial(
            SimpleTask(1.0, node_index=0),
            SimpleTask(2.0, node_index=1),
            SimpleTask(3.0, node_index=2),
        )
        manager.submit(tree, deadline=10.0)
        env.run()
        dls = [leaf.timing.dl for leaf in tree.leaves()]
        assert dls == [pytest.approx(5.0), pytest.approx(7.0), pytest.approx(10.0)]

    def test_single_leaf_global_task(self, env):
        manager, metrics, _ = build_system(env)
        leaf = SimpleTask(1.5, node_index=0)
        proc = manager.submit(leaf, deadline=10.0)
        env.run()
        assert proc.value.completed_at == 1.5
        assert metrics.snapshot(env.now).global_.completed == 1

    def test_unrouted_leaf_rejected(self, env):
        manager, _, _ = build_system(env)
        tree = serial(SimpleTask(1.0))  # node_index is None
        manager.submit(tree, deadline=5.0)
        with pytest.raises(ValueError, match="no node assignment"):
            env.run()


class TestParallelExecution:
    def test_group_finishes_with_last_branch(self, env):
        manager, _, _ = build_system(env)
        tree = parallel(
            SimpleTask(1.0, node_index=0),
            SimpleTask(5.0, node_index=1),
            SimpleTask(2.0, node_index=2),
        )
        proc = manager.submit(tree, deadline=20.0)
        env.run()
        assert proc.value.completed_at == 5.0

    def test_branches_fork_simultaneously(self, env):
        manager, _, _ = build_system(env)
        tree = parallel(
            SimpleTask(1.0, node_index=0),
            SimpleTask(1.0, node_index=1),
        )
        manager.submit(tree, deadline=20.0)
        env.run()
        assert [leaf.timing.ar for leaf in tree.leaves()] == [0.0, 0.0]

    def test_div1_virtual_deadlines(self, env):
        manager, _, _ = build_system(env, strategy="UD-DIV1")
        tree = parallel(
            SimpleTask(1.0, node_index=0),
            SimpleTask(1.0, node_index=1),
        )
        manager.submit(tree, deadline=10.0)
        env.run()
        # dl = ar + (10 - 0) / (2 * 1) = 5 for both branches.
        assert [leaf.timing.dl for leaf in tree.leaves()] == [5.0, 5.0]

    def test_gf_stamps_elevated_class(self, env):
        manager, _, nodes = build_system(env, strategy="GF")
        tree = parallel(
            SimpleTask(1.0, node_index=0),
            SimpleTask(1.0, node_index=1),
        )
        manager.submit(tree, deadline=10.0)
        env.run()
        # The deadline stays the group deadline (GF promotes via class).
        assert [leaf.timing.dl for leaf in tree.leaves()] == [10.0, 10.0]


class TestSerialParallelTrees:
    def test_nested_execution_times(self, env):
        manager, _, _ = build_system(env)
        tree = serial(
            parallel(SimpleTask(2.0, node_index=0), SimpleTask(3.0, node_index=1)),
            parallel(SimpleTask(1.0, node_index=0), SimpleTask(4.0, node_index=2)),
        )
        proc = manager.submit(tree, deadline=20.0)
        env.run()
        # Stage 1 finishes at max(2,3)=3; stage 2 at 3+max(1,4)=7.
        assert proc.value.completed_at == 7.0

    def test_eqf_div1_recursive_windows(self, env):
        manager, _, _ = build_system(env, strategy="EQF-DIV1")
        stage1 = parallel(SimpleTask(2.0, node_index=0), SimpleTask(2.0, node_index=1))
        stage2 = parallel(SimpleTask(2.0, node_index=0), SimpleTask(2.0, node_index=2))
        tree = serial(stage1, stage2)
        manager.submit(tree, deadline=12.0)
        env.run()
        # EQF at t=0: remaining pex = (2, 2) [group envelopes], slack = 12-4=8,
        # stage-1 window deadline = 0 + 2 + 8*2/4 = 6.
        # DIV-1 inside stage 1: dl = 0 + (6 - 0)/(2*1) = 3.
        for leaf in stage1.leaves():
            assert leaf.timing.dl == pytest.approx(3.0)
        # Stage 1 really ends at t=2 (idle nodes); stage-2 window = 12 (last),
        # DIV-1: dl = 2 + (12 - 2)/2 = 7.
        for leaf in stage2.leaves():
            assert leaf.timing.dl == pytest.approx(7.0)

    def test_metrics_count_one_global_task(self, env):
        manager, metrics, _ = build_system(env)
        tree = serial(
            parallel(SimpleTask(1.0, node_index=0), SimpleTask(1.0, node_index=1)),
            SimpleTask(1.0, node_index=2),
        )
        manager.submit(tree, deadline=20.0)
        env.run()
        assert metrics.snapshot(env.now).global_.completed == 1


class TestAbortPropagation:
    def test_aborted_serial_stage_aborts_task(self, env):
        manager, metrics, nodes = build_system(
            env, strategy="ED", overload=AbortTardyAtDispatch()
        )
        # Occupy node 0 so the first stage cannot start before its
        # (already past) virtual deadline.
        from tests.system.test_node import submit as node_submit  # reuse helper

        node_submit(env, nodes[0], ex=10.0, dl=100.0, name="blocker")
        tree = serial(
            SimpleTask(1.0, node_index=0),
            SimpleTask(1.0, node_index=1),
        )
        proc = manager.submit(tree, deadline=2.0)  # hopeless
        env.run()
        outcome = proc.value
        assert outcome.aborted
        assert outcome.missed
        # The second stage never ran.
        assert list(tree.leaves())[1].timing is None
        stats = metrics.snapshot(env.now).global_
        assert stats.aborted == 1
        assert stats.completed == 0

    def test_aborted_parallel_branch_aborts_group(self, env):
        manager, metrics, nodes = build_system(
            env, overload=AbortTardyAtDispatch()
        )
        from tests.system.test_node import submit as node_submit

        node_submit(env, nodes[0], ex=10.0, dl=100.0, name="blocker")
        tree = parallel(
            SimpleTask(1.0, node_index=0),   # blocked past its deadline
            SimpleTask(1.0, node_index=1),   # completes fine
        )
        proc = manager.submit(tree, deadline=2.0)
        env.run()
        assert proc.value.aborted
        # The healthy branch still ran to completion before the join.
        healthy = list(tree.leaves())[1]
        assert healthy.timing.completed_at == 1.0


class TestAbortedOutcomeValues:
    """Regression: aborted outcomes must not report fabricated timings.

    ``response_time``/``lateness`` used to compute ``0.0 - arrival`` /
    ``0.0 - deadline`` for aborted tasks (``completed_at`` is ``None``),
    yielding large negative garbage; they now return ``None``.
    """

    def _aborted_outcome(self, env):
        manager, metrics, nodes = build_system(
            env, overload=AbortTardyAtDispatch()
        )
        from tests.system.test_node import submit as node_submit

        node_submit(env, nodes[0], ex=10.0, dl=100.0, name="blocker")
        proc = manager.submit(SimpleTask(1.0, node_index=0), deadline=2.0)
        env.run()
        return proc.value, metrics

    def test_aborted_response_time_and_lateness_are_none(self, env):
        outcome, _ = self._aborted_outcome(env)
        assert outcome.aborted
        assert outcome.completed_at is None
        assert outcome.response_time is None
        assert outcome.lateness is None

    def test_aborted_task_leaves_response_stats_untouched(self, env):
        """The miss counters move, but no phantom response/lateness sample
        is folded into the means."""
        _, metrics = self._aborted_outcome(env)
        stats = metrics.snapshot(env.now).global_
        assert stats.aborted == 1
        assert stats.missed == 1
        # No samples observed: the Tally means stay at their empty value.
        import math

        assert math.isnan(stats.mean_response)
        assert math.isnan(stats.mean_lateness)

    def test_completed_outcome_still_reports_timings(self, env):
        manager, _, _ = build_system(env)
        proc = manager.submit(SimpleTask(1.5, node_index=0), deadline=10.0)
        env.run()
        outcome = proc.value
        assert outcome.response_time == pytest.approx(1.5)
        assert outcome.lateness == pytest.approx(-8.5)


class TestSubmissionBookkeeping:
    def test_submitted_counter(self, env):
        manager, _, _ = build_system(env)
        for _ in range(3):
            manager.submit(SimpleTask(0.5, node_index=0), deadline=50.0)
        env.run()
        assert manager.submitted == 3

    def test_submit_nowait_records_metrics_without_outcome_event(self, env):
        """The fire-and-forget path (used by the global task source) still
        records end-to-end metrics."""
        manager, metrics, _ = build_system(env)
        assert manager.submit_nowait(
            SimpleTask(0.5, node_index=0), deadline=50.0
        ) is None
        env.run()
        assert manager.submitted == 1
        assert metrics.snapshot(env.now).global_.completed == 1

    def test_past_deadline_accepted(self, env):
        """A soft real-time system accepts already-hopeless tasks."""
        manager, metrics, _ = build_system(env)
        proc = manager.submit(SimpleTask(1.0, node_index=0), deadline=-5.0)
        env.run()
        assert proc.value.missed
        assert metrics.snapshot(env.now).global_.completed == 1

    def test_invalid_tree_rejected_at_submit(self, env):
        manager, _, _ = build_system(env)
        tree = serial(SimpleTask(1.0, node_index=0), SimpleTask(1.0, node_index=1))
        tree.children[0].parent = None  # corrupt the tree
        with pytest.raises(ValueError):
            manager.submit(tree, deadline=10.0)
