"""Property-based tests of the execution engine (hypothesis).

Random serial-parallel trees are executed on *idle* dedicated nodes, where
exact behaviour is provable:

* completion time equals the tree's critical path (``total_ex``);
* every leaf is submitted exactly when its predecessors allow;
* the last stage of a serial chain receives the window deadline under
  ED/EQS/EQF;
* virtual deadlines never exceed the end-to-end deadline under ED and
  DIV-x (for positive-slack windows);
* GF changes no deadlines relative to UD, only the priority class.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strategies import parse_assigner
from repro.core.task import ParallelTask, SerialTask, SimpleTask
from repro.sim.core import Environment
from repro.system.metrics import MetricsCollector
from repro.system.node import Node
from repro.system.process_manager import ProcessManager
from repro.system.schedulers import EarliestDeadlineFirst

NODE_COUNT = 4

leaf_ex = st.floats(min_value=0.01, max_value=5.0, allow_nan=False).map(
    lambda v: round(v, 3)
)


def trees():
    """Random serial-parallel trees with routed leaves (cycling nodes)."""

    def route(tree):
        for i, leaf in enumerate(tree.leaves()):
            leaf.node_index = i % NODE_COUNT
        return tree

    return st.recursive(
        leaf_ex.map(SimpleTask),
        lambda children: st.builds(
            lambda kids, is_par: (ParallelTask if is_par else SerialTask)(kids),
            st.lists(children, min_size=2, max_size=3),
            st.booleans(),
        ),
        max_leaves=8,
    ).map(route)


def build_system(strategy="UD"):
    env = Environment()
    metrics = MetricsCollector(NODE_COUNT)
    nodes = [
        Node(env=env, index=i, policy=EarliestDeadlineFirst(), metrics=metrics)
        for i in range(NODE_COUNT)
    ]
    manager = ProcessManager(
        env=env, nodes=nodes, assigner=parse_assigner(strategy), metrics=metrics
    )
    return env, manager, metrics


@given(trees())
@settings(max_examples=60, deadline=None)
def test_idle_system_completion_equals_critical_path(tree):
    """With no contention, a tree finishes exactly at its critical path.

    This exercises serial sequencing *and* parallel fork/join timing in one
    shot -- any precedence bug shifts the completion time.

    Note: leaves are routed round-robin over 4 nodes, so two parallel
    branches may share a node and serialize; the invariant therefore only
    holds exactly when we give every leaf its own node.
    """
    leaves = list(tree.leaves())
    env = Environment()
    metrics = MetricsCollector(len(leaves))
    nodes = [
        Node(env=env, index=i, policy=EarliestDeadlineFirst(), metrics=metrics)
        for i in range(len(leaves))
    ]
    for i, leaf in enumerate(leaves):
        leaf.node_index = i  # dedicated node per leaf: zero contention
    manager = ProcessManager(
        env=env, nodes=nodes, assigner=parse_assigner("UD"), metrics=metrics
    )
    proc = manager.submit(tree, deadline=10_000.0)
    env.run()
    assert proc.value.completed_at == pytest.approx(tree.total_ex())


@given(trees())
@settings(max_examples=40, deadline=None)
def test_all_leaves_execute_exactly_once(tree):
    env, manager, metrics = build_system()
    manager.submit(tree, deadline=10_000.0)
    env.run()
    for leaf in tree.leaves():
        assert leaf.timing is not None
        assert leaf.timing.finished
    assert metrics.snapshot(env.now).global_.completed == 1


@given(trees(), st.sampled_from(["ED", "EQS", "EQF"]))
@settings(max_examples=40, deadline=None)
def test_virtual_deadlines_never_exceed_end_to_end_under_ssp(tree, ssp):
    """For positive-slack windows and estimate-aware SSP strategies, no
    leaf's virtual deadline lies beyond the end-to-end deadline.

    (Holds because on an uncontended system each stage finishes no later
    than its virtual deadline, so remaining slack stays non-negative.)
    """
    deadline = tree.total_ex() * 2.0 + 5.0
    env, manager, _ = build_system(ssp)
    manager.submit(tree, deadline=deadline)
    env.run()
    for leaf in tree.leaves():
        assert leaf.timing.dl <= deadline + 1e-9


@given(trees())
@settings(max_examples=40, deadline=None)
def test_div1_deadlines_inside_window(tree):
    deadline = tree.total_ex() * 2.0 + 5.0
    env, manager, _ = build_system("UD-DIV1")
    manager.submit(tree, deadline=deadline)
    env.run()
    for leaf in tree.leaves():
        assert leaf.timing.dl <= deadline + 1e-9


@given(trees())
@settings(max_examples=30, deadline=None)
def test_gf_matches_ud_deadlines(tree):
    """GF promotes via priority class only; its virtual deadlines are UD's."""
    deadline = tree.total_ex() * 3.0 + 2.0

    def run(strategy, tree):
        env, manager, _ = build_system(strategy)
        manager.submit(tree, deadline=deadline)
        env.run()
        return [leaf.timing.dl for leaf in tree.leaves()]

    import copy

    # Same structure executed twice (deep copy keeps ex values identical).
    clone = copy.deepcopy(tree)
    assert run("UD-UD", tree) == pytest.approx(run("UD-GF", clone))


@given(trees())
@settings(max_examples=30, deadline=None)
def test_serial_chain_last_stage_gets_window_deadline(tree):
    """Under EQF on an idle system, whenever a *serial* node's final child
    is simple, that child's deadline equals the serial window's deadline
    (all remaining slack flows to the last stage)."""
    deadline = tree.total_ex() * 2.0 + 5.0
    env, manager, _ = build_system("EQF")
    manager.submit(tree, deadline=deadline)
    env.run()
    # Only check the root when it is a serial chain of simple leaves: the
    # invariant is exact there (nested windows shift for inner chains).
    if isinstance(tree, SerialTask) and all(
        child.is_leaf for child in tree.children
    ):
        last = tree.children[-1]
        assert last.timing.dl == pytest.approx(deadline)
