"""Golden determinism tests: exact fixed-seed results, pinned forever.

The kernel is aggressively optimized (inlined event loop, pooled timeouts,
callback-driven nodes and sources, bound samplers).  Every optimization
must preserve *bit-identical* results for a fixed seed -- same event
ordering, same random draws, same float arithmetic.  These tests pin the
exact SMOKE-scale metrics produced by the original (pre-optimization)
kernel; they pass on that seed kernel and must keep passing on every
future one.  If an optimization perturbs event ordering or arithmetic,
this file fails loudly and the change needs a deliberate re-pin (with a
changelog note), not a silent drift.
"""

from __future__ import annotations

import importlib.util
import json
import os
import subprocess
import sys

import pytest

from repro.system.config import baseline_config, serial_parallel_config
from repro.system.simulation import simulate

#: SMOKE-scale run lengths (kept in sync with repro.experiments.runner.SMOKE,
#: but pinned literally here: changing the preset must not silently change
#: what this test checks).
SIM_TIME = 2_500.0
WARMUP = 250.0


@pytest.fixture(scope="module")
def serial_result():
    return simulate(
        baseline_config(sim_time=SIM_TIME, warmup_time=WARMUP, seed=42)
    )


class TestSerialBaselineGolden:
    """Exact values from baseline_config(seed=42) at SMOKE scale."""

    def test_local_counts(self, serial_result):
        local = serial_result.local
        assert local.completed == 5136
        assert local.missed == 1204
        assert local.aborted == 0

    def test_global_counts(self, serial_result):
        global_ = serial_result.global_
        assert global_.completed == 402
        assert global_.missed == 163
        assert global_.aborted == 0

    def test_local_means_exact(self, serial_result):
        local = serial_result.local
        # Bit-exact: == on floats is intentional.
        assert local.mean_response == 1.783879225470131
        assert local.mean_lateness == -0.581420252394006
        assert local.mean_waiting == 0.7793337698086901

    def test_global_means_exact(self, serial_result):
        global_ = serial_result.global_
        assert global_.mean_response == 8.579486447843847
        assert global_.mean_lateness == -0.9237181639001631

    def test_per_node_dispatch_counts(self, serial_result):
        assert [n.dispatched for n in serial_result.per_node] == [
            1155, 1142, 1112, 1144, 1127, 1065,
        ]

    def test_node0_signals_exact(self, serial_result):
        node0 = serial_result.per_node[0]
        assert node0.utilization == 0.5153333521237488
        assert node0.mean_queue_length == 0.4392931486126085


class TestParallelStructureGolden:
    """Exact values for a parallel-fan config (exercises fork/join + PSP)."""

    def test_parallel_div2(self):
        result = simulate(
            baseline_config(
                sim_time=SIM_TIME,
                warmup_time=WARMUP,
                seed=7,
                task_structure="parallel",
                strategy="DIV-2",
            )
        )
        assert result.local.completed == 5096
        assert result.local.missed == 1476
        assert result.global_.completed == 449
        assert result.global_.missed == 69
        assert result.local.mean_response == 2.02008830512072
        assert result.global_.mean_response == 3.4160475119459655


class TestSerialParallelTreeGolden:
    """Exact values for serial-of-parallel trees (nested frames: serial
    sequencing, fork/join, SSP *and* PSP deadline assignment in one run).

    Together with the serial and parallel classes above this pins the
    coordinator on all three structural paths.  Values produced by the
    generator-based coordinator (pre-callback-rewrite); the callback state
    machine must reproduce them bit for bit.
    """

    @pytest.fixture(scope="class")
    def sp_result(self):
        return simulate(
            serial_parallel_config(
                sim_time=SIM_TIME, warmup_time=WARMUP, seed=11,
                strategy="EQF-DIV1",
            )
        )

    def test_counts(self, sp_result):
        assert sp_result.local.completed == 5137
        assert sp_result.local.missed == 1283
        assert sp_result.local.aborted == 0
        assert sp_result.global_.completed == 453
        assert sp_result.global_.missed == 106
        assert sp_result.global_.aborted == 0

    def test_means_exact(self, sp_result):
        assert sp_result.local.mean_response == 1.8865596603468753
        assert sp_result.global_.mean_response == 5.267169225416433
        assert sp_result.global_.mean_lateness == -1.776663993737578

    def test_per_node_dispatch_counts(self, sp_result):
        assert [n.dispatched for n in sp_result.per_node] == [
            1194, 1173, 1089, 1218, 1177, 1101,
        ]

    def test_trace_on_equals_trace_off(self, sp_result):
        config = serial_parallel_config(
            sim_time=SIM_TIME, warmup_time=WARMUP, seed=11,
            strategy="EQF-DIV1",
        )
        assert simulate(config.with_(trace=True)) == sp_result


class TestPreemptiveNodeGolden:
    """Exact values for preemptive-resume nodes (the generator-server
    ablation path): the coordinator must drive both node kinds
    identically."""

    @pytest.fixture(scope="class")
    def preemptive_result(self):
        return simulate(
            baseline_config(
                sim_time=SIM_TIME, warmup_time=WARMUP, seed=13,
                preemptive=True, strategy="EQF",
            )
        )

    def test_counts(self, preemptive_result):
        assert preemptive_result.local.completed == 5042
        assert preemptive_result.local.missed == 682
        assert preemptive_result.local.aborted == 0
        assert preemptive_result.global_.completed == 466
        assert preemptive_result.global_.missed == 104
        assert preemptive_result.global_.aborted == 0

    def test_means_exact(self, preemptive_result):
        assert preemptive_result.local.mean_response == 1.5762545004314168
        assert preemptive_result.global_.mean_response == 7.424304595979559

    def test_node0_utilization_exact(self, preemptive_result):
        assert preemptive_result.per_node[0].utilization == 0.507071724957115

    def test_per_node_dispatch_counts(self, preemptive_result):
        assert [n.dispatched for n in preemptive_result.per_node] == [
            1347, 1325, 1306, 1476, 1435, 1349,
        ]

    def test_trace_on_equals_trace_off(self, preemptive_result):
        config = baseline_config(
            sim_time=SIM_TIME, warmup_time=WARMUP, seed=13,
            preemptive=True, strategy="EQF",
        )
        assert simulate(config.with_(trace=True)) == preemptive_result


class TestPreemptiveSpeedFactorsGolden:
    """Exact values for preemptive-resume nodes with heterogeneous speed
    factors (the combination the callback-server rewrite unlocked:
    remaining demand is rescaled by the node speed at every
    (re-)dispatch).  Pinned at introduction so future kernel or server
    changes cannot silently drift this path."""

    @pytest.fixture(scope="class")
    def hetero_result(self):
        from repro.scenarios import get_scenario

        config = get_scenario("preemptive-hetero-speeds").to_config(
            sim_time=SIM_TIME, warmup_time=WARMUP, seed=13, strategy="EQF",
        )
        return simulate(config)

    def test_counts(self, hetero_result):
        assert hetero_result.local.completed == 5054
        assert hetero_result.local.missed == 1250
        assert hetero_result.local.aborted == 0
        assert hetero_result.global_.completed == 470
        assert hetero_result.global_.missed == 207
        assert hetero_result.global_.aborted == 0

    def test_means_exact(self, hetero_result):
        assert hetero_result.local.mean_response == 2.335120983890809
        assert hetero_result.global_.mean_response == 9.891230676429043

    def test_per_node_dispatch_counts(self, hetero_result):
        assert [n.dispatched for n in hetero_result.per_node] == [
            1334, 1319, 1331, 1482, 1333, 1336,
        ]

    def test_node0_utilization_exact(self, hetero_result):
        assert hetero_result.per_node[0].utilization == 0.3902191612379825

    def test_trace_on_equals_trace_off(self, hetero_result):
        from repro.scenarios import get_scenario

        config = get_scenario("preemptive-hetero-speeds").to_config(
            sim_time=SIM_TIME, warmup_time=WARMUP, seed=13, strategy="EQF",
            trace=True,
        )
        assert simulate(config) == hetero_result


class TestScenarioBaselineGolden:
    """The scenario subsystem's ``baseline`` must reduce to the plain
    ``SystemConfig`` path *bit for bit*.

    This extends the golden gate over the scenario layer: the placement
    refactor (UniformPlacement owns the historical "global-route" stream)
    and the new config dimensions must leave the pinned fixed-seed
    trajectory untouched, and a default ``ScenarioSpec`` must build a
    config equal to ``SystemConfig()``.
    """

    def test_baseline_scenario_config_equals_plain_config(self):
        from repro.scenarios import get_scenario

        assert get_scenario("baseline").to_config() == baseline_config()

    def test_baseline_scenario_run_is_bit_identical(self, serial_result):
        from repro.scenarios import get_scenario

        config = get_scenario("baseline").to_config(
            sim_time=SIM_TIME, warmup_time=WARMUP, seed=42
        )
        assert simulate(config) == serial_result

    def test_baseline_scenario_parallel_is_bit_identical(self):
        from repro.scenarios import get_scenario

        config = get_scenario("baseline").to_config(
            sim_time=SIM_TIME,
            warmup_time=WARMUP,
            seed=7,
            task_structure="parallel",
            strategy="DIV-2",
        )
        result = simulate(config)
        assert result.local.completed == 5096
        assert result.local.missed == 1476
        assert result.global_.completed == 449
        assert result.global_.missed == 69
        assert result.local.mean_response == 2.02008830512072
        assert result.global_.mean_response == 3.4160475119459655


class TestFaultInjectionGolden:
    """Exact values for the fault-injection path, pinned at introduction.

    Two scenarios cover both crash semantics: ``steady-churn``
    (resume/preserved -- downtime is pure latency, nothing is destroyed)
    and ``lossy-recovery`` (lost/dropped -- crashes destroy in-flight and
    queued work and the retry layer re-routes).  The fault clocks, blast
    cohorts, and retry routing all draw from dedicated named streams
    (``fault-ttf/*``, ``fault-ttr/*``, ``retry-route``), so these pins
    must survive any future change that leaves the fault model alone --
    and conversely the fault-free classes above must survive changes to
    the fault model.
    """

    @pytest.fixture(scope="class")
    def churn_result(self):
        from repro.scenarios import get_scenario

        config = get_scenario("steady-churn").to_config(
            sim_time=SIM_TIME, warmup_time=WARMUP, seed=17, strategy="EQF",
        )
        return simulate(config)

    def test_churn_counts(self, churn_result):
        assert churn_result.local.completed == 5042
        assert churn_result.local.missed == 1511
        assert churn_result.local.aborted == 0
        assert churn_result.global_.completed == 436
        assert churn_result.global_.missed == 159
        assert churn_result.global_.failed == 0

    def test_churn_fault_counters(self, churn_result):
        assert [n.crashes for n in churn_result.per_node] == [
            9, 4, 5, 5, 6, 5,
        ]
        assert churn_result.total_crashes == 34
        # resume/preserved semantics: crashes never destroy work.
        assert churn_result.total_lost == 0
        assert churn_result.retries == 2

    def test_churn_means_exact(self, churn_result):
        assert churn_result.local.mean_response == 3.768525807189649
        assert churn_result.global_.mean_response == 9.036001389070615
        assert churn_result.per_node[0].downtime == 0.0709893019367737
        assert churn_result.mean_availability == 0.9484091823687335
        assert churn_result.per_node[0].utilization == 0.5133523581655055
        assert churn_result.mean_active_utilization == 0.5133543209666424

    def test_churn_per_node_dispatch_counts(self, churn_result):
        assert [n.dispatched for n in churn_result.per_node] == [
            1159, 1109, 1193, 1126, 1102, 1100,
        ]

    def test_churn_trace_on_equals_trace_off(self, churn_result):
        from repro.scenarios import get_scenario

        config = get_scenario("steady-churn").to_config(
            sim_time=SIM_TIME, warmup_time=WARMUP, seed=17, strategy="EQF",
            trace=True,
        )
        assert simulate(config) == churn_result

    @pytest.fixture(scope="class")
    def lossy_result(self):
        from repro.scenarios import get_scenario

        config = get_scenario("lossy-recovery").to_config(
            sim_time=SIM_TIME, warmup_time=WARMUP, seed=17, strategy="UD",
        )
        return simulate(config)

    def test_lossy_counts(self, lossy_result):
        assert lossy_result.local.completed == 5022
        assert lossy_result.local.missed == 1421
        # Crash-discarded local tasks count as aborted (they never finish).
        assert lossy_result.local.aborted == 17
        assert lossy_result.global_.completed == 435
        assert lossy_result.global_.missed == 182
        # The 3-deep retry budget saved every crash-lost subtask here.
        assert lossy_result.global_.failed == 0

    def test_lossy_fault_counters(self, lossy_result):
        assert [n.crashes for n in lossy_result.per_node] == [
            6, 2, 5, 1, 5, 3,
        ]
        assert [n.lost for n in lossy_result.per_node] == [
            6, 8, 3, 0, 7, 1,
        ]
        assert lossy_result.total_crashes == 22
        assert lossy_result.total_lost == 25
        assert lossy_result.retries == 8

    def test_lossy_means_exact(self, lossy_result):
        assert lossy_result.local.mean_response == 4.597218189558332
        assert lossy_result.global_.mean_response == 10.04006012236444
        assert lossy_result.per_node[0].downtime == 0.07303003922243928
        assert lossy_result.mean_availability == 0.9514566636821553

    def test_lossy_per_node_dispatch_counts(self, lossy_result):
        assert [n.dispatched for n in lossy_result.per_node] == [
            1168, 1096, 1194, 1137, 1069, 1110,
        ]

    def test_lossy_trace_on_equals_trace_off(self, lossy_result):
        from repro.scenarios import get_scenario

        config = get_scenario("lossy-recovery").to_config(
            sim_time=SIM_TIME, warmup_time=WARMUP, seed=17, strategy="UD",
            trace=True,
        )
        assert simulate(config) == lossy_result


class TestDetectorOracleDefaultGolden:
    """Detector-off configs must not move a single pinned bit.

    The failure-detection subsystem only wires in when an *enabled*
    ``DetectorSpec`` is configured; ``detector=None`` (every existing
    config) and a disabled spec (``heartbeat_interval=0``) must both
    reproduce the exact serial-baseline pins -- no streams, no events,
    no drift.
    """

    def test_disabled_detector_spec_is_bit_identical(self, serial_result):
        from repro.system.detector import DetectorSpec

        config = baseline_config(
            sim_time=SIM_TIME, warmup_time=WARMUP, seed=42,
            detector=DetectorSpec(heartbeat_interval=0.0),
        )
        assert simulate(config) == serial_result

    def test_disabled_detector_with_faults_is_bit_identical(self):
        """The oracle fault path too: a disabled detector riding a
        fault scenario must reproduce the steady-churn pins."""
        from repro.scenarios import get_scenario
        from repro.system.detector import DetectorSpec

        config = get_scenario("steady-churn").to_config(
            sim_time=SIM_TIME, warmup_time=WARMUP, seed=17, strategy="EQF",
        ).with_(detector=DetectorSpec(heartbeat_interval=0.0))
        result = simulate(config)
        assert result.local.completed == 5042
        assert result.global_.completed == 436
        assert result.total_crashes == 34
        assert result.retries == 2
        assert [n.dispatched for n in result.per_node] == [
            1159, 1109, 1193, 1126, 1102, 1100,
        ]


def _compiled_kernel_available() -> bool:
    """True when the optional compiled engine extension is built."""
    spec = importlib.util.find_spec("repro.sim._engine_c")
    if spec is None or spec.origin is None:
        return False
    return not spec.origin.endswith((".py", ".pyc"))


#: Driver executed in a subprocess with REPRO_KERNEL pinned: kernel
#: selection happens at import time, so each leg needs its own
#: interpreter.  Prints the serial-baseline golden observables as JSON
#: (exact floats via repr round-trip).
_KERNEL_GOLDEN_DRIVER = """
import json, sys
from repro.sim.core import KERNEL
from repro.system.config import baseline_config
from repro.system.simulation import simulate

result = simulate(
    baseline_config(sim_time=2_500.0, warmup_time=250.0, seed=42)
)
print(json.dumps({
    "kernel": KERNEL,
    "local_completed": result.local.completed,
    "local_missed": result.local.missed,
    "local_mean_response": result.local.mean_response,
    "global_completed": result.global_.completed,
    "global_mean_response": result.global_.mean_response,
    "dispatched": [n.dispatched for n in result.per_node],
    "node0_utilization": result.per_node[0].utilization,
}))
"""


class TestGoldenAcrossKernels:
    """The same pins must hold under every kernel implementation.

    ``REPRO_KERNEL`` is an import-time switch, so each leg runs the
    driver in a fresh subprocess.  The compiled leg skips cleanly when
    the extension was never built (no toolchain at test time is the
    supported default); forcing ``REPRO_KERNEL=python`` must always
    work, per the fallback contract.
    """

    @pytest.mark.parametrize("kernel", ["python", "compiled"])
    def test_serial_baseline_golden_under_kernel(self, kernel):
        if kernel == "compiled" and not _compiled_kernel_available():
            pytest.skip("compiled kernel extension not built")
        env = dict(os.environ, REPRO_KERNEL=kernel)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (
                os.path.join(os.path.dirname(__file__), "..", "..", "src"),
                env.get("PYTHONPATH", ""),
            ) if p
        )
        output = subprocess.run(
            [sys.executable, "-c", _KERNEL_GOLDEN_DRIVER],
            env=env, capture_output=True, text=True, check=True,
        ).stdout
        values = json.loads(output)
        assert values["kernel"] == kernel
        assert values["local_completed"] == 5136
        assert values["local_missed"] == 1204
        assert values["local_mean_response"] == 1.783879225470131
        assert values["global_completed"] == 402
        assert values["global_mean_response"] == 8.579486447843847
        assert values["dispatched"] == [1155, 1142, 1112, 1144, 1127, 1065]
        assert values["node0_utilization"] == 0.5153333521237488


def _checkpoint_at(config, stop_time: float, path: str):
    """Advance a fresh :class:`Simulation` to ``stop_time`` and snapshot it.

    Mirrors ``Simulation.run`` exactly (warmup, metrics reset, then the
    measured phase); stopping early is determinism-free because the
    run-horizon sentinel consumes no sequence number, so
    ``run(until=a); run(until=b)`` is bit-identical to ``run(until=b)``.
    """
    from repro.checkpoint import save_checkpoint
    from repro.system.simulation import Simulation

    sim = Simulation(config)
    if config.warmup_time > 0:
        sim.env.run(until=config.warmup_time)
        sim.metrics.reset(sim.env.now)
    sim._warmup_done = True
    sim.env.run(until=stop_time)
    save_checkpoint(sim, path)


#: Driver for the kernel legs: checkpoint mid-run, restore, finish, and
#: compare against the straight-through run *in the same interpreter* --
#: no pinned literals, and the module-level counters trivially align.
_KERNEL_CHECKPOINT_DRIVER = """
import json, os, sys, tempfile
from repro.sim.core import KERNEL
from repro.checkpoint import load_checkpoint, save_checkpoint
from repro.system.config import baseline_config
from repro.system.simulation import Simulation, simulate

config = baseline_config(sim_time=2_500.0, warmup_time=250.0, seed=42)
straight = simulate(config)
path = os.path.join(tempfile.mkdtemp(), "golden.ckpt")
sim = Simulation(config)
sim.env.run(until=config.warmup_time)
sim.metrics.reset(sim.env.now)
sim._warmup_done = True
sim.env.run(until=1_200.0)
save_checkpoint(sim, path)
resumed = load_checkpoint(path).run()
print(json.dumps({"kernel": KERNEL, "identical": resumed == straight}))
"""


class TestCheckpointResumeGolden:
    """Checkpoint/resume must be invisible to the golden pins.

    Nothing here pins a new literal: every check compares a
    checkpoint-interrupted run against the corresponding *existing*
    fixture or straight-through run, so a drift anywhere in the snapshot
    path (engine heap, RNG states, metrics tallies, fault clocks) fails
    against the same values the rest of this file protects.
    """

    def test_serial_resume_is_bit_identical(self, serial_result, tmp_path):
        path = str(tmp_path / "serial.ckpt")
        config = baseline_config(
            sim_time=SIM_TIME, warmup_time=WARMUP, seed=42
        )
        _checkpoint_at(config, 1_200.0, path)
        from repro.checkpoint import load_checkpoint

        assert load_checkpoint(path).run() == serial_result

    def test_traced_resume_is_bit_identical(self, serial_result, tmp_path):
        """Trace on, checkpoint mid-run, resume: still equal to the
        untraced uninterrupted run (tracing stays observation-only
        through a snapshot cycle)."""
        path = str(tmp_path / "traced.ckpt")
        config = baseline_config(
            sim_time=SIM_TIME, warmup_time=WARMUP, seed=42, trace=True
        )
        _checkpoint_at(config, 1_200.0, path)
        from repro.checkpoint import load_checkpoint

        assert load_checkpoint(path).run() == serial_result

    def test_fault_scenario_resume_is_bit_identical(self, tmp_path):
        """The fault path (crash clocks, retry stream, live set) must
        survive the snapshot too."""
        from repro.checkpoint import load_checkpoint
        from repro.scenarios import get_scenario

        config = get_scenario("steady-churn").to_config(
            sim_time=SIM_TIME, warmup_time=WARMUP, seed=17, strategy="EQF",
        )
        straight = simulate(config)
        path = str(tmp_path / "churn.ckpt")
        _checkpoint_at(config, 1_200.0, path)
        assert load_checkpoint(path).run() == straight

    def test_periodic_checkpointing_is_invisible(
        self, serial_result, tmp_path
    ):
        """A run under an every-N-events policy returns the exact plain
        result, and resuming its last snapshot finishes identically."""
        from repro.checkpoint import CheckpointPolicy, load_checkpoint
        from repro.system.simulation import Simulation

        path = str(tmp_path / "periodic.ckpt")
        config = baseline_config(
            sim_time=SIM_TIME, warmup_time=WARMUP, seed=42
        )
        policy = CheckpointPolicy(path=path, every_events=5_000)
        assert Simulation(config).run(checkpoint=policy) == serial_result
        assert os.path.exists(path)
        assert load_checkpoint(path).run() == serial_result

    @pytest.mark.parametrize("kernel", ["python", "compiled"])
    def test_resume_bit_identical_under_kernel(self, kernel, tmp_path):
        if kernel == "compiled" and not _compiled_kernel_available():
            pytest.skip("compiled kernel extension not built")
        env = dict(os.environ, REPRO_KERNEL=kernel)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (
                os.path.join(os.path.dirname(__file__), "..", "..", "src"),
                env.get("PYTHONPATH", ""),
            ) if p
        )
        output = subprocess.run(
            [sys.executable, "-c", _KERNEL_CHECKPOINT_DRIVER],
            env=env, capture_output=True, text=True, check=True,
        ).stdout
        values = json.loads(output)
        assert values["kernel"] == kernel
        assert values["identical"] is True

    def test_resume_restores_sketch_state_bit_identically(self, tmp_path):
        """The P² quantile sketches ride inside the metrics accumulators;
        a restored checkpoint must carry their complete marker state --
        heights, positions, desired positions -- bit for bit, so the
        resumed run's percentile estimates equal the straight-through
        run's exactly."""
        from repro.checkpoint import load_checkpoint
        from repro.system.simulation import Simulation

        config = baseline_config(
            sim_time=SIM_TIME, warmup_time=WARMUP, seed=42
        )
        path = str(tmp_path / "sketch.ckpt")
        _checkpoint_at(config, 1_200.0, path)
        restored = load_checkpoint(path)

        reference = Simulation(config)
        reference.env.run(until=config.warmup_time)
        reference.metrics.reset(reference.env.now)
        reference._warmup_done = True
        reference.env.run(until=1_200.0)

        for cls in restored.metrics._classes:
            restored_acc = restored.metrics._classes[cls]
            reference_acc = reference.metrics._classes[cls]
            assert (
                restored_acc.response_sketch.state()
                == reference_acc.response_sketch.state()
            )
            assert (
                restored_acc.lateness_sketch.state()
                == reference_acc.lateness_sketch.state()
            )

        finished = restored.run()
        straight = reference.run()
        assert finished == straight
        assert finished.local.p99_response == straight.local.p99_response
        assert finished.global_.p99_lateness == straight.global_.p99_lateness


#: Driver for the kernel legs: the pinned serial-baseline observables
#: must be identical with metric emission on -- emission is seq-free and
#: draws no random numbers, so turning it on cannot move a single pin.
_KERNEL_EMISSION_DRIVER = """
import json, os, sys, tempfile
from repro.sim.core import KERNEL
from repro.system.config import baseline_config
from repro.system.emission import EmissionPolicy, read_metrics_series
from repro.system.simulation import simulate

config = baseline_config(sim_time=2_500.0, warmup_time=250.0, seed=42)
plain = simulate(config)
path = os.path.join(tempfile.mkdtemp(), "golden.metrics.jsonl")
emitted = simulate(
    config, emit=EmissionPolicy(path=path, every_events=5_000)
)
final = read_metrics_series(path)[-1]
print(json.dumps({
    "kernel": KERNEL,
    "identical": emitted == plain,
    "final_matches": json.dumps(final["cumulative"], sort_keys=True)
        == json.dumps(emitted.to_dict(), sort_keys=True),
    "local_completed": emitted.local.completed,
    "local_mean_response": emitted.local.mean_response,
    "dispatched": [n.dispatched for n in emitted.per_node],
}))
"""


class TestEmissionIsObservationOnly:
    """Metric emission must never perturb the simulation it observes.

    Same contract as tracing: the emitter rides the sliced run loop's
    seq-free slice boundaries and only *reads* metric state, so a run
    with emission on reproduces the pinned fixed-seed results exactly.
    """

    def test_emission_on_equals_pinned_result(self, serial_result, tmp_path):
        from repro.system.emission import EmissionPolicy

        emitted = simulate(
            baseline_config(sim_time=SIM_TIME, warmup_time=WARMUP, seed=42),
            emit=EmissionPolicy(
                path=str(tmp_path / "m.jsonl"), every_events=5_000
            ),
        )
        assert emitted == serial_result

    def test_percentiles_exposed_and_ordered(self, serial_result):
        for stats in (serial_result.local, serial_result.global_):
            assert stats.p50_response <= stats.p95_response <= stats.p99_response
            assert stats.p50_lateness <= stats.p95_lateness <= stats.p99_lateness
            assert stats.p50_response > 0.0

    def test_windowed_signals_are_observation_only(self, serial_result):
        from repro.system.simulation import Simulation

        simulation = Simulation(
            baseline_config(sim_time=SIM_TIME, warmup_time=WARMUP, seed=42)
        )
        simulation.metrics.enable_windows(tau=250.0, now=0.0)
        assert simulation.run() == serial_result

    @pytest.mark.parametrize("kernel", ["python", "compiled"])
    def test_emission_invisible_under_kernel(self, kernel):
        if kernel == "compiled" and not _compiled_kernel_available():
            pytest.skip("compiled kernel extension not built")
        env = dict(os.environ, REPRO_KERNEL=kernel)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (
                os.path.join(os.path.dirname(__file__), "..", "..", "src"),
                env.get("PYTHONPATH", ""),
            ) if p
        )
        output = subprocess.run(
            [sys.executable, "-c", _KERNEL_EMISSION_DRIVER],
            env=env, capture_output=True, text=True, check=True,
        ).stdout
        values = json.loads(output)
        assert values["kernel"] == kernel
        assert values["identical"] is True
        assert values["final_matches"] is True
        # The original pins, with emission on.
        assert values["local_completed"] == 5136
        assert values["local_mean_response"] == 1.783879225470131
        assert values["dispatched"] == [1155, 1142, 1112, 1144, 1127, 1065]


class TestTracingIsObservationOnly:
    """Tracing must never perturb the simulation it observes.

    The tracing-off fast path (null tracer, ``tracer is None`` checks in
    the node hot loops) must produce exactly the metrics a traced run
    produces -- tracing is pure observation.
    """

    def test_trace_on_equals_trace_off(self, serial_result):
        traced = simulate(
            baseline_config(
                sim_time=SIM_TIME, warmup_time=WARMUP, seed=42, trace=True
            )
        )
        assert traced == serial_result

    def test_trace_on_equals_trace_off_parallel(self):
        config = baseline_config(
            sim_time=SIM_TIME,
            warmup_time=WARMUP,
            seed=7,
            task_structure="parallel",
            strategy="DIV-2",
        )
        assert simulate(config.with_(trace=True)) == simulate(config)
