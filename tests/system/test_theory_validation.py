"""Validation of the simulator against closed-form queueing theory.

These tests drive the *real* system (nodes, sources, metrics) into corners
where exact results are known and check agreement.  They are the strongest
correctness evidence for the discrete-event substrate: a bias in the event
loop, the RNG plumbing, or the metrics would show up here as a systematic
deviation from theory.

Statistical tests use generous-but-meaningful tolerances (3-7%) at run
lengths that keep the suite fast; the seeds are fixed, so failures are
deterministic signals, not flakes.
"""

from __future__ import annotations

import pytest

from repro.stats.queueing import (
    mm1_mean_response,
    mm1_mean_wait,
)
from repro.system.config import baseline_config
from repro.system.simulation import Simulation, simulate


def local_only_config(**overrides):
    """A pure local-task workload: each node is an independent M/M/1."""
    base = dict(
        frac_local=1.0,          # no global tasks at all
        node_count=3,
        sim_time=60_000.0,
        warmup_time=6_000.0,
        scheduler="FCFS",        # the textbook service order
        seed=101,
    )
    base.update(overrides)
    return baseline_config(**base)


class TestMM1Agreement:
    @pytest.mark.parametrize("load", [0.3, 0.5, 0.7])
    def test_mean_waiting_time_matches_mm1(self, load):
        """Per-node lambda = load (mu = 1): measured Wq vs rho/(mu-lambda)."""
        result = simulate(local_only_config(load=load))
        expected = mm1_mean_wait(load, 1.0)
        assert result.local.mean_waiting == pytest.approx(expected, rel=0.07)

    def test_mean_response_matches_mm1(self):
        result = simulate(local_only_config(load=0.5))
        expected = mm1_mean_response(0.5, 1.0)
        assert result.local.mean_response == pytest.approx(expected, rel=0.05)

    def test_utilization_matches_rho(self):
        result = simulate(local_only_config(load=0.6))
        assert result.mean_utilization == pytest.approx(0.6, abs=0.02)

    def test_mlf_obeys_the_conservation_law(self):
        """Kleinrock's conservation law: a non-preemptive, work-conserving
        discipline that does not use service-time information preserves the
        overall mean wait.  MLF's dispatch key is ``dl - pex = ar + slack``,
        which is *independent* of the service time, so MLF must agree with
        FCFS and with the M/M/1 formula."""
        fcfs = simulate(local_only_config(load=0.6, scheduler="FCFS"))
        mlf = simulate(local_only_config(load=0.6, scheduler="MLF"))
        assert mlf.local.mean_waiting == pytest.approx(
            fcfs.local.mean_waiting, rel=0.02
        )
        expected = mm1_mean_wait(0.6, 1.0)
        assert mlf.local.mean_waiting == pytest.approx(expected, rel=0.08)

    def test_edf_beats_the_conservation_mean(self):
        """EDF's key ``dl = ar + ex + slack`` *does* leak service-time
        information: short tasks get earlier deadlines, so EDF behaves
        partly like shortest-job-first and its mean wait falls below
        FCFS's.  This subtle deviation is physically correct -- the
        conservation law only covers size-blind disciplines -- and it is a
        sensitive regression test of the deadline plumbing."""
        fcfs = simulate(local_only_config(load=0.6, scheduler="FCFS"))
        edf = simulate(local_only_config(load=0.6, scheduler="EDF"))
        assert edf.local.mean_waiting < fcfs.local.mean_waiting * 0.95


class TestPoissonStreams:
    def test_arrival_counts_match_rate(self):
        sim = Simulation(local_only_config(load=0.5, sim_time=40_000.0,
                                           warmup_time=0.0))
        sim.run()
        for source in sim.local_sources:
            # Each node's stream has rate 0.5: expect ~20k +- a few %.
            assert source.generated == pytest.approx(20_000, rel=0.05)

    def test_global_stream_rate(self):
        config = baseline_config(
            frac_local=0.0, sim_time=40_000.0, warmup_time=0.0, seed=7
        )
        sim = Simulation(config)
        sim.run()
        expected = config.global_arrival_rate * 40_000.0
        assert sim.global_source.generated == pytest.approx(expected, rel=0.05)


class TestServiceTimes:
    def test_local_service_mean(self):
        """Mean realized service time equals 1/mu_local."""
        sim = Simulation(local_only_config(load=0.4))
        result = sim.run()
        # response - waiting = service, in expectation.
        measured_service = (
            result.local.mean_response - result.local.mean_waiting
        )
        assert measured_service == pytest.approx(1.0, rel=0.05)
