"""Tests for subtask placement policies (repro.system.placement)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.sim.core import Environment
from repro.sim.rng import StreamFactory
from repro.system.metrics import MetricsCollector
from repro.system.node import Node
from repro.system.placement import (
    LeastOutstandingPlacement,
    RoundRobinPlacement,
    UniformPlacement,
    ZipfPlacement,
)
from repro.system.schedulers import get_policy
from repro.system.work import WorkUnit
from repro.core.task import TaskClass
from repro.core.timing import fast_timing


class TestUniformPlacement:
    def test_matches_historical_route_stream_draws(self):
        """Uniform must consume the exact calls factories used to make on
        the "global-route" stream (bit-identical golden results)."""
        placement = UniformPlacement(6, StreamFactory(seed=42))
        reference = StreamFactory(seed=42).get("global-route")
        picks = [placement.pick_one() for _ in range(50)]
        expected = [reference.randrange(6) for _ in range(50)]
        assert picks == expected
        assert placement.pick_distinct(4) == reference.sample(range(6), 4)

    def test_pick_distinct_yields_distinct(self):
        placement = UniformPlacement(6, StreamFactory(seed=1))
        for _ in range(100):
            picks = placement.pick_distinct(4)
            assert len(set(picks)) == 4


class TestRoundRobinPlacement:
    def test_rotates(self):
        placement = RoundRobinPlacement(3)
        assert [placement.pick_one() for _ in range(7)] == [0, 1, 2, 0, 1, 2, 0]

    def test_pick_distinct_is_consecutive(self):
        placement = RoundRobinPlacement(4)
        assert placement.pick_distinct(3) == [0, 1, 2]
        assert placement.pick_distinct(3) == [3, 0, 1]

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinPlacement(2).pick_distinct(3)


class TestZipfPlacement:
    def test_skew_favors_low_indices(self):
        placement = ZipfPlacement(6, 1.2, StreamFactory(seed=7))
        counts = Counter(placement.pick_one() for _ in range(20_000))
        assert counts[0] > counts[2] > counts[5]

    def test_zero_exponent_is_uniform(self):
        placement = ZipfPlacement(4, 0.0, StreamFactory(seed=7))
        counts = Counter(placement.pick_one() for _ in range(40_000))
        for index in range(4):
            assert counts[index] / 40_000 == pytest.approx(0.25, abs=0.02)

    def test_pick_distinct_yields_distinct(self):
        placement = ZipfPlacement(6, 1.5, StreamFactory(seed=3))
        for _ in range(200):
            picks = placement.pick_distinct(4)
            assert len(set(picks)) == 4

    def test_overflow_rejected(self):
        placement = ZipfPlacement(3, 1.0, StreamFactory(seed=3))
        with pytest.raises(ValueError):
            placement.pick_distinct(4)

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            ZipfPlacement(3, -0.5, StreamFactory(seed=3))

    def test_own_stream_name(self):
        streams = StreamFactory(seed=5)
        ZipfPlacement(4, 1.0, streams).pick_one()
        assert "placement-zipf" in list(streams.names())


def _make_nodes(env, count):
    metrics = MetricsCollector(count)
    policy = get_policy("EDF")
    return [
        Node(env=env, index=i, policy=policy, metrics=metrics)
        for i in range(count)
    ]


def _busy_unit(env, node_index):
    timing = fast_timing(ar=0.0, ex=10.0, pex=10.0, dl=100.0)
    return WorkUnit(env, None, TaskClass.LOCAL, node_index, timing)


class TestLeastOutstandingPlacement:
    def test_picks_the_idle_node(self):
        env = Environment()
        nodes = _make_nodes(env, 3)
        placement = LeastOutstandingPlacement(nodes, StreamFactory(seed=1))
        nodes[0].submit_nowait(_busy_unit(env, 0))
        nodes[2].submit_nowait(_busy_unit(env, 2))
        env.run(until=1.0)  # dispatch: nodes 0 and 2 now busy
        assert placement.pick_one() == 1

    def test_pick_distinct_orders_by_outstanding(self):
        env = Environment()
        nodes = _make_nodes(env, 3)
        placement = LeastOutstandingPlacement(nodes, StreamFactory(seed=1))
        for _ in range(2):
            nodes[0].submit_nowait(_busy_unit(env, 0))
        nodes[1].submit_nowait(_busy_unit(env, 1))
        env.run(until=1.0)
        # Outstanding: node0 = 2 (one serving, one queued), node1 = 1, node2 = 0.
        assert placement.pick_distinct(3) == [2, 1, 0]

    def test_ties_break_randomly_not_structurally(self):
        env = Environment()
        nodes = _make_nodes(env, 4)
        placement = LeastOutstandingPlacement(nodes, StreamFactory(seed=2))
        counts = Counter(placement.pick_one() for _ in range(4_000))
        # All idle: every node must win sometimes.
        assert set(counts) == {0, 1, 2, 3}

    def test_overflow_rejected(self):
        env = Environment()
        nodes = _make_nodes(env, 2)
        placement = LeastOutstandingPlacement(nodes, StreamFactory(seed=1))
        with pytest.raises(ValueError):
            placement.pick_distinct(3)


class TestZipfExtremeSkew:
    """Regression: pick_distinct must not rejection-sample (extreme skew
    used to stall on near-zero tail weights)."""

    def test_extreme_skew_terminates_and_is_distinct(self):
        placement = ZipfPlacement(6, 50.0, StreamFactory(seed=9))
        picks = placement.pick_distinct(6)
        assert sorted(picks) == [0, 1, 2, 3, 4, 5]

    def test_underflowed_weights_fall_back_deterministically(self):
        # (i+1)**s overflows to inf for i>0, so every tail weight is 0.0.
        placement = ZipfPlacement(4, 1e6, StreamFactory(seed=9))
        assert placement.pick_distinct(4) == [0, 1, 2, 3]

    def test_one_draw_per_pick(self):
        streams = StreamFactory(seed=9)
        placement = ZipfPlacement(6, 1.2, streams)
        reference = StreamFactory(seed=9).get("placement-zipf")
        placement.pick_distinct(4)
        # Exactly four draws consumed: the next draw matches the 5th
        # draw of an untouched reference stream.
        for _ in range(4):
            expected = reference.random()
        assert streams.get("placement-zipf").random() == reference.random()
