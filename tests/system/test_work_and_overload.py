"""Unit tests for WorkUnit and the overload policies."""

from __future__ import annotations

import pytest

from repro.core.task import TaskClass
from repro.core.timing import TimingRecord
from repro.system.overload import (
    OVERLOAD_POLICIES,
    AbortTardyAtDispatch,
    AbortVirtualAtDispatch,
    NoAbort,
    get_overload_policy,
)
from repro.system.work import WorkUnit


def make_unit(env, dl=10.0, task_class=TaskClass.LOCAL, natural_deadline=None):
    timing = TimingRecord(ar=0.0, ex=1.0, dl=dl)
    return WorkUnit(
        env=env, name="u", task_class=task_class, node_index=0, timing=timing,
        natural_deadline=natural_deadline,
    )


class TestWorkUnit:
    def test_requires_deadline(self, env):
        timing = TimingRecord(ar=0.0, ex=1.0)  # no deadline assigned
        with pytest.raises(ValueError, match="without a deadline"):
            WorkUnit(env=env, name="u", task_class=TaskClass.LOCAL,
                     node_index=0, timing=timing)

    def test_done_event_initially_pending(self, env):
        assert not make_unit(env).done.triggered

    def test_is_global_subtask(self, env):
        assert make_unit(env, task_class=TaskClass.GLOBAL).is_global_subtask
        assert not make_unit(env, task_class=TaskClass.LOCAL).is_global_subtask

    def test_ids_unique(self, env):
        assert make_unit(env).id != make_unit(env).id

    def test_repr(self, env):
        text = repr(make_unit(env))
        assert "local" in text
        assert "dl=10" in text


class TestNoAbort:
    def test_never_aborts(self, env):
        policy = NoAbort()
        unit = make_unit(env, dl=1.0)
        assert not policy.should_abort_at_dispatch(unit, now=1e9)


class TestAbortTardy:
    def test_aborts_past_deadline(self, env):
        policy = AbortTardyAtDispatch()
        unit = make_unit(env, dl=5.0)
        assert policy.should_abort_at_dispatch(unit, now=5.1)

    def test_keeps_at_exact_deadline(self, env):
        policy = AbortTardyAtDispatch()
        unit = make_unit(env, dl=5.0)
        assert not policy.should_abort_at_dispatch(unit, now=5.0)

    def test_keeps_before_deadline(self, env):
        policy = AbortTardyAtDispatch()
        unit = make_unit(env, dl=5.0)
        assert not policy.should_abort_at_dispatch(unit, now=2.0)

    def test_uses_natural_deadline_not_virtual(self, env):
        """A subtask past its virtual deadline but inside the end-to-end
        deadline is still worth running."""
        policy = AbortTardyAtDispatch()
        unit = make_unit(env, dl=5.0, task_class=TaskClass.GLOBAL,
                         natural_deadline=50.0)
        assert not policy.should_abort_at_dispatch(unit, now=10.0)
        assert policy.should_abort_at_dispatch(unit, now=51.0)

    def test_natural_defaults_to_virtual(self, env):
        assert make_unit(env, dl=5.0).natural_deadline == 5.0


class TestAbortVirtual:
    def test_aborts_past_virtual_deadline(self, env):
        """The blind component behaviour: discards on the assigned deadline
        even when the end-to-end deadline is still reachable."""
        policy = AbortVirtualAtDispatch()
        unit = make_unit(env, dl=5.0, task_class=TaskClass.GLOBAL,
                         natural_deadline=50.0)
        assert policy.should_abort_at_dispatch(unit, now=10.0)

    def test_keeps_before_virtual_deadline(self, env):
        policy = AbortVirtualAtDispatch()
        unit = make_unit(env, dl=5.0, natural_deadline=50.0)
        assert not policy.should_abort_at_dispatch(unit, now=4.0)


class TestRegistry:
    def test_known_policies(self):
        assert set(OVERLOAD_POLICIES) == {"no-abort", "abort-tardy", "abort-virtual"}

    def test_lookup_case_insensitive(self):
        assert get_overload_policy("No-Abort").name == "no-abort"

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            get_overload_policy("panic")


class TestUnitPool:
    """The free-list recycling contract of ``acquire_unit``/``release``."""

    def _acquire(self, env, dl=10.0):
        from repro.system.work import acquire_unit

        timing = TimingRecord(ar=0.0, ex=1.0, dl=dl)
        return acquire_unit(
            env=env, name=None, task_class=TaskClass.LOCAL, node_index=0,
            timing=timing,
        )

    def test_acquire_requires_deadline(self, env):
        from repro.system.work import acquire_unit

        with pytest.raises(ValueError, match="without a deadline"):
            acquire_unit(
                env=env, name=None, task_class=TaskClass.LOCAL,
                node_index=0, timing=TimingRecord(ar=0.0, ex=1.0),
            )

    def test_release_recycles_the_object(self, env):
        first = self._acquire(env)
        first.release()
        second = self._acquire(env)
        assert second is first  # LIFO free list hands the object back

    def test_ids_stay_monotone_through_recycling(self, env):
        unit = self._acquire(env)
        first_id = unit.id
        unit.release()
        recycled = self._acquire(env)
        assert recycled.id > first_id
        assert make_unit(env).id > recycled.id  # shared counter

    def test_done_after_release_raises(self, env):
        unit = self._acquire(env)
        unit.release()
        with pytest.raises(RuntimeError, match="was recycled"):
            unit.done

    def test_double_release_raises(self, env):
        unit = self._acquire(env)
        unit.release()
        with pytest.raises(RuntimeError, match="released twice"):
            unit.release()

    def test_release_drops_run_references(self, env):
        unit = self._acquire(env)
        unit.release()
        assert unit.timing is None
        assert unit.env is None
        assert unit.on_done is None

    def test_recycled_unit_is_fully_restamped(self, env):
        stale = self._acquire(env)
        stale.lost = True
        stale.release()
        fresh = self._acquire(env, dl=7.0)
        assert fresh is stale
        assert fresh.lost is False
        assert fresh.timing.dl == 7.0
        assert fresh.natural_deadline == 7.0
        assert not fresh.done.triggered  # fresh lazy event, not _POOLED

    def test_in_use_and_high_water_accounting(self, env):
        from repro.system.work import UNIT_POOL

        base_in_use = UNIT_POOL.in_use
        units = [self._acquire(env) for _ in range(4)]
        assert UNIT_POOL.in_use == base_in_use + 4
        assert UNIT_POOL.high_water >= base_in_use + 4
        high = UNIT_POOL.high_water
        for unit in units:
            unit.release()
        assert UNIT_POOL.in_use == base_in_use
        assert UNIT_POOL.high_water == high  # high-water never recedes

    def test_hand_built_units_stay_out_of_the_pool(self, env):
        unit = make_unit(env)
        assert unit.pool is None
