"""Additional integration scenarios across the system layer."""

from __future__ import annotations

import pytest

from repro.core.strategies import parse_assigner
from repro.core.strategies.base import PriorityClass
from repro.core.task import SimpleTask, parallel, serial
from repro.sim.core import Environment
from repro.system.config import baseline_config
from repro.system.metrics import MetricsCollector
from repro.system.node import Node
from repro.system.process_manager import ProcessManager
from repro.system.schedulers import EarliestDeadlineFirst
from repro.system.simulation import simulate


def build_system(env, node_count=3, strategy="UD"):
    metrics = MetricsCollector(node_count)
    nodes = [
        Node(env=env, index=i, policy=EarliestDeadlineFirst(), metrics=metrics)
        for i in range(node_count)
    ]
    manager = ProcessManager(
        env=env, nodes=nodes, assigner=parse_assigner(strategy), metrics=metrics
    )
    return manager, metrics, nodes


class TestHopelessTasks:
    def test_deadline_already_past_at_submission(self, env):
        """A soft real-time system accepts and runs already-late tasks."""
        manager, metrics, _ = build_system(env)

        def late_submit(env, manager):
            yield env.timeout(10.0)
            tree = serial(
                SimpleTask(1.0, node_index=0), SimpleTask(1.0, node_index=1)
            )
            return manager.submit(tree, deadline=5.0)  # in the past

        runner = env.process(late_submit(env, manager))
        env.run()
        stats = metrics.snapshot(env.now).global_
        assert stats.completed == 1
        assert stats.missed == 1

    def test_negative_slack_propagates_through_eqf(self, env):
        """EQF with negative remaining slack pulls virtual deadlines *before*
        submit + pex, raising the doomed chain's priority."""
        manager, _, _ = build_system(env, strategy="EQF")
        tree = serial(
            SimpleTask(2.0, node_index=0), SimpleTask(2.0, node_index=1)
        )
        manager.submit(tree, deadline=1.0)  # needs >= 4
        env.run()
        first = list(tree.leaves())[0]
        # slack = 1 - 0 - 4 = -3; share = -3 * 2/4 = -1.5; dl = 0 + 2 - 1.5.
        assert first.timing.dl == pytest.approx(0.5)


class TestGFPriorities:
    def test_gf_subtasks_jump_local_queue(self, env):
        """A GF subtask submitted *after* locals with earlier deadlines is
        still served first."""
        manager, _, nodes = build_system(env, strategy="GF")
        from tests.system.test_node import submit as node_submit

        # Server busy until t=4; two locals queued with tight deadlines.
        node_submit(env, nodes[0], ex=4.0, dl=4.5, name="in-service")
        local = node_submit(env, nodes[0], ex=1.0, dl=6.0, name="queued-local")

        def submit_global(env, manager):
            yield env.timeout(1.0)
            leaf = SimpleTask(1.0, node_index=0)
            manager.submit(leaf, deadline=100.0)
            return leaf

        runner = env.process(submit_global(env, manager))
        env.run()
        leaf = runner.value
        # Global subtask (dl=100!) served at t=4, before the local (dl=6).
        assert leaf.timing.started_at == 4.0
        assert local.timing.started_at == 5.0

    def test_gf_stamps_elevated_class_on_serial_stages(self, env):
        manager, _, nodes = build_system(env, strategy="EQF-GF")
        captured = []
        original = nodes[0].submit_nowait

        def capture(unit):
            captured.append(unit)
            return original(unit)

        nodes[0].submit_nowait = capture
        tree = serial(SimpleTask(1.0, node_index=0), SimpleTask(1.0, node_index=1))
        manager.submit(tree, deadline=50.0)
        env.run()
        assert captured[0].priority_class == PriorityClass.ELEVATED


class TestExtendedStrategiesEndToEnd:
    SHORT = dict(sim_time=2_500.0, warmup_time=250.0)

    def test_eqfas_runs_in_full_simulation(self):
        result = simulate(baseline_config(strategy="EQFAS1", seed=8, **self.SHORT))
        assert result.global_.completed > 50
        assert 0.0 <= result.md_global <= 1.0

    def test_eqfas_combination_with_div(self):
        from repro.system.config import serial_parallel_config

        result = simulate(
            serial_parallel_config(strategy="EQFAS1-DIV1", seed=8, **self.SHORT)
        )
        assert result.global_.completed > 50

    def test_custom_div_x_value(self):
        from repro.system.config import parallel_baseline_config

        result = simulate(
            parallel_baseline_config(strategy="DIV-3", seed=8, **self.SHORT)
        )
        assert result.global_.completed > 50

    def test_trace_and_preemption_together(self):
        result_config = baseline_config(
            trace=True, preemptive=True, sim_time=500.0, warmup_time=0.0, seed=8
        )
        from repro.system.simulation import Simulation

        sim = Simulation(result_config)
        sim.run()
        kinds = {event.kind for event in sim.trace_log.events}
        assert "dispatch" in kinds and "complete" in kinds


class TestParallelJoinSemantics:
    def test_group_outcome_decided_by_last_finisher(self, env):
        """The group misses iff the *last* branch finishes after dl(T),
        even when other branches met their virtual deadlines."""
        manager, metrics, _ = build_system(env)
        tree = parallel(
            SimpleTask(1.0, node_index=0),
            SimpleTask(9.0, node_index=1),
        )
        proc = manager.submit(tree, deadline=5.0)
        env.run()
        assert proc.value.completed_at == 9.0
        assert proc.value.missed
        stats = metrics.snapshot(env.now).global_
        assert stats.missed == 1
