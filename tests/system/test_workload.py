"""Unit tests for workload generation (repro.system.workload)."""

from __future__ import annotations

import pytest

from repro.core.estimators import uniform_error_estimator
from repro.core.task import ParallelTask, SerialTask, SimpleTask
from repro.sim.core import Environment
from repro.sim.distributions import (
    Deterministic,
    DiscreteUniform,
    Exponential,
    Uniform,
    exponential_interarrival,
)
from repro.sim.rng import StreamFactory
from repro.system.metrics import MetricsCollector
from repro.system.node import Node
from repro.system.schedulers import EarliestDeadlineFirst
from repro.system.workload import (
    LocalTaskSource,
    ParallelFanFactory,
    SerialChainFactory,
    SerialParallelFactory,
)


class TestSerialChainFactory:
    @pytest.fixture
    def factory(self, streams):
        return SerialChainFactory(
            node_count=6,
            count=Deterministic(4),
            execution=Exponential(1.0),
            slack=Uniform(1.0, 10.0),
            streams=streams,
        )

    def test_builds_chain_of_m(self, factory):
        tree, _ = factory.build(now=0.0)
        assert isinstance(tree, SerialTask)
        assert tree.subtask_count() == 4

    def test_deadline_identity(self, factory):
        """dl = ar + total ex + slack with slack inside the slack range."""
        tree, deadline = factory.build(now=100.0)
        slack = deadline - 100.0 - tree.total_ex()
        assert 1.0 <= slack <= 10.0

    def test_nodes_within_range(self, factory):
        tree, _ = factory.build(now=0.0)
        assert all(0 <= leaf.node_index < 6 for leaf in tree.leaves())

    def test_mean_subtask_count(self, factory):
        assert factory.mean_subtask_count == 4.0

    def test_variable_count(self, streams):
        factory = SerialChainFactory(
            node_count=6,
            count=DiscreteUniform(2, 6),
            execution=Exponential(1.0),
            slack=Uniform(1.0, 10.0),
            streams=streams,
        )
        counts = {factory.build(now=0.0)[0].subtask_count() for _ in range(300)}
        assert counts == {2, 3, 4, 5, 6}
        assert factory.mean_subtask_count == 4.0

    def test_single_subtask_builds_leaf(self, streams):
        factory = SerialChainFactory(
            node_count=3,
            count=Deterministic(1),
            execution=Exponential(1.0),
            slack=Uniform(0.5, 1.0),
            streams=streams,
        )
        tree, _ = factory.build(now=0.0)
        assert isinstance(tree, SimpleTask)

    def test_noisy_estimator_perturbs_pex_not_ex(self, streams):
        factory = SerialChainFactory(
            node_count=6,
            count=Deterministic(4),
            execution=Exponential(1.0),
            slack=Uniform(1.0, 10.0),
            streams=streams,
            estimator=uniform_error_estimator(0.5),
        )
        tree, deadline = factory.build(now=0.0)
        for leaf in tree.leaves():
            assert 0.5 * leaf.ex <= leaf.pex <= 1.5 * leaf.ex
        slack = deadline - tree.total_ex()
        assert 1.0 <= slack <= 10.0  # deadline uses real ex, not pex

    def test_reproducible_across_factories(self):
        def build_once():
            factory = SerialChainFactory(
                node_count=6,
                count=Deterministic(4),
                execution=Exponential(1.0),
                slack=Uniform(1.0, 10.0),
                streams=StreamFactory(7),
            )
            tree, deadline = factory.build(now=0.0)
            return [(leaf.ex, leaf.node_index) for leaf in tree.leaves()], deadline

        assert build_once() == build_once()

    def test_bad_node_count_rejected(self, streams):
        with pytest.raises(ValueError):
            SerialChainFactory(
                node_count=0,
                count=Deterministic(4),
                execution=Exponential(1.0),
                slack=Uniform(0, 1),
                streams=streams,
            )


class TestParallelFanFactory:
    @pytest.fixture
    def factory(self, streams):
        return ParallelFanFactory(
            node_count=6,
            fan_out=4,
            execution=Exponential(1.0),
            slack=Uniform(1.25, 5.0),
            streams=streams,
        )

    def test_builds_fan(self, factory):
        tree, _ = factory.build(now=0.0)
        assert isinstance(tree, ParallelTask)
        assert tree.subtask_count() == 4

    def test_distinct_nodes(self, factory):
        """Sec. 5.2: the m subtasks execute at m different nodes."""
        for _ in range(100):
            tree, _ = factory.build(now=0.0)
            nodes = [leaf.node_index for leaf in tree.leaves()]
            assert len(set(nodes)) == len(nodes)

    def test_deadline_uses_longest_branch(self, factory):
        """Paper eq. (2): dl = max ex + slack + ar."""
        tree, deadline = factory.build(now=50.0)
        longest = max(leaf.ex for leaf in tree.leaves())
        slack = deadline - 50.0 - longest
        assert 1.25 <= slack <= 5.0

    def test_fan_out_exceeding_nodes_rejected(self, streams):
        with pytest.raises(ValueError, match="distinct nodes"):
            ParallelFanFactory(
                node_count=3,
                fan_out=4,
                execution=Exponential(1.0),
                slack=Uniform(1, 2),
                streams=streams,
            )

    def test_fan_out_one_builds_leaf(self, streams):
        factory = ParallelFanFactory(
            node_count=3,
            fan_out=1,
            execution=Exponential(1.0),
            slack=Uniform(1, 2),
            streams=streams,
        )
        tree, _ = factory.build(now=0.0)
        assert isinstance(tree, SimpleTask)


class TestSerialParallelFactory:
    @pytest.fixture
    def factory(self, streams):
        return SerialParallelFactory(
            node_count=6,
            stages=2,
            width=2,
            execution=Exponential(1.0),
            slack=Uniform(1.0, 10.0),
            streams=streams,
        )

    def test_structure(self, factory):
        tree, _ = factory.build(now=0.0)
        assert isinstance(tree, SerialTask)
        assert len(tree.children) == 2
        assert all(isinstance(stage, ParallelTask) for stage in tree.children)
        assert tree.subtask_count() == 4

    def test_deadline_uses_critical_path(self, factory):
        tree, deadline = factory.build(now=10.0)
        slack = deadline - 10.0 - tree.total_ex()
        assert 1.0 <= slack <= 10.0

    def test_distinct_nodes_within_stage(self, factory):
        for _ in range(50):
            tree, _ = factory.build(now=0.0)
            for stage in tree.children:
                nodes = [leaf.node_index for leaf in stage.leaves()]
                assert len(set(nodes)) == len(nodes)

    def test_width_one_gives_simple_stages(self, streams):
        factory = SerialParallelFactory(
            node_count=3, stages=3, width=1,
            execution=Exponential(1.0), slack=Uniform(1, 2), streams=streams,
        )
        tree, _ = factory.build(now=0.0)
        assert all(stage.is_leaf for stage in tree.children)

    def test_mean_subtask_count(self, factory):
        assert factory.mean_subtask_count == 4.0

    @pytest.mark.parametrize("stages,width", [(0, 2), (2, 0), (2, 9)])
    def test_bad_shape_rejected(self, streams, stages, width):
        with pytest.raises(ValueError):
            SerialParallelFactory(
                node_count=6, stages=stages, width=width,
                execution=Exponential(1.0), slack=Uniform(1, 2), streams=streams,
            )


class TestLocalTaskSource:
    def test_generates_poisson_stream(self, env, streams):
        metrics = MetricsCollector(node_count=1)
        node = Node(env=env, index=0, policy=EarliestDeadlineFirst(), metrics=metrics)
        source = LocalTaskSource(
            env=env,
            node=node,
            interarrival=exponential_interarrival(0.5),
            execution=Exponential(0.1),  # light service to avoid saturation
            slack=Uniform(0.25, 2.5),
            streams=streams,
        )
        env.run(until=2_000.0)
        # Expect about rate * horizon = 1000 arrivals.
        assert source.generated == pytest.approx(1_000, rel=0.15)
        stats = metrics.snapshot(env.now).local
        assert stats.completed > 0

    def test_deadline_identity_on_generated_units(self, env, streams):
        metrics = MetricsCollector(node_count=1)
        node = Node(env=env, index=0, policy=EarliestDeadlineFirst(), metrics=metrics)
        captured = []
        original_submit = node.submit_nowait

        def capturing_submit(unit):
            # Snapshot at submission: fire-and-forget units return to the
            # pool (timing dropped) as soon as the node finishes them.
            captured.append(unit.timing.sl)
            return original_submit(unit)

        # The source submits through the no-completion-event fast path.
        node.submit_nowait = capturing_submit
        LocalTaskSource(
            env=env,
            node=node,
            interarrival=exponential_interarrival(1.0),
            execution=Exponential(1.0),
            slack=Uniform(0.25, 2.5),
            streams=streams,
        )
        env.run(until=100.0)
        assert captured
        for slack in captured:
            assert 0.25 <= slack <= 2.5
