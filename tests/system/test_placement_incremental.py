"""Property tests of the incremental least-outstanding placement state.

The fleet-state refactor replaced the O(n) per-decision rescans of
``LeastOutstandingPlacement`` with count buckets maintained from the
node outstanding hooks.  These tests drive random interleavings of
submit / time-advance / crash / recover against real nodes (both the
non-preemptive and preemptive kinds, under every crash-semantics
variant) and assert two invariants after every step:

* *count consistency*: the incrementally maintained outstanding counts
  equal a from-scratch recompute over the nodes (queue length + one if
  serving) and the fleet signal arrays;
* *decision equivalence*: ``pick_one``/``pick_distinct`` return exactly
  what the historical argmin-rescan implementation returns when run
  against a cloned tie-break stream, consuming exactly the same draws
  (stream states must match afterwards -- the draw trajectory is what
  the golden determinism gate pins).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.task import TaskClass
from repro.core.timing import fast_timing
from repro.sim.core import Environment
from repro.sim.rng import StreamFactory
from repro.system.faults import LiveSet
from repro.system.metrics import MetricsCollector
from repro.system.node import Node
from repro.system.placement import LeastOutstandingPlacement
from repro.system.preemptive import PreemptiveNode
from repro.system.schedulers import EarliestDeadlineFirst
from repro.system.work import WorkUnit

NODE_COUNT = 8

#: One step of the interleaving.  Time advances are coarse fixed deltas:
#: the point is event-order diversity, not float torture.
ops = st.one_of(
    st.tuples(st.just("submit"), st.integers(0, NODE_COUNT - 1)),
    st.tuples(st.just("advance"), st.sampled_from([0.1, 0.7, 1.9, 4.0])),
    st.tuples(st.just("crash"), st.integers(0, NODE_COUNT - 1)),
    st.tuples(st.just("recover"), st.integers(0, NODE_COUNT - 1)),
    st.tuples(st.just("pick_one"), st.just(0)),
    st.tuples(st.just("pick_distinct"), st.integers(1, NODE_COUNT)),
)


def _reference_pick(placement, outstanding, excluded, rng):
    """The historical argmin-rescan decision (pre-refactor code)."""

    def argmins(values, skip):
        best = None
        ties = []
        for i, v in enumerate(values):
            if i in skip:
                continue
            if best is None or v < best:
                best = v
                ties = [i]
            elif v == best:
                ties.append(i)
        return ties

    live = placement.live
    if live is not None and live.live_count > 0:
        down_excluded = set(excluded) | {
            i for i in range(len(placement.nodes)) if i not in live
        }
        ties = argmins(outstanding, down_excluded)
        if not ties:
            ties = argmins(outstanding, excluded)
    else:
        ties = argmins(outstanding, excluded)
    if len(ties) == 1:
        return ties[0]
    return ties[rng.randrange(len(ties))]


def _clone(stream) -> random.Random:
    clone = random.Random()
    clone.setstate(stream.getstate())
    return clone


def _unit(env, node_index, now):
    timing = fast_timing(ar=now, ex=1.5, pex=1.5, dl=now + 50.0)
    return WorkUnit(env, None, TaskClass.LOCAL, node_index, timing)


def _check_counts(placement, metrics):
    recomputed = placement._outstanding()
    assert placement._counts == recomputed
    fleet = metrics.fleet
    for i in range(NODE_COUNT):
        assert recomputed[i] == int(
            fleet.queue_value[i] + fleet.busy_value[i]
        )


@pytest.mark.parametrize("node_cls", [Node, PreemptiveNode])
@pytest.mark.parametrize(
    "lose_in_flight,drop_queued",
    [(False, False), (True, False), (True, True)],
)
@settings(max_examples=40, deadline=None)
@given(steps=st.lists(ops, min_size=1, max_size=40))
def test_incremental_counts_and_decisions_match_rescan(
    node_cls, lose_in_flight, drop_queued, steps
):
    env = Environment()
    metrics = MetricsCollector(NODE_COUNT)
    policy = EarliestDeadlineFirst()
    nodes = [
        node_cls(env=env, index=i, policy=policy, metrics=metrics)
        for i in range(NODE_COUNT)
    ]
    for node in nodes:
        node.configure_fault_semantics(lose_in_flight, drop_queued)
    placement = LeastOutstandingPlacement(nodes, StreamFactory(seed=17))
    live = LiveSet(NODE_COUNT)
    placement.attach_live_set(live)

    for op, arg in steps:
        if op == "submit":
            nodes[arg].submit_nowait(_unit(env, arg, env.now))
        elif op == "advance":
            env.run(until=env.now + arg)
        elif op == "crash":
            # Mirror the fault injector's order: the live set flips
            # before the node callback runs.
            if arg in live:
                live.mark_down(arg)
                nodes[arg].crash()
        elif op == "recover":
            if arg not in live:
                live.mark_up(arg)
                nodes[arg].recover()
        elif op == "pick_one":
            outstanding = placement._outstanding()
            clone = _clone(placement._stream)
            expected = _reference_pick(placement, outstanding, set(), clone)
            assert placement.pick_one() == expected
            assert placement._stream.getstate() == clone.getstate()
        else:  # pick_distinct
            outstanding = placement._outstanding()
            clone = _clone(placement._stream)
            expected = []
            excluded: set = set()
            for _ in range(arg):
                pick = _reference_pick(
                    placement, outstanding, excluded, clone
                )
                excluded.add(pick)
                expected.append(pick)
            assert placement.pick_distinct(arg) == expected
            assert placement._stream.getstate() == clone.getstate()
        _check_counts(placement, metrics)

    # Drain everything still in flight: the incremental state must stay
    # consistent through the tail of completions too.
    for i in range(NODE_COUNT):
        if i not in live:
            live.mark_up(i)
            nodes[i].recover()
            _check_counts(placement, metrics)
    env.run(until=env.now + 1_000.0)
    _check_counts(placement, metrics)
    assert placement._counts == [0] * NODE_COUNT


@settings(max_examples=20, deadline=None)
@given(steps=st.lists(ops, min_size=1, max_size=30))
def test_incremental_counts_without_live_set(steps):
    """Fault-oblivious configs (live never attached) stay consistent."""
    env = Environment()
    metrics = MetricsCollector(NODE_COUNT)
    policy = EarliestDeadlineFirst()
    nodes = [
        Node(env=env, index=i, policy=policy, metrics=metrics)
        for i in range(NODE_COUNT)
    ]
    placement = LeastOutstandingPlacement(nodes, StreamFactory(seed=23))
    for op, arg in steps:
        if op == "submit":
            nodes[arg].submit_nowait(_unit(env, arg, env.now))
        elif op == "advance":
            env.run(until=env.now + arg)
        elif op == "pick_one":
            outstanding = placement._outstanding()
            clone = _clone(placement._stream)
            expected = _reference_pick(placement, outstanding, set(), clone)
            assert placement.pick_one() == expected
            assert placement._stream.getstate() == clone.getstate()
        elif op == "pick_distinct":
            outstanding = placement._outstanding()
            clone = _clone(placement._stream)
            expected = []
            excluded: set = set()
            for _ in range(arg):
                pick = _reference_pick(
                    placement, outstanding, excluded, clone
                )
                excluded.add(pick)
                expected.append(pick)
            assert placement.pick_distinct(arg) == expected
            assert placement._stream.getstate() == clone.getstate()
        # crash/recover ops are no-ops in the fault-oblivious variant
        _check_counts(placement, metrics)
