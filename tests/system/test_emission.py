"""Incremental metric emission (repro.system.emission) and JSONL plumbing.

The load-bearing claims: emission is determinism-invisible (same
RunResult with it on or off), the final record's cumulative payload
equals the returned result exactly, and the append path tolerates a
torn tail the way a killed run leaves one.
"""

import json
import math
import pickle

import pytest

from repro.checkpoint import CheckpointError, JsonlAppender, read_jsonl
from repro.system.config import baseline_config
from repro.system.emission import (
    EmissionPolicy,
    read_metrics_series,
    render_series_tail,
    summarize_series,
)
from repro.system.metrics import RunResult, WindowedSignals
from repro.system.simulation import Simulation, simulate


def quick_config(**overrides):
    base = dict(sim_time=400.0, warmup_time=50.0, seed=42)
    base.update(overrides)
    return baseline_config(**base)


class TestJsonlAppender:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "records.jsonl"
        appender = JsonlAppender(path)
        appender.write({"a": 1})
        appender.write({"b": math.nan})
        appender.close()
        records = read_jsonl(path)
        assert records[0] == {"a": 1}
        assert math.isnan(records[1]["b"])

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "records.jsonl"
        appender = JsonlAppender(path)
        appender.write({"a": 1})
        appender.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn": tru')  # killed mid-write
        assert read_jsonl(path) == [{"a": 1}]

    def test_torn_tail_reported_via_callback(self, tmp_path):
        path = tmp_path / "records.jsonl"
        appender = JsonlAppender(path)
        appender.write({"a": 1})
        appender.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn": tru')  # killed mid-write
        messages = []
        assert read_jsonl(path, on_torn=messages.append) == [{"a": 1}]
        assert len(messages) == 1
        assert "torn final record" in messages[0]
        # An intact file never fires the callback.
        clean = tmp_path / "clean.jsonl"
        appender = JsonlAppender(clean)
        appender.write({"a": 1})
        appender.close()
        untouched = []
        read_jsonl(clean, on_torn=untouched.append)
        assert untouched == []

    def test_corruption_before_tail_raises(self, tmp_path):
        path = tmp_path / "records.jsonl"
        path.write_text('{"a": 1}\nnot json at all\n{"b": 2}\n')
        with pytest.raises(CheckpointError):
            read_jsonl(path)

    def test_write_after_close_rejected(self, tmp_path):
        appender = JsonlAppender(tmp_path / "records.jsonl")
        appender.close()
        with pytest.raises(ValueError):
            appender.write({})

    def test_pickle_reopens_in_append_mode(self, tmp_path):
        path = tmp_path / "records.jsonl"
        appender = JsonlAppender(path)
        appender.write({"a": 1})
        clone = pickle.loads(pickle.dumps(appender))
        appender.close()
        clone.write({"b": 2})
        clone.close()
        assert read_jsonl(path) == [{"a": 1}, {"b": 2}]
        assert clone.written == 2


class TestEmissionPolicy:
    def test_needs_a_trigger(self):
        with pytest.raises(ValueError):
            EmissionPolicy(path="x.jsonl")

    def test_rejects_negative_triggers(self):
        with pytest.raises(ValueError):
            EmissionPolicy(path="x.jsonl", every_events=-1)
        with pytest.raises(ValueError):
            EmissionPolicy(path="x.jsonl", every_seconds=-1.0)

    def test_rejects_nonpositive_tau(self):
        with pytest.raises(ValueError):
            EmissionPolicy(path="x.jsonl", every_events=1, tau=0.0)


class TestEmittedSeries:
    def test_emission_is_determinism_invisible(self, tmp_path):
        config = quick_config()
        plain = simulate(config)
        emitted = simulate(
            config,
            emit=EmissionPolicy(
                path=str(tmp_path / "m.jsonl"), every_events=500
            ),
        )
        assert emitted == plain

    def test_final_record_equals_run_result(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        result = simulate(
            quick_config(),
            emit=EmissionPolicy(path=path, every_events=500),
        )
        records = read_metrics_series(path)
        final = records[-1]
        assert final["type"] == "final"
        # json round-trips repr-exact floats; NaN == NaN fails under ==,
        # so compare the canonical dumps.
        assert json.dumps(final["cumulative"], sort_keys=True) == json.dumps(
            result.to_dict(), sort_keys=True
        )
        # Object equality holds between two parsed records (both carry
        # the json decoder's NaN singleton for the empty fields).
        round_tripped = RunResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert RunResult.from_dict(final["cumulative"]) == round_tripped

    def test_series_shape(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        simulate(
            quick_config(),
            emit=EmissionPolicy(path=path, every_events=300),
        )
        records = read_metrics_series(path)
        header = records[0]
        assert header["type"] == "header"
        assert header["seed"] == 42
        assert header["kernel"] in ("python", "compiled")
        intervals = [r for r in records if r["type"] == "interval"]
        assert intervals, "expected at least one interval record"
        last_events = 0
        for record in intervals:
            assert record["events"] > last_events
            last_events = record["events"]
            assert "per_class" in record["window"]
            assert "local" in record["window"]["per_class"]
            RunResult.from_dict(record["cumulative"])  # parses

    def test_intervals_only_in_measured_phase(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        config = quick_config(sim_time=400.0, warmup_time=200.0)
        simulate(config, emit=EmissionPolicy(path=path, every_events=200))
        records = read_metrics_series(path)
        for record in records:
            if record["type"] == "interval":
                assert record["now"] > 200.0

    def test_invalid_series_rejected(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"type": "interval"}\n')
        with pytest.raises(CheckpointError):
            read_metrics_series(path)

    def test_render_and_summarize(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        simulate(
            quick_config(),
            emit=EmissionPolicy(path=path, every_events=500),
        )
        records = read_metrics_series(path)
        tail = render_series_tail(records, last=5)
        assert "MD_global" in tail
        summary = summarize_series(records)
        assert "seed=42" in summary
        assert "final:" in summary

    def test_emission_composes_with_checkpointing(self, tmp_path):
        from repro.checkpoint import CheckpointPolicy

        path = str(tmp_path / "m.jsonl")
        result = simulate(
            quick_config(),
            checkpoint=CheckpointPolicy(
                path=str(tmp_path / "run.ckpt"), every_events=1_000
            ),
            emit=EmissionPolicy(path=path, every_events=500),
        )
        assert simulate(quick_config()) == result
        assert read_metrics_series(path)[-1]["type"] == "final"


class TestWindowedSignals:
    def test_attach_and_snapshot(self):
        simulation = Simulation(quick_config())
        window = simulation.metrics.enable_windows(tau=100.0, now=0.0)
        assert simulation.metrics.window is window
        result = simulation.run()
        snapshot = window.snapshot(simulation.env.now)
        assert snapshot["tau"] == 100.0
        local = snapshot["per_class"]["local"]
        # The run completed local work recently, so the current signals
        # are live numbers, not the empty-window nan.
        assert local["throughput"] > 0.0
        assert 0.0 <= local["miss_rate"] <= 1.0
        assert local["mean_response"] > 0.0
        assert len(snapshot["per_node"]) == simulation.config.node_count
        # Windows never perturb the result.
        assert simulate(quick_config()) == result

    def test_windowed_miss_rate_tracks_recent_regime(self):
        window = WindowedSignals(node_count=1, tau=10.0)
        for t in range(100):
            window.record_global(0.0, 1.0, float(t))
        for t in range(100, 200):
            window.record_global(1.0, 1.0, float(t))
        snapshot = window.snapshot(200.0)
        assert snapshot["per_class"]["global"]["miss_rate"] > 0.99

    def test_enable_is_idempotent_per_tau(self):
        simulation = Simulation(quick_config())
        first = simulation.metrics.enable_windows(tau=50.0, now=0.0)
        assert simulation.metrics.enable_windows(tau=50.0, now=1.0) is first
        replaced = simulation.metrics.enable_windows(tau=99.0, now=1.0)
        assert replaced is not first

    def test_rejects_nonpositive_tau(self):
        with pytest.raises(ValueError):
            WindowedSignals(node_count=1, tau=0.0)
