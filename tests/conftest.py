"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.experiments.runner import RunScale
from repro.sim.core import Environment
from repro.sim.rng import StreamFactory
from repro.system.config import baseline_config


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def streams() -> StreamFactory:
    """A reproducible stream factory with a fixed seed."""
    return StreamFactory(seed=12345)


@pytest.fixture
def tiny_scale() -> RunScale:
    """Very short runs for structural tests of the experiment harness."""
    return RunScale(sim_time=400.0, warmup_time=50.0, replications=1, label="tiny")


@pytest.fixture
def smoke_config():
    """A short-run baseline config for integration tests."""
    return baseline_config(sim_time=2_500.0, warmup_time=250.0)
