"""Per-scenario runtime benchmarks for the scenario library.

Not a paper artifact: tracks what each library scenario *costs* to
simulate relative to the baseline, so a new workload dimension that
accidentally lands on the hot path (e.g. a placement policy scanning
nodes per subtask, or an arrival sampler consuming extra draws) shows up
as a runtime regression here before it shows up in a slow FULL sweep.

Every library scenario runs the same short window under the same
strategy; per-scenario medians are merged into ``BENCH_scenarios.json``
at the repo root (same contract as ``BENCH_kernel.json``).
"""

from __future__ import annotations

import pytest

from repro.scenarios import LIBRARY, get_scenario

from _util import record_scenario_bench

#: Short but representative: thousands of task completions per round.
_RUN = dict(sim_time=1_500.0, warmup_time=150.0)


@pytest.mark.parametrize("spec", LIBRARY, ids=lambda s: s.name)
def test_scenario_runtime(benchmark, spec):
    """One run of each library scenario under EQF."""
    from repro.system.simulation import simulate

    config = spec.to_config(strategy="EQF", seed=17, **_RUN)

    def run():
        result = simulate(config)
        return result.local.completed

    completed = benchmark(run)
    record_scenario_bench(spec.name, benchmark)
    assert completed > 100


def test_scenario_overhead_vs_baseline(benchmark):
    """The stress scenario (every dimension on) as one tracked number.

    Guards the composition cost: bursty sampler + Pareto service + Zipf
    placement together should stay within a small factor of baseline.
    """
    from repro.system.simulation import simulate

    config = get_scenario("stress-mix").to_config(
        strategy="EQF", seed=17, **_RUN
    )

    def run():
        return simulate(config).local.completed

    completed = benchmark(run)
    record_scenario_bench("stress_mix_tracked", benchmark)
    assert completed > 100
