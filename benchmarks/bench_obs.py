"""Observability-layer benchmarks: sketches, windows, and emission.

Not a paper artifact: these guard the streaming-observability claim
that the instrumented completion path stays within noise of the
pre-observability tree.  Four workloads bracket the layer:

* ``obs_sketch_observe`` -- 10 000 P² updates on one three-quantile
  sketch: the marginal cost the metrics path pays per completion;
* ``obs_window_record`` -- 10 000 windowed-signal updates (decayed
  miss/throughput/response per class): the opt-in window hook's cost;
* ``obs_mm1_sketch_on`` -- the baseline mm1 cycle end to end on this
  tree (sketches always on, windows off): the number to compare with
  the pre-observability ``core_mm1`` and the recorded A/B;
* ``obs_mm1_emitting`` -- the same run with a JSONL metric series
  emitted every 2 000 events: the all-in observability cost.

Results merge into ``BENCH_obs.json``; the ``recorded`` section of
that file holds the interleaved A/B against the pre-observability tree
(commit 70f9fd0) quoted in PERFORMANCE.md.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.sim.rng import StreamFactory
from repro.sim.sketch import QuantileSketch
from repro.system.config import baseline_config
from repro.system.emission import EmissionPolicy
from repro.system.metrics import WindowedSignals
from repro.system.simulation import simulate

from _util import record_obs_bench

_VALUES = [
    rng.random() * 100.0
    for rng in [StreamFactory(23).get("bench-obs")]
    for _ in range(10_000)
]


def run_sketch_observe() -> float:
    sketch = QuantileSketch()
    observe = sketch.observe
    for value in _VALUES:
        observe(value)
    return sketch.quantile(0.99)


def run_window_record() -> float:
    window = WindowedSignals(node_count=1, tau=500.0)
    record = window.record_global
    now = 0.0
    for value in _VALUES:
        now += 0.1
        record(0.0, value, now)
    return window.snapshot(now)["per_class"]["global"]["mean_response"]


def run_mm1() -> int:
    """The baseline arrival/service cycle (cf. bench_core.py)."""
    result = simulate(
        baseline_config(sim_time=1_000.0, warmup_time=100.0, seed=3)
    )
    return result.local.completed


def run_mm1_emitting(path: str) -> int:
    result = simulate(
        baseline_config(sim_time=1_000.0, warmup_time=100.0, seed=3),
        emit=EmissionPolicy(path=path, every_events=2_000),
    )
    return result.local.completed


def test_obs_sketch_observe(benchmark):
    p99 = benchmark(run_sketch_observe)
    record_obs_bench("obs_sketch_observe", benchmark)
    assert 95.0 <= p99 <= 100.0


def test_obs_window_record(benchmark):
    mean_response = benchmark(run_window_record)
    record_obs_bench("obs_window_record", benchmark)
    assert 0.0 < mean_response < 100.0


def test_obs_mm1_sketch_on(benchmark):
    completed = benchmark(run_mm1)
    record_obs_bench("obs_mm1_sketch_on", benchmark)
    assert completed > 500


def test_obs_mm1_emitting(benchmark, tmp_path):
    path = str(tmp_path / "m.jsonl")
    completed = benchmark(run_mm1_emitting, path)
    record_obs_bench("obs_mm1_emitting", benchmark)
    assert completed > 500
    assert Path(path).exists()
