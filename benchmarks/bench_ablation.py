"""Ablation benches for the design knobs DESIGN.md calls out.

* **EQF-AS** (Sec. 7 future work): does adding artificial stages to the
  EQF denominator help tight tasks?  We sweep phantom stage counts at the
  baseline and at tight slack (rel_flex = 0.5), recording the measured
  miss ratios.  The paper only *conjectures* this helps; the bench archives
  what our system measures either way and asserts sanity bounds only.
* **DIV-x sweep**: the paper studies x = 1 and x = 2 and asks "how to set
  x" (deferred to [7]).  We sweep x over {0.5, 1, 2, 4} and assert the
  paper's reported saturation: beyond x = 1 the gains are marginal.
"""

from __future__ import annotations

from repro.experiments.runner import RunScale, replicate
from repro.stats.tables import format_percent, render_table
from repro.system.config import baseline_config, parallel_baseline_config

from _util import save_artifact

SCALE = RunScale(sim_time=24_000.0, warmup_time=2_400.0, replications=2,
                 label="ablation")


def run_point(config):
    return replicate(SCALE.apply(config), replications=SCALE.replications)


def test_eqf_artificial_stages(benchmark):
    """EQF vs EQFAS1 vs EQFAS2, at baseline slack and at tight slack."""

    def run():
        rows = []
        estimates = {}
        for rel_flex, label in ((1.0, "baseline slack"), (0.5, "tight slack")):
            for strategy in ("EQF", "EQFAS1", "EQFAS2"):
                estimate = run_point(
                    baseline_config(strategy=strategy, rel_flex=rel_flex, seed=61)
                )
                estimates[(label, strategy)] = estimate
                rows.append(
                    [
                        label,
                        strategy,
                        format_percent(estimate.md_local.mean),
                        format_percent(estimate.md_global.mean),
                    ]
                )
        return rows, estimates

    rows, estimates = benchmark.pedantic(run, rounds=1, iterations=1)

    # Sanity: every cell is a real measurement.
    for estimate in estimates.values():
        assert 0.0 <= estimate.md_global.mean <= 1.0
        assert estimate.global_completed > 500
    # The damped variants must stay in EQF's neighbourhood -- they are a
    # refinement, not a regression to UD-like behaviour.
    for label in ("baseline slack", "tight slack"):
        eqf = estimates[(label, "EQF")].md_global.mean
        for strategy in ("EQFAS1", "EQFAS2"):
            assert abs(estimates[(label, strategy)].md_global.mean - eqf) < 0.08

    text = render_table(
        ["setting", "strategy", "MD_local", "MD_global"],
        rows,
        title="Ablation: EQF artificial stages (Sec. 7 future work)",
    )
    save_artifact("ablation_eqf_as", text)
    print("\n" + text)


def test_preemption_ablation(benchmark):
    """Non-preemptive (the paper's model) vs preemptive-resume servers.

    Expectation: preemption rescues short local tasks from waiting behind
    long-running work, so MD_local drops markedly; the SSP ordering
    (EQF < UD for globals) persists either way.
    """

    def run():
        estimates = {}
        for preemptive in (False, True):
            for strategy in ("UD", "EQF"):
                estimates[(preemptive, strategy)] = run_point(
                    baseline_config(strategy=strategy, preemptive=preemptive,
                                    seed=63)
                )
        return estimates

    estimates = benchmark.pedantic(run, rounds=1, iterations=1)

    for strategy in ("UD", "EQF"):
        blocking = estimates[(False, strategy)]
        preemptive = estimates[(True, strategy)]
        # Preemption helps the short local tasks substantially.
        assert preemptive.md_local.mean < blocking.md_local.mean - 0.03
    # The paper's SSP conclusion survives preemption.
    assert (
        estimates[(True, "EQF")].md_global.mean
        < estimates[(True, "UD")].md_global.mean
    )

    rows = [
        [
            "preemptive" if preemptive else "non-preemptive",
            strategy,
            format_percent(estimate.md_local.mean),
            format_percent(estimate.md_global.mean),
        ]
        for (preemptive, strategy), estimate in estimates.items()
    ]
    text = render_table(
        ["server model", "strategy", "MD_local", "MD_global"],
        rows,
        title="Ablation: non-preemptive (paper) vs preemptive-resume servers",
    )
    save_artifact("ablation_preemption", text)
    print("\n" + text)


def test_div_x_sweep(benchmark):
    """How to set x in DIV-x: gains saturate past x = 1."""

    def run():
        estimates = {}
        for x in ("DIV-0.5", "DIV-1", "DIV-2", "DIV-4"):
            estimates[x] = run_point(
                parallel_baseline_config(strategy=x, seed=62)
            )
        return estimates

    estimates = benchmark.pedantic(run, rounds=1, iterations=1)

    div_half = estimates["DIV-0.5"].md_global.mean
    div1 = estimates["DIV-1"].md_global.mean
    div2 = estimates["DIV-2"].md_global.mean
    div4 = estimates["DIV-4"].md_global.mean

    # x = 0.5 under-promotes: noticeably worse than x = 1.
    assert div_half > div1
    # Past x = 1 the changes are marginal (the paper's Fig. 4 finding).
    assert abs(div2 - div1) < 0.05
    assert abs(div4 - div2) < 0.05

    rows = [
        [name, format_percent(e.md_local.mean), format_percent(e.md_global.mean)]
        for name, e in estimates.items()
    ]
    text = render_table(
        ["strategy", "MD_local", "MD_global"],
        rows,
        title="Ablation: choosing x in DIV-x (parallel baseline, load 0.5)",
    )
    save_artifact("ablation_div_x", text)
    print("\n" + text)
