"""Microbenchmarks of the simulation substrate.

Not a paper artifact: these track the performance of the discrete-event
kernel and the ready queue so that regressions in the substrate (which
would silently stretch every experiment) are visible.  Unlike the figure
benches these use multiple rounds, since each round is milliseconds.
"""

from __future__ import annotations

import random

from repro.core.strategies.base import PriorityClass
from repro.core.task import TaskClass
from repro.core.timing import TimingRecord
from repro.sim.core import Environment
from repro.system.schedulers import EarliestDeadlineFirst, ReadyQueue
from repro.system.work import WorkUnit

from _util import record_kernel_bench


def test_event_throughput(benchmark):
    """Schedule-and-fire cost of bare timeout events."""

    def run():
        env = Environment()
        for i in range(10_000):
            env.timeout(i % 97 * 0.1)
        env.run()
        return env.now

    result = benchmark(run)
    record_kernel_bench("event_throughput", benchmark)
    assert result > 0


def test_process_switching(benchmark):
    """Cost of suspending/resuming generator processes."""

    def run():
        env = Environment()
        done = []

        def ticker(env, n):
            for _ in range(n):
                yield env.timeout(1.0)
            done.append(True)

        for _ in range(100):
            env.process(ticker(env, 100))
        env.run()
        return len(done)

    assert benchmark(run) == 100
    record_kernel_bench("process_switching", benchmark)


def test_ready_queue_throughput(benchmark):
    """Push/pop cost of the EDF ready queue at depth ~1000."""
    env = Environment()
    rng = random.Random(1)
    units = [
        WorkUnit(
            env=env,
            name=f"u{i}",
            task_class=TaskClass.LOCAL,
            node_index=0,
            timing=TimingRecord(ar=0.0, ex=1.0, dl=rng.uniform(0, 100)),
            priority_class=rng.choice(
                [PriorityClass.NORMAL, PriorityClass.ELEVATED]
            ),
        )
        for i in range(1_000)
    ]

    def run():
        queue = ReadyQueue(EarliestDeadlineFirst())
        for unit in units:
            queue.push(unit)
        popped = 0
        while queue:
            queue.pop()
            popped += 1
        return popped

    assert benchmark(run) == 1_000
    record_kernel_bench("ready_queue_throughput", benchmark)


def test_mm1_queue_cycle(benchmark):
    """A complete arrival/service cycle: the simulator's inner loop."""

    def run():
        from repro.system.config import baseline_config
        from repro.system.simulation import simulate

        result = simulate(
            baseline_config(sim_time=1_000.0, warmup_time=100.0, seed=3)
        )
        return result.local.completed

    completed = benchmark(run)
    record_kernel_bench("mm1_queue_cycle", benchmark)
    assert completed > 500
