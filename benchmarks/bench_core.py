"""Microbenchmarks of the engine core, under whichever kernel is active.

Not a paper artifact: these track the compile-ready kernel split
(``repro.sim._engine``, optionally compiled to ``repro.sim._engine_c``).
Three workloads bracket the engine:

* ``core_kernel_storm`` -- nothing but the run loop and the pooled-sleep
  machinery (one self-rescheduling timer, 100 000 firings): the purest
  measure of per-event dispatch cost;
* ``core_mm1`` -- the baseline arrival/service cycle end to end (the
  same run as ``bench_kernel.py::test_mm1_queue_cycle``): kernel plus
  sources, nodes, coordinator, and metrics;
* ``core_preemptive_storm`` -- the preemption machinery
  (``bench_preemptive.run_storm``): cancellable timers, urgent pokes,
  re-dispatch.

Results are merged into ``BENCH_core.json`` keyed by the active kernel
(``repro.sim.core.KERNEL``), so running the suite twice --
``REPRO_KERNEL=python`` and, where the extension is built,
``REPRO_KERNEL=compiled`` -- records the pure/compiled pair side by
side.  The ``recorded`` section of that file holds the interleaved A/B
numbers against the pre-split kernel (see PERFORMANCE.md for the
methodology).
"""

from __future__ import annotations

from repro.sim.core import KERNEL, Environment

from _util import record_core_bench
from bench_preemptive import run_storm as run_preemptive_storm


def run_kernel_storm(count: int = 100_000) -> float:
    """One self-rescheduling pooled timer, fired ``count`` times."""
    env = Environment()
    left = [count]

    def tick(_event) -> None:
        left[0] -= 1
        if left[0]:
            env._sleep(1.0, tick)

    env._sleep(1.0, tick)
    env.run()
    return env.now


def run_mm1() -> int:
    """The baseline arrival/service cycle (cf. bench_kernel.py)."""
    from repro.system.config import baseline_config
    from repro.system.simulation import simulate

    result = simulate(
        baseline_config(sim_time=1_000.0, warmup_time=100.0, seed=3)
    )
    return result.local.completed


def test_core_kernel_storm(benchmark):
    final_time = benchmark(run_kernel_storm)
    record_core_bench("core_kernel_storm", benchmark)
    assert final_time == 100_000.0


def test_core_mm1(benchmark):
    completed = benchmark(run_mm1)
    record_core_bench("core_mm1", benchmark)
    assert completed > 500


def test_core_preemptive_storm(benchmark):
    preemptions = benchmark(run_preemptive_storm)
    record_core_bench("core_preemptive_storm", benchmark)
    assert preemptions == 10_000 - 1


def test_active_kernel_is_recorded():
    """The bench suite must know which kernel it measured."""
    assert KERNEL in ("python", "compiled")
