"""Fleet-scale benchmark tier: per-event cost versus node count.

The acceptance bar for the fleet-state refactor (array-backed node
state, pooled work units, O(log n) placement): simulating one event
must not get meaningfully more expensive as the fleet grows.
Concretely, the event-loop cost per event at 10,000 nodes stays within
2x of the 10-node cost for both the least-outstanding (incremental
count buckets) and zipf (Fenwick/alias samplers) placements, and a
100,000-node scenario constructs and runs to completion.

Methodology: every cell runs the same *total* workload -- the global
subtask arrival rate is pinned at :data:`SUBTASK_RATE` per time unit
regardless of node count (``load = SUBTASK_RATE / node_count``,
global-only traffic) -- so cells differ only in how much fleet state
the engine carries per event.  Timing covers the event loop alone
(warmup + measured phase); construction and the O(n) final snapshot
are recorded as separate columns, since they are one-time costs that
tiny event counts would otherwise smear into the per-event figure.

Unlike the microbenchmark files this tier times whole runs directly
and writes ``BENCH_fleet.json`` at the repo root itself, so the
scaling record lands even under ``--benchmark-disable`` (how CI runs
the bench suites).
"""

from __future__ import annotations

import json
import time

from repro.scenarios import get_scenario
from repro.system.config import SystemConfig
from repro.system.simulation import Simulation

from _util import BENCH_FLEET_JSON

#: Node counts of the scaling sweep (the 2x assertion compares the
#: first and third entries; 100k is recorded for the trajectory).
NODE_COUNTS = (10, 1_000, 10_000, 100_000)

#: Total global subtask arrivals per time unit, at every node count.
#: Sized for the zipf hotspot at the *smallest* fleet: at n=10, s=1.2,
#: node 0 absorbs ~40% of subtasks, so rate 1.0 keeps it at ~0.4
#: utilization (stable) while larger fleets only get cooler.
SUBTASK_RATE = 1.0

SIM_TIME = 2_000.0
WARMUP_TIME = 200.0

#: Acceptance bar: per-event cost at 10k nodes vs. 10 nodes.
MAX_SLOWDOWN = 2.0


def _fleet_config(node_count: int, placement: str) -> SystemConfig:
    return SystemConfig(
        node_count=node_count,
        frac_local=0.0,
        load=SUBTASK_RATE / node_count,
        placement=placement,
        placement_zipf_s=1.2,
        sim_time=SIM_TIME,
        warmup_time=WARMUP_TIME,
        seed=7,
    )


def _measure_cell(config: SystemConfig) -> dict:
    """Build and run one cell, timing construction / event loop /
    snapshot separately (mirrors ``Simulation.run`` without emission)."""
    t0 = time.perf_counter()
    sim = Simulation(config)
    t1 = time.perf_counter()
    env = sim.env
    env.run(until=config.warmup_time)
    sim.metrics.reset(env.now)
    events_before = env._seq_peek()
    t2 = time.perf_counter()
    env.run(until=config.sim_time)
    t3 = time.perf_counter()
    events = env._seq_peek() - events_before
    result = sim.metrics.snapshot(env.now)
    t4 = time.perf_counter()
    assert events > 0
    assert result.global_.completed > 0, "fleet cell completed no tasks"
    return {
        "node_count": config.node_count,
        "placement": config.placement,
        "events": events,
        "build_seconds": t1 - t0,
        "loop_seconds": t3 - t2,
        "snapshot_seconds": t4 - t3,
        "us_per_event": (t3 - t2) / events * 1e6,
    }


def _record_cells(key: str, cells: list) -> None:
    """Merge one sweep's cells into ``BENCH_fleet.json``."""
    data: dict = {}
    if BENCH_FLEET_JSON.exists():
        try:
            data = json.loads(BENCH_FLEET_JSON.read_text())
        except ValueError:
            data = {}
    data.setdefault("methodology", (
        f"fixed total subtask rate {SUBTASK_RATE}/time at every node "
        f"count (load = rate/n, global-only); us_per_event times the "
        f"event loop only; build/snapshot are one-time O(n) costs"
    ))
    data.setdefault("sweeps", {})[key] = cells
    BENCH_FLEET_JSON.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n"
    )


def _run_scaling(placement: str) -> None:
    cells = [
        _measure_cell(_fleet_config(node_count, placement))
        for node_count in NODE_COUNTS
    ]
    _record_cells(placement, cells)
    by_n = {cell["node_count"]: cell for cell in cells}
    small = by_n[10]["us_per_event"]
    fleet = by_n[10_000]["us_per_event"]
    assert fleet <= MAX_SLOWDOWN * small, (
        f"{placement}: per-event cost grew {fleet / small:.2f}x from 10 "
        f"to 10k nodes ({small:.2f} -> {fleet:.2f} us/event); the "
        f"fleet-state layer must keep it within {MAX_SLOWDOWN}x"
    )


def test_fleet_scaling_least_outstanding():
    _run_scaling("least-outstanding")


def test_fleet_scaling_zipf():
    _run_scaling("zipf")


def test_fleet_100k_scenario_runs_to_completion():
    """A 100,000-node *scenario* (not just a raw config) constructs and
    runs end to end through the library path."""
    spec = get_scenario("fleet-uniform")
    # fleet-uniform's load (0.002) yields 200 subtasks/time at 100k
    # nodes; a short horizon keeps the cell quick while still pushing
    # thousands of units through the full fleet.
    config = spec.to_config(
        node_count=100_000, sim_time=20.0, warmup_time=2.0, seed=11
    )
    cell = _measure_cell(config)
    _record_cells("fleet-uniform-100k", [cell])
