"""T1 -- Table 1: the baseline setting.

Regenerates the baseline parameter table (including the derived arrival
rates, which the paper leaves implicit) and benchmarks one baseline
simulation run: the cost of a data point at QUICK scale.
"""

from __future__ import annotations

import pytest

from repro.stats.tables import render_table
from repro.system.config import (
    baseline_config,
    expected_frac_local,
    verify_load_arithmetic,
)
from repro.system.simulation import simulate

from _util import save_artifact


def render_table1() -> str:
    config = baseline_config()
    rows = [
        ["Overload Management Policy", "No Abort"],
        ["Local Scheduling Algorithm", "Earliest Deadline First"],
        ["mu_subtask", config.mu_subtask],
        ["mu_local", config.mu_local],
        ["k (# of nodes)", config.node_count],
        ["m (# of subtasks of a global task)", config.subtask_count],
        ["load", config.load],
        ["frac_local", config.frac_local],
        ["[Smin, Smax]", str(list(config.slack_range))],
        ["rel_flex", config.rel_flex],
        ["pex(X)/ex(X)", 1.0],
        ["derived lambda_local (per node)", config.local_arrival_rate],
        ["derived lambda_global", config.global_arrival_rate],
    ]
    return render_table(["parameter", "value"], rows,
                        title="Table 1: baseline setting")


def test_table1_baseline_run(benchmark):
    """Benchmark one QUICK-scale baseline data-point run and check that the
    realized utilization matches the configured load (Table 1's load=0.5)."""
    config = baseline_config(sim_time=24_000.0, warmup_time=2_400.0, seed=1)

    # The load arithmetic must invert exactly ...
    assert verify_load_arithmetic(config) == pytest.approx(config.load)
    assert expected_frac_local(config) == pytest.approx(config.frac_local)

    result = benchmark.pedantic(lambda: simulate(config), rounds=1, iterations=1)

    # ... and the simulated system must realize it.
    assert result.mean_utilization == pytest.approx(0.5, abs=0.03)

    text = render_table1() + "\n\n" + render_table(
        ["measured quantity", "value"],
        [
            ["mean node utilization", f"{result.mean_utilization:.4f}"],
            ["local tasks finished", result.local.completed],
            ["global tasks finished", result.global_.completed],
            ["MD_local (UD)", f"{result.md_local:.4f}"],
            ["MD_global (UD)", f"{result.md_global:.4f}"],
        ],
        title="Baseline run at QUICK scale (UD strategy)",
    )
    save_artifact("table1", text)
    print("\n" + text)
