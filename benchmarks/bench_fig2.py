"""F2 -- Fig. 2a/2b: the four SSP strategies vs. load (serial tasks).

Paper claims checked:

* 2a: local miss ratios are nearly strategy-independent;
* 2b: at high load UD is worst for globals and EQF/EQS best, ED between;
* at load 0.5, MD_global(UD) is much larger than MD_local(UD)
  (the paper reads ~40% vs ~24% off the figure).
"""

from __future__ import annotations

from repro.experiments.figures import fig2
from repro.experiments.runner import QUICK

from _util import save_artifact


def test_fig2_ssp_strategies_vs_load(benchmark):
    figure = benchmark.pedantic(
        lambda: fig2(scale=QUICK), rounds=1, iterations=1
    )
    sweep = figure.sweep

    # -- Fig. 2b shape at the highest load ---------------------------------
    ud = sweep.point(0.5, "UD").estimate
    ed = sweep.point(0.5, "ED").estimate
    eqs = sweep.point(0.5, "EQS").estimate
    eqf = sweep.point(0.5, "EQF").estimate

    # UD discriminates against globals: point A (~40%) vs point B (~24%).
    assert ud.md_global.mean > 1.4 * ud.md_local.mean
    # EQF (and EQS) significantly beat UD on global misses.
    assert eqf.md_global.mean < ud.md_global.mean - 0.03
    assert eqs.md_global.mean < ud.md_global.mean - 0.03
    # ED lies between UD and EQF (with a small statistical allowance).
    assert eqf.md_global.mean - 0.03 <= ed.md_global.mean <= ud.md_global.mean + 0.03
    # EQS performs very close to EQF.
    assert abs(eqs.md_global.mean - eqf.md_global.mean) < 0.04

    # -- Fig. 2a shape: locals barely affected ------------------------------
    locals_at_half = [
        sweep.point(0.5, s).estimate.md_local.mean
        for s in ("UD", "ED", "EQS", "EQF")
    ]
    assert max(locals_at_half) - min(locals_at_half) < 0.05

    # -- monotone in load for every strategy --------------------------------
    for strategy in sweep.strategies:
        series = sweep.series(strategy, "global")
        assert series[0] < series[-1]

    # -- light load: strategies indistinguishable ----------------------------
    lightest = [sweep.point(0.1, s).estimate.md_global.mean
                for s in sweep.strategies]
    assert max(lightest) - min(lightest) < 0.04

    text = figure.render()
    save_artifact("fig2", text)
    print("\n" + text)
