"""Microbenchmarks of the preemptive-resume ablation path.

Not a paper artifact: these track the cost of :class:`PreemptiveNode`
service -- dispatch, preemption (timer cancellation + remaining-demand
bookkeeping + re-enqueue), and resume.  ``preemptive_storm`` is the
preemptive-heavy headline: a pure preemption storm where every arrival
preempts, so the run is nothing but the preemption machinery.  The
``simulate()``-based benches put the same machinery in end-to-end
context, where sources, the coordinator, and metrics dilute it
(realistic workloads top out around 0.27 preemptions per dispatch).

The workload functions are module-level so that an interleaved A/B
harness can drive them directly against an alternative
``PreemptiveNode`` implementation (that is how the
``baseline_generator_server`` section of ``BENCH_preemptive.json`` was
recorded: the old generator server at the same commit, with both
preemption bugfixes applied, alternating with the callback server in
paired subprocess rounds -- see PERFORMANCE.md).

Results are merged into ``BENCH_preemptive.json`` at the repo root (see
``benchmarks/_util.record_preemptive_bench``).
"""

from __future__ import annotations

from repro.core.task import TaskClass
from repro.core.timing import TimingRecord
from repro.sim.core import Environment
from repro.system.config import baseline_config, parallel_baseline_config
from repro.system.metrics import MetricsCollector
from repro.system.preemptive import PreemptiveNode
from repro.system.schedulers import EarliestDeadlineFirst
from repro.system.simulation import simulate
from repro.system.work import WorkUnit

from _util import record_preemptive_bench

#: Shared run length: long enough for thousands of dispatches and
#: hundreds of preemptions per round, short enough for many rounds.
_RUN = dict(sim_time=1_500.0, warmup_time=150.0, preemptive=True)


class _Storm:
    """Self-rescheduling callback driver feeding one node a stream of
    ever-more-urgent units, so EVERY arrival preempts the unit in
    service.  Deliberately minimal (no sources, no coordinator, no
    deadline strategy): the run is nothing but the preemption machinery
    -- submit, priority comparison, timer cancellation, remaining-demand
    bookkeeping, re-enqueue, re-dispatch."""

    def __init__(self, env: Environment, node: PreemptiveNode, count: int) -> None:
        self.env = env
        self.node = node
        self.left = count
        self.fired = 0
        env._sleep(0.5, self._fire)

    def _fire(self, _event) -> None:
        env = self.env
        self.fired += 1
        timing = TimingRecord(ar=env._now, ex=100.0, dl=1e9 - self.fired)
        self.node.submit_nowait(WorkUnit(
            env=env, name=None, task_class=TaskClass.LOCAL,
            node_index=0, timing=timing,
        ))
        self.left -= 1
        if self.left:
            env._sleep(0.5, self._fire)


def run_storm(count: int = 10_000) -> int:
    """One preemption-storm round; returns the preemption count."""
    env = Environment()
    metrics = MetricsCollector(node_count=1)
    node = PreemptiveNode(
        env=env, index=0, policy=EarliestDeadlineFirst(), metrics=metrics
    )
    _Storm(env, node, count)
    env.run(until=count * 0.5 + 1)
    return node.preemptions


def run_baseline() -> int:
    """Table 1 baseline with preemptive servers (the golden gate's
    configuration family): plain dispatch/complete cycles with
    occasional preemptions."""
    result = simulate(baseline_config(strategy="EQF", seed=13, **_RUN))
    return result.local.completed


def run_heavy() -> int:
    """Load 0.85 with tight flexibility: long queues, urgent arrivals
    frequently beating the unit in service (~0.15 preemptions per
    dispatch)."""
    result = simulate(
        baseline_config(strategy="EQF", load=0.85, rel_flex=0.25, seed=17, **_RUN)
    )
    return result.local.completed


def run_globals_first() -> int:
    """Parallel fans under Globals-First: every global subtask arrives
    in the elevated class and preempts whatever local work is in
    service -- the highest sustained end-to-end preemption rate."""
    result = simulate(
        parallel_baseline_config(
            strategy="GF", frac_local=0.6, load=0.7, seed=19, **_RUN
        )
    )
    return result.local.completed + result.global_.completed


def test_preemptive_storm(benchmark):
    """The preemptive-heavy bench (the headline before/after number for
    the callback-server rewrite)."""
    preemptions = benchmark(run_storm)
    record_preemptive_bench("preemptive_storm", benchmark)
    # Every arrival after the first preempts: the machinery really is
    # what this bench measures.
    assert preemptions == 10_000 - 1


def test_preemptive_baseline(benchmark):
    completed = benchmark(run_baseline)
    record_preemptive_bench("preemptive_baseline", benchmark)
    assert completed > 1000


def test_preemptive_heavy(benchmark):
    completed = benchmark(run_heavy)
    record_preemptive_bench("preemptive_heavy", benchmark)
    assert completed > 1000


def test_preemptive_globals_first(benchmark):
    completed = benchmark(run_globals_first)
    record_preemptive_bench("preemptive_globals_first", benchmark)
    assert completed > 1000
