"""Shared helpers for the benchmark harness.

Every bench regenerates one artifact of the paper (table or figure),
asserts its qualitative shape, and archives the rendered output under
``benchmarks/results/`` so EXPERIMENTS.md can quote it.
"""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Machine-readable kernel-performance record at the repo root, so future
#: PRs can diff the perf trajectory (see PERFORMANCE.md).
BENCH_KERNEL_JSON = Path(__file__).parent.parent / "BENCH_kernel.json"

#: Machine-readable record of the global-task coordination benchmarks
#: (``bench_manager.py``); same contract as ``BENCH_kernel.json``.
BENCH_MANAGER_JSON = Path(__file__).parent.parent / "BENCH_manager.json"

#: Machine-readable record of per-scenario runtimes
#: (``bench_scenarios.py``); same contract as ``BENCH_kernel.json``.
BENCH_SCENARIOS_JSON = Path(__file__).parent.parent / "BENCH_scenarios.json"

#: Machine-readable record of the preemptive-node ablation benchmarks
#: (``bench_preemptive.py``); same contract as ``BENCH_kernel.json``.
BENCH_PREEMPTIVE_JSON = Path(__file__).parent.parent / "BENCH_preemptive.json"

#: Machine-readable record of the engine-core benchmarks
#: (``bench_core.py``): microbenchmarks are keyed by the active kernel
#: implementation (``python``/``compiled``) so the same suite run under
#: ``REPRO_KERNEL=compiled`` lands next to the pure-Python numbers.
BENCH_CORE_JSON = Path(__file__).parent.parent / "BENCH_core.json"

#: Machine-readable record of the observability benchmarks
#: (``bench_obs.py``): sketch/window microbenchmarks plus the recorded
#: A/B of the instrumented metrics path against the pre-observability
#: tree; same contract as ``BENCH_kernel.json``.
BENCH_OBS_JSON = Path(__file__).parent.parent / "BENCH_obs.json"

#: Machine-readable record of the fleet-scale benchmarks
#: (``bench_fleet.py``): per-event event-loop cost at node counts from
#: 10 to 100,000 for the least-outstanding and zipf placements, written
#: directly (no pytest-benchmark fixture) so the scaling cells land even
#: under ``--benchmark-disable``.
BENCH_FLEET_JSON = Path(__file__).parent.parent / "BENCH_fleet.json"


def save_artifact(name: str, text: str) -> Path:
    """Write a rendered table/chart to ``benchmarks/results/<name>.txt``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def record_bench(json_path: Path, name: str, benchmark) -> Path | None:
    """Record one microbenchmark's stats into a repo-root JSON file.

    Called after each ``benchmark(...)`` run; merges
    ``{name: {ops_per_second, mean_seconds, ...}}`` under the file's
    ``microbenchmarks`` key so that the performance trajectory is
    machine-readable across PRs.  A no-op when the benchmark fixture
    collected no stats (e.g. ``--benchmark-disable``).
    """
    try:
        stats = benchmark.stats.stats
        entry = {
            "ops_per_second": stats.ops,
            "mean_seconds": stats.mean,
            "median_seconds": stats.median,
            "min_seconds": stats.min,
            "rounds": stats.rounds,
        }
    except (AttributeError, TypeError):
        return None
    data: dict = {}
    if json_path.exists():
        try:
            data = json.loads(json_path.read_text())
        except ValueError:
            data = {}
    data.setdefault("microbenchmarks", {})[name] = entry
    json_path.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n"
    )
    return json_path


def record_kernel_bench(name: str, benchmark) -> Path | None:
    """Record one kernel microbenchmark into ``BENCH_kernel.json``."""
    return record_bench(BENCH_KERNEL_JSON, name, benchmark)


def record_manager_bench(name: str, benchmark) -> Path | None:
    """Record one coordinator microbenchmark into ``BENCH_manager.json``."""
    return record_bench(BENCH_MANAGER_JSON, name, benchmark)


def record_scenario_bench(name: str, benchmark) -> Path | None:
    """Record one scenario runtime into ``BENCH_scenarios.json``."""
    return record_bench(BENCH_SCENARIOS_JSON, name, benchmark)


def record_preemptive_bench(name: str, benchmark) -> Path | None:
    """Record one preemptive-node microbenchmark into
    ``BENCH_preemptive.json``."""
    return record_bench(BENCH_PREEMPTIVE_JSON, name, benchmark)


def record_core_bench(name: str, benchmark) -> Path | None:
    """Record one engine-core microbenchmark into ``BENCH_core.json``,
    keyed by the active kernel implementation."""
    from repro.sim.core import KERNEL

    return record_bench(BENCH_CORE_JSON, f"{KERNEL}/{name}", benchmark)


def record_obs_bench(name: str, benchmark) -> Path | None:
    """Record one observability microbenchmark into ``BENCH_obs.json``."""
    return record_bench(BENCH_OBS_JSON, name, benchmark)


def series_end(figure, strategy: str, metric: str = "global") -> float:
    """Miss ratio of ``strategy`` at the last (highest) x value."""
    return figure.sweep.series(strategy, metric)[-1]
