"""Shared helpers for the benchmark harness.

Every bench regenerates one artifact of the paper (table or figure),
asserts its qualitative shape, and archives the rendered output under
``benchmarks/results/`` so EXPERIMENTS.md can quote it.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def save_artifact(name: str, text: str) -> Path:
    """Write a rendered table/chart to ``benchmarks/results/<name>.txt``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def series_end(figure, strategy: str, metric: str = "global") -> float:
    """Miss ratio of ``strategy`` at the last (highest) x value."""
    return figure.sweep.series(strategy, metric)[-1]
