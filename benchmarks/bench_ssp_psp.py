"""S6 -- Sec. 6: SSP x PSP combinations on serial-parallel tasks.

Paper claims checked:

* UD-UD misses vastly more global deadlines than local ones;
* applying either EQF or DIV-1 significantly reduces MD_global with a
  mild increase of MD_local;
* applied together the benefits are additive: EQF-DIV1 keeps MD_global
  close to MD_local even under the highest load of the sweep.
"""

from __future__ import annotations

from repro.experiments.figures import ssp_psp
from repro.experiments.runner import QUICK

from _util import save_artifact


def test_sec6_combined_strategies(benchmark):
    figure = benchmark.pedantic(
        lambda: ssp_psp(scale=QUICK), rounds=1, iterations=1
    )
    sweep = figure.sweep
    # The paper's "high load" is the Table 1 baseline (0.5); the sweep also
    # includes an overloaded point (0.7) where *relative* orderings must
    # still hold even though nobody stays close to the locals anymore.
    at_half = {s: sweep.point(0.5, s).estimate for s in sweep.strategies}

    udud = at_half["UD-UD"]
    uddiv = at_half["UD-DIV1"]
    eqfud = at_half["EQF-UD"]
    both = at_half["EQF-DIV1"]

    # UD-UD discriminates hard against global tasks.
    assert udud.md_global.mean > 1.25 * udud.md_local.mean
    # Each fix alone reduces the global miss ratio.
    assert uddiv.md_global.mean < udud.md_global.mean - 0.02
    assert eqfud.md_global.mean < udud.md_global.mean - 0.02
    # ... with only a mild local increase.
    assert uddiv.md_local.mean < udud.md_local.mean + 0.05
    assert eqfud.md_local.mean < udud.md_local.mean + 0.05
    # Together they are additive: best global miss ratio of the four, and
    # MD_global stays close to MD_local at the paper's high load.
    assert both.md_global.mean <= min(
        udud.md_global.mean, uddiv.md_global.mean, eqfud.md_global.mean
    ) + 0.01
    assert abs(both.md_global.mean - both.md_local.mean) < 0.08

    # At every load the combined strategy shrinks UD-UD's class gap
    # substantially (at least 40%), including the overloaded point.
    for load in sweep.x_values:
        base = sweep.point(load, "UD-UD").estimate
        combo = sweep.point(load, "EQF-DIV1").estimate
        assert combo.gap < 0.6 * base.gap + 0.02

    text = figure.render()
    save_artifact("sec6_ssp_psp", text)
    print("\n" + text)
