"""F3 -- Fig. 3: effect of varying the fraction of local tasks.

Paper claims checked:

* MD_global(UD) increases with frac_local (global tasks face ever more
  local-task competition and are discriminated against more and more);
* MD_local(UD) also increases, to a smaller extent;
* the EQF curves hardly change as frac_local varies.
"""

from __future__ import annotations

from repro.experiments.figures import fig3
from repro.experiments.runner import QUICK

from _util import save_artifact


def test_fig3_frac_local_sweep(benchmark):
    figure = benchmark.pedantic(
        lambda: fig3(scale=QUICK), rounds=1, iterations=1
    )
    sweep = figure.sweep

    ud_global = sweep.series("UD", "global")
    ud_local = sweep.series("UD", "local")
    eqf_global = sweep.series("EQF", "global")
    eqf_local = sweep.series("EQF", "local")

    # UD's global miss ratio grows markedly across the sweep.
    assert ud_global[-1] > ud_global[0] + 0.05
    # UD's local miss ratio grows too, but by less than the global one.
    assert ud_local[-1] >= ud_local[0] - 0.02
    assert (ud_global[-1] - ud_global[0]) > (ud_local[-1] - ud_local[0])
    # EQF's curves are nearly flat ("hardly change").
    assert max(eqf_global) - min(eqf_global) < 0.08
    assert max(eqf_local) - min(eqf_local) < 0.08
    # At the local-dominated end UD discriminates hard; EQF does not.
    ud_gap = ud_global[-1] - ud_local[-1]
    eqf_gap = eqf_global[-1] - eqf_local[-1]
    assert ud_gap > eqf_gap + 0.05

    text = figure.render()
    save_artifact("fig3", text)
    print("\n" + text)
