"""Microbenchmarks of the global-task coordination path.

Not a paper artifact: these track the cost of the process manager walking
serial-parallel trees (deadline assignment, leaf submission, precedence
enforcement, fork/join).  The workloads are deliberately global-heavy
(``frac_local`` far below the Table 1 baseline) so that coordination --
not local-task service -- dominates the run, making regressions in the
coordinator visible instead of being averaged away.

Results are merged into ``BENCH_manager.json`` at the repo root (see
``benchmarks/_util.record_manager_bench``); PERFORMANCE.md quotes the
before/after medians of the callback-coordinator rewrite.
"""

from __future__ import annotations

from repro.system.config import (
    baseline_config,
    parallel_baseline_config,
    serial_parallel_config,
)
from repro.system.simulation import simulate

from _util import record_manager_bench

#: Shared run length: long enough for thousands of global subtasks per
#: round, short enough for many benchmark rounds.
_RUN = dict(sim_time=1_500.0, warmup_time=150.0)


def test_deep_serial_chains(benchmark):
    """Serial chains of 8 stages: the per-stage continuation hot path."""

    def run():
        result = simulate(
            baseline_config(
                subtask_count=8, frac_local=0.2, load=0.5, seed=5, **_RUN
            )
        )
        return result.global_.completed

    completed = benchmark(run)
    record_manager_bench("deep_serial_chains", benchmark)
    assert completed > 100


def test_wide_parallel_trees(benchmark):
    """Parallel fans across all six nodes: the fork/join hot path."""

    def run():
        result = simulate(
            parallel_baseline_config(
                subtask_count=6, frac_local=0.2, load=0.5, seed=6, **_RUN
            )
        )
        return result.global_.completed

    completed = benchmark(run)
    record_manager_bench("wide_parallel_trees", benchmark)
    assert completed > 100


def test_serial_parallel_trees(benchmark):
    """Serial-of-parallel trees (4x2): nested frames, both SSP and PSP."""

    def run():
        result = simulate(
            serial_parallel_config(
                stages=4,
                stage_width=2,
                strategy="EQF-DIV1",
                frac_local=0.2,
                load=0.5,
                seed=7,
                **_RUN,
            )
        )
        return result.global_.completed

    completed = benchmark(run)
    record_manager_bench("serial_parallel_trees", benchmark)
    assert completed > 100


def test_abort_heavy_coordination(benchmark):
    """Firm overload with tight slack: the abort-propagation path."""

    def run():
        result = simulate(
            baseline_config(
                subtask_count=8,
                frac_local=0.2,
                load=0.9,
                rel_flex=0.25,
                overload_policy="abort-virtual",
                seed=8,
                **_RUN,
            )
        )
        stats = result.global_
        return stats.completed + stats.aborted

    finished = benchmark(run)
    record_manager_bench("abort_heavy_coordination", benchmark)
    assert finished > 100
