"""Microbenchmarks of the fault-injection subsystem.

Not a paper artifact: these track two costs the fault dimension must
keep honest.

**Fault-free overhead** -- the up/down hooks live on the node hot path
(an ``_up`` check per wake/dispatch, a timer-handle store per service
interval), so fault-free runs pay a small fixed tax.  The
``fault_free_baseline`` / ``zero_rate_spec`` benches track that tax over
time, and ``python benchmarks/bench_faults.py ab`` measures it directly
against the pre-fault tree (``git archive``d from a ref, default HEAD)
with the interleaved A/B methodology from PERFORMANCE.md: paired
subprocess rounds alternating old/new at the same commit, medians
recorded under the ``recorded`` key of ``BENCH_faults.json``.  The
acceptance bar is ~3% on the ``bench_core``/``bench_kernel``-style
workloads below.

**Churn-mode cost** -- what crashing actually costs: the
``crash_recover_storm`` micro isolates the crash machinery (timer
cancellation, queue surgery, recovery re-dispatch), and the
``steady_churn`` / ``lossy_retry_churn`` benches put the whole model
(injector, live set, retry layer, failure-aware placement) in
end-to-end context.

**Detector cost** -- the failure-detection stack rides the same hot
paths: ``disabled_detector_spec`` pins the no-op claim (a disabled
``DetectorSpec`` wires nothing), ``detector_churn`` prices the full
heartbeat/suspicion/misroute machinery end to end, and
``python benchmarks/bench_faults.py ab-detector <ref>`` records the
detector-off overhead against the pre-detector tree under
``recorded["detector_off_overhead"]``.

Results are merged into ``BENCH_faults.json`` at the repo root.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.task import TaskClass
from repro.core.timing import TimingRecord
from repro.sim.core import Environment
from repro.system.config import baseline_config
from repro.system.detector import DetectorSpec
from repro.system.faults import FaultSpec
from repro.system.metrics import MetricsCollector
from repro.system.node import Node
from repro.system.schedulers import EarliestDeadlineFirst
from repro.system.simulation import simulate
from repro.system.work import WorkUnit

from _util import record_bench

BENCH_FAULTS_JSON = Path(__file__).parent.parent / "BENCH_faults.json"

#: Shared run length (same convention as bench_preemptive.py).
_RUN = dict(sim_time=1_500.0, warmup_time=150.0)

#: The steady-churn fault process (cf. the library scenario).
_CHURN = FaultSpec(
    mttf=400.0, mttr=20.0, in_flight="resume", queued="preserved",
    retry_limit=2, retry_timeout=30.0, retry_backoff=1.0,
)

#: Lossy crashes with aggressive retries: the heaviest fault path.
_LOSSY = FaultSpec(
    mttf=150.0, mttr=15.0, in_flight="lost", queued="dropped",
    retry_limit=3, retry_timeout=20.0, retry_backoff=0.5,
)

#: The lossy-heartbeats detector (cf. the library scenario): delayed,
#: lossy channel over the steady-churn fault process.
_DETECTOR = DetectorSpec(
    kind="timeout", heartbeat_interval=2.0, timeout=6.0,
    delay_mean=0.5, loss_probability=0.1,
)


def record_faults_bench(name: str, benchmark) -> None:
    record_bench(BENCH_FAULTS_JSON, name, benchmark)


def run_fault_free() -> int:
    """The Table 1 baseline with no FaultSpec: the hot path every
    existing experiment pays, now carrying the up/down hooks."""
    result = simulate(baseline_config(seed=13, **_RUN))
    return result.local.completed


def run_zero_rate() -> int:
    """Same run with a zero-rate FaultSpec: must cost the same as no
    spec at all (nothing is wired)."""
    result = simulate(baseline_config(seed=13, faults=FaultSpec(), **_RUN))
    return result.local.completed


def run_steady_churn() -> int:
    """Resume/preserved churn with retries: the gentle fault mode."""
    result = simulate(baseline_config(seed=13, faults=_CHURN, **_RUN))
    return result.local.completed


def run_lossy_retry_churn() -> int:
    """Lost/dropped crashes at high churn with a deep retry budget:
    every fault-path branch exercised at once."""
    result = simulate(baseline_config(seed=13, faults=_LOSSY, **_RUN))
    return result.local.completed


def run_disabled_detector() -> int:
    """The fault-free baseline with a *disabled* DetectorSpec: must cost
    the same as no spec at all (nothing is wired)."""
    result = simulate(
        baseline_config(seed=13, detector=DetectorSpec(), **_RUN)
    )
    return result.local.completed


def run_detector_churn() -> int:
    """Steady churn observed through the lossy-heartbeats channel: the
    whole detector stack (heartbeat emitters, expiry timers, suspicion
    routing, misroute bounces) in end-to-end context."""
    result = simulate(
        baseline_config(seed=13, faults=_CHURN, detector=_DETECTOR, **_RUN)
    )
    return result.local.completed


class _CrashStorm:
    """Alternating crash/recover driver against one node with a standing
    queue: each cycle is pure crash machinery -- cancel the in-service
    timer, apply crash semantics, then recovery re-dispatch."""

    def __init__(self, env: Environment, node: Node, cycles: int) -> None:
        self.env = env
        self.node = node
        self.left = cycles
        self.crashes = 0
        env._sleep(0.25, self._crash)

    def _crash(self, _event) -> None:
        self.crashes += 1
        self.node.crash()
        self.env._sleep(0.25, self._recover)

    def _recover(self, _event) -> None:
        self.node.recover()
        self.left -= 1
        if self.left:
            self.env._sleep(0.25, self._crash)


def run_crash_storm(cycles: int = 10_000) -> int:
    """``cycles`` crash/recover rounds against a never-draining queue."""
    env = Environment()
    metrics = MetricsCollector(node_count=1)
    node = Node(
        env=env, index=0, policy=EarliestDeadlineFirst(), metrics=metrics
    )
    # Frozen-resume semantics: the held unit survives every crash, so
    # the queue never drains and every cycle does the full dance.
    node.configure_fault_semantics(lose_in_flight=False, drop_queued=False)
    for i in range(4):
        timing = TimingRecord(ar=0.0, ex=1e9, dl=1e12)
        unit = WorkUnit(env=env, name=None, task_class=TaskClass.LOCAL,
                        node_index=0, timing=timing)
        unit.lost = False
        node.submit_nowait(unit)
    storm = _CrashStorm(env, node, cycles)
    env.run(until=cycles * 0.5 + 1.0)
    return storm.crashes


def test_fault_free_baseline(benchmark):
    completed = benchmark(run_fault_free)
    record_faults_bench("fault_free_baseline", benchmark)
    assert completed > 1000


def test_zero_rate_spec(benchmark):
    completed = benchmark(run_zero_rate)
    record_faults_bench("zero_rate_spec", benchmark)
    # Zero-rate wiring is a no-op: bit-identical work, so identical output.
    assert completed == run_fault_free()


def test_steady_churn(benchmark):
    completed = benchmark(run_steady_churn)
    record_faults_bench("steady_churn", benchmark)
    assert completed > 1000


def test_lossy_retry_churn(benchmark):
    completed = benchmark(run_lossy_retry_churn)
    record_faults_bench("lossy_retry_churn", benchmark)
    assert completed > 1000


def test_crash_recover_storm(benchmark):
    crashes = benchmark(run_crash_storm)
    record_faults_bench("crash_recover_storm", benchmark)
    assert crashes == 10_000


def test_disabled_detector_spec(benchmark):
    completed = benchmark(run_disabled_detector)
    record_faults_bench("disabled_detector_spec", benchmark)
    # Disabled-detector wiring is a no-op: bit-identical work/output.
    assert completed == run_fault_free()


def test_detector_churn(benchmark):
    completed = benchmark(run_detector_churn)
    record_faults_bench("detector_churn", benchmark)
    assert completed > 1000


# -- interleaved A/B overhead measurement ---------------------------------
#
# Invoked as ``python benchmarks/bench_faults.py ab [ref]``, not via
# pytest: it rebuilds the pre-fault source tree with ``git archive`` and
# is only meaningful when ``ref`` predates the fault subsystem.

#: Timing driver run in a subprocess against either source tree.  The
#: workloads mirror bench_kernel's ``mm1_queue_cycle`` (the node hot
#: path the fault hooks touch) and bench_core's ``kernel_storm`` (pure
#: kernel, untouched -- the control).  Prints one JSON object of
#: best-of-``reps`` wall times.
_AB_DRIVER = """
import json, sys, time

def time_best(fn, reps=3):
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best

def mm1():
    from repro.system.config import baseline_config
    from repro.system.simulation import simulate
    simulate(baseline_config(sim_time=1_000.0, warmup_time=100.0, seed=3))

def kernel_storm():
    from repro.sim.core import Environment
    env = Environment()
    left = [100_000]
    def tick(_event):
        left[0] -= 1
        if left[0]:
            env._sleep(1.0, tick)
    env._sleep(1.0, tick)
    env.run()

mm1()  # warm caches/imports before timing
print(json.dumps({
    "mm1_queue_cycle": time_best(mm1),
    "kernel_storm": time_best(kernel_storm),
}))
"""


def measure_ab_overhead(ref: str = "HEAD", rounds: int = 9) -> dict:
    """Interleaved A/B: ``ref``'s src tree vs. the working tree.

    Alternates old/new subprocess rounds (A B A B ...) so drift in
    machine load hits both legs equally; per-workload minima across all
    rounds yield the overhead ratios (the minimum is the least
    noise-contaminated estimate of the true cost on a shared box).
    ``kernel_storm`` runs code that is byte-identical in both trees, so
    its ratio is the measurement noise floor -- read ``mm1_queue_cycle``
    (the node hot path the fault hooks touch) against it.
    """
    import json as _json
    import subprocess
    import sys
    import tempfile

    repo = Path(__file__).parent.parent
    results: dict = {"old": {}, "new": {}}
    with tempfile.TemporaryDirectory() as tmp:
        subprocess.run(
            f"git archive {ref} src | tar -x -C {tmp}",
            shell=True, cwd=repo, check=True,
        )
        legs = {"old": str(Path(tmp) / "src"), "new": str(repo / "src")}
        samples = {leg: {} for leg in legs}
        for round_ in range(rounds):
            for leg, src in legs.items():
                output = subprocess.run(
                    [sys.executable, "-c", _AB_DRIVER],
                    env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
                    capture_output=True, text=True, check=True,
                ).stdout
                for name, seconds in _json.loads(output).items():
                    samples[leg].setdefault(name, []).append(seconds)
        for leg, by_name in samples.items():
            results[leg] = {
                name: min(values) for name, values in by_name.items()
            }
    overhead = {
        name: results["new"][name] / results["old"][name] - 1.0
        for name in results["old"]
    }
    return {
        "method": (
            f"interleaved A/B, {rounds} alternating subprocess rounds per "
            "leg, best-of-3 within a round, min across rounds; "
            "kernel_storm is byte-identical in both trees (noise floor)"
        ),
        "old_ref": ref,
        "min_seconds_old": results["old"],
        "min_seconds_new": results["new"],
        "overhead_ratio": overhead,
    }


def _record_ab(key: str, ref: str) -> dict:
    """Measure the working tree against ``ref`` and store the record
    under ``recorded[key]`` of ``BENCH_faults.json``."""
    import json as _json

    record = measure_ab_overhead(ref)
    data: dict = {}
    if BENCH_FAULTS_JSON.exists():
        try:
            data = _json.loads(BENCH_FAULTS_JSON.read_text())
        except ValueError:
            data = {}
    data.setdefault("recorded", {})[key] = record
    BENCH_FAULTS_JSON.write_text(
        _json.dumps(data, indent=2, sort_keys=True) + "\n"
    )
    return record


def record_ab_overhead(ref: str = "HEAD") -> dict:
    """Fault-free overhead vs. the pre-fault tree at ``ref``."""
    return _record_ab("fault_free_overhead", ref)


def record_detector_ab(ref: str = "HEAD") -> dict:
    """Detector-off overhead vs. the pre-detector tree at ``ref``.

    Same interleaved methodology: the driver's ``mm1_queue_cycle`` runs
    a config with no detector, so the ratio is exactly what every
    existing (oracle-mode) experiment pays for the detector hooks;
    ``kernel_storm`` stays the noise floor.  Only meaningful when
    ``ref`` predates the detector subsystem.
    """
    return _record_ab("detector_off_overhead", ref)


if __name__ == "__main__":
    import json as _json
    import sys as _sys

    if len(_sys.argv) > 1 and _sys.argv[1] == "ab":
        ref = _sys.argv[2] if len(_sys.argv) > 2 else "HEAD"
        print(_json.dumps(record_ab_overhead(ref), indent=2))
    elif len(_sys.argv) > 1 and _sys.argv[1] == "ab-detector":
        ref = _sys.argv[2] if len(_sys.argv) > 2 else "HEAD"
        print(_json.dumps(record_detector_ab(ref), indent=2))
    else:
        print(__doc__)
