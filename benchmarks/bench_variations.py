"""V1-V6 -- the Sec. 4.3 model variations.

The paper's summary: "the results do not change the basic conclusions" --
EQF keeps beating UD under imperfect estimates, tardy-abort overload
management, a minimum-laxity-first scheduler, variable subtask counts, and
heterogeneous node loads.  V6 checks the Sec. 4.3 slack claim: EQF's gain
is largest at moderate slack and vanishes at the extremes.

Each bench regenerates the corresponding comparison table and asserts the
conclusion it supports.
"""

from __future__ import annotations

from repro.experiments.runner import QUICK, RunScale
from repro.experiments.variations import (
    abort_policy_comparison,
    heterogeneous_nodes,
    pex_error_sweep,
    scheduler_comparison,
    slack_sweep,
    variable_subtasks,
)

from _util import save_artifact

#: Variations run a grid of settings x strategies; one replication per cell
#: keeps the full file under a couple of minutes while the claims asserted
#: here stay stable (they compare strategies within the same cell seed).
SCALE = RunScale(sim_time=24_000.0, warmup_time=2_400.0, replications=1,
                 label="bench")


def gap(result, setting):
    """MD_global(UD) - MD_global(EQF) at one setting."""
    ud = result.row(setting, "UD").estimate.md_global.mean
    eqf = result.row(setting, "EQF").estimate.md_global.mean
    return ud - eqf


def test_v1_pex_error(benchmark):
    result = benchmark.pedantic(
        lambda: pex_error_sweep(scale=SCALE), rounds=1, iterations=1
    )
    # EQF beats UD at every error level, including heavy 90% error.
    for setting in ("error=0", "error=0.25", "error=0.5", "error=0.9"):
        assert gap(result, setting) > 0, f"EQF lost at {setting}"
    text = result.table()
    save_artifact("v1_pex_error", text)
    print("\n" + text)


def test_v2_abort_policy(benchmark):
    result = benchmark.pedantic(
        lambda: abort_policy_comparison(scale=SCALE), rounds=1, iterations=1
    )
    # The conclusion holds without aborts and with natural-deadline aborts.
    assert gap(result, "no-abort") > 0
    assert gap(result, "abort-tardy") > 0
    # The blind virtual-deadline abort punishes EQF (the GF caveat,
    # generalized): its gain disappears or reverses.
    assert gap(result, "abort-virtual") < gap(result, "abort-tardy")
    text = result.table()
    save_artifact("v2_abort_policy", text)
    print("\n" + text)


def test_v3_scheduler(benchmark):
    result = benchmark.pedantic(
        lambda: scheduler_comparison(scale=SCALE), rounds=1, iterations=1
    )
    # EQF wins under EDF and MLF.  Under FCFS deadlines are ignored, so the
    # strategies must tie up to noise -- a control cell.
    assert gap(result, "EDF") > 0
    assert gap(result, "MLF") > 0
    assert abs(gap(result, "FCFS")) < 0.05
    text = result.table()
    save_artifact("v3_scheduler", text)
    print("\n" + text)


def test_v4_variable_subtasks(benchmark):
    result = benchmark.pedantic(
        lambda: variable_subtasks(scale=SCALE), rounds=1, iterations=1
    )
    assert gap(result, "m=4 fixed") > 0
    assert gap(result, "m~U{2..6}") > 0
    text = result.table()
    save_artifact("v4_variable_subtasks", text)
    print("\n" + text)


def test_v5_heterogeneous_nodes(benchmark):
    result = benchmark.pedantic(
        lambda: heterogeneous_nodes(scale=SCALE), rounds=1, iterations=1
    )
    assert gap(result, "homogeneous") > 0
    assert gap(result, "skewed 2:2:1:1:.5:.5") > 0
    text = result.table()
    save_artifact("v5_heterogeneous_nodes", text)
    print("\n" + text)


def test_v6_slack_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: slack_sweep(scale=SCALE), rounds=1, iterations=1
    )
    # "In the intermediate range a smart SSP policy can make a difference
    # and this is where EQF wins big": the gain at moderate slack exceeds
    # the gains at both extremes.
    tight = gap(result, "rel_flex=0.25")
    moderate = max(gap(result, "rel_flex=1"), gap(result, "rel_flex=2"))
    loose = gap(result, "rel_flex=8")
    assert moderate > tight - 0.02
    assert moderate > loose
    # At very loose slack everyone meets deadlines: tiny miss ratios.
    eqf_loose = result.row("rel_flex=8", "EQF").estimate.md_global.mean
    assert eqf_loose < 0.05
    text = result.table()
    save_artifact("v6_slack_sweep", text)
    print("\n" + text)
