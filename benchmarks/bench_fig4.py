"""F4 -- Fig. 4 + Sec. 5.3: PSP strategies vs. load (parallel tasks).

Paper claims checked:

* under UD, globals miss far more often than locals (paper: ~3x);
* DIV-1 keeps the two classes' miss rates at a similar level, costing
  locals only marginally compared to the global improvement;
* DIV-2 is hardly distinguishable from DIV-1;
* GF reduces MD_global by a further significant amount (Sec. 5.3).
"""

from __future__ import annotations

from repro.experiments.figures import fig4
from repro.experiments.runner import QUICK

from _util import save_artifact


def test_fig4_psp_strategies_vs_load(benchmark):
    figure = benchmark.pedantic(
        lambda: fig4(scale=QUICK), rounds=1, iterations=1
    )
    sweep = figure.sweep
    at_top = {s: sweep.point(0.5, s).estimate for s in sweep.strategies}

    ud = at_top["UD"]
    div1 = at_top["DIV-1"]
    div2 = at_top["DIV-2"]
    gf = at_top["GF"]

    # UD: globals miss far more often than locals.
    assert ud.md_global.mean > 1.5 * ud.md_local.mean
    # DIV-1 pulls the classes together and helps globals a lot.
    assert abs(div1.md_global.mean - div1.md_local.mean) < abs(
        ud.md_global.mean - ud.md_local.mean
    )
    assert div1.md_global.mean < ud.md_global.mean - 0.05
    # ... at only a marginal local cost.
    local_cost = div1.md_local.mean - ud.md_local.mean
    global_gain = ud.md_global.mean - div1.md_global.mean
    assert local_cost < global_gain
    # DIV-2 is hardly distinguishable from DIV-1.
    assert abs(div2.md_global.mean - div1.md_global.mean) < 0.05
    # GF further reduces the global miss rate significantly.
    assert gf.md_global.mean < div1.md_global.mean * 0.85

    # Miss ratios grow with load for every strategy.
    for strategy in sweep.strategies:
        series = sweep.series(strategy, "global")
        assert series[0] < series[-1]

    text = figure.render()
    save_artifact("fig4", text)
    print("\n" + text)
