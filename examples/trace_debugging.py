"""Trace a tiny system to *see* why UD starves global tasks.

Runs a 3-node system for 60 time units under UD and under EQF with
execution tracing enabled, then prints each node's Gantt chart and the
lifecycle of the global subtasks.  At this microscope scale you can watch
the mechanism the paper describes: under UD an early-stage subtask sits in
the queue behind local tasks (its virtual deadline is the distant global
one), eating the slack its successors needed.

Run with::

    python examples/trace_debugging.py
"""

from __future__ import annotations

from repro.system.config import baseline_config
from repro.system.simulation import Simulation


def trace_run(strategy: str):
    config = baseline_config(
        strategy=strategy,
        node_count=3,
        subtask_count=3,
        load=0.7,             # enough contention to make queues visible
        sim_time=60.0,
        warmup_time=0.0,
        trace=True,
        seed=20,
    )
    sim = Simulation(config)
    result = sim.run()
    return sim, result


def waiting_summary(log):
    """Mean queueing delay of global subtasks vs local tasks in the trace."""
    waits = {"local": [], "global": []}
    submitted = {}
    for event in log.events:
        key = (event.unit_name, event.node_index)
        if event.kind == "submit":
            submitted[key] = event.time
        elif event.kind == "dispatch" and key in submitted:
            waits[event.task_class].append(event.time - submitted.pop(key))
    return {
        cls: (sum(values) / len(values) if values else 0.0)
        for cls, values in waits.items()
    }


def main() -> None:
    for strategy in ("UD", "EQF"):
        sim, result = trace_run(strategy)
        log = sim.trace_log
        print(f"=== strategy {strategy} "
              f"(MD_local={result.md_local:.0%}, MD_global={result.md_global:.0%}) ===")
        print(log.render_timeline(node_count=3, width=66))
        waits = waiting_summary(log)
        print(f"mean queueing delay: local {waits['local']:.2f}  "
              f"global subtask {waits['global']:.2f}")
        print()
        print("global subtask lifecycle (first 12 events):")
        globals_only = [e for e in log.events if e.task_class == "global"]
        for event in globals_only[:12]:
            print(f"  {event}")
        print()


if __name__ == "__main__":
    main()
