"""A modern reading of the SDA problem: end-to-end latency SLOs in a
microservice fan-out.

A request to a web application touches an API gateway, then fans out to
independent backend services (recommendations, inventory, pricing), then
renders.  Each backend has its own queue and scheduler -- exactly the
paper's "open system" of independent components -- and the product team
specifies one end-to-end latency SLO per request class.

This example shows how the paper's machinery answers an operational
question: *which per-service deadline should the gateway stamp on its
backend calls so that deadline-aware service queues respect the end-to-end
SLO?*  It compares:

* UD   -- every backend call carries the whole SLO (naive);
* DIV-1 -- the fan-out window is split by the number of parallel calls;
* GF   -- request work always preempts (in queue order) batch work.

Each backend also runs deadline-insensitive *batch* jobs (the "local
tasks"), so request subtasks must compete for the queue.

Run with::

    python examples/web_pipeline.py
"""

from __future__ import annotations

from repro.core.strategies import parse_assigner
from repro.core.task import SimpleTask, parallel, serial
from repro.sim.core import Environment
from repro.sim.distributions import Exponential, Uniform, exponential_interarrival
from repro.sim.rng import StreamFactory
from repro.stats.tables import format_percent, render_table
from repro.system.metrics import MetricsCollector
from repro.system.node import Node
from repro.system.process_manager import ProcessManager
from repro.system.schedulers import get_policy
from repro.system.workload import LocalTaskSource

# One simulated time unit = one millisecond.
SLO_MS = 250.0
REQUEST_RATE = 1.0 / 90.0       # one request per 90 ms
SIM_MS = 600_000.0
WARMUP_MS = 60_000.0

GATEWAY, RECS, INVENTORY, PRICING, RENDERER = range(5)

GATEWAY_MS = 5.0
BACKEND_MS = {RECS: 45.0, INVENTORY: 25.0, PRICING: 20.0}
RENDER_MS = 15.0


def build_request(streams: StreamFactory):
    draw = streams.get("request-execution")
    backends = parallel(
        *[
            SimpleTask(Exponential(mean).sample(draw), node_index=node,
                       name=f"svc-{node}")
            for node, mean in BACKEND_MS.items()
        ],
        name="fan-out",
    )
    return serial(
        SimpleTask(Exponential(GATEWAY_MS).sample(draw),
                   node_index=GATEWAY, name="gateway"),
        backends,
        SimpleTask(Exponential(RENDER_MS).sample(draw),
                   node_index=RENDERER, name="render"),
        name="request",
    )


def run_service(strategy: str, seed: int = 11):
    env = Environment()
    streams = StreamFactory(seed)
    metrics = MetricsCollector(node_count=5)
    nodes = [
        Node(env=env, index=i, policy=get_policy("EDF"), metrics=metrics)
        for i in range(5)
    ]
    manager = ProcessManager(
        env=env, nodes=nodes, assigner=parse_assigner(strategy), metrics=metrics
    )

    # Batch/maintenance jobs on the backend nodes: bigger, loose deadlines,
    # ~25% utilization each (the recommendations node then runs at ~75%).
    for node_index in (RECS, INVENTORY, PRICING):
        LocalTaskSource(
            env=env,
            node=nodes[node_index],
            interarrival=exponential_interarrival(1.0 / 120.0),
            execution=Exponential(30.0),
            slack=Uniform(50.0, 400.0),
            streams=streams,
        )

    def frontend():
        arrival_stream = streams.get("request-arrivals")
        interarrival = exponential_interarrival(REQUEST_RATE)
        while True:
            yield env.timeout(interarrival.sample(arrival_stream))
            manager.submit(build_request(streams), deadline=env.now + SLO_MS)

    env.process(frontend())
    env.run(until=WARMUP_MS)
    metrics.reset(env.now)
    env.run(until=SIM_MS)
    return metrics.snapshot(env.now)


def main() -> None:
    rows = []
    for strategy in ("UD", "DIV-1", "GF"):
        result = run_service(strategy)
        rows.append(
            [
                strategy,
                result.global_.completed,
                format_percent(1.0 - result.md_global),
                f"{result.global_.mean_response:.0f} ms",
                format_percent(result.md_local),
            ]
        )
    print(
        render_table(
            ["strategy", "requests", "SLO met", "mean latency", "batch MD"],
            rows,
            title=(
                f"Microservice fan-out with a {SLO_MS:.0f} ms end-to-end SLO "
                "(gateway -> 3 parallel backends -> render)"
            ),
        )
    )
    print()
    print("Expected shape (paper Sec. 5): UD lets batch jobs with nearer")
    print("deadlines outrank request subtasks; DIV-1 splits the SLO across the")
    print("fan-out and recovers most misses; GF is the aggressive endpoint,")
    print("buying request latency at the batch jobs' expense.")


if __name__ == "__main__":
    main()
