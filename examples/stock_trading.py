"""The paper's motivating scenario: stock market analysis and program trading.

Section 1 of the paper motivates the SDA problem with a trading pipeline:

    "information on stock prices is gathered through multiple sources and
    is piped through a series of filters for refinement.  The information
    is then used by an expert system that spots trading opportunities.
    [...] A profit may then be realized by the appropriate buy and sell
    actions.  [...] a buy-sell action should be implemented within two
    minutes from the time when the information is gathered."

This example models that pipeline as a serial-parallel global task:

    trade = [ [feed-A || feed-B || feed-C]   # gather from 3 sources
              filter                          # refinement
              expert-system                   # DB + rule processing
              order-execution ]               # buy/sell action

running on a 6-node system (feed handlers, a filter engine, a database/
expert-system server, an order gateway) that also serves unrelated local
work.  It then compares the four SSP x PSP combinations of Sec. 6 on the
fraction of trades completing within their two-minute deadline.

Run with::

    python examples/stock_trading.py
"""

from __future__ import annotations

from repro.core.strategies import parse_assigner
from repro.core.task import SimpleTask, parallel, serial
from repro.sim.core import Environment
from repro.sim.distributions import Exponential, Uniform, exponential_interarrival
from repro.sim.rng import StreamFactory
from repro.stats.tables import format_percent, render_table
from repro.system.metrics import MetricsCollector
from repro.system.node import Node
from repro.system.process_manager import ProcessManager
from repro.system.schedulers import get_policy
from repro.system.workload import LocalTaskSource

# One simulated time unit = one second of wall-clock time.
DEADLINE_SECONDS = 120.0          # "within two minutes"
MARKET_EVENT_RATE = 1.0 / 60.0    # a trading opportunity every ~minute
SIM_SECONDS = 120_000.0
WARMUP_SECONDS = 12_000.0

# Node roles (index into the node list).
FEED_NODES = (0, 1, 2)   # one handler per market data source
FILTER_NODE = 3
EXPERT_NODE = 4
ORDER_NODE = 5

# Mean service seconds per pipeline stage.
FEED_SECONDS = 8.0        # gather + normalize one source's burst
FILTER_SECONDS = 10.0     # refinement filters
EXPERT_SECONDS = 25.0     # database search + rule evaluation (the big stage)
ORDER_SECONDS = 5.0       # submit buy/sell orders


def build_trade_task(streams: StreamFactory) -> tuple:
    """One trading-pipeline instance with sampled stage times."""
    draw = streams.get("trade-execution")
    feed_time = Exponential(FEED_SECONDS)
    gather = parallel(
        *[
            SimpleTask(feed_time.sample(draw), node_index=node,
                       name=f"feed-{chr(ord('A') + i)}")
            for i, node in enumerate(FEED_NODES)
        ],
        name="gather",
    )
    tree = serial(
        gather,
        SimpleTask(Exponential(FILTER_SECONDS).sample(draw),
                   node_index=FILTER_NODE, name="filter"),
        SimpleTask(Exponential(EXPERT_SECONDS).sample(draw),
                   node_index=EXPERT_NODE, name="expert-system"),
        SimpleTask(Exponential(ORDER_SECONDS).sample(draw),
                   node_index=ORDER_NODE, name="order-execution"),
        name="trade",
    )
    return tree


def run_market(strategy: str, seed: int = 7):
    """Simulate the trading system under one SDA strategy."""
    env = Environment()
    streams = StreamFactory(seed)
    metrics = MetricsCollector(node_count=6)
    nodes = [
        Node(env=env, index=i, policy=get_policy("EDF"), metrics=metrics)
        for i in range(6)
    ]
    manager = ProcessManager(
        env=env, nodes=nodes, assigner=parse_assigner(strategy), metrics=metrics
    )

    # Each node also serves unrelated local work (reports, monitoring, ad-hoc
    # queries) with short deadlines, at ~30% utilization.  The expert-system
    # node then runs at ~72% total utilization -- the realistic bottleneck.
    for node in nodes:
        LocalTaskSource(
            env=env,
            node=node,
            interarrival=exponential_interarrival(0.03),  # per second
            execution=Exponential(10.0),
            slack=Uniform(5.0, 50.0),
            streams=streams,
        )

    def market_feed():
        arrival_stream = streams.get("market-arrivals")
        interarrival = exponential_interarrival(MARKET_EVENT_RATE)
        while True:
            yield env.timeout(interarrival.sample(arrival_stream))
            tree = build_trade_task(streams)
            manager.submit(tree, deadline=env.now + DEADLINE_SECONDS)

    env.process(market_feed())
    env.run(until=WARMUP_SECONDS)
    metrics.reset(env.now)
    env.run(until=SIM_SECONDS)
    return metrics.snapshot(env.now)


def main() -> None:
    rows = []
    for strategy in ("UD-UD", "UD-DIV1", "EQF-UD", "EQF-DIV1"):
        result = run_market(strategy)
        rows.append(
            [
                strategy,
                result.global_.completed,
                format_percent(1.0 - result.md_global),
                format_percent(result.md_local),
                f"{result.global_.mean_response:.1f}s",
            ]
        )
    print(
        render_table(
            ["strategy", "trades", "on-time trades", "MD_local", "mean latency"],
            rows,
            title=(
                "Program trading pipeline: "
                "[feed-A || feed-B || feed-C] -> filter -> expert -> order, "
                f"deadline {DEADLINE_SECONDS:.0f}s"
            ),
        )
    )
    print()
    print("Expected shape (paper Sec. 6): UD-UD completes the fewest trades on")
    print("time; EQF and DIV-1 each help; together they are additive.")


if __name__ == "__main__":
    main()
