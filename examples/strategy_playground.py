"""Strategy playground: watch the SDA formulas assign virtual deadlines.

This example runs *no* simulation.  It takes a task in the paper's bracket
notation, an end-to-end deadline, and walks the assignment step by step for
every strategy, printing each subtask's virtual deadline, slack share, and
flexibility.  Useful for building intuition about UD/ED/EQS/EQF and DIV-x
before reading the miss-ratio plots.

Run with::

    python examples/strategy_playground.py
    python examples/strategy_playground.py "[2 1 [3 || 3] 1]" 15
"""

from __future__ import annotations

import sys

from repro.core.notation import parse
from repro.core.strategies import parse_assigner
from repro.core.task import ParallelTask, SerialTask, TaskNode
from repro.stats.tables import render_table

DEFAULT_TASK = "[2 3 5]"
DEFAULT_DEADLINE = 20.0


def walk_assignments(tree: TaskNode, deadline: float, strategy: str):
    """Trace the recursive deadline decomposition assuming ideal execution.

    "Ideal" means each subtask runs the moment it is submitted and takes
    exactly its predicted time -- so the trace isolates what the *formulas*
    do, without queueing noise.
    """
    assigner = parse_assigner(strategy)
    rows = []

    def execute(node, now, window_arrival, window_deadline, depth):
        indent = "  " * depth
        if node.is_leaf:
            slack = window_deadline - now - node.pex
            flexibility = slack / node.pex if node.pex else float("inf")
            rows.append(
                [
                    f"{indent}{node.name}",
                    f"{now:.2f}",
                    f"{node.pex:.2f}",
                    f"{window_deadline:.2f}",
                    f"{slack:.2f}",
                    f"{flexibility:.2f}",
                ]
            )
            return now + node.pex
        if isinstance(node, SerialTask):
            children = node.children
            for i, child in enumerate(children):
                assignment = assigner.serial_child_deadline(
                    remaining=children[i:],
                    now=now,
                    window_arrival=window_arrival,
                    window_deadline=window_deadline,
                )
                now = execute(child, now, now, assignment.deadline, depth + 1)
            return now
        assert isinstance(node, ParallelTask)
        finish = now
        for i, child in enumerate(node.children):
            assignment = assigner.parallel_child_deadline(
                children=node.children,
                index=i,
                now=now,
                window_deadline=window_deadline,
            )
            finish = max(
                finish, execute(child, now, now, assignment.deadline, depth + 1)
            )
        return finish

    finish = execute(tree, 0.0, 0.0, deadline, 0)
    return rows, finish


def main() -> None:
    notation = sys.argv[1] if len(sys.argv) > 1 else DEFAULT_TASK
    deadline = float(sys.argv[2]) if len(sys.argv) > 2 else DEFAULT_DEADLINE
    tree = parse(notation)
    print(f"task {tree.notation()}   end-to-end deadline {deadline:g}")
    print(f"critical path (ideal execution): {tree.total_ex():g}\n")

    strategies = ["UD", "ED", "EQS", "EQF", "UD-DIV1", "EQF-DIV1"]
    for strategy in strategies:
        rows, finish = walk_assignments(tree, deadline, strategy)
        print(
            render_table(
                ["subtask", "submit", "pex", "virtual dl", "slack", "flex"],
                rows,
                title=f"strategy {strategy} (ideal finish at {finish:g})",
            )
        )
        print()


if __name__ == "__main__":
    main()
