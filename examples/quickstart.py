"""Quickstart: compare SDA strategies on the paper's baseline system.

Runs the Table 1 baseline (6 nodes, EDF schedulers, 75% local load, serial
global tasks of 4 subtasks) under each SSP strategy and prints the local
and global miss ratios -- a one-screen reproduction of the paper's headline
result: UD starves global tasks, EQF nearly equalizes the two classes.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Simulation, baseline_config
from repro.stats.tables import format_percent, render_table


def main() -> None:
    rows = []
    for strategy in ("UD", "ED", "EQS", "EQF"):
        config = baseline_config(
            strategy=strategy,
            sim_time=30_000.0,
            warmup_time=3_000.0,
            seed=42,
        )
        result = Simulation(config).run()
        rows.append(
            [
                strategy,
                format_percent(result.md_local),
                format_percent(result.md_global),
                format_percent(result.md_global - result.md_local),
                f"{result.mean_utilization:.3f}",
            ]
        )
    print(
        render_table(
            ["strategy", "MD_local", "MD_global", "gap", "utilization"],
            rows,
            title="Baseline experiment (load 0.5, serial global tasks of 4 subtasks)",
        )
    )
    print()
    print("Expected shape (paper Fig. 2): MD_global(UD) ~ 40% vs MD_local ~ 24%;")
    print("EQF shrinks the gap to a few points at a tiny local cost.")


if __name__ == "__main__":
    main()
