"""Legacy setup shim: the offline environment lacks the `wheel` package,
so PEP 517 editable installs cannot build; this enables `setup.py develop`."""
from setuptools import setup

setup()
