"""Build script: pure-Python install plus the optional compiled kernel.

The default build is pure Python with zero build-time dependencies (the
offline environment also lacks the `wheel` package, so PEP 517 editable
installs cannot build; this file keeps `setup.py develop` working).

Optionally, the engine core (`repro/sim/_engine.py`) can be compiled
ahead of time into the extension module ``repro.sim._engine_c``, which
the kernel selector (`repro.sim.core`, ``REPRO_KERNEL=python|compiled|
auto``) picks up at import time.  The compiled module is built from a
build-time copy of the same source file, so both kernels are one code
base and produce bit-identical results.

Opt in with the ``REPRO_BUILD_KERNEL`` environment variable::

    REPRO_BUILD_KERNEL=auto   python setup.py build_ext --inplace  # mypyc, then Cython
    REPRO_BUILD_KERNEL=mypyc  python setup.py build_ext --inplace  # require mypyc
    REPRO_BUILD_KERNEL=cython python setup.py build_ext --inplace  # require Cython

Unset (or ``0``/``none``), the build is pure Python and never imports a
compiler toolchain -- installing and testing this package must not
depend on mypy or Cython (the test suite skips the compiled-kernel legs
when the extension is absent).  With ``auto``, a missing toolchain
degrades to the pure build with a notice instead of failing.
"""

import hashlib
import os
import shutil
from pathlib import Path

from setuptools import setup

_ROOT = Path(__file__).parent
_ENGINE = _ROOT / "src" / "repro" / "sim" / "_engine.py"
#: Build-time shadow copy compiled under its own module name, so the
#: pure-Python `_engine` stays importable next to the extension and
#: ``REPRO_KERNEL=python`` keeps working against a compiled install.
_SHADOW = _ROOT / "src" / "repro" / "sim" / "_engine_c.py"


def _mypyc_extensions():
    from mypyc.build import mypycify  # type: ignore[import-not-found]

    # mypy infers the module name (repro.sim._engine_c) by crawling up
    # from the file past the package __init__.py files.
    return mypycify([str(_SHADOW)], opt_level="3")


def _cython_extensions():
    from Cython.Build import cythonize  # type: ignore[import-not-found]
    from setuptools import Extension

    return cythonize(
        [Extension("repro.sim._engine_c", [str(_SHADOW)])],
        language_level=3,
    )


def _kernel_extensions():
    mode = os.environ.get("REPRO_BUILD_KERNEL", "").strip().lower()
    if mode in ("", "0", "false", "none", "off"):
        return []
    if mode not in ("auto", "1", "true", "mypyc", "cython"):
        raise SystemExit(
            f"REPRO_BUILD_KERNEL={mode!r} is not a build mode; use "
            "'auto', 'mypyc', 'cython', or unset for pure Python"
        )
    shutil.copyfile(_ENGINE, _SHADOW)
    # Fingerprint the engine source into the build, so the kernel
    # selector can detect (and refuse / fall back from) a stale
    # extension after `_engine.py` is edited without a rebuild.
    digest = hashlib.sha256(_ENGINE.read_bytes()).hexdigest()
    with _SHADOW.open("a", encoding="utf-8") as shadow:
        shadow.write(
            "\n#: sha256 of the _engine.py this module was built from\n"
            f'ENGINE_SOURCE_HASH = "{digest}"\n'
        )
    if mode in ("mypyc", "auto", "1", "true"):
        try:
            return _mypyc_extensions()
        except Exception as exc:  # noqa: BLE001 - degrade per contract
            if mode == "mypyc":
                raise
            print(f"repro: mypyc unavailable ({exc!r}); trying Cython")
    try:
        return _cython_extensions()
    except Exception as exc:  # noqa: BLE001 - degrade per contract
        if mode == "cython":
            raise
        print(
            f"repro: no compiler toolchain ({exc!r}); "
            "building the pure-Python kernel only"
        )
        # Remove the shadow so the kernel selector cannot mistake the
        # uncompiled copy for a built extension (it double-checks the
        # module __file__ anyway, but do not leave the trap around).
        _SHADOW.unlink(missing_ok=True)
        return []


setup(ext_modules=_kernel_extensions())
