"""Confidence intervals for simulation output analysis.

The paper reports 95% confidence intervals of about ±0.35 percentage points
on miss ratios, obtained from two runs of one million time units.  We use
the method of *independent replications*: each data point is estimated from
``n`` runs with different seeds, and the half-width comes from the
Student-t distribution with ``n - 1`` degrees of freedom.

``scipy`` supplies the t quantile when available; otherwise Hill's series
approximation keeps the package usable in a bare environment (relative
error below 1% for dof >= 3 at the usual levels; ~4% in the worst corner,
dof = 2 at the 99% level).
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Sequence

try:  # pragma: no cover - import guard
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover
    _scipy_stats = None


def t_quantile(p: float, dof: int) -> float:
    """Two-sided Student-t critical value: ``P(|T| <= t) = p``.

    ``p`` is the confidence level (e.g., 0.95), ``dof`` the degrees of
    freedom.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"confidence level must lie in (0, 1), got {p}")
    if dof < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {dof}")
    upper_tail = (1.0 + p) / 2.0
    if _scipy_stats is not None:
        return float(_scipy_stats.t.ppf(upper_tail, dof))
    return _t_quantile_approx(upper_tail, dof)


def _t_quantile_approx(q: float, dof: int) -> float:
    """Hill's approximation of the t quantile (no scipy fallback)."""
    z = _normal_quantile(q)
    g1 = (z**3 + z) / 4.0
    g2 = (5 * z**5 + 16 * z**3 + 3 * z) / 96.0
    g3 = (3 * z**7 + 19 * z**5 + 17 * z**3 - 15 * z) / 384.0
    g4 = (79 * z**9 + 776 * z**7 + 1482 * z**5 - 1920 * z**3 - 945 * z) / 92160.0
    n = float(dof)
    return z + g1 / n + g2 / n**2 + g3 / n**3 + g4 / n**4


def _normal_quantile(q: float) -> float:
    """Acklam's rational approximation of the standard normal quantile."""
    if not 0.0 < q < 1.0:
        raise ValueError(f"quantile argument must lie in (0, 1), got {q}")
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    if q < p_low:
        u = math.sqrt(-2.0 * math.log(q))
        return (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / \
               ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0)
    if q > 1.0 - p_low:
        u = math.sqrt(-2.0 * math.log(1.0 - q))
        return -(((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / \
                ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0)
    u = q - 0.5
    r = u * u
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * u / \
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)


@dataclass(frozen=True)
class IntervalEstimate:
    """A point estimate with a symmetric confidence interval."""

    mean: float
    half_width: float
    level: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """True if ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    def overlaps(self, other: "IntervalEstimate") -> bool:
        """True if the two intervals intersect (quick significance check)."""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:
        return f"{self.mean:.4f} ± {self.half_width:.4f}"


def interval_from_samples(
    samples: Sequence[float], level: float = 0.95
) -> IntervalEstimate:
    """Mean and t-based confidence half-width from raw replication values.

    A single sample gets an infinite half-width (no variance information),
    which correctly signals "do more replications" downstream.
    """
    values = [float(v) for v in samples]
    if not values:
        raise ValueError("need at least one sample")
    mean = statistics.fmean(values)
    if len(values) == 1:
        return IntervalEstimate(mean=mean, half_width=math.inf, level=level, n=1)
    sd = statistics.stdev(values)
    half = t_quantile(level, len(values) - 1) * sd / math.sqrt(len(values))
    return IntervalEstimate(mean=mean, half_width=half, level=level, n=len(values))
