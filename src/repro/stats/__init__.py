"""Output analysis: confidence intervals, batch means, queueing formulas,
and ASCII reporting."""

from .batch_means import batch_means_interval, split_batches
from .confidence import IntervalEstimate, interval_from_samples, t_quantile
from .queueing import (
    erlang_mean_and_variance,
    expected_max_exponential,
    md1_mean_wait,
    mg1_mean_wait,
    mm1_mean_number_in_queue,
    mm1_mean_response,
    mm1_mean_wait,
    utilization,
)
from .tables import format_percent, render_chart, render_table

__all__ = [
    "IntervalEstimate",
    "batch_means_interval",
    "erlang_mean_and_variance",
    "expected_max_exponential",
    "format_percent",
    "interval_from_samples",
    "md1_mean_wait",
    "mg1_mean_wait",
    "mm1_mean_number_in_queue",
    "mm1_mean_response",
    "mm1_mean_wait",
    "render_chart",
    "render_table",
    "split_batches",
    "t_quantile",
    "utilization",
]
