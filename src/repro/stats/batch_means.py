"""Batch-means confidence intervals for single long runs.

Independent replications (``repro.experiments.runner``) are the primary
output-analysis method here, but the paper's own method -- few, very long
runs -- calls for **batch means**: split one run's observation sequence
into ``k`` contiguous batches, treat the batch averages as approximately
iid, and build a Student-t interval from them.  Valid when batches are long
relative to the autocorrelation time of the process.

The implementation is deliberately simple (fixed batch count, optional
truncation of a warm-up prefix); the classic rules of thumb are documented
on :func:`batch_means_interval`.
"""

from __future__ import annotations

from typing import List, Sequence

from .confidence import IntervalEstimate, interval_from_samples


def split_batches(observations: Sequence[float], batch_count: int) -> List[List[float]]:
    """Split a sequence into ``batch_count`` contiguous, equal-size batches.

    Trailing observations that do not fill a batch are dropped (standard
    practice; they would bias the final batch mean toward recency).
    """
    if batch_count < 2:
        raise ValueError(f"need at least 2 batches, got {batch_count}")
    n = len(observations)
    batch_size = n // batch_count
    if batch_size < 1:
        raise ValueError(
            f"{n} observations cannot fill {batch_count} batches"
        )
    return [
        list(observations[i * batch_size:(i + 1) * batch_size])
        for i in range(batch_count)
    ]


def batch_means_interval(
    observations: Sequence[float],
    batch_count: int = 10,
    level: float = 0.95,
    discard_fraction: float = 0.0,
) -> IntervalEstimate:
    """Confidence interval for the steady-state mean from one long run.

    Parameters
    ----------
    observations:
        The raw per-task observations in completion order (e.g. 0/1 miss
        indicators, waiting times).
    batch_count:
        Number of batches; 10-30 is the usual range.  More batches mean
        more degrees of freedom but shorter (more correlated) batches.
    level:
        Confidence level of the Student-t interval.
    discard_fraction:
        Fraction of the *front* of the sequence dropped as warm-up before
        batching (0 if the caller already truncated the transient).
    """
    if not 0.0 <= discard_fraction < 1.0:
        raise ValueError(
            f"discard fraction must lie in [0, 1), got {discard_fraction}"
        )
    start = int(len(observations) * discard_fraction)
    kept = observations[start:]
    batches = split_batches(kept, batch_count)
    means = [sum(batch) / len(batch) for batch in batches]
    return interval_from_samples(means, level=level)
