"""Closed-form queueing results used to validate the simulator.

The reproduction's credibility rests on the discrete-event substrate being
*correct*, not just plausible.  This module collects the classical results
that our workload model admits in special cases, and the validation tests
(`tests/stats/test_queueing_validation.py`) drive the real simulator into
those corners and compare:

* a single node fed only by one Poisson local-task stream is an **M/M/1**
  queue when service is exponential, and an **M/G/1** queue in general --
  mean waiting time from the Pollaczek-Khinchine formula;
* with ``k`` nodes and per-node independent streams, each node is its own
  M/M/1 (the paper's local-only limit ``frac_local = 1``);
* the expected maximum of ``n`` iid exponentials is ``H_n / mu`` -- the
  critical-path arithmetic behind the parallel slack scaling.

All formulas assume stability (``rho < 1``) and FCFS order.  Deadline-driven
service order does not change *mean* waiting time for the class as a whole
(service order is work-conserving and non-preemptive), so the M/M/1 and
M/G/1 means also validate runs under EDF -- a property the validation tests
exploit.
"""

from __future__ import annotations

import math


def utilization(arrival_rate: float, service_rate: float) -> float:
    """Offered load ``rho = lambda / mu``."""
    _check_rates(arrival_rate, service_rate)
    return arrival_rate / service_rate


def mm1_mean_wait(arrival_rate: float, service_rate: float) -> float:
    """Mean time in queue (excluding service) of an M/M/1 queue.

    ``W_q = rho / (mu - lambda)``.
    """
    rho = _stable_rho(arrival_rate, service_rate)
    return rho / (service_rate - arrival_rate)


def mm1_mean_response(arrival_rate: float, service_rate: float) -> float:
    """Mean time in system (queue + service) of an M/M/1 queue."""
    _stable_rho(arrival_rate, service_rate)
    return 1.0 / (service_rate - arrival_rate)


def mm1_mean_number_in_queue(arrival_rate: float, service_rate: float) -> float:
    """Mean number waiting (excluding the one in service): ``rho^2/(1-rho)``."""
    rho = _stable_rho(arrival_rate, service_rate)
    return rho * rho / (1.0 - rho)


def mg1_mean_wait(
    arrival_rate: float,
    mean_service: float,
    second_moment_service: float,
) -> float:
    """Pollaczek-Khinchine: mean queueing delay of an M/G/1 queue.

    ``W_q = lambda * E[S^2] / (2 (1 - rho))`` with ``rho = lambda E[S]``.
    """
    if mean_service <= 0:
        raise ValueError(f"mean service time must be positive: {mean_service}")
    if second_moment_service < mean_service**2:
        raise ValueError(
            "E[S^2] must be at least (E[S])^2 "
            f"({second_moment_service} < {mean_service ** 2})"
        )
    rho = arrival_rate * mean_service
    if not 0.0 <= rho < 1.0:
        raise ValueError(f"unstable queue: rho = {rho}")
    return arrival_rate * second_moment_service / (2.0 * (1.0 - rho))


def md1_mean_wait(arrival_rate: float, service_time: float) -> float:
    """M/D/1 mean queueing delay (deterministic service): half the M/M/1's."""
    return mg1_mean_wait(arrival_rate, service_time, service_time**2)


def expected_max_exponential(n: int, mean: float) -> float:
    """``E[max of n iid Exp(mean)] = mean * H_n``.

    The expected critical path of a parallel fan -- what the workload model
    uses to scale slack for serial-parallel trees.
    """
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    if mean <= 0:
        raise ValueError(f"mean must be positive: {mean}")
    return mean * sum(1.0 / i for i in range(1, n + 1))


def erlang_mean_and_variance(k: int, stage_mean: float) -> tuple[float, float]:
    """Mean and variance of a k-stage Erlang (a serial chain's total ex)."""
    if k < 1:
        raise ValueError(f"need k >= 1 stages, got {k}")
    if stage_mean <= 0:
        raise ValueError(f"stage mean must be positive: {stage_mean}")
    return k * stage_mean, k * stage_mean**2


def _check_rates(arrival_rate: float, service_rate: float) -> None:
    if arrival_rate < 0:
        raise ValueError(f"arrival rate must be non-negative: {arrival_rate}")
    if service_rate <= 0:
        raise ValueError(f"service rate must be positive: {service_rate}")


def _stable_rho(arrival_rate: float, service_rate: float) -> float:
    rho = utilization(arrival_rate, service_rate)
    if rho >= 1.0:
        raise ValueError(f"unstable queue: rho = {rho} >= 1")
    return rho
