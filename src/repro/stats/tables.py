"""ASCII rendering of result tables and figure series.

No plotting library is available offline, so every figure of the paper is
regenerated as (a) a numeric table and (b) an ASCII line chart.  Both are
plain functions over plain data -- the experiment harness stays free of
formatting concerns.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a monospace table with column alignment.

    Floats are shown with four significant digits; ``nan`` renders as
    ``"-"`` so sparse sweeps stay readable.
    """
    formatted: List[List[str]] = [[_format_cell(c) for c in row] for row in rows]
    columns = [list(col) for col in zip(*([list(headers)] + formatted))] if rows else [
        [h] for h in headers
    ]
    widths = [max(len(cell) for cell in col) for col in columns]

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(w) for cell, w in zip(cells, widths))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("-+-".join("-" * w for w in widths))
    for row in formatted:
        out.append(line(row))
    return "\n".join(out)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if math.isnan(cell):
            return "-"
        return f"{cell:.4g}"
    return str(cell)


#: Glyphs used for multi-series ASCII charts, in assignment order.
_MARKERS = "ox+*#@%&"


def render_chart(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 64,
    height: int = 18,
    title: Optional[str] = None,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one or more y(x) series as an ASCII scatter/line chart.

    Each series gets a marker glyph; the legend maps glyphs to labels.
    Intended for the paper's figures: a handful of short monotone-ish
    series.  ``nan`` points are skipped.
    """
    if width < 16 or height < 4:
        raise ValueError("chart too small to be legible")
    if not series:
        raise ValueError("need at least one series")
    if len(series) > len(_MARKERS):
        raise ValueError(f"too many series ({len(series)}); max {len(_MARKERS)}")

    points: Dict[str, List[tuple]] = {}
    all_y: List[float] = []
    all_x: List[float] = []
    for label, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {label!r} has {len(ys)} points for {len(x_values)} x values"
            )
        pts = [
            (x, y)
            for x, y in zip(x_values, ys)
            if not (isinstance(y, float) and math.isnan(y))
        ]
        points[label] = pts
        all_y.extend(y for _, y in pts)
        all_x.extend(x for x, _ in pts)
    if not all_y:
        raise ValueError("no finite points to plot")

    x_min, x_max = min(all_x), max(all_x)
    y_min, y_max = min(all_y), max(all_y)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0
    # Pad the y range slightly so extremes do not sit on the frame.
    pad = 0.05 * (y_max - y_min)
    y_min -= pad
    y_max += pad

    grid = [[" "] * width for _ in range(height)]
    for marker, (label, pts) in zip(_MARKERS, points.items()):
        for x, y in pts:
            col = round((x - x_min) / (x_max - x_min) * (width - 1))
            row = round((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = marker

    out: List[str] = []
    if title:
        out.append(title)
    if y_label:
        out.append(y_label)
    out.append(f"{y_max:8.3f} +" + "-" * width + "+")
    for row in grid:
        out.append(" " * 9 + "|" + "".join(row) + "|")
    out.append(f"{y_min:8.3f} +" + "-" * width + "+")
    out.append(
        " " * 10 + f"{x_min:<12.4g}" + " " * max(0, width - 24) + f"{x_max:>12.4g}"
    )
    if x_label:
        out.append(" " * 10 + x_label.center(width))
    legend = "   ".join(
        f"{marker}={label}" for marker, label in zip(_MARKERS, points)
    )
    out.append(" " * 10 + legend)
    return "\n".join(out)


def format_percent(value: float) -> str:
    """``0.237`` -> ``"23.7%"`` (``nan`` -> ``"-"``)."""
    if math.isnan(value):
        return "-"
    return f"{100.0 * value:.1f}%"
