"""The curated scenario library: named workloads beyond the paper's model.

Each scenario turns exactly the knobs its name promises and keeps the
rest at the paper's Table 1 baseline, so strategy rankings are
attributable to the dimension under study.  All scenarios are validated
stable (worst-case normalized load below 1; see
:attr:`~repro.scenarios.spec.ScenarioSpec.peak_load`) by the property
tests in ``tests/scenarios``.

``baseline`` is special: it reduces to the plain ``SystemConfig()`` path
and is pinned bit-identical to the pre-scenario engine by the golden
determinism gate.
"""

from __future__ import annotations

from typing import Tuple

from .spec import ArrivalSpec, PlacementSpec, ScenarioSpec, ServiceSpec

#: The Table 1 model, untouched (the control every comparison needs).
BASELINE = ScenarioSpec(
    name="baseline",
    description="The paper's homogeneous model (Table 1), unchanged.",
)

#: Bursty arrivals via hyperexponential interarrival times (CV^2 = 4):
#: the same mean rate delivered in clumps.
BURSTY_HYPEREXP = ScenarioSpec(
    name="bursty-hyperexp",
    description="Bursty arrivals: hyperexponential interarrivals, CV^2=4.",
    arrival=ArrivalSpec(model="hyperexp", cv2=4.0),
)

#: Bursty arrivals via a 2-state MMPP: calm traffic with sustained burst
#: episodes (4x rate, 20% of the time, ~200 time-unit cycles).
BURSTY_MMPP = ScenarioSpec(
    name="bursty-mmpp",
    description="Markov-modulated bursts: 4x arrival rate 20% of the time.",
    arrival=ArrivalSpec(
        model="mmpp2", burst_ratio=4.0, burst_fraction=0.2, cycle_time=200.0
    ),
)

#: Heavy-tailed Pareto service (tail index 2.2: finite mean and variance,
#: but far heavier tails than exponential).
HEAVY_TAIL_PARETO = ScenarioSpec(
    name="heavy-tail-pareto",
    description="Pareto service times (shape 2.2), same mean demand.",
    service=ServiceSpec(model="pareto", shape=2.2),
)

#: Lognormal service with log-sigma 1.2 (CV^2 ~ 3.2, skewed).
HEAVY_TAIL_LOGNORMAL = ScenarioSpec(
    name="heavy-tail-lognormal",
    description="Lognormal service times (sigma 1.2), same mean demand.",
    service=ServiceSpec(model="lognormal", sigma=1.2),
)

#: Zipf-skewed hotspot placement: low-index nodes absorb most subtasks.
HOTSPOT_ZIPF = ScenarioSpec(
    name="hotspot-zipf",
    description="Zipf-skewed subtask placement (s=1.2): a hotspot node.",
    placement=PlacementSpec(model="zipf", zipf_s=1.2),
)

#: Join-the-shortest-queue routing of subtasks (the load-balancer model).
SMART_ROUTING = ScenarioSpec(
    name="smart-routing",
    description="Least-outstanding subtask placement (join shortest queue).",
    placement=PlacementSpec(model="least-outstanding"),
)

#: Heterogeneous hardware: two fast, two stock, two slow nodes.
SLOW_NODES = ScenarioSpec(
    name="slow-nodes",
    description="Heterogeneous node speeds 1.3/1.0/0.7 (two of each).",
    node_speed_factors=(1.3, 1.3, 1.0, 1.0, 0.7, 0.7),
)

#: Rush hour: load ramps to 1.4x the stationary rate for the middle half
#: of the run, quiet shoulders either side.
RUSH_HOUR = ScenarioSpec(
    name="rush-hour",
    description="Time-varying load: 0.6x / 1.4x / 0.6x piecewise profile.",
    load_profile=((0.25, 0.6), (0.5, 1.4), (0.25, 0.6)),
)

#: Everything at once at elevated load: the stress test.
STRESS_MIX = ScenarioSpec(
    name="stress-mix",
    description=(
        "Combined stress: bursty arrivals, Pareto service, Zipf hotspot, "
        "load 0.55."
    ),
    arrival=ArrivalSpec(model="hyperexp", cv2=2.0),
    service=ServiceSpec(model="pareto", shape=2.2),
    placement=PlacementSpec(model="zipf", zipf_s=1.0),
    base={"load": 0.55},
)

#: Parallel fans under smart routing: distinct-node placement where the
#: policy actually chooses (exercises the PSP strategies end to end).
PARALLEL_SMART = ScenarioSpec(
    name="parallel-smart",
    description="Parallel fans (Sec. 5.2 structure) with least-outstanding placement.",
    placement=PlacementSpec(model="least-outstanding"),
    base={"task_structure": "parallel"},
)

#: The non-preemption ablation, otherwise untouched: how much of the
#: deadline-assignment story (EQS/EQF vs. UD/DIV) survives when nodes
#: may preempt?
PREEMPTIVE_BASELINE = ScenarioSpec(
    name="preemptive-baseline",
    description="Table 1 model on preemptive-resume servers (ablation).",
    base={"preemptive": True},
)

#: Preemption on heterogeneous hardware: remaining demand is rescaled by
#: the node's speed at every (re-)dispatch.
PREEMPTIVE_HETERO_SPEEDS = ScenarioSpec(
    name="preemptive-hetero-speeds",
    description=(
        "Preemptive-resume servers with node speeds 1.3/1.0/0.7 (two of "
        "each)."
    ),
    node_speed_factors=(1.3, 1.3, 1.0, 1.0, 0.7, 0.7),
    base={"preemptive": True},
)

#: Preemption against heavy tails: urgent arrivals no longer wait behind
#: rare huge units, the scenario where preemptive-resume should shine.
PREEMPTIVE_HEAVY_TAIL = ScenarioSpec(
    name="preemptive-heavy-tail",
    description=(
        "Preemptive-resume servers under Pareto service times (shape 2.2)."
    ),
    service=ServiceSpec(model="pareto", shape=2.2),
    base={"preemptive": True},
)

#: Library order is presentation order (baseline first).
LIBRARY: Tuple[ScenarioSpec, ...] = (
    BASELINE,
    BURSTY_HYPEREXP,
    BURSTY_MMPP,
    HEAVY_TAIL_PARETO,
    HEAVY_TAIL_LOGNORMAL,
    HOTSPOT_ZIPF,
    SMART_ROUTING,
    SLOW_NODES,
    RUSH_HOUR,
    STRESS_MIX,
    PARALLEL_SMART,
    PREEMPTIVE_BASELINE,
    PREEMPTIVE_HETERO_SPEEDS,
    PREEMPTIVE_HEAVY_TAIL,
)
