"""The curated scenario library: named workloads beyond the paper's model.

Each scenario turns exactly the knobs its name promises and keeps the
rest at the paper's Table 1 baseline, so strategy rankings are
attributable to the dimension under study.  All scenarios are validated
stable (worst-case normalized load below 1; see
:attr:`~repro.scenarios.spec.ScenarioSpec.peak_load`) by the property
tests in ``tests/scenarios``.

``baseline`` is special: it reduces to the plain ``SystemConfig()`` path
and is pinned bit-identical to the pre-scenario engine by the golden
determinism gate.
"""

from __future__ import annotations

from typing import Tuple

from ..system.detector import DetectorSpec
from ..system.faults import FaultSpec
from .spec import ArrivalSpec, PlacementSpec, ScenarioSpec, ServiceSpec

#: The Table 1 model, untouched (the control every comparison needs).
BASELINE = ScenarioSpec(
    name="baseline",
    description="The paper's homogeneous model (Table 1), unchanged.",
)

#: Bursty arrivals via hyperexponential interarrival times (CV^2 = 4):
#: the same mean rate delivered in clumps.
BURSTY_HYPEREXP = ScenarioSpec(
    name="bursty-hyperexp",
    description="Bursty arrivals: hyperexponential interarrivals, CV^2=4.",
    arrival=ArrivalSpec(model="hyperexp", cv2=4.0),
)

#: Bursty arrivals via a 2-state MMPP: calm traffic with sustained burst
#: episodes (4x rate, 20% of the time, ~200 time-unit cycles).
BURSTY_MMPP = ScenarioSpec(
    name="bursty-mmpp",
    description="Markov-modulated bursts: 4x arrival rate 20% of the time.",
    arrival=ArrivalSpec(
        model="mmpp2", burst_ratio=4.0, burst_fraction=0.2, cycle_time=200.0
    ),
)

#: Heavy-tailed Pareto service (tail index 2.2: finite mean and variance,
#: but far heavier tails than exponential).
HEAVY_TAIL_PARETO = ScenarioSpec(
    name="heavy-tail-pareto",
    description="Pareto service times (shape 2.2), same mean demand.",
    service=ServiceSpec(model="pareto", shape=2.2),
)

#: Lognormal service with log-sigma 1.2 (CV^2 ~ 3.2, skewed).
HEAVY_TAIL_LOGNORMAL = ScenarioSpec(
    name="heavy-tail-lognormal",
    description="Lognormal service times (sigma 1.2), same mean demand.",
    service=ServiceSpec(model="lognormal", sigma=1.2),
)

#: Zipf-skewed hotspot placement: low-index nodes absorb most subtasks.
HOTSPOT_ZIPF = ScenarioSpec(
    name="hotspot-zipf",
    description="Zipf-skewed subtask placement (s=1.2): a hotspot node.",
    placement=PlacementSpec(model="zipf", zipf_s=1.2),
)

#: Join-the-shortest-queue routing of subtasks (the load-balancer model).
SMART_ROUTING = ScenarioSpec(
    name="smart-routing",
    description="Least-outstanding subtask placement (join shortest queue).",
    placement=PlacementSpec(model="least-outstanding"),
)

#: Heterogeneous hardware: two fast, two stock, two slow nodes.
SLOW_NODES = ScenarioSpec(
    name="slow-nodes",
    description="Heterogeneous node speeds 1.3/1.0/0.7 (two of each).",
    node_speed_factors=(1.3, 1.3, 1.0, 1.0, 0.7, 0.7),
)

#: Rush hour: load ramps to 1.4x the stationary rate for the middle half
#: of the run, quiet shoulders either side.
RUSH_HOUR = ScenarioSpec(
    name="rush-hour",
    description="Time-varying load: 0.6x / 1.4x / 0.6x piecewise profile.",
    load_profile=((0.25, 0.6), (0.5, 1.4), (0.25, 0.6)),
)

#: Everything at once at elevated load: the stress test.
STRESS_MIX = ScenarioSpec(
    name="stress-mix",
    description=(
        "Combined stress: bursty arrivals, Pareto service, Zipf hotspot, "
        "load 0.55."
    ),
    arrival=ArrivalSpec(model="hyperexp", cv2=2.0),
    service=ServiceSpec(model="pareto", shape=2.2),
    placement=PlacementSpec(model="zipf", zipf_s=1.0),
    base={"load": 0.55},
)

#: Parallel fans under smart routing: distinct-node placement where the
#: policy actually chooses (exercises the PSP strategies end to end).
PARALLEL_SMART = ScenarioSpec(
    name="parallel-smart",
    description="Parallel fans (Sec. 5.2 structure) with least-outstanding placement.",
    placement=PlacementSpec(model="least-outstanding"),
    base={"task_structure": "parallel"},
)

#: The non-preemption ablation, otherwise untouched: how much of the
#: deadline-assignment story (EQS/EQF vs. UD/DIV) survives when nodes
#: may preempt?
PREEMPTIVE_BASELINE = ScenarioSpec(
    name="preemptive-baseline",
    description="Table 1 model on preemptive-resume servers (ablation).",
    base={"preemptive": True},
)

#: Preemption on heterogeneous hardware: remaining demand is rescaled by
#: the node's speed at every (re-)dispatch.
PREEMPTIVE_HETERO_SPEEDS = ScenarioSpec(
    name="preemptive-hetero-speeds",
    description=(
        "Preemptive-resume servers with node speeds 1.3/1.0/0.7 (two of "
        "each)."
    ),
    node_speed_factors=(1.3, 1.3, 1.0, 1.0, 0.7, 0.7),
    base={"preemptive": True},
)

#: Preemption against heavy tails: urgent arrivals no longer wait behind
#: rare huge units, the scenario where preemptive-resume should shine.
PREEMPTIVE_HEAVY_TAIL = ScenarioSpec(
    name="preemptive-heavy-tail",
    description=(
        "Preemptive-resume servers under Pareto service times (shape 2.2)."
    ),
    service=ServiceSpec(model="pareto", shape=2.2),
    base={"preemptive": True},
)

#: Steady node churn: frequent independent crashes with quick repairs
#: (availability ~95%).  Gentle semantics (frozen in-flight work resumes,
#: queues survive) isolate the *latency* cost of downtime; the retry
#: layer re-routes subtasks that time out on a dead node.
STEADY_CHURN = ScenarioSpec(
    name="steady-churn",
    description=(
        "Steady node churn: MTTF 400, MTTR 20 per node; frozen work "
        "resumes; timed-out subtasks retried on live nodes."
    ),
    faults=FaultSpec(
        mttf=400.0,
        mttr=20.0,
        in_flight="resume",
        queued="preserved",
        retry_limit=2,
        retry_timeout=30.0,
        retry_backoff=1.0,
    ),
)

#: Correlated outage bursts: rarer failures, but each takes half the
#: cluster down at once (rack/switch-style shared fate) for a long
#: repair.  Stresses failure-aware placement hardest -- the survivors
#: absorb the full load.
OUTAGE_BURST = ScenarioSpec(
    name="outage-burst",
    description=(
        "Correlated outages: each failure downs 3 of 6 nodes for MTTR 60 "
        "(MTTF 1500); frozen work resumes; retries re-route."
    ),
    faults=FaultSpec(
        mttf=1500.0,
        mttr=60.0,
        blast_radius=3,
        in_flight="resume",
        queued="preserved",
        retry_limit=3,
        retry_timeout=45.0,
        retry_backoff=2.0,
    ),
)

#: Lossy recovery: crashes destroy the in-flight unit AND the ready
#: queue (no stable storage).  Without retries every lost subtask kills
#: its global task; the retry budget is what keeps MD_global bounded.
LOSSY_RECOVERY = ScenarioSpec(
    name="lossy-recovery",
    description=(
        "Lossy crashes: in-flight and queued work destroyed (MTTF 600, "
        "MTTR 25); lost subtasks retried up to 3 times with backoff."
    ),
    faults=FaultSpec(
        mttf=600.0,
        mttr=25.0,
        in_flight="lost",
        queued="dropped",
        retry_limit=3,
        retry_backoff=0.5,
        retry_backoff_factor=2.0,
    ),
)

#: Churn x preemption: the steady-churn fault process on
#: preemptive-resume servers -- crash/recover interacts with
#: remaining-demand bookkeeping and mid-service revocation.
CHURN_PREEMPTIVE = ScenarioSpec(
    name="churn-preemptive",
    description=(
        "Steady node churn (MTTF 400, MTTR 20) on preemptive-resume "
        "servers."
    ),
    faults=FaultSpec(
        mttf=400.0,
        mttr=20.0,
        in_flight="resume",
        queued="preserved",
        retry_limit=2,
        retry_timeout=30.0,
        retry_backoff=1.0,
    ),
    base={"preemptive": True},
)

#: Steady churn observed through a realistic heartbeat channel: delayed
#: and lossy heartbeats mean the manager routes on *beliefs*, not ground
#: truth -- detection lags crashes, a few live nodes are falsely
#: suspected, and submits that race a crash bounce through the misroute
#: path.
LOSSY_HEARTBEATS = ScenarioSpec(
    name="lossy-heartbeats",
    description=(
        "Steady churn (MTTF 400, MTTR 20) seen through a timeout "
        "detector over delayed (mean 0.5), 10%-lossy heartbeat links."
    ),
    faults=FaultSpec(
        mttf=400.0,
        mttr=20.0,
        in_flight="resume",
        queued="preserved",
        retry_limit=2,
        retry_timeout=30.0,
        retry_backoff=1.0,
    ),
    detector=DetectorSpec(
        kind="timeout",
        heartbeat_interval=2.0,
        timeout=6.0,
        delay_mean=0.5,
        loss_probability=0.1,
    ),
)

#: A sluggish detector against the same churn: the timeout is a sizable
#: fraction of the MTTR, so many crashes are *never* detected before the
#: node recovers (missed detections) and the manager keeps routing work
#: at dead nodes (misroutes carry the cost).
SLOW_DETECTOR_CHURN = ScenarioSpec(
    name="slow-detector-churn",
    description=(
        "Steady churn under a sluggish detector (timeout 15 vs MTTR "
        "20): missed detections and misrouted submits dominate."
    ),
    faults=FaultSpec(
        mttf=400.0,
        mttr=20.0,
        in_flight="resume",
        queued="preserved",
        retry_limit=2,
        retry_timeout=30.0,
        retry_backoff=1.0,
    ),
    detector=DetectorSpec(
        kind="timeout",
        heartbeat_interval=3.0,
        timeout=15.0,
        delay_mean=1.0,
        loss_probability=0.05,
    ),
)

#: The pure false-positive regime: perfectly reliable nodes behind a
#: twitchy phi-accrual detector on a 30%-lossy channel.  Every suspicion
#: is false; the run measures what unwarranted drain-and-rehabilitate
#: cycles cost when nothing is actually wrong.
PARANOID_DETECTOR = ScenarioSpec(
    name="paranoid-detector",
    description=(
        "No faults at all: a paranoid phi-accrual detector (threshold "
        "1.5) over a 30%-lossy channel falsely suspects live nodes."
    ),
    detector=DetectorSpec(
        kind="phi",
        heartbeat_interval=2.0,
        phi_threshold=1.5,
        loss_probability=0.3,
    ),
)

#: Observed churn on preemptive-resume servers: suspicion-driven routing
#: interacting with mid-service revocation and remaining-demand
#: bookkeeping.
DETECTOR_PREEMPTIVE = ScenarioSpec(
    name="detector-preemptive",
    description=(
        "Steady churn behind a timeout detector on preemptive-resume "
        "servers."
    ),
    faults=FaultSpec(
        mttf=400.0,
        mttr=20.0,
        in_flight="resume",
        queued="preserved",
        retry_limit=2,
        retry_timeout=30.0,
        retry_backoff=1.0,
    ),
    detector=DetectorSpec(
        kind="timeout",
        heartbeat_interval=2.0,
        timeout=6.0,
        delay_mean=0.5,
        loss_probability=0.1,
    ),
    base={"preemptive": True},
)

#: Fleet scale: 10,000 nodes fed purely by the global stream (no local
#: sources), exercising the array-backed node state, pooled work units,
#: and O(log n) placement at fleet cardinality.  The load keeps the
#: *global* task rate modest (load * k * mu / E[m] = 5 tasks per time
#: unit) so runs stay quick while every per-node structure carries the
#: full node count.
FLEET_UNIFORM = ScenarioSpec(
    name="fleet-uniform",
    description=(
        "Fleet scale: 10,000 nodes, global-only load, uniform placement."
    ),
    base={"node_count": 10_000, "frac_local": 0.0, "load": 0.002},
)

#: Fleet scale with a Zipf hotspot: over 10k nodes at s=1.2, node 0
#: absorbs ~21% of all subtasks, so the load is set where the hottest
#: node stays clearly stable (utilization_0 ~ 0.21 * load * k / 1 ~ 0.63)
#: while 10,000 nodes' worth of placement state is exercised.
FLEET_SKEWED = ScenarioSpec(
    name="fleet-skewed",
    description=(
        "Fleet scale: 10,000 nodes, Zipf-skewed placement (s=1.2), "
        "global-only load sized for a stable hotspot."
    ),
    placement=PlacementSpec(model="zipf", zipf_s=1.2),
    base={"node_count": 10_000, "frac_local": 0.0, "load": 0.0003},
)

#: The firm-deadline overload policy as a scenario dimension: tardy work
#: is discarded at dispatch instead of completing late.
FIRM_OVERLOAD = ScenarioSpec(
    name="firm-overload",
    description=(
        "Firm deadlines: abort-tardy overload policy at elevated load "
        "0.55."
    ),
    overload="abort-tardy",
    base={"load": 0.55},
)

#: Library order is presentation order (baseline first).
LIBRARY: Tuple[ScenarioSpec, ...] = (
    BASELINE,
    BURSTY_HYPEREXP,
    BURSTY_MMPP,
    HEAVY_TAIL_PARETO,
    HEAVY_TAIL_LOGNORMAL,
    HOTSPOT_ZIPF,
    SMART_ROUTING,
    SLOW_NODES,
    RUSH_HOUR,
    STRESS_MIX,
    PARALLEL_SMART,
    PREEMPTIVE_BASELINE,
    PREEMPTIVE_HETERO_SPEEDS,
    PREEMPTIVE_HEAVY_TAIL,
    STEADY_CHURN,
    OUTAGE_BURST,
    LOSSY_RECOVERY,
    CHURN_PREEMPTIVE,
    LOSSY_HEARTBEATS,
    SLOW_DETECTOR_CHURN,
    PARANOID_DETECTOR,
    DETECTOR_PREEMPTIVE,
    FLEET_UNIFORM,
    FLEET_SKEWED,
    FIRM_OVERLOAD,
)
