"""Declarative workload scenarios: frozen, JSON/dict-round-trippable specs.

The paper evaluates its SSP/PSP strategies under one stylized model --
homogeneous nodes, Poisson arrivals, exponential service, uniform-random
placement.  A :class:`ScenarioSpec` composes a
:class:`~repro.system.config.SystemConfig` with the workload dimensions
the scenario subsystem adds on top:

* :class:`ArrivalSpec`   -- bursty arrivals (hyperexponential, 2-state
  MMPP);
* :class:`ServiceSpec`   -- heavy-tailed service (Pareto, lognormal);
* :class:`PlacementSpec` -- subtask placement (uniform, round-robin,
  Zipf hotspot, least-outstanding);
* heterogeneous per-node speed factors;
* a piecewise time-varying load profile.

Specs are immutable descriptions, not runnable objects: ``to_config()``
produces the :class:`SystemConfig` the engine runs, and
``to_dict()``/``from_dict()`` round-trip through plain JSON-serializable
dicts (tuples become lists and back), so scenarios can live in files,
CLI args, or experiment archives.

Every dimension draws from its own named RNG stream (see
:mod:`repro.system.placement` and :mod:`repro.sim.rng`), so adding or
toggling scenario dimensions never perturbs the fixed-seed results of
existing models -- the ``baseline`` scenario is bit-identical to the
plain ``SystemConfig()`` path, pinned by the golden determinism gate.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, fields
from typing import Dict, Mapping, Optional, Tuple

from ..system.config import SystemConfig
from ..system.detector import DetectorSpec
from ..system.faults import FaultSpec

#: SystemConfig field names, for validating base overrides.
_CONFIG_FIELDS = {f.name for f in fields(SystemConfig)}

#: Scenario-dimension fields a spec owns; base overrides must not collide.
_DIMENSION_FIELDS = {
    "arrival_model", "arrival_cv2", "arrival_burst_ratio",
    "arrival_burst_fraction", "arrival_cycle_time",
    "service_model", "service_shape", "service_sigma",
    "placement", "placement_zipf_s",
    "node_speed_factors", "load_profile",
    "faults", "detector", "overload_policy",
}


def _tuplize(value):
    """Recursively turn lists into tuples (JSON round-trip normalization)."""
    if isinstance(value, (list, tuple)):
        return tuple(_tuplize(item) for item in value)
    return value


@dataclass(frozen=True)
class ArrivalSpec:
    """Arrival-process dimension of a scenario.

    ``model`` selects the family; the other fields parameterize it (the
    irrelevant ones are ignored and keep their defaults, so equality and
    round-trips stay simple).
    """

    model: str = "poisson"
    #: Squared coefficient of variation ("hyperexp").
    cv2: float = 1.0
    #: Burst-state rate multiplier ("mmpp2").
    burst_ratio: float = 4.0
    #: Stationary fraction of time bursting ("mmpp2").
    burst_fraction: float = 0.2
    #: Mean calm+burst cycle duration ("mmpp2").
    cycle_time: float = 200.0

    def config_fields(self) -> Dict[str, object]:
        return {
            "arrival_model": self.model,
            "arrival_cv2": self.cv2,
            "arrival_burst_ratio": self.burst_ratio,
            "arrival_burst_fraction": self.burst_fraction,
            "arrival_cycle_time": self.cycle_time,
        }


@dataclass(frozen=True)
class ServiceSpec:
    """Service-time dimension of a scenario (mean always ``1/mu``)."""

    model: str = "exponential"
    #: Pareto tail index ("pareto").
    shape: float = 2.2
    #: Log-space sigma ("lognormal").
    sigma: float = 1.0

    def config_fields(self) -> Dict[str, object]:
        return {
            "service_model": self.model,
            "service_shape": self.shape,
            "service_sigma": self.sigma,
        }


@dataclass(frozen=True)
class PlacementSpec:
    """Subtask-placement dimension of a scenario."""

    model: str = "uniform"
    #: Skew exponent ("zipf").
    zipf_s: float = 1.0

    def config_fields(self) -> Dict[str, object]:
        return {
            "placement": self.model,
            "placement_zipf_s": self.zipf_s,
        }


@dataclass(frozen=True)
class ScenarioSpec:
    """One named workload scenario: dimensions plus base-config overrides.

    ``base`` holds overrides for plain :class:`SystemConfig` fields (load,
    structure, node count, ...), normalized to a sorted tuple of
    ``(field, value)`` pairs so the spec stays frozen and hashable; pass a
    mapping and it is converted.  Construction validates eagerly by
    building a probe config, so a bad spec fails at definition time with
    the scenario's name in the message.
    """

    name: str
    description: str = ""
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    service: ServiceSpec = field(default_factory=ServiceSpec)
    placement: PlacementSpec = field(default_factory=PlacementSpec)
    #: Node-failure dimension (crash/recovery processes, retry knobs;
    #: see :mod:`repro.system.faults`).  ``None`` = perfectly reliable
    #: nodes (the paper's model).
    faults: Optional[FaultSpec] = None
    #: Failure-detection dimension (heartbeats, suspicion, misroute
    #: recovery; see :mod:`repro.system.detector`).  ``None`` = the
    #: oracle liveness view.
    detector: Optional[DetectorSpec] = None
    #: Overload-policy dimension: "no-abort" (the paper), "abort-tardy",
    #: or "abort-virtual" (see :mod:`repro.system.overload`).
    overload: str = "no-abort"
    node_speed_factors: Optional[Tuple[float, ...]] = None
    load_profile: Optional[Tuple[Tuple[float, float], ...]] = None
    base: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"scenario name must be a non-empty string, got {self.name!r}")
        base = self.base
        items = base.items() if isinstance(base, Mapping) else base
        base = tuple(
            sorted(
                ((k, _tuplize(v)) for k, v in items),
                key=lambda pair: pair[0],
            )
        )
        object.__setattr__(self, "base", base)
        if isinstance(self.faults, Mapping):
            object.__setattr__(self, "faults", FaultSpec.from_dict(self.faults))
        if isinstance(self.detector, Mapping):
            object.__setattr__(
                self, "detector", DetectorSpec.from_dict(self.detector)
            )
        object.__setattr__(
            self, "node_speed_factors", _tuplize(self.node_speed_factors)
        )
        object.__setattr__(self, "load_profile", _tuplize(self.load_profile))
        for key, _ in base:
            if key in _DIMENSION_FIELDS:
                raise ValueError(
                    f"scenario {self.name!r}: override {key!r} belongs to a "
                    "scenario dimension; set it through the arrival/service/"
                    "placement spec instead"
                )
            if key not in _CONFIG_FIELDS:
                raise ValueError(
                    f"scenario {self.name!r}: unknown SystemConfig field "
                    f"{key!r}"
                )
        try:
            self.to_config()
        except ValueError as exc:
            raise ValueError(f"scenario {self.name!r} is invalid: {exc}") from exc

    # -- materialization ----------------------------------------------------

    def to_config(self, **run_overrides) -> SystemConfig:
        """Build the :class:`SystemConfig` this scenario describes.

        ``run_overrides`` (strategy, seed, sim_time, ...) win over the
        spec's base overrides -- they are the per-run knobs the experiment
        harness stamps on.  A spec with all-default dimensions and no base
        overrides yields exactly ``SystemConfig(**run_overrides)``: the
        ``baseline`` scenario reduces to the paper's model.
        """
        settings: Dict[str, object] = dict(self.base)
        settings.update(self.arrival.config_fields())
        settings.update(self.service.config_fields())
        settings.update(self.placement.config_fields())
        settings["faults"] = self.faults
        settings["detector"] = self.detector
        settings["overload_policy"] = self.overload
        settings["node_speed_factors"] = self.node_speed_factors
        settings["load_profile"] = self.load_profile
        settings.update(run_overrides)
        return SystemConfig(**settings)

    @property
    def peak_load(self) -> float:
        """Worst-case normalized load of the scenario (stability check)."""
        return self.to_config().peak_load

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form; JSON-serializable (tuples become lists)."""

        def listify(value):
            if isinstance(value, tuple):
                return [listify(item) for item in value]
            return value

        return {
            "name": self.name,
            "description": self.description,
            "arrival": dataclasses.asdict(self.arrival),
            "service": dataclasses.asdict(self.service),
            "placement": dataclasses.asdict(self.placement),
            "faults": None if self.faults is None else self.faults.to_dict(),
            "detector": (
                None if self.detector is None else self.detector.to_dict()
            ),
            "overload": self.overload,
            "node_speed_factors": listify(self.node_speed_factors),
            "load_profile": listify(self.load_profile),
            "base": {key: listify(value) for key, value in self.base},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict` (tolerates JSON's lists-for-tuples)."""
        speeds = data.get("node_speed_factors")
        profile = data.get("load_profile")
        faults = data.get("faults")
        detector = data.get("detector")
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            arrival=ArrivalSpec(**data.get("arrival", {})),
            service=ServiceSpec(**data.get("service", {})),
            placement=PlacementSpec(**data.get("placement", {})),
            faults=None if faults is None else FaultSpec.from_dict(faults),
            detector=(
                None if detector is None else DetectorSpec.from_dict(detector)
            ),
            overload=data.get("overload", "no-abort"),
            node_speed_factors=(
                None if speeds is None else _tuplize(speeds)
            ),
            load_profile=(
                None if profile is None else _tuplize(profile)
            ),
            base=dict(data.get("base", {})),
        )

    def describe(self) -> str:
        """Compact one-line dimension summary for listings."""
        parts = []
        if self.arrival.model != "poisson":
            parts.append(f"arrival={self.arrival.model}")
        if self.service.model != "exponential":
            parts.append(f"service={self.service.model}")
        if self.placement.model != "uniform":
            parts.append(f"placement={self.placement.model}")
        if self.faults is not None and self.faults.enabled:
            parts.append(self.faults.describe())
        if self.detector is not None and self.detector.enabled:
            parts.append(self.detector.describe())
        if self.overload != "no-abort":
            parts.append(f"overload={self.overload}")
        if self.node_speed_factors is not None:
            parts.append("heterogeneous-speeds")
        if self.load_profile is not None:
            parts.append("time-varying-load")
        for key, value in self.base:
            parts.append(f"{key}={value}")
        return ", ".join(parts) if parts else "paper baseline"
