"""Scenario registry: look up library scenarios by name, register new ones.

Mirrors :mod:`repro.experiments.registry` for workload scenarios: the CLI
(``repro-experiments scenarios list|run|sweep``), the benchmarks, and the
tests all resolve scenarios through this one table.
"""

from __future__ import annotations

from typing import Dict, List

from .library import LIBRARY
from .spec import ScenarioSpec

SCENARIOS: Dict[str, ScenarioSpec] = {spec.name: spec for spec in LIBRARY}


def scenario_names() -> List[str]:
    """All registered scenario names, library order first."""
    return list(SCENARIOS)


def _find_key(name: str):
    """The registry key matching ``name`` case-insensitively, or ``None``.

    Lookup and registration share this resolution so a case-variant name
    can never bypass the collision guard (``"Baseline"`` is the library's
    ``"baseline"``, for both reads and writes).
    """
    lowered = name.lower()
    for key in SCENARIOS:
        if key.lower() == lowered:
            return key
    return None


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a scenario by name (case-insensitive)."""
    key = _find_key(name)
    if key is None:
        known = ", ".join(SCENARIOS)
        raise KeyError(f"unknown scenario {name!r}; known: {known}")
    return SCENARIOS[key]


def register_scenario(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Add a scenario to the registry (e.g. from a user's JSON file).

    Registration is idempotent for an identical spec; a *different* spec
    under an existing name (compared case-insensitively, like lookup)
    needs ``replace=True`` -- silently shadowing a library scenario would
    make result archives ambiguous.
    """
    key = _find_key(spec.name)
    if key is not None:
        existing = SCENARIOS[key]
        if existing != spec:
            if not replace:
                raise ValueError(
                    f"scenario {spec.name!r} already registered as {key!r} "
                    "with a different definition; pass replace=True to "
                    "overwrite"
                )
            del SCENARIOS[key]  # one entry per name, whatever the case
    SCENARIOS[spec.name] = spec
    return spec
