"""repro.scenarios -- declarative workload scenarios beyond the paper.

The paper's evaluation fixes one stylized model (homogeneous nodes,
Poisson arrivals, exponential service, uniform placement).  This package
layers a scenario subsystem on top of the fast engine:

* :class:`ScenarioSpec` -- frozen, JSON/dict-round-trippable description
  composing a :class:`~repro.system.config.SystemConfig` with bursty
  arrivals, heavy-tailed service, heterogeneous node speeds, pluggable
  placement, and time-varying load;
* a curated library of named scenarios (:data:`LIBRARY`) with a registry
  (:func:`get_scenario`, :func:`register_scenario`);
* a sweep runner (:func:`run_scenario_sweep`) that pushes the whole
  scenario x strategy x replication grid through the batched process
  pool and ranks strategies by missed-deadline ratio per scenario.

CLI: ``repro-experiments scenarios list|run|sweep``.
"""

from .library import LIBRARY
from .registry import (
    SCENARIOS,
    get_scenario,
    register_scenario,
    scenario_names,
)
from .report import (
    DEFAULT_STRATEGIES,
    ScenarioCell,
    ScenarioSweepResult,
    run_scenario,
    run_scenario_sweep,
    scenario_grid_configs,
)
from .spec import ArrivalSpec, PlacementSpec, ScenarioSpec, ServiceSpec

__all__ = [
    "ArrivalSpec",
    "DEFAULT_STRATEGIES",
    "LIBRARY",
    "PlacementSpec",
    "SCENARIOS",
    "ScenarioCell",
    "ScenarioSpec",
    "ScenarioSweepResult",
    "ServiceSpec",
    "get_scenario",
    "register_scenario",
    "run_scenario",
    "run_scenario_sweep",
    "scenario_grid_configs",
    "scenario_names",
]
