"""Run scenario grids and rank strategies per scenario.

The runner reuses the batched process pool behind
:func:`repro.experiments.runner.run_grid`: the whole scenario x strategy
x replication grid is flattened into one pool and sliced into
warm-interpreter batches, so a full-library sweep parallelizes exactly
like the paper's figure sweeps (CLI ``--workers`` / ``--batch-size``).

Seeding: cell ``(scenario si, strategy ti)`` uses base seed
``seed + 1_000 * si + ti`` (the same convention as
:func:`repro.experiments.runner.sweep`), and every replication derives
its own seed from that -- so any reported number is reproducible verbatim
from the echoed seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..experiments.runner import (
    QUICK,
    PointEstimate,
    RecoveredCell,
    RunScale,
    replicate,
    run_grid_report,
)
from ..stats.tables import format_percent, render_table
from ..system.config import SystemConfig
from .spec import ScenarioSpec

#: Default strategy panel for sweeps: the paper's SSP contenders plus the
#: DIV-family combination (PSP side active on parallel structures).
DEFAULT_STRATEGIES: Tuple[str, ...] = ("UD", "EQS", "EQF", "EQF-DIV1")


@dataclass(frozen=True)
class ScenarioCell:
    """One (scenario, strategy) cell of a scenario sweep."""

    scenario: str
    strategy: str
    estimate: PointEstimate


@dataclass(frozen=True)
class ScenarioSweepResult:
    """All cells of a scenario x strategy sweep plus ranking/rendering."""

    scenarios: Sequence[str]
    strategies: Sequence[str]
    cells: Sequence[ScenarioCell]
    seed: int
    #: Runs re-executed by the pool's degradation paths (empty normally;
    #: see :class:`~repro.experiments.runner.RecoveredCell`).
    recovered: Tuple[RecoveredCell, ...] = ()
    #: Runs restored from a sweep journal instead of being re-run.
    journal_restored: int = 0

    def cell(self, scenario: str, strategy: str) -> ScenarioCell:
        for cell in self.cells:
            if cell.scenario == scenario and cell.strategy == strategy:
                return cell
        raise KeyError(
            f"no cell for scenario={scenario!r}, strategy={strategy!r}"
        )

    def ranking(self, scenario: str) -> List[ScenarioCell]:
        """Strategies of one scenario, best (lowest ``MD_global``) first.

        The missed-deadline ratio of global tasks is the paper's primary
        measure; ``nan`` (nothing finished) sorts last.
        """
        cells = [c for c in self.cells if c.scenario == scenario]
        if not cells:
            raise KeyError(f"unknown scenario {scenario!r}")

        def key(cell: ScenarioCell) -> float:
            value = cell.estimate.md_global.mean
            return math.inf if math.isnan(value) else value

        return sorted(cells, key=key)

    def best_strategy(self, scenario: str) -> str:
        """Name of the strategy with the lowest global miss ratio."""
        return self.ranking(scenario)[0].strategy

    def table(self) -> str:
        """Render the per-scenario strategy ranking as one table.

        The ``preempt`` column is the total preemption count across
        nodes and replications (``PointEstimate.preemptions``): 0 for
        non-preemptive scenarios, and a direct preemption-pressure
        ranking signal for the ``preemptive-*`` family.  ``crash`` /
        ``lost`` / ``retry`` / ``fail`` are the fault-model counters
        (all 0 for fault-free scenarios): crash events, crash-discarded
        work units, retry resubmissions, and global tasks that exhausted
        their retry budget, across nodes and replications.
        ``misroute`` / ``fp`` / ``fn`` / ``detect`` are the
        failure-detection counters (all 0/- in oracle mode): submits
        bounced off crashed nodes, false suspicions of live nodes,
        crashes never detected before recovery, and the mean
        crash-to-suspicion latency.
        ``p99_late`` is the mean-over-replications global p99 lateness
        (``PointEstimate.p99_late``) -- the tail the miss-ratio columns
        cannot show; ``-`` when no replication completed a global task.
        """
        headers = [
            "scenario", "rank", "strategy", "MD_global", "MD_local", "gap",
            "p99_late", "preempt", "crash", "lost", "retry", "fail",
            "misroute", "fp", "fn", "detect",
        ]
        rows: List[List[object]] = []
        for scenario in self.scenarios:
            for rank, cell in enumerate(self.ranking(scenario), start=1):
                estimate = cell.estimate
                p99_late = estimate.p99_late
                detect = estimate.detect_latency
                rows.append([
                    scenario if rank == 1 else "",
                    rank,
                    cell.strategy,
                    format_percent(estimate.md_global.mean),
                    format_percent(estimate.md_local.mean),
                    format_percent(estimate.gap),
                    "-" if math.isnan(p99_late) else f"{p99_late:.3f}",
                    estimate.preemptions,
                    estimate.crashes,
                    estimate.lost,
                    estimate.retries,
                    estimate.failed,
                    estimate.misroutes,
                    estimate.false_suspicions,
                    estimate.missed_detections,
                    "-" if math.isnan(detect) else f"{detect:.2f}",
                ])
        table = render_table(
            headers,
            rows,
            title=(
                "Scenario sweep: strategies ranked by global "
                f"missed-deadline ratio (base seed {self.seed})"
            ),
        )
        if not self.recovered:
            return table
        # Degraded-pool footer: name every run a fallback re-executed, so
        # operators see exactly what recovered (and can re-verify those
        # seeds if they distrust the degraded path).  Normal runs print
        # no footer, keeping reports byte-identical across re-runs.
        lines = [table, "", "degraded: worker death recovered by fallback"]
        lines.extend(
            f"  [{cell.mode}] {cell.description}" for cell in self.recovered
        )
        return "\n".join(lines)


def scenario_grid_configs(
    specs: Sequence[ScenarioSpec],
    strategies: Sequence[str],
    scale: RunScale = QUICK,
    seed: int = 1,
) -> List[SystemConfig]:
    """The per-cell configs of a scenario sweep (flattened, row-major)."""
    configs: List[SystemConfig] = []
    for si, spec in enumerate(specs):
        for ti, strategy in enumerate(strategies):
            configs.append(
                scale.apply(
                    spec.to_config(
                        strategy=strategy, seed=seed + 1_000 * si + ti
                    )
                )
            )
    return configs


def run_scenario(
    spec: ScenarioSpec,
    strategy: str = "UD",
    scale: RunScale = QUICK,
    seed: int = 1,
    workers: int = 1,
    batch_size: int = 0,
    journal: Optional[str] = None,
) -> PointEstimate:
    """Run one scenario under one strategy (replicated per the scale)."""
    config = scale.apply(spec.to_config(strategy=strategy, seed=seed))
    return replicate(
        config,
        replications=scale.replications,
        workers=workers,
        batch_size=batch_size,
        journal=journal,
    )


def run_scenario_sweep(
    specs: Sequence[ScenarioSpec],
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    scale: RunScale = QUICK,
    seed: int = 1,
    workers: int = 1,
    batch_size: int = 0,
    runner: Optional[object] = None,
    journal: Optional[str] = None,
) -> ScenarioSweepResult:
    """Run the full scenario x strategy x replication grid.

    ``workers`` (``0`` = all cores) fans the flattened grid over one
    process pool in warm-interpreter batches of ``batch_size`` runs
    (``0`` = auto); results are deterministic regardless of either knob.
    ``runner`` may be injected for tests (serial, as in ``run_grid``).
    ``journal`` makes the sweep restart-safe: completed runs land in the
    JSON journal at that path as they finish, and a re-run with the same
    journal skips them and reproduces the identical report (see
    :func:`~repro.experiments.runner.run_grid_report`).
    """
    if not specs:
        raise ValueError("need at least one scenario")
    if not strategies:
        raise ValueError("need at least one strategy")
    configs = scenario_grid_configs(specs, strategies, scale, seed)
    report = run_grid_report(
        configs,
        scale.replications,
        workers=workers,
        batch_size=batch_size,
        runner=runner,
        journal=journal,
    )
    cells = [
        ScenarioCell(
            scenario=spec.name, strategy=strategy, estimate=estimate
        )
        for (spec, strategy), estimate in zip(
            ((s, t) for s in specs for t in strategies), report.estimates
        )
    ]
    return ScenarioSweepResult(
        scenarios=[spec.name for spec in specs],
        strategies=list(strategies),
        cells=cells,
        seed=seed,
        recovered=report.recovered,
        journal_restored=report.journal_restored,
    )
