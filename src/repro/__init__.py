"""repro — reproduction of Kao & Garcia-Molina,
"Deadline Assignment in a Distributed Soft Real-Time System" (ICDCS 1993).

The package implements the subtask deadline assignment (SDA) problem end to
end: a discrete-event simulation kernel (:mod:`repro.sim`), the
serial-parallel task model and the SSP/PSP strategies
(:mod:`repro.core`), the distributed system model with independent
per-node schedulers (:mod:`repro.system`), statistics utilities
(:mod:`repro.stats`), the experiment harness that regenerates every
figure of the paper (:mod:`repro.experiments`), and a declarative
scenario subsystem with workloads beyond the paper's model
(:mod:`repro.scenarios`).

Quickstart::

    from repro import Simulation, baseline_config

    result = Simulation(baseline_config(strategy="EQF", load=0.5)).run()
    print(f"MD_local  = {result.md_local:.1%}")
    print(f"MD_global = {result.md_global:.1%}")
"""

from .core import (
    LocalTask,
    ParallelTask,
    SerialTask,
    SimpleTask,
    TaskClass,
    TaskNode,
    TimingRecord,
    chain_of,
    fan_of,
    parallel,
    parse,
    serial,
)
from .core.strategies import (
    PAPER_COMBINATIONS,
    DeadlineAssigner,
    DivX,
    EffectiveDeadline,
    EqualFlexibility,
    EqualSlack,
    GlobalsFirst,
    UltimateDeadline,
    UltimateDeadlineParallel,
    parse_assigner,
)
from .system import (
    DetectorSpec,
    FaultSpec,
    RunResult,
    Simulation,
    SystemConfig,
    baseline_config,
    parallel_baseline_config,
    serial_parallel_config,
    simulate,
)

__version__ = "1.0.0"

__all__ = [
    "DeadlineAssigner",
    "DetectorSpec",
    "DivX",
    "EffectiveDeadline",
    "EqualFlexibility",
    "EqualSlack",
    "FaultSpec",
    "GlobalsFirst",
    "LocalTask",
    "PAPER_COMBINATIONS",
    "ParallelTask",
    "RunResult",
    "SerialTask",
    "SimpleTask",
    "Simulation",
    "SystemConfig",
    "TaskClass",
    "TaskNode",
    "TimingRecord",
    "UltimateDeadline",
    "UltimateDeadlineParallel",
    "baseline_config",
    "chain_of",
    "fan_of",
    "parallel",
    "parallel_baseline_config",
    "parse",
    "parse_assigner",
    "serial",
    "serial_parallel_config",
    "simulate",
]
