"""Workload generation (Sec. 4.1 / 5.2 simulation models).

Two task populations:

* **Local tasks** arrive at each node as a Poisson process with rate
  ``lambda_local``; execution times are exponential with mean
  ``1/mu_local``; slack is uniform on ``[Smin, Smax]``; the deadline is
  ``ar + ex + slack``.
* **Global tasks** arrive as a single Poisson stream with rate
  ``lambda_global``.  Their shape depends on the experiment: a serial chain
  (Sec. 4), a parallel fan (Sec. 5), or a serial-of-parallel tree (Sec. 6).
  Subtask execution times are exponential with mean ``1/mu_subtask``;
  execution nodes are picked uniformly at random (distinct nodes within a
  parallel fan, per Sec. 5.2).

Deadlines of global tasks:

* serial chain: ``dl = ar + sum_i ex(Ti) + slack`` where the slack
  distribution is the local one scaled so that ``rel_flex`` holds (see
  :class:`~repro.system.config.SystemConfig`);
* parallel fan: ``dl = ar + max_i ex(Ti) + slack`` (paper eq. (2)) with the
  paper's explicit ``[1.25, 5.0]`` baseline range;
* serial-parallel tree: ``dl = ar + critical_path_ex + slack`` -- the
  natural generalization (the critical path is what a perfectly idle
  system would need).

Note the deadline uses *real* execution times: the definition
``dl = ar + ex + sl`` fixes slack exactly, independent of prediction error.
The SDA strategies, in contrast, only ever see ``pex``.
"""

from __future__ import annotations

import types
from bisect import bisect_right
from heapq import heappush
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.estimators import Estimator, PerfectEstimator
from ..core.strategies.base import PriorityClass
from ..core.task import (
    ParallelTask,
    SerialTask,
    SimpleTask,
    TaskClass,
    TaskNode,
)
from ..core.timing import TimingRecord
from ..sim.core import Environment
from ..sim.distributions import Distribution
from ..sim.rng import StreamFactory
from .node import Node
from .placement import PlacementPolicy, UniformPlacement
from .process_manager import ProcessManager
from .work import UNIT_POOL, WorkUnit, _unit_counter

_LOCAL = TaskClass.LOCAL
_PRIORITY_NORMAL = PriorityClass.NORMAL


class _RebindSamplers:
    """Pickle support for classes holding ``Distribution.bind`` samplers.

    Stateless ``bind()`` closures cannot pickle; they are dropped from
    the snapshot and rebuilt from their ``(distribution, stream)`` pair
    at restore -- bit-identical, since every draw depends only on the
    stream's (pickled) generator state.  Stateful samplers (MMPP2) are
    picklable callable objects and pass through unchanged.
    """

    __slots__ = ()

    #: sampler attribute -> (distribution attribute, stream attribute)
    _samplers: Dict[str, Tuple[str, str]] = {}

    def __getstate__(self) -> Dict[str, object]:
        if hasattr(self, "__dict__"):
            state = dict(self.__dict__)
        else:
            state = {
                name: getattr(self, name) for name in type(self).__slots__
            }
        for field in self._samplers:
            if isinstance(state.get(field), types.FunctionType):
                state[field] = None
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        for field, (dist_name, stream_name) in self._samplers.items():
            if getattr(self, field) is None:
                setattr(
                    self,
                    field,
                    getattr(self, dist_name).bind(getattr(self, stream_name)),
                )


class PiecewiseProfile:
    """Piecewise-constant load multiplier over a run (scenario subsystem).

    Built from ``((duration_fraction, multiplier), ...)`` segments spanning
    ``sim_time`` in order; calling the profile at time ``t`` returns the
    active segment's multiplier (the last segment persists past the end).
    Arrival sources divide each interarrival gap by the multiplier at the
    moment the gap is scheduled, approximating a piecewise-constant-rate
    arrival process while consuming exactly one base draw per arrival --
    the base streams stay aligned with the stationary model's.
    """

    def __init__(
        self, segments: Sequence[Tuple[float, float]], sim_time: float
    ) -> None:
        if not segments:
            raise ValueError("profile needs at least one segment")
        if sim_time <= 0:
            raise ValueError(f"sim_time must be positive, got {sim_time}")
        bounds: List[float] = []
        multipliers: List[float] = []
        elapsed = 0.0
        for fraction, multiplier in segments:
            if fraction <= 0 or multiplier <= 0:
                raise ValueError(
                    f"segments need positive fraction and multiplier, got "
                    f"({fraction}, {multiplier})"
                )
            elapsed += fraction * sim_time
            bounds.append(elapsed)
            multipliers.append(multiplier)
        self._bounds = bounds
        self._multipliers = multipliers

    def __call__(self, t: float) -> float:
        """Multiplier in effect at time ``t``."""
        index = bisect_right(self._bounds, t)
        multipliers = self._multipliers
        if index >= len(multipliers):
            return multipliers[-1]
        return multipliers[index]


class LocalTaskSource(_RebindSamplers):
    """Poisson source of local tasks at one node.

    Implemented as a self-rescheduling timeout callback rather than a
    generator process: one arrival costs one event-list entry and one
    callback, with no coroutine suspend/resume machinery.  Random draws
    happen in the same per-stream order as the process version, so fixed
    seeds keep producing identical workloads.
    """

    _samplers = {
        "_next_interarrival": ("interarrival", "_arrival_stream"),
        "_next_execution": ("execution", "_execution_stream"),
        "_next_slack": ("slack", "_slack_stream"),
    }

    __slots__ = (
        "env",
        "node",
        "interarrival",
        "execution",
        "slack",
        "estimator",
        "_arrival_stream",
        "_execution_stream",
        "_slack_stream",
        "_estimate_stream",
        "generated",
        "_next_interarrival",
        "_next_execution",
        "_next_slack",
        "_predict",
        "_submit",
        "_node_index",
        "_on_arrive",
        "_profile",
    )

    def __init__(
        self,
        env: Environment,
        node: Node,
        interarrival: Distribution,
        execution: Distribution,
        slack: Distribution,
        streams: StreamFactory,
        estimator: Optional[Estimator] = None,
        profile: Optional[PiecewiseProfile] = None,
    ) -> None:
        self.env = env
        self.node = node
        self.interarrival = interarrival
        self.execution = execution
        self.slack = slack
        self.estimator = estimator or PerfectEstimator()
        tag = f"node-{node.index}"
        self._arrival_stream = streams.get(f"local-arrival/{tag}")
        self._execution_stream = streams.get(f"local-execution/{tag}")
        self._slack_stream = streams.get(f"local-slack/{tag}")
        self._estimate_stream = streams.get(f"local-estimate/{tag}")
        self.generated = 0
        # Hot-path bindings (one arrival per callback for the whole run).
        self._next_interarrival = interarrival.bind(self._arrival_stream)
        self._next_execution = execution.bind(self._execution_stream)
        self._next_slack = slack.bind(self._slack_stream)
        self._predict = (
            None if self.estimator.is_perfect else self.estimator.predict
        )
        self._submit = node.submit_nowait
        self._node_index = node.index
        self._profile = profile
        # Bound once; reused per arrival.  The stationary path keeps the
        # original callback untouched (zero overhead when no profile).
        self._on_arrive = (
            self._arrive if profile is None else self._arrive_modulated
        )
        gap = self._next_interarrival()
        if profile is not None:
            gap /= profile(env._now)
        env._sleep(gap, self._on_arrive)

    def _arrive(self, _event) -> None:
        """Generate one local task, then schedule the next arrival."""
        env = self.env
        self.generated += 1
        ex = self._next_execution()
        slack = self._next_slack()
        predict = self._predict
        ar = env._now
        # Inlined timing-record and work-unit construction (cf.
        # core.timing.fast_timing and WorkUnit.__init__, same stores):
        # one of each per local task for the whole run, and even the
        # constructor call frames are measurable at that rate.
        timing = TimingRecord.__new__(TimingRecord)
        timing.ar = ar
        timing.ex = ex
        timing.pex = ex if predict is None else predict(ex, self._estimate_stream)
        dl = ar + ex + slack
        timing.dl = dl
        timing.completed_at = None
        timing.started_at = None
        timing.aborted = False
        # Inlined work.acquire_unit: recycle a released unit from the
        # free list (every slot re-stamped, id from the shared monotone
        # counter), allocating only when the pool runs dry.
        unit_pool = UNIT_POOL
        free = unit_pool.free
        if free:
            unit = free.pop()
        else:
            unit = WorkUnit.__new__(WorkUnit)
            unit.pool = unit_pool
        in_use = unit_pool.in_use + 1
        unit_pool.in_use = in_use
        if in_use > unit_pool.high_water:
            unit_pool.high_water = in_use
        unit.id = next(_unit_counter)
        unit.env = env
        unit._name = None
        unit.task_class = _LOCAL
        unit.node_index = self._node_index
        unit.timing = timing
        unit.priority_class = _PRIORITY_NORMAL
        unit._done = None
        unit.on_done = None
        unit.global_id = None
        unit.stage = None
        unit.natural_deadline = dl
        unit.lost = False
        self._submit(unit)
        # Inlined env._sleep(gap, self._on_arrive): one next-arrival
        # timer per task for the whole run (cf. Node._dispatch_next).
        gap = self._next_interarrival()
        pool = env._sleep_pool
        if pool and gap >= 0.0:
            sleep = pool.pop()
            sleep.delay = gap
            sleep.callback = self._on_arrive
            sleep._processed = False
            heappush(env._queue, (env._now + gap, env._next_seq(), sleep))
        else:
            env._sleep(gap, self._on_arrive)

    def _arrive_modulated(self, _event) -> None:
        """Like :meth:`_arrive`, with the next gap scaled by the load
        profile's multiplier at the current instant (time-varying load)."""
        env = self.env
        self.generated += 1
        ex = self._next_execution()
        slack = self._next_slack()
        predict = self._predict
        ar = env._now
        timing = TimingRecord.__new__(TimingRecord)
        timing.ar = ar
        timing.ex = ex
        timing.pex = ex if predict is None else predict(ex, self._estimate_stream)
        dl = ar + ex + slack
        timing.dl = dl
        timing.completed_at = None
        timing.started_at = None
        timing.aborted = False
        # Inlined work.acquire_unit (cf. _arrive).
        unit_pool = UNIT_POOL
        free = unit_pool.free
        if free:
            unit = free.pop()
        else:
            unit = WorkUnit.__new__(WorkUnit)
            unit.pool = unit_pool
        in_use = unit_pool.in_use + 1
        unit_pool.in_use = in_use
        if in_use > unit_pool.high_water:
            unit_pool.high_water = in_use
        unit.id = next(_unit_counter)
        unit.env = env
        unit._name = None
        unit.task_class = _LOCAL
        unit.node_index = self._node_index
        unit.timing = timing
        unit.priority_class = _PRIORITY_NORMAL
        unit._done = None
        unit.on_done = None
        unit.global_id = None
        unit.stage = None
        unit.natural_deadline = dl
        unit.lost = False
        self._submit(unit)
        gap = self._next_interarrival() / self._profile(ar)
        pool = env._sleep_pool
        if pool and gap >= 0.0:
            sleep = pool.pop()
            sleep.delay = gap
            sleep.callback = self._on_arrive
            sleep._processed = False
            heappush(env._queue, (env._now + gap, env._next_seq(), sleep))
        else:
            env._sleep(gap, self._on_arrive)


class GlobalTaskFactory(_RebindSamplers):
    """Builds one global task instance (tree + end-to-end deadline)."""

    #: Expected number of simple subtasks per task (load arithmetic).
    mean_subtask_count: float

    def build(self, now: float) -> Tuple[TaskNode, float]:
        """Return ``(tree, deadline)`` for a task arriving at ``now``."""
        raise NotImplementedError


class SerialChainFactory(GlobalTaskFactory):
    """Serial global tasks ``T = [T1 T2 ... Tm]`` (Sec. 4.1).

    ``count`` may be deterministic (the baseline's fixed ``m``) or any
    integer distribution (the Sec. 4.3 "different number of subtasks"
    variation).  Execution nodes are picked uniformly at random with
    replacement -- consecutive stages may land on the same node, as in the
    paper.
    """

    _samplers = {
        "_next_count": ("count", "_count_stream"),
        "_next_execution": ("execution", "_execution_stream"),
        "_next_slack": ("slack", "_slack_stream"),
    }

    def __init__(
        self,
        node_count: int,
        count: Distribution,
        execution: Distribution,
        slack: Distribution,
        streams: StreamFactory,
        estimator: Optional[Estimator] = None,
        placement: Optional[PlacementPolicy] = None,
    ) -> None:
        if node_count < 1:
            raise ValueError(f"need at least one node, got {node_count}")
        self.node_count = node_count
        self.count = count
        self.execution = execution
        self.slack = slack
        self.estimator = estimator or PerfectEstimator()
        self.placement = placement or UniformPlacement(node_count, streams)
        self.mean_subtask_count = float(count.mean)
        self._count_stream = streams.get("global-count")
        self._execution_stream = streams.get("global-execution")
        self._slack_stream = streams.get("global-slack")
        self._pick_one = self.placement.pick_one
        self._estimate_stream = streams.get("global-estimate")
        self._next_count = count.bind(self._count_stream)
        self._next_execution = execution.bind(self._execution_stream)
        self._next_slack = slack.bind(self._slack_stream)
        self._predict = (
            None if self.estimator.is_perfect else self.estimator.predict
        )

    def build(self, now: float) -> Tuple[TaskNode, float]:
        m = int(self._next_count())
        if m < 1:
            raise ValueError(f"subtask count must be >= 1, got {m}")
        leaves = [self._make_leaf(i) for i in range(m)]
        tree: TaskNode = SerialTask(leaves) if m > 1 else leaves[0]
        total_ex = sum(leaf.ex for leaf in leaves)
        deadline = now + total_ex + self._next_slack()
        return tree, deadline

    def _make_leaf(self, index: int) -> SimpleTask:
        ex = self._next_execution()
        predict = self._predict
        return SimpleTask(
            ex=ex,
            pex=ex if predict is None else predict(ex, self._estimate_stream),
            node_index=self._pick_one(),
            name=f"stage-{index}",
        )


class ParallelFanFactory(GlobalTaskFactory):
    """Parallel global tasks ``T = [T1 || ... || Tm]`` (Sec. 5.2).

    The ``m`` subtasks run at ``m`` *distinct* nodes (sampled without
    replacement), so ``m <= k`` is required.  The deadline follows the
    paper's eq. (2): ``dl = max_i ex(Ti) + slack + ar``.
    """

    _samplers = {
        "_next_execution": ("execution", "_execution_stream"),
        "_next_slack": ("slack", "_slack_stream"),
    }

    def __init__(
        self,
        node_count: int,
        fan_out: int,
        execution: Distribution,
        slack: Distribution,
        streams: StreamFactory,
        estimator: Optional[Estimator] = None,
        placement: Optional[PlacementPolicy] = None,
    ) -> None:
        if fan_out < 1:
            raise ValueError(f"fan-out must be >= 1, got {fan_out}")
        if fan_out > node_count:
            raise ValueError(
                f"fan-out {fan_out} exceeds node count {node_count}; the "
                "paper places parallel subtasks at distinct nodes"
            )
        self.node_count = node_count
        self.fan_out = fan_out
        self.execution = execution
        self.slack = slack
        self.estimator = estimator or PerfectEstimator()
        self.placement = placement or UniformPlacement(node_count, streams)
        self.mean_subtask_count = float(fan_out)
        self._execution_stream = streams.get("global-execution")
        self._slack_stream = streams.get("global-slack")
        self._pick_distinct = self.placement.pick_distinct
        self._estimate_stream = streams.get("global-estimate")
        self._next_execution = execution.bind(self._execution_stream)
        self._next_slack = slack.bind(self._slack_stream)
        self._predict = (
            None if self.estimator.is_perfect else self.estimator.predict
        )

    def build(self, now: float) -> Tuple[TaskNode, float]:
        nodes = self._pick_distinct(self.fan_out)
        predict = self._predict
        leaves = []
        for i, node_index in enumerate(nodes):
            ex = self._next_execution()
            leaves.append(
                SimpleTask(
                    ex=ex,
                    pex=(
                        ex if predict is None
                        else predict(ex, self._estimate_stream)
                    ),
                    node_index=node_index,
                    name=f"branch-{i}",
                )
            )
        tree: TaskNode = ParallelTask(leaves) if self.fan_out > 1 else leaves[0]
        longest = max(leaf.ex for leaf in leaves)
        deadline = now + longest + self._next_slack()
        return tree, deadline


class SerialParallelFactory(GlobalTaskFactory):
    """Serial-parallel trees for the Sec. 6 experiment.

    The tree is a serial chain of ``stages`` stages, each a parallel fan of
    ``width`` subtasks at distinct nodes (width 1 degenerates to a simple
    stage).  The deadline allows the critical path (the tree's execution
    envelope) plus slack.
    """

    _samplers = {
        "_next_execution": ("execution", "_execution_stream"),
        "_next_slack": ("slack", "_slack_stream"),
    }

    def __init__(
        self,
        node_count: int,
        stages: int,
        width: int,
        execution: Distribution,
        slack: Distribution,
        streams: StreamFactory,
        estimator: Optional[Estimator] = None,
        placement: Optional[PlacementPolicy] = None,
    ) -> None:
        if stages < 1:
            raise ValueError(f"need at least one stage, got {stages}")
        if width < 1:
            raise ValueError(f"stage width must be >= 1, got {width}")
        if width > node_count:
            raise ValueError(
                f"stage width {width} exceeds node count {node_count}"
            )
        self.node_count = node_count
        self.stages = stages
        self.width = width
        self.execution = execution
        self.slack = slack
        self.estimator = estimator or PerfectEstimator()
        self.placement = placement or UniformPlacement(node_count, streams)
        self.mean_subtask_count = float(stages * width)
        self._execution_stream = streams.get("global-execution")
        self._slack_stream = streams.get("global-slack")
        self._pick_distinct = self.placement.pick_distinct
        self._estimate_stream = streams.get("global-estimate")
        self._next_execution = execution.bind(self._execution_stream)
        self._next_slack = slack.bind(self._slack_stream)
        self._predict = (
            None if self.estimator.is_perfect else self.estimator.predict
        )

    def build(self, now: float) -> Tuple[TaskNode, float]:
        predict = self._predict
        stage_nodes: List[TaskNode] = []
        for s in range(self.stages):
            leaves = []
            node_indices = self._pick_distinct(self.width)
            for b, node_index in enumerate(node_indices):
                ex = self._next_execution()
                leaves.append(
                    SimpleTask(
                        ex=ex,
                        pex=(
                            ex if predict is None
                            else predict(ex, self._estimate_stream)
                        ),
                        node_index=node_index,
                        name=f"stage-{s}-branch-{b}",
                    )
                )
            stage_nodes.append(
                ParallelTask(leaves) if self.width > 1 else leaves[0]
            )
        tree: TaskNode = (
            SerialTask(stage_nodes) if self.stages > 1 else stage_nodes[0]
        )
        deadline = now + tree.total_ex() + self._next_slack()
        return tree, deadline


class GlobalTaskSource(_RebindSamplers):
    """Single Poisson stream of global tasks feeding the process manager.

    Like :class:`LocalTaskSource`, a self-rescheduling timeout callback.
    Submission uses the manager's fire-and-forget path
    (:meth:`~repro.system.process_manager.ProcessManager.submit_nowait`):
    the source never joins on a task's outcome, so the per-task outcome
    event is skipped entirely.
    """

    _samplers = {
        "_next_interarrival": ("interarrival", "_arrival_stream"),
    }

    __slots__ = (
        "env",
        "process_manager",
        "interarrival",
        "factory",
        "_arrival_stream",
        "generated",
        "_next_interarrival",
        "_build",
        "_submit",
        "_on_arrive",
        "_profile",
    )

    def __init__(
        self,
        env: Environment,
        process_manager: ProcessManager,
        interarrival: Distribution,
        factory: GlobalTaskFactory,
        streams: StreamFactory,
        profile: Optional[PiecewiseProfile] = None,
    ) -> None:
        self.env = env
        self.process_manager = process_manager
        self.interarrival = interarrival
        self.factory = factory
        self._arrival_stream = streams.get("global-arrival")
        self.generated = 0
        self._next_interarrival = interarrival.bind(self._arrival_stream)
        self._build = factory.build
        self._submit = process_manager.submit_nowait
        self._profile = profile
        # Bound once; the stationary path keeps the original callback.
        self._on_arrive = (
            self._arrive if profile is None else self._arrive_modulated
        )
        gap = self._next_interarrival()
        if profile is not None:
            gap /= profile(env._now)
        env._sleep(gap, self._on_arrive)

    def _arrive(self, _event) -> None:
        """Launch one global task, then schedule the next arrival."""
        env = self.env
        self.generated += 1
        tree, deadline = self._build(env._now)
        self._submit(tree, deadline)
        # Global arrivals are orders of magnitude rarer than local ones,
        # so the plain kernel call (no inlined arming) is fine here.
        env._sleep(self._next_interarrival(), self._on_arrive)

    def _arrive_modulated(self, _event) -> None:
        """Like :meth:`_arrive`, with the next gap scaled by the load
        profile's multiplier at the current instant (time-varying load)."""
        env = self.env
        self.generated += 1
        now = env._now
        tree, deadline = self._build(now)
        self._submit(tree, deadline)
        gap = self._next_interarrival() / self._profile(now)
        env._sleep(gap, self._on_arrive)
