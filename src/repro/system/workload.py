"""Workload generation (Sec. 4.1 / 5.2 simulation models).

Two task populations:

* **Local tasks** arrive at each node as a Poisson process with rate
  ``lambda_local``; execution times are exponential with mean
  ``1/mu_local``; slack is uniform on ``[Smin, Smax]``; the deadline is
  ``ar + ex + slack``.
* **Global tasks** arrive as a single Poisson stream with rate
  ``lambda_global``.  Their shape depends on the experiment: a serial chain
  (Sec. 4), a parallel fan (Sec. 5), or a serial-of-parallel tree (Sec. 6).
  Subtask execution times are exponential with mean ``1/mu_subtask``;
  execution nodes are picked uniformly at random (distinct nodes within a
  parallel fan, per Sec. 5.2).

Deadlines of global tasks:

* serial chain: ``dl = ar + sum_i ex(Ti) + slack`` where the slack
  distribution is the local one scaled so that ``rel_flex`` holds (see
  :class:`~repro.system.config.SystemConfig`);
* parallel fan: ``dl = ar + max_i ex(Ti) + slack`` (paper eq. (2)) with the
  paper's explicit ``[1.25, 5.0]`` baseline range;
* serial-parallel tree: ``dl = ar + critical_path_ex + slack`` -- the
  natural generalization (the critical path is what a perfectly idle
  system would need).

Note the deadline uses *real* execution times: the definition
``dl = ar + ex + sl`` fixes slack exactly, independent of prediction error.
The SDA strategies, in contrast, only ever see ``pex``.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

from ..core.estimators import Estimator, PerfectEstimator
from ..core.task import (
    ParallelTask,
    SerialTask,
    SimpleTask,
    TaskClass,
    TaskNode,
)
from ..core.timing import TimingRecord
from ..sim.core import Environment
from ..sim.distributions import Distribution
from ..sim.rng import StreamFactory
from .node import Node
from .process_manager import ProcessManager
from .work import WorkUnit

_local_counter = itertools.count(1)


class LocalTaskSource:
    """Poisson source of local tasks at one node."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        interarrival: Distribution,
        execution: Distribution,
        slack: Distribution,
        streams: StreamFactory,
        estimator: Optional[Estimator] = None,
    ) -> None:
        self.env = env
        self.node = node
        self.interarrival = interarrival
        self.execution = execution
        self.slack = slack
        self.estimator = estimator or PerfectEstimator()
        tag = f"node-{node.index}"
        self._arrival_stream = streams.get(f"local-arrival/{tag}")
        self._execution_stream = streams.get(f"local-execution/{tag}")
        self._slack_stream = streams.get(f"local-slack/{tag}")
        self._estimate_stream = streams.get(f"local-estimate/{tag}")
        self.generated = 0
        self.process = env.process(self._generate())

    def _generate(self):
        env = self.env
        while True:
            yield env.timeout(self.interarrival.sample(self._arrival_stream))
            self.generated += 1
            ex = self.execution.sample(self._execution_stream)
            slack = self.slack.sample(self._slack_stream)
            timing = TimingRecord(
                ar=env.now,
                ex=ex,
                pex=self.estimator.predict(ex, self._estimate_stream),
            )
            timing.set_deadline_from_slack(slack)
            unit = WorkUnit(
                env=env,
                name=f"local-{next(_local_counter)}",
                task_class=TaskClass.LOCAL,
                node_index=self.node.index,
                timing=timing,
            )
            self.node.submit(unit)


class GlobalTaskFactory:
    """Builds one global task instance (tree + end-to-end deadline)."""

    #: Expected number of simple subtasks per task (load arithmetic).
    mean_subtask_count: float

    def build(self, now: float) -> Tuple[TaskNode, float]:
        """Return ``(tree, deadline)`` for a task arriving at ``now``."""
        raise NotImplementedError


class SerialChainFactory(GlobalTaskFactory):
    """Serial global tasks ``T = [T1 T2 ... Tm]`` (Sec. 4.1).

    ``count`` may be deterministic (the baseline's fixed ``m``) or any
    integer distribution (the Sec. 4.3 "different number of subtasks"
    variation).  Execution nodes are picked uniformly at random with
    replacement -- consecutive stages may land on the same node, as in the
    paper.
    """

    def __init__(
        self,
        node_count: int,
        count: Distribution,
        execution: Distribution,
        slack: Distribution,
        streams: StreamFactory,
        estimator: Optional[Estimator] = None,
    ) -> None:
        if node_count < 1:
            raise ValueError(f"need at least one node, got {node_count}")
        self.node_count = node_count
        self.count = count
        self.execution = execution
        self.slack = slack
        self.estimator = estimator or PerfectEstimator()
        self.mean_subtask_count = float(count.mean)
        self._count_stream = streams.get("global-count")
        self._execution_stream = streams.get("global-execution")
        self._slack_stream = streams.get("global-slack")
        self._route_stream = streams.get("global-route")
        self._estimate_stream = streams.get("global-estimate")

    def build(self, now: float) -> Tuple[TaskNode, float]:
        m = int(self.count.sample(self._count_stream))
        if m < 1:
            raise ValueError(f"subtask count must be >= 1, got {m}")
        leaves = [self._make_leaf(i) for i in range(m)]
        tree: TaskNode = SerialTask(leaves) if m > 1 else leaves[0]
        total_ex = sum(leaf.ex for leaf in leaves)
        deadline = now + total_ex + self.slack.sample(self._slack_stream)
        return tree, deadline

    def _make_leaf(self, index: int) -> SimpleTask:
        ex = self.execution.sample(self._execution_stream)
        return SimpleTask(
            ex=ex,
            pex=self.estimator.predict(ex, self._estimate_stream),
            node_index=self._route_stream.randrange(self.node_count),
            name=f"stage-{index}",
        )


class ParallelFanFactory(GlobalTaskFactory):
    """Parallel global tasks ``T = [T1 || ... || Tm]`` (Sec. 5.2).

    The ``m`` subtasks run at ``m`` *distinct* nodes (sampled without
    replacement), so ``m <= k`` is required.  The deadline follows the
    paper's eq. (2): ``dl = max_i ex(Ti) + slack + ar``.
    """

    def __init__(
        self,
        node_count: int,
        fan_out: int,
        execution: Distribution,
        slack: Distribution,
        streams: StreamFactory,
        estimator: Optional[Estimator] = None,
    ) -> None:
        if fan_out < 1:
            raise ValueError(f"fan-out must be >= 1, got {fan_out}")
        if fan_out > node_count:
            raise ValueError(
                f"fan-out {fan_out} exceeds node count {node_count}; the "
                "paper places parallel subtasks at distinct nodes"
            )
        self.node_count = node_count
        self.fan_out = fan_out
        self.execution = execution
        self.slack = slack
        self.estimator = estimator or PerfectEstimator()
        self.mean_subtask_count = float(fan_out)
        self._execution_stream = streams.get("global-execution")
        self._slack_stream = streams.get("global-slack")
        self._route_stream = streams.get("global-route")
        self._estimate_stream = streams.get("global-estimate")

    def build(self, now: float) -> Tuple[TaskNode, float]:
        nodes = self._route_stream.sample(range(self.node_count), self.fan_out)
        leaves = []
        for i, node_index in enumerate(nodes):
            ex = self.execution.sample(self._execution_stream)
            leaves.append(
                SimpleTask(
                    ex=ex,
                    pex=self.estimator.predict(ex, self._estimate_stream),
                    node_index=node_index,
                    name=f"branch-{i}",
                )
            )
        tree: TaskNode = ParallelTask(leaves) if self.fan_out > 1 else leaves[0]
        longest = max(leaf.ex for leaf in leaves)
        deadline = now + longest + self.slack.sample(self._slack_stream)
        return tree, deadline


class SerialParallelFactory(GlobalTaskFactory):
    """Serial-parallel trees for the Sec. 6 experiment.

    The tree is a serial chain of ``stages`` stages, each a parallel fan of
    ``width`` subtasks at distinct nodes (width 1 degenerates to a simple
    stage).  The deadline allows the critical path (the tree's execution
    envelope) plus slack.
    """

    def __init__(
        self,
        node_count: int,
        stages: int,
        width: int,
        execution: Distribution,
        slack: Distribution,
        streams: StreamFactory,
        estimator: Optional[Estimator] = None,
    ) -> None:
        if stages < 1:
            raise ValueError(f"need at least one stage, got {stages}")
        if width < 1:
            raise ValueError(f"stage width must be >= 1, got {width}")
        if width > node_count:
            raise ValueError(
                f"stage width {width} exceeds node count {node_count}"
            )
        self.node_count = node_count
        self.stages = stages
        self.width = width
        self.execution = execution
        self.slack = slack
        self.estimator = estimator or PerfectEstimator()
        self.mean_subtask_count = float(stages * width)
        self._execution_stream = streams.get("global-execution")
        self._slack_stream = streams.get("global-slack")
        self._route_stream = streams.get("global-route")
        self._estimate_stream = streams.get("global-estimate")

    def build(self, now: float) -> Tuple[TaskNode, float]:
        stage_nodes: List[TaskNode] = []
        for s in range(self.stages):
            leaves = []
            node_indices = self._route_stream.sample(
                range(self.node_count), self.width
            )
            for b, node_index in enumerate(node_indices):
                ex = self.execution.sample(self._execution_stream)
                leaves.append(
                    SimpleTask(
                        ex=ex,
                        pex=self.estimator.predict(ex, self._estimate_stream),
                        node_index=node_index,
                        name=f"stage-{s}-branch-{b}",
                    )
                )
            stage_nodes.append(
                ParallelTask(leaves) if self.width > 1 else leaves[0]
            )
        tree: TaskNode = (
            SerialTask(stage_nodes) if self.stages > 1 else stage_nodes[0]
        )
        deadline = now + tree.total_ex() + self.slack.sample(self._slack_stream)
        return tree, deadline


class GlobalTaskSource:
    """Single Poisson stream of global tasks feeding the process manager."""

    def __init__(
        self,
        env: Environment,
        process_manager: ProcessManager,
        interarrival: Distribution,
        factory: GlobalTaskFactory,
        streams: StreamFactory,
    ) -> None:
        self.env = env
        self.process_manager = process_manager
        self.interarrival = interarrival
        self.factory = factory
        self._arrival_stream = streams.get("global-arrival")
        self.generated = 0
        self.process = env.process(self._generate())

    def _generate(self):
        env = self.env
        while True:
            yield env.timeout(self.interarrival.sample(self._arrival_stream))
            self.generated += 1
            tree, deadline = self.factory.build(env.now)
            self.process_manager.submit(tree, deadline)
