"""Missed-deadline and queueing metrics (the paper's measurements).

The paper's primary performance measure is the *percentage of missed
deadlines* ("miss ratio"), conditioned on task class: ``MD_local`` and
``MD_global``.  This module collects those plus the supporting statistics a
practitioner wants when debugging a run: response times, lateness, waiting
times, per-node utilization and queue lengths.

Warm-up: experiments call :meth:`MetricsCollector.reset` at the end of the
transient phase; only completions recorded after the reset count.  (Tasks
that *arrived* before the reset but finish after it still count -- standard
practice for steady-state miss-ratio estimation, and the bias vanishes as
the window grows.)
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional

from ..core.task import TaskClass
from ..sim.monitor import MeanTally, TimeWeighted
from .work import WorkUnit


@dataclass(frozen=True)
class ClassStats:
    """Immutable snapshot of one task class's outcome statistics."""

    completed: int
    missed: int
    aborted: int
    mean_response: float
    mean_lateness: float
    mean_waiting: float
    #: Tasks whose retry budget was exhausted after crash losses (the
    #: ``"failed"`` :class:`GlobalTaskOutcome` disposition).  A subset of
    #: ``aborted`` -- failed tasks are counted in both.
    failed: int = 0

    @property
    def miss_ratio(self) -> float:
        """Fraction of finished tasks that missed their deadline.

        Aborted tasks count as missed (they certainly did not finish in
        time).  Returns ``nan`` when nothing finished.
        """
        total = self.completed + self.aborted
        if total == 0:
            return float("nan")
        return self.missed / total

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClassStats":
        return cls(**data)


@dataclass(frozen=True)
class NodeStats:
    """Immutable snapshot of one node's load statistics."""

    index: int
    utilization: float
    mean_queue_length: float
    dispatched: int
    #: Preemption events at this node within the measured window (always
    #: 0 for non-preemptive nodes).  Unlike the node object's lifetime
    #: ``preemptions`` diagnostic, this counter restarts at the warm-up
    #: reset, so sweeps can rank scenarios/strategies by preemption rate.
    preemptions: int = 0
    #: Crash events at this node within the measured window.
    crashes: int = 0
    #: Work units discarded by crashes at this node (in-flight units under
    #: ``in_flight="lost"`` plus queued units under ``queued="dropped"``).
    lost: int = 0
    #: Fraction of the measured window this node spent down (time-weighted
    #: mean of the 0/1 down signal; 0.0 in fault-free runs).
    downtime: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "NodeStats":
        return cls(**data)


@dataclass(frozen=True)
class RunResult:
    """Everything measured in one simulation run."""

    sim_time: float
    warmup: float
    per_class: Dict[str, ClassStats]
    per_node: List[NodeStats]
    #: Leaf resubmissions by the process manager's retry layer within the
    #: measured window (0 unless a retry-enabled :class:`FaultSpec` is set).
    retries: int = 0

    @property
    def local(self) -> ClassStats:
        return self.per_class[TaskClass.LOCAL.value]

    @property
    def global_(self) -> ClassStats:
        return self.per_class[TaskClass.GLOBAL.value]

    @property
    def md_local(self) -> float:
        """``MD_local``: miss ratio of local tasks."""
        return self.local.miss_ratio

    @property
    def md_global(self) -> float:
        """``MD_global``: miss ratio of global tasks (end-to-end)."""
        return self.global_.miss_ratio

    @property
    def mean_utilization(self) -> float:
        """Average *wall-clock* utilization across nodes.

        The denominator is the full measured window, downtime included:
        a node that is down delivers no service, so its lost capacity
        *should* depress this number -- that keeps the classic sanity
        check against the offered ``load`` meaningful (a fault-free run
        at load 0.8 and a faulty run at load 0.8 with 10% downtime
        genuinely differ in delivered work).  For the complementary
        availability-adjusted view (busy time over *uptime*), see
        :attr:`mean_active_utilization`.
        """
        if not self.per_node:
            return float("nan")
        return sum(n.utilization for n in self.per_node) / len(self.per_node)

    @property
    def mean_active_utilization(self) -> float:
        """Average utilization over each node's *uptime* (availability-
        adjusted): how hard the node worked while it was alive.  A node
        down for the whole window contributes 0.0.  Equals
        :attr:`mean_utilization` in fault-free runs.
        """
        if not self.per_node:
            return float("nan")
        total = 0.0
        for n in self.per_node:
            uptime = 1.0 - n.downtime
            total += n.utilization / uptime if uptime > 0.0 else 0.0
        return total / len(self.per_node)

    @property
    def mean_availability(self) -> float:
        """Average fraction of the window nodes were up (1.0 fault-free)."""
        if not self.per_node:
            return float("nan")
        return 1.0 - sum(n.downtime for n in self.per_node) / len(self.per_node)

    @property
    def total_preemptions(self) -> int:
        """Preemption events across all nodes in the measured window."""
        return sum(n.preemptions for n in self.per_node)

    @property
    def total_crashes(self) -> int:
        """Crash events across all nodes in the measured window."""
        return sum(n.crashes for n in self.per_node)

    @property
    def total_lost(self) -> int:
        """Crash-discarded work units across all nodes in the window."""
        return sum(n.lost for n in self.per_node)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form; exact inverse of :meth:`from_dict`.

        Floats survive a ``json.dumps``/``loads`` round-trip bit for bit
        (``repr`` round-trips doubles, and ``nan`` is emitted as the
        ``NaN`` literal), so a journaled result equals the original.
        """
        return {
            "sim_time": self.sim_time,
            "warmup": self.warmup,
            "per_class": {
                name: stats.to_dict()
                for name, stats in self.per_class.items()
            },
            "per_node": [stats.to_dict() for stats in self.per_node],
            "retries": self.retries,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        return cls(
            sim_time=data["sim_time"],
            warmup=data["warmup"],
            per_class={
                name: ClassStats.from_dict(stats)
                for name, stats in data["per_class"].items()
            },
            per_node=[
                NodeStats.from_dict(stats) for stats in data["per_node"]
            ],
            retries=data["retries"],
        )


class _ClassAccumulator:
    """Mutable per-class counters behind :class:`ClassStats`."""

    __slots__ = (
        "completed",
        "missed",
        "aborted",
        "failed",
        "response",
        "lateness",
        "waiting",
    )

    def __init__(self, label: str) -> None:
        self.completed = 0
        self.missed = 0
        self.aborted = 0
        self.failed = 0
        self.response = MeanTally(f"{label}/response")
        self.lateness = MeanTally(f"{label}/lateness")
        self.waiting = MeanTally(f"{label}/waiting")

    def reset(self) -> None:
        self.completed = 0
        self.missed = 0
        self.aborted = 0
        self.failed = 0
        self.response.reset()
        self.lateness.reset()
        self.waiting.reset()

    def snapshot(self) -> ClassStats:
        return ClassStats(
            completed=self.completed,
            missed=self.missed,
            aborted=self.aborted,
            mean_response=self.response.mean,
            mean_lateness=self.lateness.mean,
            mean_waiting=self.waiting.mean,
            failed=self.failed,
        )


_LOCAL = TaskClass.LOCAL


class MetricsCollector:
    """Central sink for task outcomes and node load signals."""

    def __init__(self, node_count: int) -> None:
        self._classes: Dict[TaskClass, _ClassAccumulator] = {
            cls: _ClassAccumulator(cls.value) for cls in TaskClass
        }
        # Bound once: accumulators are reset in place, never replaced.
        self._local_acc = self._classes[TaskClass.LOCAL]
        self._global_acc = self._classes[TaskClass.GLOBAL]
        self.node_busy: List[TimeWeighted] = [
            TimeWeighted(f"node-{i}/busy") for i in range(node_count)
        ]
        self.node_queue: List[TimeWeighted] = [
            TimeWeighted(f"node-{i}/queue") for i in range(node_count)
        ]
        self.node_dispatched: List[int] = [0] * node_count
        #: Per-node preemption counts (preemptive nodes increment their
        #: slot inline; reset at warm-up like ``node_dispatched``).
        self.node_preemptions: List[int] = [0] * node_count
        #: Per-node crash counts (incremented by the fault injector).
        self.node_crashes: List[int] = [0] * node_count
        #: Per-node crash-discarded unit counts (incremented by the nodes'
        #: ``_discard_lost``).
        self.node_lost: List[int] = [0] * node_count
        #: Per-node 0/1 down signal (1.0 while crashed); ``reset`` keeps
        #: the current value, so a node down across the warm-up boundary
        #: keeps accruing downtime in the measured window.
        self.node_down: List[TimeWeighted] = [
            TimeWeighted(f"node-{i}/down") for i in range(node_count)
        ]
        #: Leaf resubmissions by the process manager's retry layer.
        self.retries = 0
        self._warmup_end = 0.0
        self._tracer = None

    @property
    def tracer(self):
        """Optional execution tracer (see :mod:`repro.system.tracing`).

        ``None`` (the default) keeps the hot path free of tracing
        overhead: the node loops read the backing ``_tracer`` field and
        guard every trace point with an ``is None`` check, so tracing off
        costs one pointer comparison per trace point.
        """
        return self._tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        self._tracer = tracer

    def trace(self, time: float, kind: str, unit, node_index: int) -> None:
        """Forward one scheduling event to the tracer, if attached."""
        if self._tracer is not None:
            self._tracer.record(time, kind, unit, node_index)

    # -- recording ---------------------------------------------------------

    def record_unit_completion(self, unit: WorkUnit) -> None:
        """Record the outcome of a finished *local* work unit.

        Global subtasks are not recorded here: the paper's ``MD_global`` is
        an end-to-end measure, recorded once per global task by
        :meth:`record_global_completion`.

        The body inlines the equivalents of ``timing.missed`` /
        ``.response_time`` / ``.lateness`` / ``.waiting_time`` plus the
        three ``MeanTally.observe`` calls (Welford's mean update, same
        arithmetic).  This runs once per completed unit, and the
        property chain plus the call frames cost more than the whole
        update.  A node only records after stamping ``completed_at``,
        so the property guards cannot fire here.
        """
        if unit.task_class is not _LOCAL:
            return
        acc = self._local_acc
        timing = unit.timing
        if timing.aborted:
            acc.aborted += 1
            acc.missed += 1
            return
        acc.completed += 1
        completed_at = timing.completed_at
        deadline = timing.dl
        if completed_at > deadline:
            acc.missed += 1
        arrival = timing.ar

        tally = acc.response
        count = tally.count + 1
        tally.count = count
        tally._mean += (completed_at - arrival - tally._mean) / count

        tally = acc.lateness
        count = tally.count + 1
        tally.count = count
        tally._mean += (completed_at - deadline - tally._mean) / count

        started_at = timing.started_at
        if started_at is not None:
            tally = acc.waiting
            count = tally.count + 1
            tally.count = count
            tally._mean += (started_at - arrival - tally._mean) / count

    def record_global_completion(
        self,
        timing_missed: bool,
        aborted: bool,
        response_time: Optional[float] = None,
        lateness: Optional[float] = None,
        failed: bool = False,
    ) -> None:
        """Record the end-to-end outcome of one global task.

        An aborted task never completed, so it has no response time or
        lateness; callers pass ``None`` (the default) and only the
        aborted/missed counters move.  ``failed`` marks the retry-budget-
        exhausted disposition (a subset of aborted).
        """
        acc = self._global_acc
        if aborted:
            acc.aborted += 1
            acc.missed += 1
            if failed:
                acc.failed += 1
            return
        acc.completed += 1
        if timing_missed:
            acc.missed += 1
        acc.response.observe(response_time)
        acc.lateness.observe(lateness)

    def count_dispatch(self, node_index: int) -> None:
        """Count one dispatch decision at a node."""
        self.node_dispatched[node_index] += 1

    # -- warm-up and snapshots ----------------------------------------------

    def reset(self, now: float) -> None:
        """Discard the transient phase; statistics restart at ``now``."""
        for acc in self._classes.values():
            acc.reset()
        for signal in self.node_busy:
            signal.reset(now)
        for signal in self.node_queue:
            signal.reset(now)
        # In place: node server loops hold references to these lists.
        self.node_dispatched[:] = [0] * len(self.node_dispatched)
        self.node_preemptions[:] = [0] * len(self.node_preemptions)
        self.node_crashes[:] = [0] * len(self.node_crashes)
        self.node_lost[:] = [0] * len(self.node_lost)
        # TimeWeighted.reset keeps the current value: a node down across
        # the warm-up boundary stays down in the measured window.
        for signal in self.node_down:
            signal.reset(now)
        self.retries = 0
        self._warmup_end = now

    def snapshot(self, now: float) -> RunResult:
        """Freeze current statistics into a :class:`RunResult`."""
        per_node = [
            NodeStats(
                index=i,
                utilization=self.node_busy[i].mean_at(now),
                mean_queue_length=self.node_queue[i].mean_at(now),
                dispatched=self.node_dispatched[i],
                preemptions=self.node_preemptions[i],
                crashes=self.node_crashes[i],
                lost=self.node_lost[i],
                downtime=self.node_down[i].mean_at(now),
            )
            for i in range(len(self.node_busy))
        ]
        per_class = {
            cls.value: acc.snapshot() for cls, acc in self._classes.items()
        }
        return RunResult(
            sim_time=now,
            warmup=self._warmup_end,
            per_class=per_class,
            per_node=per_node,
            retries=self.retries,
        )
