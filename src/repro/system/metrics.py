"""Missed-deadline and queueing metrics (the paper's measurements).

The paper's primary performance measure is the *percentage of missed
deadlines* ("miss ratio"), conditioned on task class: ``MD_local`` and
``MD_global``.  This module collects those plus the supporting statistics a
practitioner wants when debugging a run: response times, lateness, waiting
times, per-node utilization and queue lengths.

Warm-up: experiments call :meth:`MetricsCollector.reset` at the end of the
transient phase; only completions recorded after the reset count.  (Tasks
that *arrived* before the reset but finish after it still count -- standard
practice for steady-state miss-ratio estimation, and the bias vanishes as
the window grows.)
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional

from ..core.task import TaskClass
from ..sim.monitor import DecayedMean, DecayedRate, MeanTally
from ..sim.sketch import QuantileSketch
from .fleet import FleetState, SignalViews
from .work import WorkUnit

#: The singleton ``nan`` used for "no observations" fields.  One shared
#: object matters: dataclass equality compares fields element-wise with
#: the identity shortcut, so two empty snapshots compare equal exactly
#: when both carry *this* object (as :class:`MeanTally`/``QuantileSketch``
#: guarantee by returning ``math.nan`` itself).
_NAN = math.nan

#: Above this node count, per-node detail is dropped from emitted
#: reports (``RunResult.to_dict(aggregate_nodes=True)``) and from the
#: windowed per-node signals: a 100k-node interval record would
#: otherwise serialize 100k dicts per emission.  In-process snapshots
#: always keep full per-node stats; only serialized/streamed forms and
#: the windowed per-node detail are bounded.
PER_NODE_DETAIL_THRESHOLD = 256


@dataclass(frozen=True)
class ClassStats:
    """Immutable snapshot of one task class's outcome statistics."""

    completed: int
    missed: int
    aborted: int
    mean_response: float
    mean_lateness: float
    mean_waiting: float
    #: Tasks whose retry budget was exhausted after crash losses (the
    #: ``"failed"`` :class:`GlobalTaskOutcome` disposition).  A subset of
    #: ``aborted`` -- failed tasks are counted in both.
    failed: int = 0
    #: Streaming percentile estimates of response time and lateness,
    #: from O(1)-memory P² sketches (:mod:`repro.sim.sketch`): exact for
    #: up to five completions, Jain/Chlamtac marker estimates beyond.
    #: ``nan`` when nothing completed.
    p50_response: float = _NAN
    p95_response: float = _NAN
    p99_response: float = _NAN
    p50_lateness: float = _NAN
    p95_lateness: float = _NAN
    p99_lateness: float = _NAN

    @property
    def miss_ratio(self) -> float:
        """Fraction of finished tasks that missed their deadline.

        Aborted tasks count as missed (they certainly did not finish in
        time).  Returns ``nan`` when nothing finished.
        """
        total = self.completed + self.aborted
        if total == 0:
            return float("nan")
        return self.missed / total

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClassStats":
        """Inverse of :meth:`to_dict`, tolerant of older records.

        Fields added after a journal was written default (counters to 0,
        percentiles to ``nan``), and unknown keys are ignored -- so sweep
        journals from any prior release stay loadable.
        """
        return cls(
            completed=data["completed"],
            missed=data["missed"],
            aborted=data["aborted"],
            mean_response=data["mean_response"],
            mean_lateness=data["mean_lateness"],
            mean_waiting=data["mean_waiting"],
            failed=data.get("failed", 0),
            p50_response=data.get("p50_response", _NAN),
            p95_response=data.get("p95_response", _NAN),
            p99_response=data.get("p99_response", _NAN),
            p50_lateness=data.get("p50_lateness", _NAN),
            p95_lateness=data.get("p95_lateness", _NAN),
            p99_lateness=data.get("p99_lateness", _NAN),
        )


@dataclass(frozen=True)
class NodeStats:
    """Immutable snapshot of one node's load statistics."""

    index: int
    utilization: float
    mean_queue_length: float
    dispatched: int
    #: Preemption events at this node within the measured window (always
    #: 0 for non-preemptive nodes).  Unlike the node object's lifetime
    #: ``preemptions`` diagnostic, this counter restarts at the warm-up
    #: reset, so sweeps can rank scenarios/strategies by preemption rate.
    preemptions: int = 0
    #: Crash events at this node within the measured window.
    crashes: int = 0
    #: Work units discarded by crashes at this node (in-flight units under
    #: ``in_flight="lost"`` plus queued units under ``queued="dropped"``).
    lost: int = 0
    #: Fraction of the measured window this node spent down (time-weighted
    #: mean of the 0/1 down signal; 0.0 in fault-free runs).
    downtime: float = 0.0
    #: Times the failure detector marked this node suspected within the
    #: measured window (0 unless a :class:`DetectorSpec` is enabled).
    suspicions: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "NodeStats":
        """Inverse of :meth:`to_dict`, tolerant of older records (fields
        added later default; unknown keys are ignored)."""
        return cls(
            index=data["index"],
            utilization=data["utilization"],
            mean_queue_length=data["mean_queue_length"],
            dispatched=data["dispatched"],
            preemptions=data.get("preemptions", 0),
            crashes=data.get("crashes", 0),
            lost=data.get("lost", 0),
            downtime=data.get("downtime", 0.0),
            suspicions=data.get("suspicions", 0),
        )


@dataclass(frozen=True)
class RunResult:
    """Everything measured in one simulation run."""

    sim_time: float
    warmup: float
    per_class: Dict[str, ClassStats]
    per_node: List[NodeStats]
    #: Leaf resubmissions by the process manager's retry layer within the
    #: measured window (0 unless a retry-enabled :class:`FaultSpec` is set).
    retries: int = 0
    #: Submits that reached a truly-crashed node and bounced through the
    #: process manager's misroute path (0 unless a detector is enabled).
    misroutes: int = 0
    #: Detector suspicions of nodes that were actually up (false
    #: positives of the failure detector).
    false_suspicions: int = 0
    #: True down intervals that ended without ever being suspected
    #: (false negatives of the failure detector, counted at recovery).
    missed_detections: int = 0
    #: True crashes the detector suspected while the node was down.
    detections: int = 0
    #: Mean time from a true crash to its suspicion (``nan`` when no
    #: detection carried a latency sample).
    detection_latency: float = _NAN
    #: Aggregated node statistics, present on results loaded from records
    #: written with ``to_dict(aggregate_nodes=True)`` (fleet-size runs
    #: drop per-node detail from serialized forms).  ``None`` on results
    #: snapshotted in-process, which keep full :attr:`per_node` detail.
    node_summary: Optional[Dict[str, Any]] = None

    @property
    def local(self) -> ClassStats:
        return self.per_class[TaskClass.LOCAL.value]

    @property
    def global_(self) -> ClassStats:
        return self.per_class[TaskClass.GLOBAL.value]

    @property
    def md_local(self) -> float:
        """``MD_local``: miss ratio of local tasks."""
        return self.local.miss_ratio

    @property
    def md_global(self) -> float:
        """``MD_global``: miss ratio of global tasks (end-to-end)."""
        return self.global_.miss_ratio

    @property
    def mean_utilization(self) -> float:
        """Average *wall-clock* utilization across nodes.

        The denominator is the full measured window, downtime included:
        a node that is down delivers no service, so its lost capacity
        *should* depress this number -- that keeps the classic sanity
        check against the offered ``load`` meaningful (a fault-free run
        at load 0.8 and a faulty run at load 0.8 with 10% downtime
        genuinely differ in delivered work).  For the complementary
        availability-adjusted view (busy time over *uptime*), see
        :attr:`mean_active_utilization`.
        """
        if not self.per_node:
            if self.node_summary:
                return self.node_summary.get("utilization_mean", float("nan"))
            return float("nan")
        return sum(n.utilization for n in self.per_node) / len(self.per_node)

    @property
    def mean_active_utilization(self) -> float:
        """Average utilization over each node's *uptime* (availability-
        adjusted): how hard the node worked while it was alive.  A node
        down for the whole window contributes 0.0.  Equals
        :attr:`mean_utilization` in fault-free runs.
        """
        if not self.per_node:
            if self.node_summary:
                return self.node_summary.get(
                    "active_utilization_mean", float("nan")
                )
            return float("nan")
        total = 0.0
        for n in self.per_node:
            uptime = 1.0 - n.downtime
            total += n.utilization / uptime if uptime > 0.0 else 0.0
        return total / len(self.per_node)

    @property
    def mean_availability(self) -> float:
        """Average fraction of the window nodes were up (1.0 fault-free)."""
        if not self.per_node:
            if self.node_summary:
                return 1.0 - self.node_summary.get("downtime_mean", 0.0)
            return float("nan")
        return 1.0 - sum(n.downtime for n in self.per_node) / len(self.per_node)

    @property
    def total_preemptions(self) -> int:
        """Preemption events across all nodes in the measured window."""
        if not self.per_node and self.node_summary:
            return self.node_summary.get("preemptions", 0)
        return sum(n.preemptions for n in self.per_node)

    @property
    def total_crashes(self) -> int:
        """Crash events across all nodes in the measured window."""
        if not self.per_node and self.node_summary:
            return self.node_summary.get("crashes", 0)
        return sum(n.crashes for n in self.per_node)

    @property
    def total_lost(self) -> int:
        """Crash-discarded work units across all nodes in the window."""
        if not self.per_node and self.node_summary:
            return self.node_summary.get("lost", 0)
        return sum(n.lost for n in self.per_node)

    @property
    def total_suspicions(self) -> int:
        """Detector suspicion events across all nodes in the window."""
        if not self.per_node and self.node_summary:
            return self.node_summary.get("suspicions", 0)
        return sum(n.suspicions for n in self.per_node)

    @staticmethod
    def _summarize_nodes(per_node: List[NodeStats]) -> Dict[str, Any]:
        """Fold per-node detail into the bounded aggregate record."""
        count = len(per_node)
        if count == 0:
            return {"count": 0}
        util_sum = 0.0
        util_min = math.inf
        util_max = -math.inf
        active_sum = 0.0
        queue_sum = 0.0
        downtime_sum = 0.0
        dispatched = preemptions = crashes = lost = suspicions = 0
        for n in per_node:
            util = n.utilization
            util_sum += util
            if util < util_min:
                util_min = util
            if util > util_max:
                util_max = util
            uptime = 1.0 - n.downtime
            active_sum += util / uptime if uptime > 0.0 else 0.0
            queue_sum += n.mean_queue_length
            downtime_sum += n.downtime
            dispatched += n.dispatched
            preemptions += n.preemptions
            crashes += n.crashes
            lost += n.lost
            suspicions += n.suspicions
        return {
            "count": count,
            "utilization_mean": util_sum / count,
            "utilization_min": util_min,
            "utilization_max": util_max,
            "active_utilization_mean": active_sum / count,
            "queue_length_mean": queue_sum / count,
            "downtime_mean": downtime_sum / count,
            "dispatched": dispatched,
            "preemptions": preemptions,
            "crashes": crashes,
            "lost": lost,
            "suspicions": suspicions,
        }

    def to_dict(self, aggregate_nodes: bool = False) -> Dict[str, Any]:
        """JSON-serializable form; exact inverse of :meth:`from_dict`.

        Floats survive a ``json.dumps``/``loads`` round-trip bit for bit
        (``repr`` round-trips doubles, and ``nan`` is emitted as the
        ``NaN`` literal), so a journaled result equals the original.

        ``aggregate_nodes=True`` is the fleet-size form: per-node detail
        is replaced by one bounded ``node_summary`` dict (means/extrema
        of utilization, total dispatch/crash/loss counts), so a 100k-node
        record serializes in O(1) instead of O(n).  The default emits the
        exact historical record, byte for byte.
        """
        per_node: List[Dict[str, Any]] = (
            [] if aggregate_nodes
            else [stats.to_dict() for stats in self.per_node]
        )
        data = {
            "sim_time": self.sim_time,
            "warmup": self.warmup,
            "per_class": {
                name: stats.to_dict()
                for name, stats in self.per_class.items()
            },
            "per_node": per_node,
            "retries": self.retries,
            "misroutes": self.misroutes,
            "false_suspicions": self.false_suspicions,
            "missed_detections": self.missed_detections,
            "detections": self.detections,
            "detection_latency": self.detection_latency,
        }
        summary = self.node_summary
        if aggregate_nodes and summary is None:
            summary = self._summarize_nodes(self.per_node)
        if summary is not None:
            data["node_summary"] = summary
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        """Inverse of :meth:`to_dict`, tolerant of records written before
        a field existed (``retries`` landed after the first journals)."""
        return cls(
            sim_time=data["sim_time"],
            warmup=data["warmup"],
            per_class={
                name: ClassStats.from_dict(stats)
                for name, stats in data["per_class"].items()
            },
            per_node=[
                NodeStats.from_dict(stats) for stats in data["per_node"]
            ],
            retries=data.get("retries", 0),
            misroutes=data.get("misroutes", 0),
            false_suspicions=data.get("false_suspicions", 0),
            missed_detections=data.get("missed_detections", 0),
            detections=data.get("detections", 0),
            detection_latency=data.get("detection_latency", _NAN),
            node_summary=data.get("node_summary"),
        )


class _ClassAccumulator:
    """Mutable per-class counters behind :class:`ClassStats`."""

    __slots__ = (
        "completed",
        "missed",
        "aborted",
        "failed",
        "response",
        "lateness",
        "waiting",
        "response_sketch",
        "lateness_sketch",
    )

    def __init__(self, label: str) -> None:
        self.completed = 0
        self.missed = 0
        self.aborted = 0
        self.failed = 0
        self.response = MeanTally(f"{label}/response")
        self.lateness = MeanTally(f"{label}/lateness")
        self.waiting = MeanTally(f"{label}/waiting")
        # O(1)-memory streaming percentiles (p50/p95/p99), updated inline
        # on the completion hot path next to the mean tallies.
        self.response_sketch = QuantileSketch(name=f"{label}/response")
        self.lateness_sketch = QuantileSketch(name=f"{label}/lateness")

    def reset(self) -> None:
        self.completed = 0
        self.missed = 0
        self.aborted = 0
        self.failed = 0
        self.response.reset()
        self.lateness.reset()
        self.waiting.reset()
        self.response_sketch.reset()
        self.lateness_sketch.reset()

    def snapshot(self) -> ClassStats:
        response_sketch = self.response_sketch
        lateness_sketch = self.lateness_sketch
        return ClassStats(
            completed=self.completed,
            missed=self.missed,
            aborted=self.aborted,
            mean_response=self.response.mean,
            mean_lateness=self.lateness.mean,
            mean_waiting=self.waiting.mean,
            failed=self.failed,
            p50_response=response_sketch.quantile(0.5),
            p95_response=response_sketch.quantile(0.95),
            p99_response=response_sketch.quantile(0.99),
            p50_lateness=lateness_sketch.quantile(0.5),
            p95_lateness=lateness_sketch.quantile(0.95),
            p99_lateness=lateness_sketch.quantile(0.99),
        )


#: Default window for the time-decayed "current" signals, in sim-time
#: units: long enough to smooth over individual completions at baseline
#: load, short enough that a load-profile phase change shows within a
#: few hundred time units.
DEFAULT_WINDOW_TAU = 500.0


class _ClassWindow:
    """Time-decayed "current" signals for one task class."""

    __slots__ = ("miss", "throughput", "response")

    def __init__(self, tau: float, label: str, start_time: float) -> None:
        #: Decayed mean of the 0/1 miss indicator: the *current* miss rate.
        self.miss = DecayedMean(tau, f"{label}/miss-rate", start_time)
        #: Decayed completion rate (tasks per unit sim-time).
        self.throughput = DecayedRate(tau, f"{label}/throughput", start_time)
        #: Decayed mean response time of recent completions.
        self.response = DecayedMean(tau, f"{label}/response", start_time)

    def record(self, missed: float, response: Optional[float], now: float) -> None:
        self.miss.observe(missed, now)
        self.throughput.tick(now)
        if response is not None:
            self.response.observe(response, now)

    def reset(self, now: float) -> None:
        self.miss.reset(now)
        self.throughput.reset(now)
        self.response.reset(now)

    def snapshot(self, now: float) -> Dict[str, float]:
        return {
            "miss_rate": self.miss.value,
            "throughput": self.throughput.rate_at(now),
            "mean_response": self.response.value,
        }


class _NodeWindow:
    """Time-decayed "current" load signals for one node."""

    __slots__ = ("throughput", "queue")

    def __init__(self, tau: float, index: int, start_time: float) -> None:
        #: Decayed unit-completion rate at this node (its current load).
        self.throughput = DecayedRate(tau, f"node-{index}/throughput", start_time)
        #: Decayed mean queue depth, sampled at completion instants.
        self.queue = DecayedMean(tau, f"node-{index}/queue", start_time)

    def reset(self, now: float) -> None:
        self.throughput.reset(now)
        self.queue.reset(now)

    def snapshot(self, now: float) -> Dict[str, float]:
        return {
            "throughput": self.throughput.rate_at(now),
            "queue_depth": self.queue.value,
        }


class WindowedSignals:
    """Exponentially time-decayed *current* load signals, per node and class.

    End-of-run means answer "how did the run go"; these answer "what is
    the system doing *now*" -- the view an in-run strategy switcher
    (ROADMAP item 4) and the incremental metric emitter consume.  Off by
    default (one ``is None`` check per completion, same discipline as the
    tracer); enable with :meth:`MetricsCollector.enable_windows`.

    Updates are pure float arithmetic on already-observed completion
    events: no random draws, no event scheduling -- enabling windows is
    invisible to the golden determinism gate.
    """

    __slots__ = ("tau", "local", "global_", "nodes", "_queue_values")

    def __init__(
        self,
        node_count: int,
        tau: float = DEFAULT_WINDOW_TAU,
        start_time: float = 0.0,
        queue_values: Optional[List[float]] = None,
    ) -> None:
        if not tau > 0:
            raise ValueError(f"tau must be positive, got {tau}")
        self.tau = tau
        self.local = _ClassWindow(tau, "local", start_time)
        self.global_ = _ClassWindow(tau, "global", start_time)
        #: Per-node decayed signals -- dropped entirely past the fleet
        #: threshold, where 100k ``_NodeWindow`` objects would dominate
        #: collector memory and every interval snapshot.
        self.nodes = (
            [] if node_count > PER_NODE_DETAIL_THRESHOLD
            else [_NodeWindow(tau, i, start_time) for i in range(node_count)]
        )
        #: The collector's live queue-length array (``FleetState.queue_value``),
        #: sampled for the decayed queue-depth estimate (may be None
        #: standalone).
        self._queue_values = queue_values

    def record_unit(self, unit: WorkUnit, now: Optional[float]) -> None:
        """Fold one finished work unit (any class) into the signals."""
        timing = unit.timing
        if timing.aborted:
            # An abort is a certain miss; it has no response time and
            # does not count as node throughput.  Callers on the hot
            # path pass the abort instant; without it there is no
            # timestamp to decay against, so skip.
            if now is not None and unit.task_class is _LOCAL:
                self.local.record(1.0, None, now)
            return
        completed_at = timing.completed_at
        nodes = self.nodes
        if nodes:
            node = nodes[unit.node_index]
            node.throughput.tick(completed_at)
            values = self._queue_values
            if values is not None:
                node.queue.observe(values[unit.node_index], completed_at)
        if unit.task_class is _LOCAL:
            self.local.record(
                1.0 if completed_at > timing.dl else 0.0,
                completed_at - timing.ar,
                completed_at,
            )

    def record_global(
        self, missed: float, response: Optional[float], now: float
    ) -> None:
        """Fold one end-to-end global-task outcome into the signals."""
        self.global_.record(missed, response, now)

    def reset(self, now: float) -> None:
        """Restart every window at ``now`` (warm-up truncation)."""
        self.local.reset(now)
        self.global_.reset(now)
        for node in self.nodes:
            node.reset(now)

    def snapshot(self, now: float) -> Dict[str, Any]:
        """JSON-ready view of every current signal at sim-time ``now``."""
        return {
            "tau": self.tau,
            "per_class": {
                "local": self.local.snapshot(now),
                "global": self.global_.snapshot(now),
            },
            "per_node": [node.snapshot(now) for node in self.nodes],
        }


_LOCAL = TaskClass.LOCAL


class MetricsCollector:
    """Central sink for task outcomes and node load signals."""

    def __init__(self, node_count: int) -> None:
        self._classes: Dict[TaskClass, _ClassAccumulator] = {
            cls: _ClassAccumulator(cls.value) for cls in TaskClass
        }
        # Bound once: accumulators are reset in place, never replaced.
        self._local_acc = self._classes[TaskClass.LOCAL]
        self._global_acc = self._classes[TaskClass.GLOBAL]
        #: Flat array-backed per-node state: one owner for every hot
        #: counter, so a 100k-node collector is 22 list allocations
        #: instead of 300k ``TimeWeighted`` objects.  Node server loops
        #: bind and mutate the raw lists; the ``node_busy`` /
        #: ``node_queue`` / ``node_down`` attributes below are
        #: ``TimeWeighted``-compatible views for the cold paths.
        self.fleet = FleetState(node_count)
        self.node_busy = SignalViews(self.fleet, "busy")
        self.node_queue = SignalViews(self.fleet, "queue")
        #: Per-node event counters -- aliases of the ``FleetState`` lists
        #: (reset happens in place; node server loops hold references).
        self.node_dispatched: List[int] = self.fleet.dispatched
        #: Per-node preemption counts (preemptive nodes increment their
        #: slot inline; reset at warm-up like ``node_dispatched``).
        self.node_preemptions: List[int] = self.fleet.preemptions
        #: Per-node crash counts (incremented by the fault injector).
        self.node_crashes: List[int] = self.fleet.crashes
        #: Per-node crash-discarded unit counts (incremented by the nodes'
        #: ``_discard_lost``).
        self.node_lost: List[int] = self.fleet.lost
        #: Per-node suspicion counts (incremented by the failure detector).
        self.node_suspicions: List[int] = self.fleet.suspicions
        #: Per-node 0/1 down signal (1.0 while crashed); ``reset`` keeps
        #: the current value, so a node down across the warm-up boundary
        #: keeps accruing downtime in the measured window.
        self.node_down = SignalViews(self.fleet, "down")
        #: Leaf resubmissions by the process manager's retry layer.
        self.retries = 0
        #: Misroute bounces by the process manager's detector path.
        self.misroutes = 0
        #: Failure-detector accounting (see :class:`RunResult`): false
        #: positives, false negatives, detections, and the latency sum
        #: behind the mean reported in snapshots.
        self.false_suspicions = 0
        self.missed_detections = 0
        self.detections = 0
        self.detection_latency_sum = 0.0
        self._warmup_end = 0.0
        self._tracer = None
        #: Optional :class:`WindowedSignals` (see :meth:`enable_windows`);
        #: ``None`` keeps the hot path at one pointer comparison, the
        #: same discipline as ``_tracer``.
        self._window: Optional[WindowedSignals] = None

    @property
    def tracer(self):
        """Optional execution tracer (see :mod:`repro.system.tracing`).

        ``None`` (the default) keeps the hot path free of tracing
        overhead: the node loops read the backing ``_tracer`` field and
        guard every trace point with an ``is None`` check, so tracing off
        costs one pointer comparison per trace point.
        """
        return self._tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        self._tracer = tracer

    def trace(self, time: float, kind: str, unit, node_index: int) -> None:
        """Forward one scheduling event to the tracer, if attached."""
        if self._tracer is not None:
            self._tracer.record(time, kind, unit, node_index)

    @property
    def window(self) -> Optional[WindowedSignals]:
        """The attached :class:`WindowedSignals`, or ``None`` (default)."""
        return self._window

    def enable_windows(
        self, tau: float = DEFAULT_WINDOW_TAU, now: float = 0.0
    ) -> WindowedSignals:
        """Attach (and return) time-decayed load signals starting at ``now``.

        Idempotent for a matching ``tau``; a different ``tau`` replaces
        the window wholesale (fresh state).
        """
        window = self._window
        if window is None or window.tau != tau:
            window = WindowedSignals(
                node_count=self.fleet.node_count,
                tau=tau,
                start_time=now,
                queue_values=self.fleet.queue_value,
            )
            self._window = window
        return window

    # -- recording ---------------------------------------------------------

    def record_unit_completion(
        self, unit: WorkUnit, now: Optional[float] = None
    ) -> None:
        """Record the outcome of a finished *local* work unit.

        Global subtasks are not recorded here: the paper's ``MD_global`` is
        an end-to-end measure, recorded once per global task by
        :meth:`record_global_completion`.  ``now`` (the recording instant)
        only feeds the optional windowed signals; node loops pass it so
        aborted units -- which carry no ``completed_at`` -- still have a
        timestamp to decay against.

        The body inlines the equivalents of ``timing.missed`` /
        ``.response_time`` / ``.lateness`` / ``.waiting_time`` plus the
        three ``MeanTally.observe`` calls (Welford's mean update, same
        arithmetic; ``response``/``lateness`` hoisted left-associatively,
        so the floats are bit-identical).  This runs once per completed
        unit, and the property chain plus the call frames cost more than
        the whole update.  A node only records after stamping
        ``completed_at``, so the property guards cannot fire here.
        """
        window = self._window
        if window is not None:
            window.record_unit(unit, now)
        if unit.task_class is not _LOCAL:
            return
        acc = self._local_acc
        timing = unit.timing
        if timing.aborted:
            acc.aborted += 1
            acc.missed += 1
            return
        acc.completed += 1
        completed_at = timing.completed_at
        deadline = timing.dl
        if completed_at > deadline:
            acc.missed += 1
        arrival = timing.ar
        response = completed_at - arrival
        lateness = completed_at - deadline

        tally = acc.response
        count = tally.count + 1
        tally.count = count
        tally._mean += (response - tally._mean) / count

        tally = acc.lateness
        count = tally.count + 1
        tally.count = count
        tally._mean += (lateness - tally._mean) / count

        acc.response_sketch.observe(response)
        acc.lateness_sketch.observe(lateness)

        started_at = timing.started_at
        if started_at is not None:
            tally = acc.waiting
            count = tally.count + 1
            tally.count = count
            tally._mean += (started_at - arrival - tally._mean) / count

    def record_global_completion(
        self,
        timing_missed: bool,
        aborted: bool,
        response_time: Optional[float] = None,
        lateness: Optional[float] = None,
        failed: bool = False,
        now: Optional[float] = None,
    ) -> None:
        """Record the end-to-end outcome of one global task.

        An aborted task never completed, so it has no response time or
        lateness; callers pass ``None`` (the default) and only the
        aborted/missed counters move.  ``failed`` marks the retry-budget-
        exhausted disposition (a subset of aborted).  ``now`` feeds the
        optional windowed signals only.
        """
        acc = self._global_acc
        window = self._window
        if aborted:
            acc.aborted += 1
            acc.missed += 1
            if failed:
                acc.failed += 1
            if window is not None and now is not None:
                window.record_global(1.0, None, now)
            return
        acc.completed += 1
        if timing_missed:
            acc.missed += 1
        acc.response.observe(response_time)
        acc.lateness.observe(lateness)
        acc.response_sketch.observe(response_time)
        acc.lateness_sketch.observe(lateness)
        if window is not None and now is not None:
            window.record_global(
                1.0 if timing_missed else 0.0, response_time, now
            )

    def count_dispatch(self, node_index: int) -> None:
        """Count one dispatch decision at a node."""
        self.node_dispatched[node_index] += 1

    # -- warm-up and snapshots ----------------------------------------------

    def reset(self, now: float) -> None:
        """Discard the transient phase; statistics restart at ``now``."""
        for acc in self._classes.values():
            acc.reset()
        # Signal resets keep the current value: a node busy -- or down --
        # across the warm-up boundary stays so in the measured window.
        self.fleet.reset_signals(now)
        # In place: node server loops hold references to these lists.
        self.fleet.reset_counters()
        self.retries = 0
        self.misroutes = 0
        self.false_suspicions = 0
        self.missed_detections = 0
        self.detections = 0
        self.detection_latency_sum = 0.0
        self._warmup_end = now
        if self._window is not None:
            self._window.reset(now)

    def snapshot(self, now: float) -> RunResult:
        """Freeze current statistics into a :class:`RunResult`."""
        fleet = self.fleet
        b_value, b_area, b_last, b_start = (
            fleet.busy_value, fleet.busy_area, fleet.busy_last,
            fleet.busy_start,
        )
        q_value, q_area, q_last, q_start = (
            fleet.queue_value, fleet.queue_area, fleet.queue_last,
            fleet.queue_start,
        )
        d_value, d_area, d_last, d_start = (
            fleet.down_value, fleet.down_area, fleet.down_last,
            fleet.down_start,
        )
        per_node = []
        for i in range(fleet.node_count):
            # Inlined ``TimeWeighted.mean_at`` per signal (identical
            # arithmetic; ``_NAN`` is the shared empty-window singleton).
            elapsed = now - b_start[i]
            if elapsed <= 0:
                utilization = _NAN
            else:
                utilization = (
                    b_area[i] + b_value[i] * (now - b_last[i])
                ) / elapsed
            elapsed = now - q_start[i]
            if elapsed <= 0:
                mean_queue = _NAN
            else:
                mean_queue = (
                    q_area[i] + q_value[i] * (now - q_last[i])
                ) / elapsed
            elapsed = now - d_start[i]
            if elapsed <= 0:
                downtime = _NAN
            else:
                downtime = (
                    d_area[i] + d_value[i] * (now - d_last[i])
                ) / elapsed
            per_node.append(NodeStats(
                index=i,
                utilization=utilization,
                mean_queue_length=mean_queue,
                dispatched=fleet.dispatched[i],
                preemptions=fleet.preemptions[i],
                crashes=fleet.crashes[i],
                lost=fleet.lost[i],
                downtime=downtime,
                suspicions=fleet.suspicions[i],
            ))
        per_class = {
            cls.value: acc.snapshot() for cls, acc in self._classes.items()
        }
        detections = self.detections
        return RunResult(
            sim_time=now,
            warmup=self._warmup_end,
            per_class=per_class,
            per_node=per_node,
            retries=self.retries,
            misroutes=self.misroutes,
            false_suspicions=self.false_suspicions,
            missed_detections=self.missed_detections,
            detections=detections,
            detection_latency=(
                self.detection_latency_sum / detections if detections
                else _NAN
            ),
        )
