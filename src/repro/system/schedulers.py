"""Local real-time scheduling policies (one per node, Sec. 3.2).

Each node services its ready queue *non-preemptively* according to a
policy.  The paper's baseline policy is earliest-deadline-first (EDF);
Sec. 4.3 also exercises minimum-laxity-first (MLF), and FCFS is provided as
a deadline-oblivious control.

Implementation note -- static keys
----------------------------------

With a non-preemptive single server, every policy here admits an
*insertion-time* sort key:

* EDF orders by ``dl``;
* MLF orders by laxity ``dl - now - pex``; since the scheduler compares
  laxities at a common decision instant ``now``, the order is the order of
  ``dl - pex``, which is constant per unit;
* FCFS orders by submission sequence.

So the ready queue is a binary heap and dispatch is O(log n).  Keys are
tuples ``(priority_class, policy_key, seq)``: the leading priority class
implements Globals-First (elevated work always wins), and the trailing
sequence number breaks ties FIFO, keeping runs deterministic.
"""

from __future__ import annotations

import itertools
import operator
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from .work import WorkUnit


class SchedulingPolicy:
    """Strategy object producing heap keys for work units.

    A policy may additionally define ``fast_key``, a callable equivalent
    to :meth:`key` that the ready queue prefers on its push hot path
    (e.g. a C-level ``attrgetter`` instead of a Python method).
    """

    #: Registry / display name.
    name: str = "abstract"

    def key(self, unit: WorkUnit) -> float:
        """Policy-specific component of the sort key (smaller = sooner)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Policy {self.name}>"


class EarliestDeadlineFirst(SchedulingPolicy):
    """EDF: dispatch the queued unit with the smallest (virtual) deadline."""

    name = "EDF"

    #: C-level key extraction for the push hot path.
    fast_key = operator.attrgetter("timing.dl")

    def key(self, unit: WorkUnit) -> float:
        return unit.timing.dl


class MinimumLaxityFirst(SchedulingPolicy):
    """MLF: dispatch the unit with the least laxity ``dl - now - pex``.

    Uses the *predicted* execution time: the scheduler cannot know the real
    one.  See the module docstring for why ``dl - pex`` is a valid static
    key under non-preemptive service.
    """

    name = "MLF"

    def key(self, unit: WorkUnit) -> float:
        return unit.timing.dl - unit.timing.pex


class FirstComeFirstServed(SchedulingPolicy):
    """FCFS: ignore deadlines entirely (control policy)."""

    name = "FCFS"

    def key(self, unit: WorkUnit) -> float:
        return 0.0  # the sequence-number tiebreak makes this FIFO


#: Policies by name, for configuration files and the CLI.
POLICIES: Dict[str, SchedulingPolicy] = {
    policy.name: policy
    for policy in (
        EarliestDeadlineFirst(),
        MinimumLaxityFirst(),
        FirstComeFirstServed(),
    )
}


def get_policy(name: str) -> SchedulingPolicy:
    """Look up a policy by (case-insensitive) name."""
    try:
        return POLICIES[name.upper()]
    except KeyError:
        known = ", ".join(sorted(POLICIES))
        raise ValueError(f"unknown scheduling policy {name!r}; known: {known}")


class ReadyQueue:
    """Priority-ordered ready queue of work units.

    A thin heap wrapper so :class:`~repro.system.node.Node` stays focused
    on service mechanics.  Keys are computed at insertion (valid for all
    shipped policies; see module docstring).
    """

    __slots__ = ("_policy", "_key", "_heap", "_seq")

    def __init__(self, policy: SchedulingPolicy) -> None:
        self._policy = policy
        # Bound once: push runs once per unit; prefer a policy's C-level
        # fast_key when it provides one.
        self._key = getattr(policy, "fast_key", None) or policy.key
        self._heap: List[Tuple[int, float, int, WorkUnit]] = []
        self._seq = itertools.count()

    def push(self, unit: WorkUnit) -> None:
        """Enqueue a unit."""
        heappush(
            self._heap,
            (unit.priority_class, self._key(unit), next(self._seq), unit),
        )

    def pop(self) -> WorkUnit:
        """Dequeue the highest-priority unit."""
        if not self._heap:
            raise IndexError("pop from empty ready queue")
        return heappop(self._heap)[3]

    def peek(self) -> Optional[WorkUnit]:
        """The unit that would be dispatched next, or ``None``."""
        return self._heap[0][3] if self._heap else None

    def key_of(self, unit: WorkUnit) -> tuple:
        """The (class, policy-key) priority of a unit under this queue's
        policy -- lexicographically smaller dispatches first.  Used by the
        preemptive node to compare an arrival against the unit in service."""
        return (unit.priority_class, self._policy.key(unit))

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def policy(self) -> SchedulingPolicy:
        return self._policy
