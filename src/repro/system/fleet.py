"""Flat array-backed per-node hot state (the fleet-scale storage layer).

Constructing a 100k-node system used to mean 300k :class:`TimeWeighted`
objects (busy / queue / down signals), each a Python object with a name
string and seven slots -- ~0.3 s of pure allocation before the first
event fires, and a pointer-chasing cache miss per signal touch.
:class:`FleetState` replaces that with eighteen flat ``float`` lists and
four ``int`` lists, one entry per node, owned in one place.  Node server
loops bind the raw lists once and update them with straight-line float
arithmetic (bit-identical to the inlined ``TimeWeighted`` updates they
replace); everything that still wants a per-signal *object* -- the fault
injector's down signal, external tests -- goes through the
:class:`SignalView` proxy, which implements the exact ``TimeWeighted``
arithmetic against the shared arrays.

The per-signal layout mirrors ``TimeWeighted`` field for field:

===========  ===========================================================
``value``    current signal value (piecewise-constant)
``area``     integral of the signal over ``[start, last]``
``last``     time of the most recent update
``start``    start of the current accumulation window (warm-up reset)
``min/max``  extrema since the window started
===========  ===========================================================
"""

from __future__ import annotations

import math
from typing import List

__all__ = ["FleetState", "SignalView", "SignalViews"]


class FleetState:
    """Owner of every per-node hot counter, as flat parallel lists.

    Three time-weighted signals per node (``busy``, ``queue``, ``down``)
    plus five event counters (``dispatched``, ``preemptions``,
    ``crashes``, ``lost``, ``suspicions``).  Nodes and the metrics
    collector view into these lists; nothing copies them.
    """

    __slots__ = (
        "node_count",
        "busy_value", "busy_area", "busy_last", "busy_start",
        "busy_min", "busy_max",
        "queue_value", "queue_area", "queue_last", "queue_start",
        "queue_min", "queue_max",
        "down_value", "down_area", "down_last", "down_start",
        "down_min", "down_max",
        "dispatched", "preemptions", "crashes", "lost", "suspicions",
    )

    def __init__(self, node_count: int) -> None:
        self.node_count = node_count
        for kind in ("busy", "queue", "down"):
            for field in ("value", "area", "last", "start", "min", "max"):
                setattr(self, f"{kind}_{field}", [0.0] * node_count)
        self.dispatched: List[int] = [0] * node_count
        self.preemptions: List[int] = [0] * node_count
        self.crashes: List[int] = [0] * node_count
        self.lost: List[int] = [0] * node_count
        self.suspicions: List[int] = [0] * node_count

    # -- warm-up -----------------------------------------------------------

    def reset_signals(self, now: float) -> None:
        """Restart every signal's accumulation at ``now``.

        Same semantics as ``TimeWeighted.reset`` per node: the current
        value is *kept* (a node busy -- or down -- across the warm-up
        boundary stays busy/down in the measured window), the area and
        window start over, and the extrema collapse to the current value.
        """
        for kind in ("busy", "queue", "down"):
            values = getattr(self, f"{kind}_value")
            areas = getattr(self, f"{kind}_area")
            lasts = getattr(self, f"{kind}_last")
            starts = getattr(self, f"{kind}_start")
            mins = getattr(self, f"{kind}_min")
            maxs = getattr(self, f"{kind}_max")
            for i in range(self.node_count):
                areas[i] = 0.0
                lasts[i] = now
                starts[i] = now
                value = values[i]
                mins[i] = value
                maxs[i] = value

    def reset_counters(self) -> None:
        """Zero the per-node event counters, in place (nodes hold refs)."""
        n = self.node_count
        self.dispatched[:] = [0] * n
        self.preemptions[:] = [0] * n
        self.crashes[:] = [0] * n
        self.lost[:] = [0] * n
        self.suspicions[:] = [0] * n


class SignalView:
    """A ``TimeWeighted``-compatible view of one node's signal arrays.

    Exists for the cold paths that want a signal *object* -- the fault
    injector's 0/1 down updates, tests poking ``collector.node_busy[i]``
    -- while the hot node loops write the arrays directly.  Every method
    reproduces the ``TimeWeighted`` arithmetic operation for operation,
    so going through a view is bit-identical to the object it replaces.
    """

    __slots__ = ("_values", "_areas", "_lasts", "_starts", "_mins", "_maxs",
                 "index")

    def __init__(self, values, areas, lasts, starts, mins, maxs, index):
        self._values = values
        self._areas = areas
        self._lasts = lasts
        self._starts = starts
        self._mins = mins
        self._maxs = maxs
        self.index = index

    @property
    def value(self) -> float:
        return self._values[self.index]

    # ``TimeWeighted`` exposes the raw slot; keep the spelling working
    # for callers that bypass the property on the hot path.
    @property
    def _value(self) -> float:
        return self._values[self.index]

    @property
    def min(self) -> float:
        return self._mins[self.index]

    @property
    def max(self) -> float:
        return self._maxs[self.index]

    def update(self, value: float, now: float) -> None:
        i = self.index
        last = self._lasts[i]
        if now < last:
            raise ValueError(
                f"time went backwards: {now} < {last} in signal {i}"
            )
        self._areas[i] += self._values[i] * (now - last)
        self._lasts[i] = now
        self._values[i] = value
        if value < self._mins[i]:
            self._mins[i] = value
        if value > self._maxs[i]:
            self._maxs[i] = value

    def increment(self, delta: float, now: float) -> None:
        i = self.index
        last = self._lasts[i]
        if now < last:
            raise ValueError(
                f"time went backwards: {now} < {last} in signal {i}"
            )
        old = self._values[i]
        value = old + delta
        self._areas[i] += old * (now - last)
        self._lasts[i] = now
        self._values[i] = value
        if value < self._mins[i]:
            self._mins[i] = value
        if value > self._maxs[i]:
            self._maxs[i] = value

    def mean_at(self, now: float) -> float:
        i = self.index
        elapsed = now - self._starts[i]
        if elapsed <= 0:
            return math.nan
        area = self._areas[i] + self._values[i] * (now - self._lasts[i])
        return area / elapsed

    def reset(self, now: float) -> None:
        i = self.index
        self._areas[i] = 0.0
        self._lasts[i] = now
        self._starts[i] = now
        value = self._values[i]
        self._mins[i] = value
        self._maxs[i] = value

    def __repr__(self) -> str:
        return f"SignalView({self.index}, value={self._values[self.index]!r})"


class SignalViews:
    """Lazy sequence of :class:`SignalView` over one signal's arrays.

    Views are cheap throwaway handles; nothing caches them, so the
    sequence materializes one on each ``[i]``.
    """

    __slots__ = ("_values", "_areas", "_lasts", "_starts", "_mins", "_maxs")

    def __init__(self, fleet: FleetState, kind: str) -> None:
        self._values = getattr(fleet, f"{kind}_value")
        self._areas = getattr(fleet, f"{kind}_area")
        self._lasts = getattr(fleet, f"{kind}_last")
        self._starts = getattr(fleet, f"{kind}_start")
        self._mins = getattr(fleet, f"{kind}_min")
        self._maxs = getattr(fleet, f"{kind}_max")

    def __len__(self) -> int:
        return len(self._values)

    def __getitem__(self, index: int) -> SignalView:
        if not -len(self._values) <= index < len(self._values):
            raise IndexError(index)
        if index < 0:
            index += len(self._values)
        return SignalView(
            self._values, self._areas, self._lasts, self._starts,
            self._mins, self._maxs, index,
        )
