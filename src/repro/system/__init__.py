"""System model: nodes, schedulers, process manager, workload, simulation."""

from .config import (
    PARALLEL,
    SERIAL,
    SERIAL_PARALLEL,
    SystemConfig,
    baseline_config,
    expected_frac_local,
    harmonic,
    parallel_baseline_config,
    serial_parallel_config,
    verify_load_arithmetic,
)
from .detector import DetectorSpec, FailureDetector, SuspicionView
from .faults import FaultInjector, FaultSpec, LiveSet
from .metrics import ClassStats, MetricsCollector, NodeStats, RunResult
from .node import Node
from .preemptive import PreemptiveNode
from .overload import (
    OVERLOAD_POLICIES,
    AbortTardyAtDispatch,
    NoAbort,
    OverloadPolicy,
    get_overload_policy,
)
from .process_manager import GlobalTaskOutcome, ProcessManager
from .schedulers import (
    POLICIES,
    EarliestDeadlineFirst,
    FirstComeFirstServed,
    MinimumLaxityFirst,
    ReadyQueue,
    SchedulingPolicy,
    get_policy,
)
from .simulation import Simulation, simulate
from .tracing import TraceEvent, TraceLog
from .work import WorkUnit
from .workload import (
    GlobalTaskFactory,
    GlobalTaskSource,
    LocalTaskSource,
    ParallelFanFactory,
    SerialChainFactory,
    SerialParallelFactory,
)

__all__ = [
    "AbortTardyAtDispatch",
    "ClassStats",
    "DetectorSpec",
    "EarliestDeadlineFirst",
    "FailureDetector",
    "FaultInjector",
    "FaultSpec",
    "FirstComeFirstServed",
    "GlobalTaskFactory",
    "GlobalTaskOutcome",
    "GlobalTaskSource",
    "LiveSet",
    "LocalTaskSource",
    "MetricsCollector",
    "MinimumLaxityFirst",
    "NoAbort",
    "Node",
    "NodeStats",
    "OVERLOAD_POLICIES",
    "OverloadPolicy",
    "PARALLEL",
    "POLICIES",
    "ParallelFanFactory",
    "PreemptiveNode",
    "ProcessManager",
    "ReadyQueue",
    "RunResult",
    "SERIAL",
    "SERIAL_PARALLEL",
    "SchedulingPolicy",
    "SerialChainFactory",
    "SerialParallelFactory",
    "Simulation",
    "SuspicionView",
    "SystemConfig",
    "TraceEvent",
    "TraceLog",
    "WorkUnit",
    "baseline_config",
    "expected_frac_local",
    "get_overload_policy",
    "get_policy",
    "harmonic",
    "parallel_baseline_config",
    "serial_parallel_config",
    "simulate",
    "verify_load_arithmetic",
]
