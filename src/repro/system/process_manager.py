"""The process manager (Sec. 3.2): runs global tasks over the nodes.

The process manager is the only component that sees a global task as a
whole.  Its three jobs, quoted from the paper:

1. assign deadlines to simple subtasks (delegated to a
   :class:`~repro.core.strategies.DeadlineAssigner`),
2. submit the simple subtasks to the appropriate nodes for execution,
3. enforce the precedence constraints among the subtasks.

Execution walks the serial-parallel tree:

* a **serial** node runs its children in order; before each child starts,
  the SSP strategy computes the child's virtual deadline *at that moment*,
  so leftover slack (or tardiness) of earlier stages is visible;
* a **parallel** node forks all children at once, giving each a virtual
  deadline from the PSP strategy, and joins on all of them;
* a **leaf** becomes a :class:`~repro.system.work.WorkUnit` at its node.

Aborts: under a firm overload policy a node may discard a unit whose
virtual deadline expired.  A serial chain cannot continue past a discarded
stage, and a parallel group is incomplete if any member was discarded, so
the whole global task is recorded as aborted (and missed).

Hot-path notes
--------------

Coordination is a callback state machine, mirroring the node rewrite: no
generator frame per tree level, no coroutine resume per stage, no
``Process``/``all_of`` machinery per parallel group.  Each leaf's
completion event (a lightweight kernel callback scheduled by the node,
see :attr:`~repro.system.work.WorkUnit.on_done`) drives the next serial
stage directly through a chain of small *continuation frames*:

* :class:`_TaskRun` is the root frame -- it records the end-to-end
  outcome when the tree finishes;
* :class:`_SerialFrame` advances one child per completion, computing the
  next virtual deadline at that moment;
* :class:`_ParallelFrame` is a counting join: every branch completion
  decrements it, and the last one continues the parent.

The abort signal is a boolean threaded through ``child_done(aborted)``
rather than an exception: a parallel join must wait for *all* branches
(the group's outcome is decided by the last finisher), so an exception
unwinding through the join would tear it down early.

The paper does not model the manager's own resource consumption ("this
consumption can be considered as additional subtasks"); neither do we.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.strategies import DeadlineAssigner
from ..core.task import ParallelTask, SerialTask, SimpleTask, TaskClass, TaskNode
from ..core.timing import fast_timing
from ..sim.core import Environment, Event
from .metrics import MetricsCollector
from .node import Node
from .work import WorkUnit

_global_counter = itertools.count(1)


@dataclass
class GlobalTaskOutcome:
    """End-to-end result of one global task."""

    global_id: int
    arrival: float
    deadline: float
    completed_at: Optional[float]
    aborted: bool

    @property
    def missed(self) -> bool:
        """True if the task was aborted or finished after its deadline."""
        if self.aborted:
            return True
        return self.completed_at > self.deadline

    @property
    def response_time(self) -> Optional[float]:
        """End-to-end response time, or ``None`` for aborted tasks.

        An aborted task never completed, so it has no response time; the
        miss-ratio statistics count it via :attr:`missed`/:attr:`aborted`
        instead.
        """
        if self.completed_at is None:
            return None
        return self.completed_at - self.arrival

    @property
    def lateness(self) -> Optional[float]:
        """Completion time minus deadline, or ``None`` for aborted tasks."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.deadline


class _Continuation:
    """Shared leaf-completion plumbing for the coordination frames.

    Every frame exposes ``child_done(aborted)`` (called directly by child
    frames) and ``_on_unit`` (the kernel callback attached to leaf work
    units via :attr:`WorkUnit.on_done`; the event's value is the unit).
    """

    __slots__ = ()

    def _on_unit(self, event: Event) -> None:
        self.child_done(event._value.timing.aborted)


class _TaskRun(_Continuation):
    """Root frame: one in-flight global task, start to outcome."""

    __slots__ = (
        "manager",
        "tree",
        "deadline",
        "global_id",
        "arrival",
        "outcome_event",
        "on_unit",
    )

    def __init__(
        self,
        manager: "ProcessManager",
        tree: TaskNode,
        deadline: float,
        outcome_event: Optional[Event],
    ) -> None:
        self.manager = manager
        self.tree = tree
        self.deadline = deadline
        self.global_id = next(_global_counter)
        self.arrival = 0.0  # stamped when the start kick fires
        self.outcome_event = outcome_event
        self.on_unit = self._on_unit  # bound once; reused per leaf

    def _start(self, _event: Event) -> None:
        """Deferred start kick (scheduled by ``submit``): walk the tree.

        Deferring by one urgent event preserves the classic submission
        semantics the generator coordinator had: work already enqueued at
        the same instant enters service before this task's first subtask
        is pushed.
        """
        manager = self.manager
        arrival = manager.env._now
        self.arrival = arrival
        manager._execute(self.tree, arrival, self.deadline, self, 0, self)

    def child_done(self, aborted: bool) -> None:
        """The whole tree finished (or a subtask was discarded): record."""
        manager = self.manager
        now = manager.env._now
        deadline = self.deadline
        if aborted:
            manager.metrics.record_global_completion(
                timing_missed=True, aborted=True
            )
        else:
            manager.metrics.record_global_completion(
                timing_missed=now > deadline,
                aborted=False,
                response_time=now - self.arrival,
                lateness=now - deadline,
            )
        outcome_event = self.outcome_event
        if outcome_event is not None:
            outcome_event.succeed(
                GlobalTaskOutcome(
                    global_id=self.global_id,
                    arrival=self.arrival,
                    deadline=deadline,
                    completed_at=None if aborted else now,
                    aborted=aborted,
                )
            )


class _SerialFrame(_Continuation):
    """One serial group: runs its children in order.

    Each completion advances to the next child; the SSP strategy computes
    that child's virtual deadline *at the moment it starts*, so leftover
    slack (or tardiness) of earlier stages is visible.
    """

    __slots__ = (
        "manager",
        "run",
        "parent",
        "children",
        "pexes",
        "index",
        "window_arrival",
        "window_deadline",
        "stage_base",
        "on_unit",
    )

    def __init__(
        self,
        manager: "ProcessManager",
        node: SerialTask,
        run: _TaskRun,
        parent: _Continuation,
        window_arrival: float,
        window_deadline: float,
        stage_base: int,
    ) -> None:
        self.manager = manager
        self.run = run
        self.parent = parent
        children = node.children
        self.children = children
        # The pex envelope of every child, computed once; each stage's
        # context takes the tail slice (current child first).
        self.pexes = tuple(
            child.pex if type(child) is SimpleTask else child.total_pex()
            for child in children
        )
        self.index = 0
        self.window_arrival = window_arrival
        self.window_deadline = window_deadline
        self.stage_base = stage_base
        self.on_unit = self._on_unit  # bound once; reused per stage

    def child_done(self, aborted: bool) -> None:
        if aborted:
            # A serial chain cannot continue past a discarded stage.
            self.parent.child_done(True)
            return
        index = self.index + 1
        if index == len(self.children):
            self.parent.child_done(False)
            return
        self.index = index
        self._advance()

    def _advance(self) -> None:
        """Assign the current child its virtual deadline and launch it."""
        manager = self.manager
        env = manager.env
        i = self.index
        child = self.children[i]
        deadline = manager._serial_deadline(
            self.pexes[i:],
            env._now,
            self.window_arrival,
            self.window_deadline,
        )
        if type(child) is SimpleTask:
            # Direct leaf call: no child frame on the dominant
            # serial-chain-of-leaves structure.
            manager._submit_leaf(
                child, deadline, self.run, self.stage_base + i, self.on_unit
            )
        else:
            manager._execute(
                child,
                window_arrival=env._now,
                window_deadline=deadline,
                run=self.run,
                stage=self.stage_base + i,
                parent=self,
            )


class _ParallelFrame(_Continuation):
    """One parallel group: a counting join over its branches.

    Every branch completion decrements ``remaining``; the last one
    continues the parent.  The join waits for *all* branches even after
    one aborts -- the group's outcome is decided by the last finisher --
    so the abort signal is latched, not propagated early.
    """

    __slots__ = ("parent", "remaining", "aborted", "on_unit")

    def __init__(self, parent: _Continuation, fan_out: int) -> None:
        self.parent = parent
        self.remaining = fan_out
        self.aborted = False
        self.on_unit = self._on_unit  # bound once; shared by all branches

    def child_done(self, aborted: bool) -> None:
        if aborted:
            self.aborted = True
        remaining = self.remaining - 1
        self.remaining = remaining
        if remaining == 0:
            self.parent.child_done(self.aborted)


class ProcessManager:
    """Coordinates global tasks across the independent nodes."""

    def __init__(
        self,
        env: Environment,
        nodes: Sequence[Node],
        assigner: DeadlineAssigner,
        metrics: MetricsCollector,
    ) -> None:
        self.env = env
        self.nodes = list(nodes)
        self.assigner = assigner
        self.metrics = metrics
        # Bound once for the per-leaf / per-stage hot paths.
        self._priority_class = assigner.psp.priority_class
        self._serial_deadline = assigner.serial_deadline
        self._parallel_deadline = assigner.parallel_deadline
        #: Number of global tasks submitted so far (for tracing/tests).
        self.submitted = 0

    # -- public API ----------------------------------------------------------

    def submit(self, tree: TaskNode, deadline: float) -> Event:
        """Launch a global task with the given end-to-end deadline.

        Returns an event that fires (with the :class:`GlobalTaskOutcome`)
        when the task completes or aborts.  Metrics are recorded
        automatically.  A deadline already in the past is permitted -- a
        soft real-time system may receive a task that is already hopeless
        -- but the tree must be well formed.
        """
        tree.validate()
        self.submitted += 1
        outcome_event = Event(self.env)
        run = _TaskRun(self, tree, deadline, outcome_event)
        self.env._schedule_call(run._start)
        return outcome_event

    def submit_nowait(self, tree: TaskNode, deadline: float) -> None:
        """Launch a global task without materializing its outcome event.

        Fast path for fire-and-forget submitters (the global task source
        never joins on its tasks): metrics are still recorded, but the
        per-task outcome event -- one allocation plus one dead event-list
        entry per completion -- is skipped.
        """
        tree.validate()
        self.submitted += 1
        run = _TaskRun(self, tree, deadline, None)
        self.env._schedule_call(run._start)

    # -- tree execution --------------------------------------------------------

    def _execute(
        self,
        node: TaskNode,
        window_arrival: float,
        window_deadline: float,
        run: _TaskRun,
        stage: int,
        parent: _Continuation,
    ) -> None:
        """Launch one subtree; ``parent.child_done`` fires when it ends."""
        if isinstance(node, SimpleTask):
            self._submit_leaf(node, window_deadline, run, stage, parent.on_unit)
        elif isinstance(node, SerialTask):
            _SerialFrame(
                self, node, run, parent, window_arrival, window_deadline,
                stage,
            )._advance()
        elif isinstance(node, ParallelTask):
            self._fork_parallel(node, window_deadline, run, stage, parent)
        else:
            raise TypeError(
                f"cannot execute task node of type {type(node).__name__}"
            )

    def _submit_leaf(
        self,
        leaf: SimpleTask,
        deadline: float,
        run: _TaskRun,
        stage: int,
        on_done,
    ) -> None:
        """Turn a leaf into a work unit at its node; ``on_done`` fires at
        completion (or discard) with the unit as the event value."""
        node_index = leaf.node_index
        if node_index is None:
            raise ValueError(
                f"leaf {leaf.name!r} has no node assignment; the workload "
                "factory must route every simple subtask"
            )
        env = self.env
        timing = fast_timing(
            ar=env._now,
            ex=leaf.ex,
            pex=leaf.pex,
            dl=deadline,
        )
        leaf.timing = timing
        unit = WorkUnit(
            env=env,
            name=leaf.name,
            task_class=TaskClass.GLOBAL,
            node_index=node_index,
            timing=timing,
            priority_class=self._priority_class,
            global_id=run.global_id,
            stage=stage,
            natural_deadline=run.deadline,
            on_done=on_done,
        )
        self.nodes[node_index].submit_nowait(unit)

    def _fork_parallel(
        self,
        node: ParallelTask,
        window_deadline: float,
        run: _TaskRun,
        stage: int,
        parent: _Continuation,
    ) -> None:
        """Fork all branches at once under a counting join."""
        children = node.children
        fork_time = self.env._now
        fan_out = len(children)
        parallel_deadline = self._parallel_deadline
        frame = _ParallelFrame(parent, fan_out)
        on_unit = frame.on_unit
        for i, child in enumerate(children):
            is_leaf = type(child) is SimpleTask
            deadline = parallel_deadline(
                fan_out=fan_out,
                index=i,
                pex=child.pex if is_leaf else child.total_pex(),
                now=fork_time,
                window_deadline=window_deadline,
            )
            if is_leaf:
                self._submit_leaf(child, deadline, run, stage + i, on_unit)
            else:
                self._execute(
                    child,
                    window_arrival=fork_time,
                    window_deadline=deadline,
                    run=run,
                    stage=stage + i,
                    parent=frame,
                )
