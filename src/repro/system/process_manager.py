"""The process manager (Sec. 3.2): runs global tasks over the nodes.

The process manager is the only component that sees a global task as a
whole.  Its three jobs, quoted from the paper:

1. assign deadlines to simple subtasks (delegated to a
   :class:`~repro.core.strategies.DeadlineAssigner`),
2. submit the simple subtasks to the appropriate nodes for execution,
3. enforce the precedence constraints among the subtasks.

Execution walks the serial-parallel tree:

* a **serial** node runs its children in order; before each child starts,
  the SSP strategy computes the child's virtual deadline *at that moment*,
  so leftover slack (or tardiness) of earlier stages is visible;
* a **parallel** node forks all children at once, giving each a virtual
  deadline from the PSP strategy, and joins on all of them;
* a **leaf** becomes a :class:`~repro.system.work.WorkUnit` at its node.

Aborts: under a firm overload policy a node may discard a unit whose
virtual deadline expired.  A serial chain cannot continue past a discarded
stage, and a parallel group is incomplete if any member was discarded, so
the whole global task is recorded as aborted (and missed).

Hot-path notes
--------------

Coordination is a callback state machine, mirroring the node rewrite: no
generator frame per tree level, no coroutine resume per stage, no
``Process``/``all_of`` machinery per parallel group.  Each leaf's
completion event (a lightweight kernel callback scheduled by the node,
see :attr:`~repro.system.work.WorkUnit.on_done`) drives the next serial
stage directly through a chain of small *continuation frames*:

* :class:`_TaskRun` is the root frame -- it records the end-to-end
  outcome when the tree finishes;
* :class:`_SerialFrame` advances one child per completion, computing the
  next virtual deadline at that moment;
* :class:`_ParallelFrame` is a counting join: every branch completion
  decrements it, and the last one continues the parent.

The abort signal is a boolean threaded through ``child_done(aborted)``
rather than an exception: a parallel join must wait for *all* branches
(the group's outcome is decided by the last finisher), so an exception
unwinding through the join would tear it down early.

The paper does not model the manager's own resource consumption ("this
consumption can be considered as additional subtasks"); neither do we.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.strategies import DeadlineAssigner
from ..core.task import ParallelTask, SerialTask, SimpleTask, TaskClass, TaskNode
from ..core.timing import fast_timing
from ..sim.core import NORMAL, Environment, Event
from .metrics import MetricsCollector
from .node import Node
from .work import WorkUnit, acquire_unit

_global_counter = itertools.count(1)


@dataclass
class GlobalTaskOutcome:
    """End-to-end result of one global task."""

    global_id: int
    arrival: float
    deadline: float
    completed_at: Optional[float]
    aborted: bool
    #: True when the task died because a subtask exhausted its crash-retry
    #: budget (a subset of ``aborted``; see :attr:`disposition`).
    failed: bool = False

    @property
    def disposition(self) -> str:
        """How the task ended: ``"completed"``, ``"aborted"`` (overload
        policy discarded a subtask), or ``"failed"`` (a subtask's
        crash-retry budget was exhausted)."""
        if self.failed:
            return "failed"
        if self.aborted:
            return "aborted"
        return "completed"

    @property
    def missed(self) -> bool:
        """True if the task was aborted or finished after its deadline."""
        if self.aborted:
            return True
        return self.completed_at > self.deadline

    @property
    def response_time(self) -> Optional[float]:
        """End-to-end response time, or ``None`` for aborted tasks.

        An aborted task never completed, so it has no response time; the
        miss-ratio statistics count it via :attr:`missed`/:attr:`aborted`
        instead.
        """
        if self.completed_at is None:
            return None
        return self.completed_at - self.arrival

    @property
    def lateness(self) -> Optional[float]:
        """Completion time minus deadline, or ``None`` for aborted tasks."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.deadline


class _Continuation:
    """Shared leaf-completion plumbing for the coordination frames.

    Every frame exposes ``child_done(aborted)`` (called directly by child
    frames) and ``_on_unit`` (the kernel callback attached to leaf work
    units via :attr:`WorkUnit.on_done`; the event's value is the unit).
    """

    __slots__ = ()

    def _on_unit(self, event: Event) -> None:
        unit = event._value
        aborted = unit.timing.aborted
        # This frame is the single consumer of a pool-acquired subtask
        # unit: recycle it now that the outcome is read.  ``_FAILED``
        # (pool None) and units with a materialized ``done`` event
        # (external joiners may still hold it) are left alone.
        if unit.pool is not None and unit._done is None:
            unit.release()
        self.child_done(aborted)


class _TaskRun(_Continuation):
    """Root frame: one in-flight global task, start to outcome."""

    __slots__ = (
        "manager",
        "tree",
        "deadline",
        "global_id",
        "arrival",
        "outcome_event",
        "failed",
        "on_unit",
    )

    def __init__(
        self,
        manager: "ProcessManager",
        tree: TaskNode,
        deadline: float,
        outcome_event: Optional[Event],
    ) -> None:
        self.manager = manager
        self.tree = tree
        self.deadline = deadline
        self.global_id = next(_global_counter)
        self.arrival = 0.0  # stamped when the start kick fires
        self.outcome_event = outcome_event
        #: Latched by a leaf's retry shim when its budget is exhausted,
        #: turning the recorded outcome into the "failed" disposition.
        self.failed = False
        self.on_unit = self._on_unit  # bound once; reused per leaf

    def _start(self, _event: Event) -> None:
        """Deferred start kick (scheduled by ``submit``): walk the tree.

        Deferring by one urgent event preserves the classic submission
        semantics the generator coordinator had: work already enqueued at
        the same instant enters service before this task's first subtask
        is pushed.
        """
        manager = self.manager
        arrival = manager.env._now
        self.arrival = arrival
        manager._execute(self.tree, arrival, self.deadline, self, 0, self)

    def child_done(self, aborted: bool) -> None:
        """The whole tree finished (or a subtask was discarded): record."""
        manager = self.manager
        now = manager.env._now
        deadline = self.deadline
        if aborted:
            manager.metrics.record_global_completion(
                timing_missed=True, aborted=True, failed=self.failed, now=now
            )
        else:
            manager.metrics.record_global_completion(
                timing_missed=now > deadline,
                aborted=False,
                response_time=now - self.arrival,
                lateness=now - deadline,
                now=now,
            )
        outcome_event = self.outcome_event
        if outcome_event is not None:
            outcome_event.succeed(
                GlobalTaskOutcome(
                    global_id=self.global_id,
                    arrival=self.arrival,
                    deadline=deadline,
                    completed_at=None if aborted else now,
                    aborted=aborted,
                    failed=self.failed,
                )
            )


class _SerialFrame(_Continuation):
    """One serial group: runs its children in order.

    Each completion advances to the next child; the SSP strategy computes
    that child's virtual deadline *at the moment it starts*, so leftover
    slack (or tardiness) of earlier stages is visible.
    """

    __slots__ = (
        "manager",
        "run",
        "parent",
        "children",
        "pexes",
        "index",
        "window_arrival",
        "window_deadline",
        "stage_base",
        "on_unit",
    )

    def __init__(
        self,
        manager: "ProcessManager",
        node: SerialTask,
        run: _TaskRun,
        parent: _Continuation,
        window_arrival: float,
        window_deadline: float,
        stage_base: int,
    ) -> None:
        self.manager = manager
        self.run = run
        self.parent = parent
        children = node.children
        self.children = children
        # The pex envelope of every child, computed once; each stage's
        # context takes the tail slice (current child first).
        self.pexes = tuple(
            child.pex if type(child) is SimpleTask else child.total_pex()
            for child in children
        )
        self.index = 0
        self.window_arrival = window_arrival
        self.window_deadline = window_deadline
        self.stage_base = stage_base
        self.on_unit = self._on_unit  # bound once; reused per stage

    def child_done(self, aborted: bool) -> None:
        if aborted:
            # A serial chain cannot continue past a discarded stage.
            self.parent.child_done(True)
            return
        index = self.index + 1
        if index == len(self.children):
            self.parent.child_done(False)
            return
        self.index = index
        self._advance()

    def _advance(self) -> None:
        """Assign the current child its virtual deadline and launch it."""
        manager = self.manager
        env = manager.env
        i = self.index
        child = self.children[i]
        deadline = manager._serial_deadline(
            self.pexes[i:],
            env._now,
            self.window_arrival,
            self.window_deadline,
        )
        if type(child) is SimpleTask:
            # Direct leaf call: no child frame on the dominant
            # serial-chain-of-leaves structure.
            manager._submit_leaf(
                child, deadline, self.run, self.stage_base + i, self.on_unit
            )
        else:
            manager._execute(
                child,
                window_arrival=env._now,
                window_deadline=deadline,
                run=self.run,
                stage=self.stage_base + i,
                parent=self,
            )


class _ParallelFrame(_Continuation):
    """One parallel group: a counting join over its branches.

    Every branch completion decrements ``remaining``; the last one
    continues the parent.  The join waits for *all* branches even after
    one aborts -- the group's outcome is decided by the last finisher --
    so the abort signal is latched, not propagated early.
    """

    __slots__ = ("parent", "remaining", "aborted", "on_unit")

    def __init__(self, parent: _Continuation, fan_out: int) -> None:
        self.parent = parent
        self.remaining = fan_out
        self.aborted = False
        self.on_unit = self._on_unit  # bound once; shared by all branches

    def child_done(self, aborted: bool) -> None:
        if aborted:
            self.aborted = True
        remaining = self.remaining - 1
        self.remaining = remaining
        if remaining == 0:
            self.parent.child_done(self.aborted)


class _FailedResult:
    """Sentinel delivered to a continuation frame when a leaf's retry
    budget is exhausted.

    Continuation frames read ``event._value.timing.aborted`` off whatever
    the event carries; this object satisfies that contract without a real
    work unit (there is no unit -- the last attempt was lost or timed
    out, and no further attempt was made).
    """

    __slots__ = ()

    class _Timing:
        aborted = True
        completed_at = None

    timing = _Timing()
    lost = True
    #: Never pooled: continuation frames check ``pool`` before recycling.
    pool = None

    def __reduce__(self) -> str:
        # Pickle by global reference so a restored checkpoint keeps the
        # singleton (frames only read attributes, but exactness is free).
        return "_FAILED"


_FAILED = _FailedResult()


class _LeafAttempt:
    """Retry/misroute shim between one leaf and its continuation frame.

    Installed as the leaf's ``on_done`` target when the config carries a
    retry-enabled :class:`~repro.system.faults.FaultSpec` and/or an
    enabled :class:`~repro.system.detector.DetectorSpec`.  Each attempt
    is a fresh work unit; crash losses (``unit.lost``) and completion
    timeouts trigger resubmission to a live node after exponential
    backoff, up to ``retry_limit`` resubmissions, after which the run is
    latched as failed.  Overload-policy aborts pass through untouched --
    the policy judged the work useless, and retrying it would be a bug.

    Misroute recovery (detector mode): placement routes on the
    *observed* :class:`~repro.system.detector.SuspicionView`, so a
    submit can target a node that is truly down but not yet suspected.
    Such a submit bounces: after ``misroute_delay`` (the time it takes
    the manager to notice the dead target) it re-routes to a trusted
    node, at most ``max_redirects`` times per leaf -- after that the
    unit queues at its dead target until recovery (or until the retry
    timeout fires, when one is configured).

    Routing draws ride dedicated streams (``"retry-route"`` for backoff
    re-routes, ``"detector-route"`` for misroute bounces), so enabling
    either layer perturbs no other stream (and plain runs draw nothing).
    """

    __slots__ = (
        "manager",
        "leaf",
        "deadline",
        "run",
        "stage",
        "parent_on_done",
        "node_index",
        "current",
        "timer",
        "attempts",
        "redirects",
        "on_unit",
        "_on_timeout",
        "_on_backoff",
        "_on_bounce",
    )

    def __init__(
        self,
        manager: "ProcessManager",
        leaf: SimpleTask,
        deadline: float,
        run: _TaskRun,
        stage: int,
        parent_on_done,
    ) -> None:
        self.manager = manager
        self.leaf = leaf
        self.deadline = deadline
        self.run = run
        self.stage = stage
        self.parent_on_done = parent_on_done
        self.node_index = leaf.node_index
        self.current: Optional[WorkUnit] = None
        self.timer = None
        self.attempts = 0
        self.redirects = 0
        self.on_unit = self._unit_done
        self._on_timeout = self._timeout
        self._on_backoff = self._backoff
        self._on_bounce = self._bounce

    def launch(self) -> None:
        self._dispatch(self.node_index)

    def _dispatch(self, node_index: int) -> None:
        """Submit one attempt (a fresh unit, same virtual deadline)."""
        manager = self.manager
        env = manager.env
        detector = manager._detector
        if (
            detector is not None
            and not manager.nodes[node_index]._up
            and self.redirects < detector.max_redirects
        ):
            # Misroute: the observed view let a dead node through.  The
            # manager notices after the detection/bounce delay and
            # re-routes; the leaf remembers the target so an exhausted
            # redirect budget degrades to queue-until-recovery there.
            self.redirects += 1
            manager.metrics.misroutes += 1
            self.node_index = node_index
            if detector.misroute_delay > 0.0:
                env._sleep(detector.misroute_delay, self._on_bounce)
            else:
                self._bounce(None)
            return
        leaf = self.leaf
        run = self.run
        timing = fast_timing(
            ar=env._now, ex=leaf.ex, pex=leaf.pex, dl=self.deadline
        )
        leaf.timing = timing
        unit = acquire_unit(
            env=env,
            name=leaf.name,
            task_class=TaskClass.GLOBAL,
            node_index=node_index,
            timing=timing,
            priority_class=manager._priority_class,
            global_id=run.global_id,
            stage=self.stage,
            natural_deadline=run.deadline,
            on_done=self.on_unit,
        )
        self.current = unit
        retry = manager._retry
        if retry is not None and retry.retry_timeout > 0.0:
            self.timer = env._sleep(retry.retry_timeout, self._on_timeout)
        manager.nodes[node_index].submit_nowait(unit)

    def _bounce(self, _event) -> None:
        """Bounce delay elapsed: re-route to a trusted node (or back to
        the original target when the whole view is suspected)."""
        manager = self.manager
        view = manager._observed
        node_index = self.node_index
        if 0 < view.live_count < view.node_count:
            indices = view.live_indices()
            node_index = indices[
                manager._detector_stream.randrange(len(indices))
            ]
        elif view.live_count == view.node_count:
            node_index = manager._detector_stream.randrange(view.node_count)
        self._dispatch(node_index)

    def _unit_done(self, event: Event) -> None:
        unit = event._value
        if unit is not self.current:
            # A timed-out attempt completing late: already retried.  This
            # shim is the orphaned unit's only consumer, so recycle here.
            if unit.pool is not None and unit._done is None:
                unit.release()
            return
        self.current = None
        timer = self.timer
        if timer is not None:
            timer.cancel()
            self.timer = None
        if unit.lost and self.manager._retry is not None:
            # The lost unit never reaches the parent frame; recycle it
            # before scheduling the retry.  (Without a retry layer --
            # detector-only mode -- the loss passes through below as the
            # abort it is.)
            if unit.pool is not None and unit._done is None:
                unit.release()
            self._retry_or_fail()
            return
        self.parent_on_done(event)

    def _timeout(self, _event) -> None:
        self.timer = None
        if self.current is None:
            return
        # Orphan the in-flight unit: if it completes later anyway, the
        # staleness check in ``_unit_done`` drops it.
        self.current = None
        self._retry_or_fail()

    def _retry_or_fail(self) -> None:
        manager = self.manager
        spec = manager._retry
        attempts = self.attempts
        if attempts >= spec.retry_limit:
            self.run.failed = True
            manager.env._schedule_call(
                self.parent_on_done, value=_FAILED, priority=NORMAL
            )
            return
        self.attempts = attempts + 1
        delay = spec.backoff_delay(self.attempts)
        if delay > 0.0:
            manager.env._sleep(delay, self._on_backoff)
        else:
            self._backoff(None)

    def _backoff(self, _event) -> None:
        """Backoff elapsed: resubmit to a live node (or the original when
        the whole cluster is down -- the unit queues until recovery)."""
        manager = self.manager
        manager.metrics.retries += 1
        node_index = self.node_index
        live = manager._live
        if live is not None and 0 < live.live_count < live.node_count:
            indices = live.live_indices()
            node_index = indices[
                manager._retry_stream.randrange(len(indices))
            ]
        elif live is not None and live.live_count == live.node_count:
            # All up: spread retries uniformly too (the crash that lost
            # the unit may already have healed).
            node_index = manager._retry_stream.randrange(live.node_count)
        self._dispatch(node_index)


class ProcessManager:
    """Coordinates global tasks across the independent nodes."""

    def __init__(
        self,
        env: Environment,
        nodes: Sequence[Node],
        assigner: DeadlineAssigner,
        metrics: MetricsCollector,
        fault_spec=None,
        live_set=None,
        retry_stream=None,
        detector_spec=None,
        detector_stream=None,
    ) -> None:
        self.env = env
        self.nodes = list(nodes)
        self.assigner = assigner
        self.metrics = metrics
        # Bound once for the per-leaf / per-stage hot paths.
        self._priority_class = assigner.psp.priority_class
        self._serial_deadline = assigner.serial_deadline
        self._parallel_deadline = assigner.parallel_deadline
        # Retry layer: armed only by a retry-enabled FaultSpec; the
        # fault-free (and retry-free) leaf path costs one None check.
        # ``live_set`` is whatever liveness view the simulation routes
        # on: the oracle LiveSet, or the detector's SuspicionView when
        # a detector is configured (observed re-routing).
        if fault_spec is not None and fault_spec.retries_enabled:
            self._retry = fault_spec
            self._live = live_set
            self._retry_stream = retry_stream
        else:
            self._retry = None
            self._live = None
            self._retry_stream = None
        # Misroute layer: armed only by an enabled DetectorSpec.
        if detector_spec is not None and detector_spec.enabled:
            self._detector = detector_spec
            self._observed = live_set
            self._detector_stream = detector_stream
        else:
            self._detector = None
            self._observed = None
            self._detector_stream = None
        #: Number of global tasks submitted so far (for tracing/tests).
        self.submitted = 0

    # -- public API ----------------------------------------------------------

    def submit(self, tree: TaskNode, deadline: float) -> Event:
        """Launch a global task with the given end-to-end deadline.

        Returns an event that fires (with the :class:`GlobalTaskOutcome`)
        when the task completes or aborts.  Metrics are recorded
        automatically.  A deadline already in the past is permitted -- a
        soft real-time system may receive a task that is already hopeless
        -- but the tree must be well formed.
        """
        tree.validate()
        self.submitted += 1
        outcome_event = Event(self.env)
        run = _TaskRun(self, tree, deadline, outcome_event)
        self.env._schedule_call(run._start)
        return outcome_event

    def submit_nowait(self, tree: TaskNode, deadline: float) -> None:
        """Launch a global task without materializing its outcome event.

        Fast path for fire-and-forget submitters (the global task source
        never joins on its tasks): metrics are still recorded, but the
        per-task outcome event -- one allocation plus one dead event-list
        entry per completion -- is skipped.
        """
        tree.validate()
        self.submitted += 1
        run = _TaskRun(self, tree, deadline, None)
        self.env._schedule_call(run._start)

    # -- tree execution --------------------------------------------------------

    def _execute(
        self,
        node: TaskNode,
        window_arrival: float,
        window_deadline: float,
        run: _TaskRun,
        stage: int,
        parent: _Continuation,
    ) -> None:
        """Launch one subtree; ``parent.child_done`` fires when it ends."""
        if isinstance(node, SimpleTask):
            self._submit_leaf(node, window_deadline, run, stage, parent.on_unit)
        elif isinstance(node, SerialTask):
            _SerialFrame(
                self, node, run, parent, window_arrival, window_deadline,
                stage,
            )._advance()
        elif isinstance(node, ParallelTask):
            self._fork_parallel(node, window_deadline, run, stage, parent)
        else:
            raise TypeError(
                f"cannot execute task node of type {type(node).__name__}"
            )

    def _submit_leaf(
        self,
        leaf: SimpleTask,
        deadline: float,
        run: _TaskRun,
        stage: int,
        on_done,
    ) -> None:
        """Turn a leaf into a work unit at its node; ``on_done`` fires at
        completion (or discard) with the unit as the event value."""
        node_index = leaf.node_index
        if node_index is None:
            raise ValueError(
                f"leaf {leaf.name!r} has no node assignment; the workload "
                "factory must route every simple subtask"
            )
        if self._retry is not None or self._detector is not None:
            _LeafAttempt(self, leaf, deadline, run, stage, on_done).launch()
            return
        env = self.env
        timing = fast_timing(
            ar=env._now,
            ex=leaf.ex,
            pex=leaf.pex,
            dl=deadline,
        )
        leaf.timing = timing
        unit = acquire_unit(
            env=env,
            name=leaf.name,
            task_class=TaskClass.GLOBAL,
            node_index=node_index,
            timing=timing,
            priority_class=self._priority_class,
            global_id=run.global_id,
            stage=stage,
            natural_deadline=run.deadline,
            on_done=on_done,
        )
        self.nodes[node_index].submit_nowait(unit)

    def _fork_parallel(
        self,
        node: ParallelTask,
        window_deadline: float,
        run: _TaskRun,
        stage: int,
        parent: _Continuation,
    ) -> None:
        """Fork all branches at once under a counting join."""
        children = node.children
        fork_time = self.env._now
        fan_out = len(children)
        parallel_deadline = self._parallel_deadline
        frame = _ParallelFrame(parent, fan_out)
        on_unit = frame.on_unit
        for i, child in enumerate(children):
            is_leaf = type(child) is SimpleTask
            deadline = parallel_deadline(
                fan_out=fan_out,
                index=i,
                pex=child.pex if is_leaf else child.total_pex(),
                now=fork_time,
                window_deadline=window_deadline,
            )
            if is_leaf:
                self._submit_leaf(child, deadline, run, stage + i, on_unit)
            else:
                self._execute(
                    child,
                    window_arrival=fork_time,
                    window_deadline=deadline,
                    run=run,
                    stage=stage + i,
                    parent=frame,
                )
