"""The process manager (Sec. 3.2): runs global tasks over the nodes.

The process manager is the only component that sees a global task as a
whole.  Its three jobs, quoted from the paper:

1. assign deadlines to simple subtasks (delegated to a
   :class:`~repro.core.strategies.DeadlineAssigner`),
2. submit the simple subtasks to the appropriate nodes for execution,
3. enforce the precedence constraints among the subtasks.

Execution walks the serial-parallel tree:

* a **serial** node runs its children in order; before each child starts,
  the SSP strategy computes the child's virtual deadline *at that moment*,
  so leftover slack (or tardiness) of earlier stages is visible;
* a **parallel** node forks all children at once, giving each a virtual
  deadline from the PSP strategy, and joins on all of them;
* a **leaf** becomes a :class:`~repro.system.work.WorkUnit` at its node.

Aborts: under a firm overload policy a node may discard a unit whose
virtual deadline expired.  A serial chain cannot continue past a discarded
stage, and a parallel group is incomplete if any member was discarded, so
the whole global task is recorded as aborted (and missed).

The paper does not model the manager's own resource consumption ("this
consumption can be considered as additional subtasks"); neither do we.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.strategies import DeadlineAssigner
from ..core.task import ParallelTask, SerialTask, SimpleTask, TaskClass, TaskNode
from ..core.timing import fast_timing
from ..sim.core import Environment
from ..sim.process import Process
from .metrics import MetricsCollector
from .node import Node
from .work import WorkUnit

_global_counter = itertools.count(1)


@dataclass
class GlobalTaskOutcome:
    """End-to-end result of one global task."""

    global_id: int
    arrival: float
    deadline: float
    completed_at: Optional[float]
    aborted: bool

    @property
    def missed(self) -> bool:
        """True if the task was aborted or finished after its deadline."""
        if self.aborted:
            return True
        return self.completed_at > self.deadline

    @property
    def response_time(self) -> float:
        return (self.completed_at or 0.0) - self.arrival

    @property
    def lateness(self) -> float:
        return (self.completed_at or 0.0) - self.deadline


class _Aborted(Exception):
    """Internal signal: a subtask was discarded, the task cannot complete."""


class ProcessManager:
    """Coordinates global tasks across the independent nodes."""

    def __init__(
        self,
        env: Environment,
        nodes: Sequence[Node],
        assigner: DeadlineAssigner,
        metrics: MetricsCollector,
    ) -> None:
        self.env = env
        self.nodes = list(nodes)
        self.assigner = assigner
        self.metrics = metrics
        # Bound once for the per-leaf hot path.
        self._priority_class = assigner.psp.priority_class
        #: Number of global tasks submitted so far (for tracing/tests).
        self.submitted = 0

    # -- public API ----------------------------------------------------------

    def submit(self, tree: TaskNode, deadline: float) -> Process:
        """Launch a global task with the given end-to-end deadline.

        Returns the coordination process; its value (once it fires) is the
        :class:`GlobalTaskOutcome`.  Metrics are recorded automatically.
        """
        if deadline < self.env.now:
            # Permitted -- a soft real-time system may receive a task that
            # is already hopeless -- but the tree must still be well formed.
            pass
        tree.validate()
        self.submitted += 1
        return self.env.process(self._run_global(tree, deadline))

    # -- tree execution --------------------------------------------------------

    def _run_global(self, tree: TaskNode, deadline: float):
        global_id = next(_global_counter)
        arrival = self.env.now
        aborted = False
        try:
            yield from self._execute(
                tree, arrival, deadline, global_id, stage=0,
                natural_deadline=deadline,
            )
        except _Aborted:
            aborted = True
        outcome = GlobalTaskOutcome(
            global_id=global_id,
            arrival=arrival,
            deadline=deadline,
            completed_at=None if aborted else self.env.now,
            aborted=aborted,
        )
        self.metrics.record_global_completion(
            timing_missed=outcome.missed,
            aborted=aborted,
            response_time=outcome.response_time,
            lateness=outcome.lateness,
        )
        return outcome

    def _execute(
        self,
        node: TaskNode,
        window_arrival: float,
        window_deadline: float,
        global_id: int,
        stage: int,
        natural_deadline: float,
    ):
        if isinstance(node, SimpleTask):
            yield from self._execute_leaf(
                node, window_deadline, global_id, stage, natural_deadline
            )
        elif isinstance(node, SerialTask):
            yield from self._execute_serial(
                node, window_arrival, window_deadline, global_id, stage,
                natural_deadline,
            )
        elif isinstance(node, ParallelTask):
            yield from self._execute_parallel(
                node, window_deadline, global_id, stage, natural_deadline
            )
        else:
            raise TypeError(f"cannot execute task node of type {type(node).__name__}")

    def _execute_leaf(
        self,
        leaf: SimpleTask,
        deadline: float,
        global_id: int,
        stage: int,
        natural_deadline: float,
    ):
        node_index = leaf.node_index
        if node_index is None:
            raise ValueError(
                f"leaf {leaf.name!r} has no node assignment; the workload "
                "factory must route every simple subtask"
            )
        env = self.env
        timing = fast_timing(
            ar=env.now,
            ex=leaf.ex,
            pex=leaf.pex,
            dl=deadline,
        )
        leaf.timing = timing
        unit = WorkUnit(
            env=env,
            name=leaf.name,
            task_class=TaskClass.GLOBAL,
            node_index=node_index,
            timing=timing,
            priority_class=self._priority_class,
            global_id=global_id,
            stage=stage,
            natural_deadline=natural_deadline,
        )
        done = self.nodes[node_index].submit(unit)
        yield done
        if timing.aborted:
            raise _Aborted()

    def _execute_serial(
        self,
        node: SerialTask,
        window_arrival: float,
        window_deadline: float,
        global_id: int,
        stage: int,
        natural_deadline: float,
    ):
        children = node.children
        env = self.env
        serial_deadline = self.assigner.serial_deadline
        # The pex envelope of every child, computed once; each stage's
        # context takes the tail slice (current child first).
        pexes = tuple(
            child.pex if type(child) is SimpleTask else child.total_pex()
            for child in children
        )
        for i, child in enumerate(children):
            deadline = serial_deadline(
                pexes[i:],
                env.now,
                window_arrival,
                window_deadline,
            )
            if type(child) is SimpleTask:
                # Direct leaf call: skips one generator frame per stage on
                # the dominant serial-chain-of-leaves structure.
                yield from self._execute_leaf(
                    child, deadline, global_id, stage + i, natural_deadline
                )
            else:
                yield from self._execute(
                    child,
                    window_arrival=env.now,
                    window_deadline=deadline,
                    global_id=global_id,
                    stage=stage + i,
                    natural_deadline=natural_deadline,
                )

    def _execute_parallel(
        self,
        node: ParallelTask,
        window_deadline: float,
        global_id: int,
        stage: int,
        natural_deadline: float,
    ):
        children = node.children
        fork_time = self.env.now
        fan_out = len(children)
        parallel_deadline = self.assigner.parallel_deadline
        process = self.env.process
        branches: List[Process] = []
        for i, child in enumerate(children):
            deadline = parallel_deadline(
                fan_out=fan_out,
                index=i,
                pex=child.pex if type(child) is SimpleTask else child.total_pex(),
                now=fork_time,
                window_deadline=window_deadline,
            )
            branches.append(
                process(
                    self._branch(child, fork_time, deadline,
                                 global_id, stage + i, natural_deadline)
                )
            )
        yield self.env.all_of(branches)
        if any(branch.value == "aborted" for branch in branches):
            raise _Aborted()

    def _branch(
        self,
        child: TaskNode,
        window_arrival: float,
        window_deadline: float,
        global_id: int,
        stage: int,
        natural_deadline: float,
    ):
        """Wrapper process for one parallel branch.

        Converts the abort signal into a return value: the join must wait
        for *all* branches (the group's outcome is decided by the last
        finisher), so an exception must not tear the join down early.
        """
        try:
            yield from self._execute(
                child, window_arrival, window_deadline, global_id, stage,
                natural_deadline,
            )
        except _Aborted:
            return "aborted"
        return "ok"
