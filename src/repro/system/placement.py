"""Subtask placement policies (where a global task's subtasks execute).

The paper picks execution nodes uniformly at random -- with replacement
for serial chains, without replacement within a parallel fan (Sec. 5.2).
The scenario subsystem generalizes this into pluggable policies:

* :class:`UniformPlacement`      -- the paper's baseline, preserved draw
  for draw (same stream, same calls), so fixed-seed results are
  bit-identical to the pre-policy code;
* :class:`RoundRobinPlacement`   -- deterministic rotation, no randomness;
* :class:`ZipfPlacement`         -- skewed popularity: node ``i`` is hit
  with probability proportional to ``1 / (i + 1)^s`` (a hotspot model);
* :class:`LeastOutstandingPlacement` -- join-the-shortest-queue routing on
  the current outstanding work (queue length + in-service), random
  tie-breaks.

RNG-stream isolation rule: every policy that consumes randomness owns a
*named* stream.  Uniform keeps the historical ``"global-route"`` name;
new policies use fresh names (``"placement-zipf"``, ``"placement-lo"``)
so that enabling them never perturbs the draw sequences of existing
streams -- adding scenarios must not move fixed-seed baseline results.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from heapq import heapify, heappop, heappush
from typing import Dict, List, Optional, Sequence, Set

from ..sim.rng import StreamFactory

#: Policy-name constants (mirrored by ``SystemConfig.placement``).
UNIFORM = "uniform"
ROUND_ROBIN = "round-robin"
ZIPF = "zipf"
LEAST_OUTSTANDING = "least-outstanding"

PLACEMENT_POLICIES = (UNIFORM, ROUND_ROBIN, ZIPF, LEAST_OUTSTANDING)


class PlacementPolicy:
    """Chooses execution nodes for the subtasks of global tasks."""

    #: Human-readable policy name.
    name: str = "abstract"

    #: Optional :class:`~repro.system.faults.LiveSet` (attached by the
    #: simulation when a fault spec is active).  When set, policies avoid
    #: down nodes -- O(1) membership tests -- and degrade gracefully to
    #: their fault-oblivious behavior when too few nodes are up.  ``None``
    #: (every fault-free run) leaves each policy's draw sequence exactly
    #: as before.
    live = None

    def attach_live_set(self, live) -> None:
        """Make this policy failure-aware (skip crashed nodes)."""
        self.live = live

    def pick_one(self) -> int:
        """Node index for one serial-stage subtask."""
        raise NotImplementedError

    def pick_distinct(self, count: int) -> List[int]:
        """``count`` *distinct* node indices for one parallel fan."""
        raise NotImplementedError


class UniformPlacement(PlacementPolicy):
    """The paper's uniform-random placement (the baseline policy).

    Draws come from the historical ``"global-route"`` stream via exactly
    the calls the factories used to make (``randrange`` per serial stage,
    ``sample`` per fan), keeping golden fixed-seed results bit-identical.
    """

    name = UNIFORM

    def __init__(self, node_count: int, streams: StreamFactory) -> None:
        self.node_count = node_count
        self._stream = streams.get("global-route")

    def pick_one(self) -> int:
        index = self._stream.randrange(self.node_count)
        live = self.live
        if live is None or index in live or live.live_count == 0:
            # Fault-free configs (live is None) take exactly the historical
            # single draw; a whole-cluster outage keeps the draw too (the
            # unit queues at a down node until recovery).
            return index
        # Redraw restricted to the live set: uniform over up nodes.
        indices = live.live_indices()
        return indices[self._stream.randrange(len(indices))]

    def pick_distinct(self, count: int) -> List[int]:
        live = self.live
        if live is not None and count <= live.live_count < live.node_count:
            return self._stream.sample(live.live_indices(), count)
        # Fault-free, everyone-up, or too few live nodes for a distinct
        # fan: the historical full-range sample (graceful degradation).
        return self._stream.sample(range(self.node_count), count)


class RoundRobinPlacement(PlacementPolicy):
    """Deterministic rotation over the nodes; consumes no randomness."""

    name = ROUND_ROBIN

    def __init__(self, node_count: int) -> None:
        self.node_count = node_count
        self._cursor = 0

    def pick_one(self) -> int:
        index = self._cursor
        node_count = self.node_count
        live = self.live
        if live is not None and live.live_count > 0:
            # Skip-scan: rotate past down nodes (at most one full lap).
            for _ in range(node_count):
                if index in live:
                    break
                index = (index + 1) % node_count
        self._cursor = (index + 1) % node_count
        return index

    def pick_distinct(self, count: int) -> List[int]:
        if count > self.node_count:
            raise ValueError(
                f"cannot pick {count} distinct nodes from {self.node_count}"
            )
        live = self.live
        if live is not None and 0 < live.live_count < count:
            # Not enough live nodes for a distinct fan: fall back to the
            # oblivious rotation (down members queue until recovery).
            chosen = []
            index = self._cursor
            for _ in range(count):
                chosen.append(index)
                index = (index + 1) % self.node_count
            self._cursor = index
            return chosen
        # Consecutive (live) picks are distinct for count <= live count.
        return [self.pick_one() for _ in range(count)]


class ZipfPlacement(PlacementPolicy):
    """Zipf-skewed hotspot placement: low-index nodes absorb most work.

    Node ``i`` is selected with probability proportional to
    ``1 / (i + 1)^s``; ``s = 0`` degenerates to uniform, larger ``s``
    concentrates load.

    Fleet-scale samplers (draw *counts* identical to the historical
    renormalized walks, one ``random()`` per pick):

    * fault-free ``pick_one`` is the historical binary search over the
      static CDF, untouched;
    * fault-free ``pick_distinct`` samples without replacement by
      descending a static Fenwick tree over the weights, correcting for
      already-chosen indices block by block -- O(count log n) per fan
      instead of the O(count * n) walk;
    * the failure-aware ``pick_one`` redraw is O(1) via a Vose alias
      table over the live weights, rebuilt only when the live membership
      actually changes (``LiveSet.version``).
    """

    name = ZIPF

    def __init__(
        self, node_count: int, s: float, streams: StreamFactory
    ) -> None:
        if s < 0:
            raise ValueError(f"zipf exponent must be non-negative, got {s}")
        self.node_count = node_count
        self.s = s
        self._stream = streams.get("placement-zipf")
        # Log-space form of 1 / (i + 1)^s: underflows smoothly to 0.0 at
        # extreme exponents where the direct power would overflow.
        self._weights = [
            math.exp(-s * math.log(i + 1)) for i in range(node_count)
        ]
        total = sum(self._weights)
        cumulative: List[float] = []
        acc = 0.0
        for w in self._weights:
            acc += w / total
            cumulative.append(acc)
        cumulative[-1] = 1.0  # guard against float drift
        self._cdf = cumulative
        # Static Fenwick tree (1-based) over the raw weights, built once:
        # ``pick_distinct`` walks it instead of rescanning the weights.
        tree = [0.0] * (node_count + 1)
        for i, w in enumerate(self._weights):
            j = i + 1
            tree[j] += w
            parent = j + (j & -j)
            if parent <= node_count:
                tree[parent] += tree[j]
        self._tree = tree
        self._total_weight = total
        self._top_bit = 1 << (node_count.bit_length() - 1)
        # Alias-table cache for the failure-aware redraw.
        self._alias_live = None
        self._alias_version = -1
        self._alias: tuple = (None, None, None)

    def pick_one(self) -> int:
        index = bisect_right(self._cdf, self._stream.random())
        live = self.live
        if live is None or index in live or live.live_count == 0:
            return index
        # One renormalized draw over the live nodes (rejection against the
        # full CDF could stall for a very long time when a down node holds
        # nearly all the mass at extreme skew).
        cols, prob, alias = self._alias_table(live)
        if prob is None:
            # Every live weight underflowed: the skew is so extreme any
            # choice is equivalent; take the most popular live index.
            return cols[0]
        scaled = self._stream.random() * len(cols)
        j = int(scaled)
        if scaled - j < prob[j]:
            return cols[j]
        return cols[alias[j]]

    def _alias_table(self, live) -> tuple:
        """Vose alias table over the live weights, cached per live-set
        version so repair/failure churn -- not every draw -- pays the
        O(live) rebuild."""
        if self._alias_live is live and self._alias_version == live.version:
            return self._alias
        cols = live.live_indices()
        weights = self._weights
        total = 0.0
        for i in cols:
            total += weights[i]
        if total <= 0.0:
            table = (cols, None, None)
        else:
            n = len(cols)
            scaled = [weights[i] * n / total for i in cols]
            prob = [1.0] * n
            alias = list(range(n))
            small = [j for j, q in enumerate(scaled) if q < 1.0]
            large = [j for j, q in enumerate(scaled) if q >= 1.0]
            while small and large:
                s = small.pop()
                big = large.pop()
                prob[s] = scaled[s]
                alias[s] = big
                leftover = scaled[big] - (1.0 - scaled[s])
                scaled[big] = leftover
                if leftover < 1.0:
                    small.append(big)
                else:
                    large.append(big)
            # Whatever remains on either stack gets probability 1.0 (its
            # initialization) -- the float-leftover columns.
            table = (cols, prob, alias)
        self._alias_live = live
        self._alias_version = live.version
        self._alias = table
        return table

    def pick_distinct(self, count: int) -> List[int]:
        if count > self.node_count:
            raise ValueError(
                f"cannot pick {count} distinct nodes from {self.node_count}"
            )
        live = self.live
        if live is not None and count <= live.live_count < live.node_count:
            # Failure-aware fan: the historical renormalized walk over the
            # live indices (O(live) per pick; this path only runs under
            # active faults, where the live scan is already paid).
            return self._pick_distinct_walk(live.live_indices(), count)
        # Fault-free fan: weighted sampling without replacement via the
        # static Fenwick tree.  Exactly one draw per pick (as the walk),
        # correcting each descent block for the already-chosen indices,
        # so a heavily skewed tail (tiny or underflowed-to-zero weights)
        # cannot stall the sampler the way rejection sampling would.
        weights = self._weights
        tree = self._tree
        node_count = self.node_count
        chosen: List[int] = []
        total = self._total_weight
        for _ in range(count):
            index = -1
            if total <= 0.0:
                # Every remaining weight underflowed: any completion
                # order is equivalent; take the most popular (lowest)
                # unchosen index deterministically, no draw.
                for index in range(node_count):
                    if index not in chosen:
                        break
            else:
                remaining_mass = self._stream.random() * total
                pos = 0
                bit = self._top_bit
                while bit:
                    nxt = pos + bit
                    if nxt <= node_count:
                        block = tree[nxt]
                        for c in chosen:
                            if pos <= c < nxt:
                                block -= weights[c]
                        if block <= remaining_mass:
                            remaining_mass -= block
                            pos = nxt
                    bit >>= 1
                if pos >= node_count:
                    # Float drift carried the descent past the end: fall
                    # back to the largest unchosen index (the walk's
                    # last-position fallback).
                    for index in range(node_count - 1, -1, -1):
                        if index not in chosen:
                            break
                elif pos in chosen:
                    # At extreme skew the remaining mass is rounding
                    # residue from cancelling the dominant chosen
                    # weights, and the descent can strand on a chosen
                    # index; distinctness is a hard guarantee, so take
                    # the nearest unchosen neighbor (no extra draw).
                    index = -1
                    for candidate in range(pos + 1, node_count):
                        if candidate not in chosen:
                            index = candidate
                            break
                    if index < 0:
                        for candidate in range(pos - 1, -1, -1):
                            if candidate not in chosen:
                                index = candidate
                                break
                else:
                    index = pos
            chosen.append(index)
            total -= weights[index]
        return chosen

    def _pick_distinct_walk(
        self, remaining: List[int], count: int
    ) -> List[int]:
        """The historical renormalized walk (kept for the live path)."""
        weights = self._weights
        chosen: List[int] = []
        for _ in range(count):
            total = 0.0
            for index in remaining:
                total += weights[index]
            if total <= 0.0:
                position = 0
            else:
                threshold = self._stream.random() * total
                acc = 0.0
                position = len(remaining) - 1
                for i, index in enumerate(remaining):
                    acc += weights[index]
                    if threshold < acc:
                        position = i
                        break
            chosen.append(remaining.pop(position))
        return chosen


def _tree_update(tree: List[int], index: int, delta: int, size: int) -> None:
    """Add ``delta`` at external 0-based ``index`` in a 1-based Fenwick."""
    i = index + 1
    while i <= size:
        tree[i] += delta
        i += i & -i


def _tree_rank(tree: List[int], index: int) -> int:
    """Members with external index ``<= index`` (inclusive prefix sum)."""
    i = index + 1
    total = 0
    while i:
        total += tree[i]
        i -= i & -i
    return total


def _tree_select(tree: List[int], k: int, bit: int, size: int) -> int:
    """External index of the ``k``-th member in index order (1-based k)."""
    pos = 0
    while bit:
        nxt = pos + bit
        if nxt <= size and tree[nxt] < k:
            k -= tree[nxt]
            pos = nxt
        bit >>= 1
    return pos


#: Shared empty exclusion set: ``pick_one`` allocates nothing per call.
_NO_EXCLUSIONS: frozenset = frozenset()


class LeastOutstandingPlacement(PlacementPolicy):
    """Route to the node with the least outstanding work.

    Outstanding work is the ready-queue length plus the unit in service --
    the information a real load balancer has without knowing service
    times.  Ties (common at low load, where everyone is idle) break by a
    draw from the policy's own ``"placement-lo"`` stream so no node is
    structurally favored.

    Fleet-scale bookkeeping: instead of rescanning every node per
    decision (O(n)), the policy maintains *count buckets* -- one Fenwick
    tree of member node indices per distinct outstanding count -- updated
    incrementally from the node outstanding hooks
    (:attr:`~repro.system.node.Node._outstanding_listener`), with lazy
    min-heaps over the bucket values (one fault-oblivious, one of buckets
    with live members).  A decision finds the lowest eligible count at
    the heap top, then selects the ``r``-th member of that bucket by
    Fenwick descent, rank-correcting for excluded/down members.  The
    historical draw trajectory -- ties scanned in ascending index order,
    one ``randrange`` per multi-way tie, none for singletons -- is
    reproduced exactly, in O(log n) per decision.  Counts derive from the
    fleet's flat signal arrays (queue + busy), which move in exact
    ``+-1.0`` steps.
    """

    name = LEAST_OUTSTANDING

    def __init__(self, nodes: Sequence, streams: StreamFactory) -> None:
        self.nodes = list(nodes)
        self._stream = streams.get("placement-lo")
        node_count = len(self.nodes)
        self._node_count = node_count
        self._select_bit = (
            1 << (node_count.bit_length() - 1) if node_count else 0
        )
        self._counts: List[int] = [0] * node_count
        self._down: List[bool] = [False] * node_count
        #: value -> Fenwick tree over member node indices.
        self._bucket_tree: Dict[int, List[int]] = {}
        self._bucket_size: Dict[int, int] = {}
        #: value -> down members of the bucket (live tracking only).
        self._bucket_down: Dict[int, Set[int]] = {}
        #: Emptied buckets return their (all-zero again) trees here.
        self._free_trees: List[List[int]] = []
        self._heap_all: List[int] = []
        self._heap_all_member: Set[int] = set()
        self._heap_live: List[int] = []
        self._heap_live_member: Set[int] = set()
        self._fleet = None
        if node_count:
            fleet = self.nodes[0].metrics.fleet
            self._fleet = fleet
            queue_value = fleet.queue_value
            busy_value = fleet.busy_value
            touch = self._touch
            for index, node in enumerate(self.nodes):
                count = int(queue_value[index] + busy_value[index])
                self._counts[index] = count
                self._bucket_insert(count, index)
                node._outstanding_listener = touch

    def attach_live_set(self, live) -> None:
        self.live = live
        counts = self._counts
        down = self._down
        bucket_down = self._bucket_down
        bucket_down.clear()
        for index in range(self._node_count):
            is_down = index not in live
            down[index] = is_down
            if is_down:
                bucket_down.setdefault(counts[index], set()).add(index)
        members: Set[int] = set()
        heap_live: List[int] = []
        for value, size in self._bucket_size.items():
            downs = bucket_down.get(value)
            if size - (len(downs) if downs else 0) > 0:
                members.add(value)
                heap_live.append(value)
        heapify(heap_live)
        self._heap_live = heap_live
        self._heap_live_member = members

    def _outstanding(self) -> List[int]:
        """From-scratch recompute (reference for tests; not on hot path)."""
        return [
            node.queue_length + (1 if node.busy else 0) for node in self.nodes
        ]

    # -- incremental maintenance ------------------------------------------

    def _bucket_insert(self, value: int, index: int) -> None:
        tree = self._bucket_tree.get(value)
        if tree is None:
            free = self._free_trees
            tree = free.pop() if free else [0] * (self._node_count + 1)
            self._bucket_tree[value] = tree
            self._bucket_size[value] = 1
        else:
            self._bucket_size[value] += 1
        _tree_update(tree, index, 1, self._node_count)
        if value not in self._heap_all_member:
            self._heap_all_member.add(value)
            heappush(self._heap_all, value)
        if self.live is not None:
            if self._down[index]:
                self._bucket_down.setdefault(value, set()).add(index)
            elif value not in self._heap_live_member:
                self._heap_live_member.add(value)
                heappush(self._heap_live, value)

    def _bucket_remove(self, value: int, index: int) -> None:
        tree = self._bucket_tree[value]
        _tree_update(tree, index, -1, self._node_count)
        size = self._bucket_size[value] - 1
        if size:
            self._bucket_size[value] = size
        else:
            # Every +1 in the tree was matched by a -1: it is all zeros
            # again, so pool it for the next value that appears.
            del self._bucket_tree[value]
            del self._bucket_size[value]
            self._free_trees.append(tree)
        if self._down[index]:
            downs = self._bucket_down.get(value)
            if downs is not None:
                downs.discard(index)
                if not downs:
                    del self._bucket_down[value]

    def _touch(self, index: int) -> None:
        """Reconcile one node's bucket membership with the fleet arrays.

        Called by the nodes after every outstanding-count transition
        (submit/dispatch-abort/complete/crash/recover); also absorbs
        liveness flips, since the fault injector updates the live set
        before invoking ``crash()``/``recover()``.
        """
        fleet = self._fleet
        value = int(fleet.queue_value[index] + fleet.busy_value[index])
        old = self._counts[index]
        live = self.live
        down = live is not None and index not in live
        if value == old:
            if down == self._down[index]:
                return
            # Liveness-only flip: move the index between the bucket's
            # live and down populations without touching the tree.
            if down:
                self._down[index] = True
                self._bucket_down.setdefault(value, set()).add(index)
            else:
                self._down[index] = False
                downs = self._bucket_down.get(value)
                if downs is not None:
                    downs.discard(index)
                    if not downs:
                        del self._bucket_down[value]
                if value not in self._heap_live_member:
                    self._heap_live_member.add(value)
                    heappush(self._heap_live, value)
            return
        # _bucket_remove consults the *old* down flag for the old
        # bucket's down set; flip it only between remove and insert.
        self._bucket_remove(old, index)
        self._counts[index] = value
        self._down[index] = down
        self._bucket_insert(value, index)

    # -- decisions ---------------------------------------------------------

    def _min_value(self, excluded) -> Optional[int]:
        """Lowest count whose bucket has a non-excluded member."""
        heap = self._heap_all
        member = self._heap_all_member
        sizes = self._bucket_size
        counts = self._counts
        blocked = None
        found = None
        while heap:
            value = heap[0]
            size = sizes.get(value, 0)
            if size == 0:
                # Stale entry (bucket emptied since the push): drop it.
                heappop(heap)
                member.discard(value)
                continue
            hits = 0
            for e in excluded:
                if counts[e] == value:
                    hits += 1
            if size > hits:
                found = value
                break
            # Live bucket, but this fan already took every member: set it
            # aside for this decision only (membership stays).
            heappop(heap)
            if blocked is None:
                blocked = [value]
            else:
                blocked.append(value)
        if blocked:
            for value in blocked:
                heappush(heap, value)
        return found

    def _min_live_value(self, excluded) -> Optional[int]:
        """Lowest count with a live, non-excluded member (or ``None``)."""
        heap = self._heap_live
        member = self._heap_live_member
        sizes = self._bucket_size
        bucket_down = self._bucket_down
        counts = self._counts
        down = self._down
        blocked = None
        found = None
        while heap:
            value = heap[0]
            size = sizes.get(value, 0)
            downs = bucket_down.get(value)
            live_size = size - (len(downs) if downs else 0)
            if live_size <= 0:
                heappop(heap)
                member.discard(value)
                continue
            hits = 0
            for e in excluded:
                if counts[e] == value and not down[e]:
                    hits += 1
            if live_size > hits:
                found = value
                break
            heappop(heap)
            if blocked is None:
                blocked = [value]
            else:
                blocked.append(value)
        if blocked:
            for value in blocked:
                heappush(heap, value)
        return found

    def _select(self, value: int, excluded, failure_aware: bool) -> int:
        """Pick uniformly among the bucket's eligible members.

        Reproduces the historical tie-break exactly: eligible members
        enumerate in ascending index order, ``r = randrange(k)`` only for
        ``k > 1``, and the pick is the ``r``-th eligible member -- found
        by Fenwick descent after shifting ``r`` past the ranks of
        skipped (excluded or down) members.
        """
        tree = self._bucket_tree[value]
        size = self._bucket_size[value]
        counts = self._counts
        skips = None
        if failure_aware:
            downs = self._bucket_down.get(value)
            if downs:
                skips = set(downs)
            down = self._down
            for e in excluded:
                if counts[e] == value and not down[e]:
                    if skips is None:
                        skips = {e}
                    else:
                        skips.add(e)
        else:
            for e in excluded:
                if counts[e] == value:
                    if skips is None:
                        skips = {e}
                    else:
                        skips.add(e)
        eligible = size - (len(skips) if skips else 0)
        if eligible == 1:
            rank = 0
        else:
            rank = self._stream.randrange(eligible)
        if skips:
            for skip_rank in sorted(_tree_rank(tree, e) - 1 for e in skips):
                if skip_rank <= rank:
                    rank += 1
        return _tree_select(tree, rank + 1, self._select_bit, self._node_count)

    def _pick(self, excluded) -> int:
        live = self.live
        if live is not None and live.live_count > 0:
            value = self._min_live_value(excluded)
            if value is not None:
                return self._select(value, excluded, True)
            # Every live node already picked for this fan: degrade to
            # the fault-oblivious choice among the rest.
        value = self._min_value(excluded)
        if value is None:
            raise ValueError("no nodes available for placement")
        return self._select(value, excluded, False)

    def pick_one(self) -> int:
        return self._pick(_NO_EXCLUSIONS)

    def pick_distinct(self, count: int) -> List[int]:
        if count > len(self.nodes):
            raise ValueError(
                f"cannot pick {count} distinct nodes from {len(self.nodes)}"
            )
        chosen: List[int] = []
        excluded: set = set()
        for _ in range(count):
            index = self._pick(excluded)
            excluded.add(index)
            chosen.append(index)
        return chosen
