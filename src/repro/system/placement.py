"""Subtask placement policies (where a global task's subtasks execute).

The paper picks execution nodes uniformly at random -- with replacement
for serial chains, without replacement within a parallel fan (Sec. 5.2).
The scenario subsystem generalizes this into pluggable policies:

* :class:`UniformPlacement`      -- the paper's baseline, preserved draw
  for draw (same stream, same calls), so fixed-seed results are
  bit-identical to the pre-policy code;
* :class:`RoundRobinPlacement`   -- deterministic rotation, no randomness;
* :class:`ZipfPlacement`         -- skewed popularity: node ``i`` is hit
  with probability proportional to ``1 / (i + 1)^s`` (a hotspot model);
* :class:`LeastOutstandingPlacement` -- join-the-shortest-queue routing on
  the current outstanding work (queue length + in-service), random
  tie-breaks.

RNG-stream isolation rule: every policy that consumes randomness owns a
*named* stream.  Uniform keeps the historical ``"global-route"`` name;
new policies use fresh names (``"placement-zipf"``, ``"placement-lo"``)
so that enabling them never perturbs the draw sequences of existing
streams -- adding scenarios must not move fixed-seed baseline results.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import List, Sequence

from ..sim.rng import StreamFactory

#: Policy-name constants (mirrored by ``SystemConfig.placement``).
UNIFORM = "uniform"
ROUND_ROBIN = "round-robin"
ZIPF = "zipf"
LEAST_OUTSTANDING = "least-outstanding"

PLACEMENT_POLICIES = (UNIFORM, ROUND_ROBIN, ZIPF, LEAST_OUTSTANDING)


class PlacementPolicy:
    """Chooses execution nodes for the subtasks of global tasks."""

    #: Human-readable policy name.
    name: str = "abstract"

    #: Optional :class:`~repro.system.faults.LiveSet` (attached by the
    #: simulation when a fault spec is active).  When set, policies avoid
    #: down nodes -- O(1) membership tests -- and degrade gracefully to
    #: their fault-oblivious behavior when too few nodes are up.  ``None``
    #: (every fault-free run) leaves each policy's draw sequence exactly
    #: as before.
    live = None

    def attach_live_set(self, live) -> None:
        """Make this policy failure-aware (skip crashed nodes)."""
        self.live = live

    def pick_one(self) -> int:
        """Node index for one serial-stage subtask."""
        raise NotImplementedError

    def pick_distinct(self, count: int) -> List[int]:
        """``count`` *distinct* node indices for one parallel fan."""
        raise NotImplementedError


class UniformPlacement(PlacementPolicy):
    """The paper's uniform-random placement (the baseline policy).

    Draws come from the historical ``"global-route"`` stream via exactly
    the calls the factories used to make (``randrange`` per serial stage,
    ``sample`` per fan), keeping golden fixed-seed results bit-identical.
    """

    name = UNIFORM

    def __init__(self, node_count: int, streams: StreamFactory) -> None:
        self.node_count = node_count
        self._stream = streams.get("global-route")

    def pick_one(self) -> int:
        index = self._stream.randrange(self.node_count)
        live = self.live
        if live is None or index in live or live.live_count == 0:
            # Fault-free configs (live is None) take exactly the historical
            # single draw; a whole-cluster outage keeps the draw too (the
            # unit queues at a down node until recovery).
            return index
        # Redraw restricted to the live set: uniform over up nodes.
        indices = live.live_indices()
        return indices[self._stream.randrange(len(indices))]

    def pick_distinct(self, count: int) -> List[int]:
        live = self.live
        if live is not None and count <= live.live_count < live.node_count:
            return self._stream.sample(live.live_indices(), count)
        # Fault-free, everyone-up, or too few live nodes for a distinct
        # fan: the historical full-range sample (graceful degradation).
        return self._stream.sample(range(self.node_count), count)


class RoundRobinPlacement(PlacementPolicy):
    """Deterministic rotation over the nodes; consumes no randomness."""

    name = ROUND_ROBIN

    def __init__(self, node_count: int) -> None:
        self.node_count = node_count
        self._cursor = 0

    def pick_one(self) -> int:
        index = self._cursor
        node_count = self.node_count
        live = self.live
        if live is not None and live.live_count > 0:
            # Skip-scan: rotate past down nodes (at most one full lap).
            for _ in range(node_count):
                if index in live:
                    break
                index = (index + 1) % node_count
        self._cursor = (index + 1) % node_count
        return index

    def pick_distinct(self, count: int) -> List[int]:
        if count > self.node_count:
            raise ValueError(
                f"cannot pick {count} distinct nodes from {self.node_count}"
            )
        live = self.live
        if live is not None and 0 < live.live_count < count:
            # Not enough live nodes for a distinct fan: fall back to the
            # oblivious rotation (down members queue until recovery).
            chosen = []
            index = self._cursor
            for _ in range(count):
                chosen.append(index)
                index = (index + 1) % self.node_count
            self._cursor = index
            return chosen
        # Consecutive (live) picks are distinct for count <= live count.
        return [self.pick_one() for _ in range(count)]


class ZipfPlacement(PlacementPolicy):
    """Zipf-skewed hotspot placement: low-index nodes absorb most work.

    Node ``i`` is selected with probability proportional to
    ``1 / (i + 1)^s``; ``s = 0`` degenerates to uniform, larger ``s``
    concentrates load.  Distinct picks use rejection against the already
    chosen set (cheap: fans are small).
    """

    name = ZIPF

    def __init__(
        self, node_count: int, s: float, streams: StreamFactory
    ) -> None:
        if s < 0:
            raise ValueError(f"zipf exponent must be non-negative, got {s}")
        self.node_count = node_count
        self.s = s
        self._stream = streams.get("placement-zipf")
        # Log-space form of 1 / (i + 1)^s: underflows smoothly to 0.0 at
        # extreme exponents where the direct power would overflow.
        self._weights = [
            math.exp(-s * math.log(i + 1)) for i in range(node_count)
        ]
        total = sum(self._weights)
        cumulative: List[float] = []
        acc = 0.0
        for w in self._weights:
            acc += w / total
            cumulative.append(acc)
        cumulative[-1] = 1.0  # guard against float drift
        self._cdf = cumulative

    def pick_one(self) -> int:
        index = bisect_right(self._cdf, self._stream.random())
        live = self.live
        if live is None or index in live or live.live_count == 0:
            return index
        # One renormalized draw over the live nodes (rejection against the
        # full CDF could stall for a very long time when a down node holds
        # nearly all the mass at extreme skew).
        weights = self._weights
        indices = live.live_indices()
        total = 0.0
        for i in indices:
            total += weights[i]
        if total <= 0.0:
            return indices[0]
        threshold = self._stream.random() * total
        acc = 0.0
        for i in indices:
            acc += weights[i]
            if threshold < acc:
                return i
        return indices[-1]

    def pick_distinct(self, count: int) -> List[int]:
        if count > self.node_count:
            raise ValueError(
                f"cannot pick {count} distinct nodes from {self.node_count}"
            )
        # Weighted sampling without replacement by renormalizing over the
        # remaining nodes: exactly one draw per pick, so a heavily skewed
        # tail (tiny or even underflowed-to-zero weights at extreme ``s``)
        # cannot stall the sampler the way rejection sampling would.
        weights = self._weights
        live = self.live
        if live is not None and count <= live.live_count < live.node_count:
            remaining = live.live_indices()
        else:
            remaining = list(range(self.node_count))
        chosen: List[int] = []
        for _ in range(count):
            total = 0.0
            for index in remaining:
                total += weights[index]
            if total <= 0.0:
                # Every remaining weight underflowed: the skew is so
                # extreme any completion order is equivalent; take the
                # most popular (lowest) index deterministically.
                position = 0
            else:
                threshold = self._stream.random() * total
                acc = 0.0
                position = len(remaining) - 1
                for i, index in enumerate(remaining):
                    acc += weights[index]
                    if threshold < acc:
                        position = i
                        break
            chosen.append(remaining.pop(position))
        return chosen


class LeastOutstandingPlacement(PlacementPolicy):
    """Route to the node with the least outstanding work.

    Outstanding work is the ready-queue length plus the unit in service --
    the information a real load balancer has without knowing service
    times.  Ties (common at low load, where everyone is idle) break by a
    draw from the policy's own ``"placement-lo"`` stream so no node is
    structurally favored.
    """

    name = LEAST_OUTSTANDING

    def __init__(self, nodes: Sequence, streams: StreamFactory) -> None:
        self.nodes = list(nodes)
        self._stream = streams.get("placement-lo")

    def _outstanding(self) -> List[int]:
        return [
            node.queue_length + (1 if node.busy else 0) for node in self.nodes
        ]

    @staticmethod
    def _argmins(values: Sequence[int], excluded: set) -> List[int]:
        best = None
        ties: List[int] = []
        for i, v in enumerate(values):
            if i in excluded:
                continue
            if best is None or v < best:
                best = v
                ties = [i]
            elif v == best:
                ties.append(i)
        return ties

    def _pick(self, excluded: set) -> int:
        outstanding = self._outstanding()
        live = self.live
        if live is not None and live.live_count > 0:
            down_excluded = excluded | {
                i for i in range(len(self.nodes)) if i not in live
            }
            ties = self._argmins(outstanding, down_excluded)
            if not ties:
                # Every live node already picked for this fan: degrade to
                # the fault-oblivious choice among the rest.
                ties = self._argmins(outstanding, excluded)
        else:
            ties = self._argmins(outstanding, excluded)
        if len(ties) == 1:
            return ties[0]
        return ties[self._stream.randrange(len(ties))]

    def pick_one(self) -> int:
        return self._pick(set())

    def pick_distinct(self, count: int) -> List[int]:
        if count > len(self.nodes):
            raise ValueError(
                f"cannot pick {count} distinct nodes from {len(self.nodes)}"
            )
        chosen: List[int] = []
        excluded: set = set()
        for _ in range(count):
            index = self._pick(excluded)
            excluded.add(index)
            chosen.append(index)
        return chosen
