"""Subtask placement policies (where a global task's subtasks execute).

The paper picks execution nodes uniformly at random -- with replacement
for serial chains, without replacement within a parallel fan (Sec. 5.2).
The scenario subsystem generalizes this into pluggable policies:

* :class:`UniformPlacement`      -- the paper's baseline, preserved draw
  for draw (same stream, same calls), so fixed-seed results are
  bit-identical to the pre-policy code;
* :class:`RoundRobinPlacement`   -- deterministic rotation, no randomness;
* :class:`ZipfPlacement`         -- skewed popularity: node ``i`` is hit
  with probability proportional to ``1 / (i + 1)^s`` (a hotspot model);
* :class:`LeastOutstandingPlacement` -- join-the-shortest-queue routing on
  the current outstanding work (queue length + in-service), random
  tie-breaks.

RNG-stream isolation rule: every policy that consumes randomness owns a
*named* stream.  Uniform keeps the historical ``"global-route"`` name;
new policies use fresh names (``"placement-zipf"``, ``"placement-lo"``)
so that enabling them never perturbs the draw sequences of existing
streams -- adding scenarios must not move fixed-seed baseline results.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import List, Sequence

from ..sim.rng import StreamFactory

#: Policy-name constants (mirrored by ``SystemConfig.placement``).
UNIFORM = "uniform"
ROUND_ROBIN = "round-robin"
ZIPF = "zipf"
LEAST_OUTSTANDING = "least-outstanding"

PLACEMENT_POLICIES = (UNIFORM, ROUND_ROBIN, ZIPF, LEAST_OUTSTANDING)


class PlacementPolicy:
    """Chooses execution nodes for the subtasks of global tasks."""

    #: Human-readable policy name.
    name: str = "abstract"

    def pick_one(self) -> int:
        """Node index for one serial-stage subtask."""
        raise NotImplementedError

    def pick_distinct(self, count: int) -> List[int]:
        """``count`` *distinct* node indices for one parallel fan."""
        raise NotImplementedError


class UniformPlacement(PlacementPolicy):
    """The paper's uniform-random placement (the baseline policy).

    Draws come from the historical ``"global-route"`` stream via exactly
    the calls the factories used to make (``randrange`` per serial stage,
    ``sample`` per fan), keeping golden fixed-seed results bit-identical.
    """

    name = UNIFORM

    def __init__(self, node_count: int, streams: StreamFactory) -> None:
        self.node_count = node_count
        self._stream = streams.get("global-route")

    def pick_one(self) -> int:
        return self._stream.randrange(self.node_count)

    def pick_distinct(self, count: int) -> List[int]:
        return self._stream.sample(range(self.node_count), count)


class RoundRobinPlacement(PlacementPolicy):
    """Deterministic rotation over the nodes; consumes no randomness."""

    name = ROUND_ROBIN

    def __init__(self, node_count: int) -> None:
        self.node_count = node_count
        self._cursor = 0

    def pick_one(self) -> int:
        index = self._cursor
        self._cursor = (index + 1) % self.node_count
        return index

    def pick_distinct(self, count: int) -> List[int]:
        if count > self.node_count:
            raise ValueError(
                f"cannot pick {count} distinct nodes from {self.node_count}"
            )
        # Consecutive indices mod node_count are distinct for count <= k.
        return [self.pick_one() for _ in range(count)]


class ZipfPlacement(PlacementPolicy):
    """Zipf-skewed hotspot placement: low-index nodes absorb most work.

    Node ``i`` is selected with probability proportional to
    ``1 / (i + 1)^s``; ``s = 0`` degenerates to uniform, larger ``s``
    concentrates load.  Distinct picks use rejection against the already
    chosen set (cheap: fans are small).
    """

    name = ZIPF

    def __init__(
        self, node_count: int, s: float, streams: StreamFactory
    ) -> None:
        if s < 0:
            raise ValueError(f"zipf exponent must be non-negative, got {s}")
        self.node_count = node_count
        self.s = s
        self._stream = streams.get("placement-zipf")
        # Log-space form of 1 / (i + 1)^s: underflows smoothly to 0.0 at
        # extreme exponents where the direct power would overflow.
        self._weights = [
            math.exp(-s * math.log(i + 1)) for i in range(node_count)
        ]
        total = sum(self._weights)
        cumulative: List[float] = []
        acc = 0.0
        for w in self._weights:
            acc += w / total
            cumulative.append(acc)
        cumulative[-1] = 1.0  # guard against float drift
        self._cdf = cumulative

    def pick_one(self) -> int:
        return bisect_right(self._cdf, self._stream.random())

    def pick_distinct(self, count: int) -> List[int]:
        if count > self.node_count:
            raise ValueError(
                f"cannot pick {count} distinct nodes from {self.node_count}"
            )
        # Weighted sampling without replacement by renormalizing over the
        # remaining nodes: exactly one draw per pick, so a heavily skewed
        # tail (tiny or even underflowed-to-zero weights at extreme ``s``)
        # cannot stall the sampler the way rejection sampling would.
        weights = self._weights
        remaining = list(range(self.node_count))
        chosen: List[int] = []
        for _ in range(count):
            total = 0.0
            for index in remaining:
                total += weights[index]
            if total <= 0.0:
                # Every remaining weight underflowed: the skew is so
                # extreme any completion order is equivalent; take the
                # most popular (lowest) index deterministically.
                position = 0
            else:
                threshold = self._stream.random() * total
                acc = 0.0
                position = len(remaining) - 1
                for i, index in enumerate(remaining):
                    acc += weights[index]
                    if threshold < acc:
                        position = i
                        break
            chosen.append(remaining.pop(position))
        return chosen


class LeastOutstandingPlacement(PlacementPolicy):
    """Route to the node with the least outstanding work.

    Outstanding work is the ready-queue length plus the unit in service --
    the information a real load balancer has without knowing service
    times.  Ties (common at low load, where everyone is idle) break by a
    draw from the policy's own ``"placement-lo"`` stream so no node is
    structurally favored.
    """

    name = LEAST_OUTSTANDING

    def __init__(self, nodes: Sequence, streams: StreamFactory) -> None:
        self.nodes = list(nodes)
        self._stream = streams.get("placement-lo")

    def _outstanding(self) -> List[int]:
        return [
            node.queue_length + (1 if node.busy else 0) for node in self.nodes
        ]

    @staticmethod
    def _argmins(values: Sequence[int], excluded: set) -> List[int]:
        best = None
        ties: List[int] = []
        for i, v in enumerate(values):
            if i in excluded:
                continue
            if best is None or v < best:
                best = v
                ties = [i]
            elif v == best:
                ties.append(i)
        return ties

    def _pick(self, excluded: set) -> int:
        ties = self._argmins(self._outstanding(), excluded)
        if len(ties) == 1:
            return ties[0]
        return ties[self._stream.randrange(len(ties))]

    def pick_one(self) -> int:
        return self._pick(set())

    def pick_distinct(self, count: int) -> List[int]:
        if count > len(self.nodes):
            raise ValueError(
                f"cannot pick {count} distinct nodes from {len(self.nodes)}"
            )
        chosen: List[int] = []
        excluded: set = set()
        for _ in range(count):
            index = self._pick(excluded)
            excluded.add(index)
            chosen.append(index)
        return chosen
