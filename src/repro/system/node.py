"""A processing node: one resource with its own real-time scheduler.

Each node (Sec. 3.2) models a system component -- database, expert system,
compute engine, even a network hop -- with a non-preemptive server and a
ready queue ordered by a :class:`~repro.system.schedulers.SchedulingPolicy`.
Nodes are fully independent: they share no state and never coordinate,
matching the paper's "open system" assumption.

The server is a simulation process: it sleeps while the queue is empty,
picks the highest-priority unit otherwise, optionally consults the overload
policy (abort-at-dispatch), serves the unit for its *real* execution time,
and fires the unit's completion event.
"""

from __future__ import annotations

from typing import Optional

from ..sim.core import Environment, Event
from .metrics import MetricsCollector
from .overload import NoAbort, OverloadPolicy
from .schedulers import ReadyQueue, SchedulingPolicy
from .work import WorkUnit


class Node:
    """One independent processing component with its own scheduler."""

    def __init__(
        self,
        env: Environment,
        index: int,
        policy: SchedulingPolicy,
        metrics: MetricsCollector,
        overload_policy: Optional[OverloadPolicy] = None,
    ) -> None:
        self.env = env
        self.index = index
        self.queue = ReadyQueue(policy)
        self.metrics = metrics
        self.overload_policy = overload_policy or NoAbort()
        self._wakeup: Optional[Event] = None
        self._busy = False
        self.process = env.process(self._server())

    # -- submission ---------------------------------------------------------

    def submit(self, unit: WorkUnit) -> Event:
        """Enqueue ``unit``; returns the unit's completion event.

        The unit's ``timing.ar`` must be the current time (it is the
        submission instant by definition), and its deadline must already be
        assigned by the SDA strategy.
        """
        if unit.node_index != self.index:
            raise ValueError(
                f"{unit!r} routed to node {self.index}, expected "
                f"{unit.node_index}"
            )
        self.queue.push(unit)
        self.metrics.node_queue[self.index].increment(1, self.env.now)
        self.metrics.trace(self.env.now, "submit", unit, self.index)
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return unit.done

    @property
    def busy(self) -> bool:
        """True while the server is executing a unit."""
        return self._busy

    @property
    def queue_length(self) -> int:
        """Number of units waiting (not including the one in service)."""
        return len(self.queue)

    # -- server loop ----------------------------------------------------------

    def _server(self):
        env = self.env
        busy_signal = self.metrics.node_busy[self.index]
        queue_signal = self.metrics.node_queue[self.index]
        while True:
            if not self.queue:
                self._wakeup = env.event()
                yield self._wakeup
                self._wakeup = None
            unit = self.queue.pop()
            queue_signal.increment(-1, env.now)
            self.metrics.count_dispatch(self.index)
            timing = unit.timing

            if self.overload_policy.should_abort_at_dispatch(unit, env.now):
                timing.aborted = True
                self.metrics.trace(env.now, "abort", unit, self.index)
                self.metrics.record_unit_completion(unit)
                unit.done.succeed(unit)
                continue

            self._busy = True
            busy_signal.update(1, env.now)
            timing.started_at = env.now
            self.metrics.trace(env.now, "dispatch", unit, self.index)
            yield env.timeout(timing.ex)
            timing.completed_at = env.now
            self._busy = False
            busy_signal.update(0, env.now)
            self.metrics.trace(env.now, "complete", unit, self.index)
            self.metrics.record_unit_completion(unit)
            unit.done.succeed(unit)

    def __repr__(self) -> str:
        return (
            f"<Node {self.index} policy={self.queue.policy.name} "
            f"queued={len(self.queue)} busy={self._busy}>"
        )
