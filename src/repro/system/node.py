"""A processing node: one resource with its own real-time scheduler.

Each node (Sec. 3.2) models a system component -- database, expert system,
compute engine, even a network hop -- with a non-preemptive server and a
ready queue ordered by a :class:`~repro.system.schedulers.SchedulingPolicy`.
Nodes are fully independent: they share no state and never coordinate,
matching the paper's "open system" assumption.

The server sleeps while the queue is empty, picks the highest-priority
unit otherwise, optionally consults the overload policy
(abort-at-dispatch), serves the unit for its *real* execution time, and
fires the unit's completion event.

Hot-path notes
--------------

The server executes once per work unit for the entire run, so it is
written for speed: it is a callback-driven state machine (dispatching
directly from submissions and service-completion events, with no
generator process, no coroutine switch, and no idle-wakeup event),
collaborator state is bound once, the overload hook is skipped entirely
under the ``NoAbort`` baseline, trace calls are guarded by a tracer
``None`` check (tracing off must cost nothing), monitor updates are
inlined, and completion events are only fired for units whose submitter
actually asked for one.  The preemptive subclass is a callback machine
too, built on cancellable kernel timers (see
:mod:`repro.system.preemptive`); no node kind runs a generator server.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Optional

from ..sim.core import NORMAL, Environment, Event, _Call
from .metrics import MetricsCollector
from .overload import NoAbort, OverloadPolicy
from .schedulers import ReadyQueue, SchedulingPolicy
from .work import WorkUnit


class Node:
    """One independent processing component with its own scheduler."""

    def __init__(
        self,
        env: Environment,
        index: int,
        policy: SchedulingPolicy,
        metrics: MetricsCollector,
        overload_policy: Optional[OverloadPolicy] = None,
        speed: float = 1.0,
    ) -> None:
        if speed <= 0:
            raise ValueError(f"node speed must be positive, got {speed}")
        self.env = env
        self.index = index
        #: Service-speed factor (heterogeneous-hardware scenarios): a unit
        #: with demand ``ex`` occupies the server for ``ex / speed``.  The
        #: homogeneous baseline keeps the exact ``timing.ex`` sleep (no
        #: division), so fixed-seed results are bit-identical.
        self.speed = speed
        self.queue = ReadyQueue(policy)
        self.metrics = metrics
        self.overload_policy = overload_policy or NoAbort()
        self._busy = False
        self._serving: Optional[WorkUnit] = None
        self._wake_pending = False
        # Fault machinery (inert unless a FaultInjector attaches): the
        # up/down flag, the retained in-service timer (so a crash can
        # revoke it), its absolute expiry (so "resume" semantics know the
        # remaining service), and the crash-semantics flags.
        self._up = True
        self._sleep = None
        self._service_end = 0.0
        self._frozen_left = -1.0  # >= 0 while a frozen unit awaits recovery
        self._lose_in_flight = True
        self._drop_queued = False
        # The flat per-node signal arrays (FleetState), bound once: the
        # hot loops below update them with the exact arithmetic the old
        # inlined TimeWeighted updates performed, minus the per-signal
        # object indirection.
        fleet = metrics.fleet
        self._fleet = fleet
        self._q_value = fleet.queue_value
        self._q_area = fleet.queue_area
        self._q_last = fleet.queue_last
        self._q_min = fleet.queue_min
        self._q_max = fleet.queue_max
        self._b_value = fleet.busy_value
        self._b_area = fleet.busy_area
        self._b_last = fleet.busy_last
        self._b_min = fleet.busy_min
        self._b_max = fleet.busy_max
        #: Outstanding-count change hook (``None`` keeps the hot path at
        #: one pointer check, the tracer discipline).  An incremental
        #: placement policy (least-outstanding) binds this to learn of
        #: every submit/complete/crash/recover without scanning nodes.
        self._outstanding_listener = None
        # Ready-queue internals and callback methods, bound once: pushes,
        # dispatches and completions run once per unit, and bound-method
        # creation alone is measurable at that rate.
        queue = self.queue
        self._heap = queue._heap  # mutated in place by the queue
        self._queue_key = queue._key
        self._queue_seq = queue._seq
        self._on_complete = self._complete
        self._on_wake = self._dispatch_next
        # The idle wake-up, pooled: one bare kernel call per node, reused
        # for every schedule (the callback slot is never detached, so
        # there is nothing to re-arm).  ``_wake_pending`` guarantees at
        # most one outstanding schedule, so reuse is safe; the base class
        # appends it to the kernel's urgent deque directly (the classic
        # URGENT ``_schedule_call``), the preemptive subclass pushes it
        # as a NORMAL heap entry.
        self._wake_event = _Call(self._on_wake)
        overload = self.overload_policy
        self._abort_check = (
            None
            if type(overload) is NoAbort
            else overload.should_abort_at_dispatch
        )

    # -- submission ---------------------------------------------------------

    def submit(self, unit: WorkUnit) -> Event:
        """Enqueue ``unit``; returns the unit's completion event.

        The unit's ``timing.ar`` must be the current time (it is the
        submission instant by definition), and its deadline must already be
        assigned by the SDA strategy.
        """
        self.submit_nowait(unit)
        return unit.done

    def submit_nowait(self, unit: WorkUnit) -> None:
        """Enqueue ``unit`` without materializing its completion event.

        Fast path for fire-and-forget submitters (the local task sources
        never join on their units): skipping the completion event saves an
        event allocation plus one dead event-list entry per completion.
        """
        if unit.node_index != self.index:
            raise ValueError(
                f"{unit!r} routed to node {self.index}, expected "
                f"{unit.node_index}"
            )
        # Inlined ReadyQueue.push (see schedulers.py for the reference).
        heappush(
            self._heap,
            (
                unit.priority_class,
                self._queue_key(unit),
                next(self._queue_seq),
                unit,
            ),
        )
        now = self.env._now
        index = self.index
        # Inlined queue increment(1, now) against the flat arrays: kernel
        # time is monotone, and a +1 step can raise only the maximum.
        q_value = self._q_value
        old = q_value[index]
        self._q_area[index] += old * (now - self._q_last[index])
        self._q_last[index] = now
        value = old + 1.0
        q_value[index] = value
        if value > self._q_max[index]:
            self._q_max[index] = value
        metrics = self.metrics
        if metrics._tracer is not None:
            metrics._tracer.record(now, "submit", unit, index)
        listener = self._outstanding_listener
        if listener is not None:
            listener(index)
        # Wake the idle server.  The dispatch is deferred by one urgent
        # event rather than run synchronously so that submissions landing
        # at the same simulation instant are scheduled as a batch -- the
        # policy (EDF, MLF) must order simultaneous arrivals, not
        # submission order.  Urgent priority keeps the classic semantics
        # that an idle server starts earlier-submitted work before
        # bookkeeping scheduled afterwards (e.g. a pre-run blocker must
        # enter service before a process manager launched after it can
        # slip a later unit in front).
        if not self._busy and not self._wake_pending and self._up:
            self._wake_pending = True
            # Inlined urgent _schedule_call with the pooled wake event:
            # no allocation, no heap entry.
            self.env._urgent.append(self._wake_event)

    @property
    def busy(self) -> bool:
        """True while the server is executing a unit."""
        return self._busy

    @property
    def queue_length(self) -> int:
        """Number of units waiting (not including the one in service)."""
        return len(self.queue)

    # -- server state machine -------------------------------------------------

    def _dispatch_next(self, _event=None) -> None:
        """Serve the highest-priority queued unit, or go idle.

        Runs from the deferred idle wake (as its event callback — the
        ``_event`` argument — clearing ``_wake_pending`` on entry, which
        is a no-op on the other paths since a wake is only ever pending
        while the server is idle) and from the completion callback;
        immediate aborts drain in the loop without touching the event
        list.
        """
        self._wake_pending = False
        if not self._up:
            return
        heap = self._heap
        if not heap:
            return
        env = self.env
        index = self.index
        metrics = self.metrics
        q_value = self._q_value
        q_area = self._q_area
        q_last = self._q_last
        q_min = self._q_min
        abort_check = self._abort_check
        while heap:
            unit = heappop(heap)[3]
            now = env._now
            # Inlined queue increment(-1, now): a -1 step can lower only
            # the minimum.
            old = q_value[index]
            q_area[index] += old * (now - q_last[index])
            q_last[index] = now
            qlen = old - 1.0
            q_value[index] = qlen
            if qlen < q_min[index]:
                q_min[index] = qlen
            metrics.node_dispatched[index] += 1
            timing = unit.timing

            if abort_check is not None and abort_check(unit, now):
                timing.aborted = True
                if metrics._tracer is not None:
                    metrics._tracer.record(now, "abort", unit, index)
                metrics.record_unit_completion(unit, now)
                listener = self._outstanding_listener
                if listener is not None:
                    listener(index)
                done = unit._done
                if done is not None:
                    done.succeed(unit)
                on_done = unit.on_done
                if on_done is not None:
                    env._schedule_call(
                        on_done, value=unit, priority=NORMAL
                    )
                elif done is None and unit.pool is not None:
                    # Fire-and-forget unit with no waiters: recycle.
                    unit.release()
                continue

            self._busy = True
            self._serving = unit
            # Inlined busy update(1, now) against the flat arrays: the
            # 0 -> 1 edge adds no area (the signal was 0), so only the
            # bookkeeping fields move.
            self._b_last[index] = now
            self._b_value[index] = 1.0
            if self._b_max[index] < 1.0:
                self._b_max[index] = 1.0
            timing.started_at = now
            if metrics._tracer is not None:
                metrics._tracer.record(now, "dispatch", unit, index)
            speed = self.speed
            service = timing.ex if speed == 1.0 else timing.ex / speed
            # Inlined env._sleep(service, self._on_complete): the service
            # timer is armed once per dispatched unit, and the method
            # frame alone is measurable at that rate.
            pool = env._sleep_pool
            if pool and service >= 0.0:
                sleep = pool.pop()
                sleep.delay = service
                sleep.callback = self._on_complete
                sleep._processed = False
                heappush(
                    env._queue,
                    (env._now + service, env._next_seq(), sleep),
                )
            else:
                sleep = env._sleep(service, self._on_complete)
            # Retained so a crash can revoke the completion; the expiry
            # stamp is what "frozen-and-resumed" semantics restart from.
            self._sleep = sleep
            self._service_end = now + service
            return

    def _complete(self, _event) -> None:
        """Service interval elapsed: record the outcome, serve the next."""
        unit = self._serving
        self._serving = None
        self._sleep = None
        metrics = self.metrics
        index = self.index
        env = self.env
        now = env._now
        timing = unit.timing
        timing.completed_at = now
        self._busy = False
        # Inlined busy update(0, now): the 1 -> 0 edge accumulates one
        # service interval of area (1.0 * dt == dt exactly).
        self._b_area[index] += now - self._b_last[index]
        self._b_last[index] = now
        self._b_value[index] = 0.0
        if self._b_min[index] > 0.0:
            self._b_min[index] = 0.0
        if metrics._tracer is not None:
            metrics._tracer.record(now, "complete", unit, index)
        metrics.record_unit_completion(unit, now)
        listener = self._outstanding_listener
        if listener is not None:
            listener(index)
        done = unit._done
        if done is not None:
            done.succeed(unit)
        on_done = unit.on_done
        if on_done is not None:
            # Deferred like a `done` event (same NORMAL priority, same seq
            # slot) so the continuation cannot reorder the node's own
            # next dispatch or any other same-instant event.
            env._schedule_call(on_done, value=unit, priority=NORMAL)
        elif done is None and unit.pool is not None:
            # Fire-and-forget unit with no waiters: recycle.  The tracer
            # and metrics copied everything they need above.
            unit.release()
        self._dispatch_next()

    # -- fault machinery ------------------------------------------------------

    @property
    def up(self) -> bool:
        """True while the node is operational (always, without faults)."""
        return self._up

    def configure_fault_semantics(
        self, lose_in_flight: bool, drop_queued: bool
    ) -> None:
        """Set what a crash does to in-flight and queued work."""
        self._lose_in_flight = lose_in_flight
        self._drop_queued = drop_queued

    def crash(self) -> None:
        """Take the node down, revoking the in-service timer.

        The in-flight unit is either discarded (``in_flight="lost"``) or
        frozen with its remaining demand (``"resume"``); queued units are
        discarded when ``queued="dropped"``.  Crash timers are plain heap
        events, so the kernel's urgent deque is empty here and no wake can
        be pending for the base node.
        """
        self._up = False
        env = self.env
        now = env._now
        index = self.index
        if self._busy:
            self._sleep.cancel()
            self._sleep = None
            self._busy = False
            # Inlined busy update(0, now): the 1 -> 0 edge accumulates the
            # partial service interval of area.
            self._b_area[index] += now - self._b_last[index]
            self._b_last[index] = now
            self._b_value[index] = 0.0
            if self._b_min[index] > 0.0:
                self._b_min[index] = 0.0
            unit = self._serving
            if self._lose_in_flight:
                self._serving = None
                self._discard_lost(unit, now)
            else:
                # Freeze: keep ``_serving`` and remember the remaining
                # service so recovery can restart the timer.
                left = self._service_end - now
                self._frozen_left = left if left > 0.0 else 0.0
        if self._drop_queued:
            heap = self._heap
            if heap:
                count = len(heap)
                for entry in heap:
                    self._discard_lost(entry[3], now)
                heap.clear()
                self._queue_increment(-count, now)
        listener = self._outstanding_listener
        if listener is not None:
            listener(index)

    def recover(self) -> None:
        """Bring the node back up and resume or re-dispatch work."""
        self._up = True
        env = self.env
        now = env._now
        index = self.index
        if self._frozen_left >= 0.0:
            left = self._frozen_left
            self._frozen_left = -1.0
            self._busy = True
            # Inlined busy update(1, now): 0 -> 1 edge adds no area.
            self._b_last[index] = now
            self._b_value[index] = 1.0
            if self._b_max[index] < 1.0:
                self._b_max[index] = 1.0
            self._service_end = now + left
            self._sleep = env._sleep(left, self._on_complete)
        elif self._heap and not self._wake_pending:
            self._wake_pending = True
            env._urgent.append(self._wake_event)
        listener = self._outstanding_listener
        if listener is not None:
            listener(index)

    def _queue_increment(self, delta: float, now: float) -> None:
        """Shift the queue-length signal by ``delta`` (cold paths).

        Exact ``TimeWeighted.increment`` arithmetic against the flat
        arrays; the hot loops inline this instead of calling it.
        """
        index = self.index
        q_value = self._q_value
        old = q_value[index]
        self._q_area[index] += old * (now - self._q_last[index])
        self._q_last[index] = now
        value = old + delta
        q_value[index] = value
        if value < self._q_min[index]:
            self._q_min[index] = value
        if value > self._q_max[index]:
            self._q_max[index] = value

    def _discard_lost(self, unit: WorkUnit, now: float) -> None:
        """Account a crash-discarded unit and release its waiters.

        The unit completes as aborted *and* marked ``lost`` so the retry
        layer in the process manager can tell crash losses apart from
        overload aborts (only the former are retried).
        """
        timing = unit.timing
        timing.aborted = True
        unit.lost = True
        metrics = self.metrics
        index = self.index
        metrics.node_lost[index] += 1
        if metrics._tracer is not None:
            metrics._tracer.record(now, "lost", unit, index)
        metrics.record_unit_completion(unit, now)
        done = unit._done
        if done is not None:
            done.succeed(unit)
        on_done = unit.on_done
        if on_done is not None:
            self.env._schedule_call(on_done, value=unit, priority=NORMAL)
        elif done is None and unit.pool is not None:
            # Fire-and-forget unit with no waiters: recycle.
            unit.release()

    def __repr__(self) -> str:
        return (
            f"<Node {self.index} policy={self.queue.policy.name} "
            f"queued={len(self.queue)} busy={self._busy}>"
        )
