"""Fault injection: node crashes, recoveries, and the live-node set.

The paper assumes perfectly reliable nodes; in a deployed distributed
soft real-time system the dominant source of missed deadlines is partial
failure.  This module adds a declarative fault dimension:

* :class:`FaultSpec` -- a frozen, JSON-round-trippable description of a
  per-node crash/repair process (MTTF/MTTR drawn from a configurable
  distribution family) plus the crash semantics (is the in-flight unit
  *lost* or *frozen-and-resumed*?  is the ready queue *dropped* or
  *preserved*?) and the process manager's retry/timeout/backoff knobs;
* :class:`LiveSet` -- the O(1) up/down membership structure that
  failure-aware placement policies and the retry layer consult;
* :class:`FaultInjector` -- the callback-based driver that crashes and
  recovers nodes on their per-node fault streams.

RNG-stream isolation: each node's time-to-failure and time-to-repair
draws come from dedicated streams (``"fault-ttf/node-i"`` /
``"fault-ttr/node-i"``), and retry routing uses ``"retry-route"`` --
all fresh names, per the README isolation rule.  A config without a
(crash-enabled) ``FaultSpec`` builds no injector, schedules no events,
and creates no streams, so every fault-free run stays bit-identical to
the pre-fault engine; the golden gate pins this.

Correlated outages: ``blast_radius = r`` makes every failure event take
down the failing node together with its ``r - 1`` cyclic successors
(rack/switch-style shared fate).  Each victim repairs on its *own*
repair stream, so the blast changes which nodes go down, never how any
other component draws randomness.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, fields
from typing import Dict, List, Mapping, Sequence

from ..sim.distributions import (
    Deterministic,
    Distribution,
    Erlang,
    Exponential,
    Lognormal,
    Pareto,
    Uniform,
)

#: Crash semantics for the unit in service at the crash instant.
IN_FLIGHT_LOST = "lost"
IN_FLIGHT_RESUME = "resume"
_IN_FLIGHT_MODES = (IN_FLIGHT_LOST, IN_FLIGHT_RESUME)

#: Crash semantics for the ready queue at the crash instant.
QUEUED_PRESERVED = "preserved"
QUEUED_DROPPED = "dropped"
_QUEUED_MODES = (QUEUED_PRESERVED, QUEUED_DROPPED)

#: Distribution families for time-to-failure / time-to-repair draws.
#: Every family is parameterized by its *mean* (so availability
#: arithmetic stays straightforward) plus one optional shape knob.
_TIME_MODELS = (
    "exponential", "erlang", "uniform", "deterministic", "pareto",
    "lognormal",
)


def _time_distribution(model: str, mean: float, shape: float) -> Distribution:
    """Build a mean-``mean`` distribution of the given family.

    ``shape`` is the Erlang stage count, the Pareto tail index, or the
    lognormal log-space sigma; the other families ignore it.  "uniform"
    spreads over ``[0, 2 * mean]`` so the mean is preserved.
    """
    if model == "exponential":
        return Exponential(mean)
    if model == "erlang":
        k = int(shape)
        return Erlang(k, mean / k)
    if model == "uniform":
        return Uniform(0.0, 2.0 * mean)
    if model == "deterministic":
        return Deterministic(mean)
    if model == "pareto":
        return Pareto(mean, shape)
    if model == "lognormal":
        return Lognormal(mean, shape)
    raise ValueError(f"unknown time-distribution model {model!r}")


@dataclass(frozen=True)
class FaultSpec:
    """Declarative description of the fault dimension of one scenario.

    ``mttf = 0`` (the default) disables crashes entirely: no injector is
    built, no fault streams are created, no events are scheduled -- a
    zero-rate spec is bit-identical to no spec at all (pinned by the
    property tests).  Retries are independent of crashes: a spec with
    ``retry_limit > 0`` wires the process manager's retry layer even at
    ``mttf = 0`` (useful for timeout-driven retries alone).
    """

    #: Mean time to failure per node (simulated time); ``0`` = never.
    mttf: float = 0.0
    #: Mean time to repair.
    mttr: float = 10.0
    #: Distribution family of time-to-failure draws.
    failure_model: str = "exponential"
    #: Distribution family of time-to-repair draws.
    repair_model: str = "exponential"
    #: Shape knob of the failure family (Erlang k / Pareto tail index /
    #: lognormal sigma; ignored by the other families).
    failure_shape: float = 2.0
    #: Shape knob of the repair family.
    repair_shape: float = 2.0
    #: Fate of the unit in service at the crash instant: "lost" (the
    #: unit is discarded, its work wasted) or "resume" (frozen, service
    #: continues from the interruption point at recovery).
    in_flight: str = IN_FLIGHT_LOST
    #: Fate of the ready queue at the crash instant: "preserved" (queued
    #: units wait out the downtime) or "dropped" (discarded).
    queued: str = QUEUED_PRESERVED
    #: Every failure event crashes this many cyclically-consecutive
    #: nodes together (correlated outages); ``1`` = independent crashes.
    blast_radius: int = 1
    #: Maximum resubmissions per global subtask; ``0`` disables the
    #: process manager's retry layer.
    retry_limit: int = 0
    #: Per-attempt completion timeout (simulated time); ``0`` = none --
    #: only crash-lost units trigger retries.
    retry_timeout: float = 0.0
    #: Base backoff delay before the first retry.
    retry_backoff: float = 0.5
    #: Multiplier applied to the backoff per successive retry.
    retry_backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if not (math.isfinite(self.mttf) and self.mttf >= 0):
            raise ValueError(f"mttf must be finite and >= 0, got {self.mttf}")
        if not (math.isfinite(self.mttr) and self.mttr > 0):
            raise ValueError(f"mttr must be finite and positive, got {self.mttr}")
        for label, model, shape in (
            ("failure", self.failure_model, self.failure_shape),
            ("repair", self.repair_model, self.repair_shape),
        ):
            if model not in _TIME_MODELS:
                raise ValueError(
                    f"unknown {label}_model {model!r}; expected one of "
                    f"{_TIME_MODELS}"
                )
            if model == "erlang" and (shape != int(shape) or shape < 1):
                raise ValueError(
                    f"{label}_shape must be a positive integer stage count "
                    f"for erlang, got {shape}"
                )
            if model == "pareto" and shape <= 1.0:
                raise ValueError(
                    f"{label}_shape (Pareto tail index) must exceed 1, got "
                    f"{shape}"
                )
            if model == "lognormal" and shape <= 0.0:
                raise ValueError(
                    f"{label}_shape (lognormal sigma) must be positive, got "
                    f"{shape}"
                )
        if self.in_flight not in _IN_FLIGHT_MODES:
            raise ValueError(
                f"in_flight must be one of {_IN_FLIGHT_MODES}, got "
                f"{self.in_flight!r}"
            )
        if self.queued not in _QUEUED_MODES:
            raise ValueError(
                f"queued must be one of {_QUEUED_MODES}, got {self.queued!r}"
            )
        if self.blast_radius < 1:
            raise ValueError(
                f"blast_radius must be >= 1, got {self.blast_radius}"
            )
        if self.retry_limit < 0:
            raise ValueError(
                f"retry_limit must be >= 0, got {self.retry_limit}"
            )
        if not (math.isfinite(self.retry_timeout) and self.retry_timeout >= 0):
            raise ValueError(
                f"retry_timeout must be finite and >= 0, got "
                f"{self.retry_timeout}"
            )
        if not (math.isfinite(self.retry_backoff) and self.retry_backoff >= 0):
            raise ValueError(
                f"retry_backoff must be finite and >= 0, got "
                f"{self.retry_backoff}"
            )
        if not (
            math.isfinite(self.retry_backoff_factor)
            and self.retry_backoff_factor >= 1.0
        ):
            raise ValueError(
                f"retry_backoff_factor must be finite and >= 1, got "
                f"{self.retry_backoff_factor}"
            )
        if self.mttf > 0:
            # Probe both distributions so a bad (model, mean, shape)
            # combination fails at spec definition time.
            _time_distribution(self.failure_model, self.mttf, self.failure_shape)
            _time_distribution(self.repair_model, self.mttr, self.repair_shape)

    # -- derived -----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """True when crashes actually happen (``mttf > 0``)."""
        return self.mttf > 0

    @property
    def retries_enabled(self) -> bool:
        """True when the process manager's retry layer should be wired."""
        return self.retry_limit > 0

    @property
    def availability(self) -> float:
        """Stationary per-node availability ``mttf / (mttf + mttr)``.

        ``1.0`` when crashes are disabled.  With ``blast_radius > 1``
        this is a lower-bound approximation (blast victims restart their
        failure clock at recovery).
        """
        if not self.enabled:
            return 1.0
        return self.mttf / (self.mttf + self.mttr)

    def failure_distribution(self) -> Distribution:
        return _time_distribution(self.failure_model, self.mttf, self.failure_shape)

    def repair_distribution(self) -> Distribution:
        return _time_distribution(self.repair_model, self.mttr, self.repair_shape)

    def backoff_delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        return self.retry_backoff * self.retry_backoff_factor ** (attempt - 1)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-serializable; all fields are scalars)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultSpec":
        """Inverse of :meth:`to_dict`; rejects unknown keys loudly."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown FaultSpec fields: {sorted(unknown)}"
            )
        return cls(**data)

    def describe(self) -> str:
        """Compact summary for scenario listings."""
        parts = [f"mttf={self.mttf:g}", f"mttr={self.mttr:g}"]
        if self.in_flight != IN_FLIGHT_LOST:
            parts.append(self.in_flight)
        if self.queued != QUEUED_PRESERVED:
            parts.append(f"queue-{self.queued}")
        if self.blast_radius > 1:
            parts.append(f"blast={self.blast_radius}")
        if self.retries_enabled:
            parts.append(f"retry={self.retry_limit}")
        return "faults(" + ", ".join(parts) + ")"


class LiveSet:
    """O(1) membership view of which nodes are currently up.

    Maintained by the :class:`FaultInjector`; consulted by the
    failure-aware placement policies (``index in live_set``) and the
    retry layer (``live_count`` / ``live_indices``).  All-up at
    construction.
    """

    __slots__ = ("_up", "live_count", "node_count", "version")

    def __init__(self, node_count: int) -> None:
        self._up: List[bool] = [True] * node_count
        self.live_count = node_count
        self.node_count = node_count
        #: Bumped on every actual up/down flip; cheap change detection
        #: for caches built over the live membership (e.g. the Zipf
        #: alias table rebuilds only when this moves).
        self.version = 0

    def __contains__(self, index: int) -> bool:
        return self._up[index]

    def mark_down(self, index: int) -> None:
        if self._up[index]:
            self._up[index] = False
            self.live_count -= 1
            self.version += 1

    def mark_up(self, index: int) -> None:
        if not self._up[index]:
            self._up[index] = True
            self.live_count += 1
            self.version += 1

    def live_indices(self) -> List[int]:
        """Indices of the nodes currently up, ascending."""
        return [i for i, up in enumerate(self._up) if up]

    def __repr__(self) -> str:
        return f"<LiveSet {self.live_count}/{self.node_count} up>"


class _NodeFaultClock:
    """The alternating up/down renewal process of one node.

    One pending kernel timer at a time: a failure timer while the node
    is up, a repair timer while it is down.  Blast victims have their
    pending failure timer cancelled by the injector and re-enter the
    cycle through their own repair draw, so every draw still comes from
    the node's own streams.
    """

    __slots__ = ("injector", "index", "next_ttf", "next_ttr", "pending")

    def __init__(self, injector: "FaultInjector", index: int) -> None:
        self.injector = injector
        self.index = index
        streams = injector.streams
        spec = injector.spec
        self.next_ttf = spec.failure_distribution().bind(
            streams.get(f"fault-ttf/node-{index}")
        )
        self.next_ttr = spec.repair_distribution().bind(
            streams.get(f"fault-ttr/node-{index}")
        )
        self.pending = None

    def arm_failure(self) -> None:
        self.pending = self.injector.env._sleep(self.next_ttf(), self._on_fail)

    def arm_repair(self) -> None:
        self.pending = self.injector.env._sleep(self.next_ttr(), self._on_repair)

    def _on_fail(self, _event) -> None:
        self.pending = None
        self.injector._fail(self.index)

    def _on_repair(self, _event) -> None:
        self.pending = None
        self.injector._recover(self.index)

    # -- pickling (checkpoint/resume) ------------------------------------
    #
    # The TTF/TTR samplers are bind() closures and cannot pickle, so the
    # snapshot carries their (distribution, stream) pairs instead and
    # rebinds at restore -- bit-identical, since all randomness lives in
    # the streams.  The pairs must be captured *here* rather than looked
    # up through ``self.injector`` in __setstate__: the injector is part
    # of a reference cycle with its clocks and may still be an empty
    # shell when this clock's state is applied.

    def __getstate__(self) -> tuple:
        injector = self.injector
        streams = injector.streams
        spec = injector.spec
        return (
            injector,
            self.index,
            self.pending,
            spec.failure_distribution(),
            spec.repair_distribution(),
            streams.get(f"fault-ttf/node-{self.index}"),
            streams.get(f"fault-ttr/node-{self.index}"),
        )

    def __setstate__(self, state: tuple) -> None:
        (self.injector, self.index, self.pending,
         ttf_dist, ttr_dist, ttf_stream, ttr_stream) = state
        self.next_ttf = ttf_dist.bind(ttf_stream)
        self.next_ttr = ttr_dist.bind(ttr_stream)


class FaultInjector:
    """Crashes and recovers nodes per a :class:`FaultSpec`.

    Pure callback machine on the kernel's cancellable timers: each node
    runs an independent alternating renewal process (up for a
    time-to-failure draw, down for a time-to-repair draw).  The injector
    owns the :class:`LiveSet` transitions and the crash/recovery
    counters; the nodes own their local consequences
    (:meth:`~repro.system.node.Node.crash` /
    :meth:`~repro.system.node.Node.recover`).
    """

    def __init__(
        self,
        env,
        nodes: Sequence,
        spec: FaultSpec,
        streams,
        metrics,
        live_set: LiveSet,
    ) -> None:
        if not spec.enabled:
            raise ValueError(
                "FaultInjector requires a crash-enabled spec (mttf > 0)"
            )
        self.env = env
        self.nodes = list(nodes)
        self.spec = spec
        self.streams = streams
        self.metrics = metrics
        self.live = live_set
        #: Optional :class:`~repro.system.detector.FailureDetector`
        #: notified of true crash/recovery instants (accounting only:
        #: detection latency and false-positive/negative attribution).
        #: The simulation wires it when a detector is configured.
        self.detector = None
        #: Lifetime crash/recovery event counts (diagnostics; the
        #: measured-window counters live in the metrics collector).
        self.crashes = 0
        self.recoveries = 0
        self._clocks = [
            _NodeFaultClock(self, i) for i in range(len(self.nodes))
        ]
        lose = spec.in_flight == IN_FLIGHT_LOST
        drop = spec.queued == QUEUED_DROPPED
        for node in self.nodes:
            node.configure_fault_semantics(lose_in_flight=lose, drop_queued=drop)

    def start(self) -> None:
        """Arm every node's first failure timer."""
        for clock in self._clocks:
            clock.arm_failure()

    def _fail(self, origin: int) -> None:
        """Failure event at ``origin``: crash it plus its blast cohort."""
        clocks = self._clocks
        live = self.live
        metrics = self.metrics
        now = self.env._now
        count = len(clocks)
        radius = min(self.spec.blast_radius, count)
        detector = self.detector
        for offset in range(radius):
            index = (origin + offset) % count
            if index not in live:
                continue  # already down; its repair clock is running
            clock = clocks[index]
            if index != origin and clock.pending is not None:
                # A blast victim's own failure timer is moot now.
                clock.pending.cancel()
                clock.pending = None
            live.mark_down(index)
            self.crashes += 1
            metrics.node_crashes[index] += 1
            metrics.node_down[index].update(1.0, now)
            self.nodes[index].crash()
            if detector is not None:
                detector.on_node_crash(index, now)
            clock.arm_repair()

    def _recover(self, index: int) -> None:
        live = self.live
        now = self.env._now
        live.mark_up(index)
        self.recoveries += 1
        self.metrics.node_down[index].update(0.0, now)
        self.nodes[index].recover()
        if self.detector is not None:
            self.detector.on_node_recover(index, now)
        self._clocks[index].arm_failure()

    def __repr__(self) -> str:
        return (
            f"<FaultInjector {self.live.live_count}/{self.live.node_count} up "
            f"crashes={self.crashes}>"
        )
