"""Incremental metric emission: a JSONL time series of a live run.

ROADMAP item 5's billion-event horizons make "wait for the final
``RunResult``" useless as an observability story: a run that takes hours
must be watchable (and post-mortem-able) *while it runs*.  This module
emits a JSONL time series of interval records from inside the sliced run
loop (:meth:`repro.system.simulation.Simulation.run` with ``emit=``):
each record carries the cumulative :class:`~repro.system.metrics.RunResult`
so far plus the time-decayed :class:`~repro.system.metrics.WindowedSignals`
snapshot ("what is the system doing now").

Determinism: emission is *observation only*.  Interval records are cut
at slice boundaries of the run loop -- the same seq-free mechanism the
horizon sentinel and checkpoint triggers use -- and writing a record
reads metric state without mutating it, draws no random numbers, and
consumes no event sequence numbers.  Emission on/off is therefore
invisible to the golden determinism gate (pinned in
``tests/system/test_golden_determinism.py``).

File format (one JSON object per line, torn tail tolerated):

1. a ``header`` record (magic, version, kernel leg, seed, config);
2. ``interval`` records at each trigger firing during the measured
   phase: ``now``, kernel ``events`` so far, ``cumulative`` (the
   ``RunResult.to_dict()`` of a mid-run snapshot), ``window``;
3. one ``final`` record whose ``cumulative`` equals the returned
   ``RunResult.to_dict()`` exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..checkpoint import CheckpointError, JsonlAppender, read_jsonl
from ..sim.core import KERNEL
from .metrics import (
    DEFAULT_WINDOW_TAU,
    PER_NODE_DETAIL_THRESHOLD,
    RunResult,
)

#: First record's magic field in every metrics series file.
METRICS_MAGIC = "repro-metrics"
METRICS_VERSION = 1


@dataclass(frozen=True)
class EmissionPolicy:
    """When and where a run emits interval metric records.

    Shares the trigger attributes (``every_events``/``every_seconds``)
    with :class:`~repro.checkpoint.CheckpointPolicy`, so the same
    slice-boundary :class:`~repro.checkpoint._Trigger` bookkeeping
    drives both.  At least one trigger must be set.  ``tau`` is the
    decay window (sim-time units) for the windowed signals attached for
    the run.
    """

    path: str
    every_events: int = 0
    every_seconds: float = 0.0
    tau: float = DEFAULT_WINDOW_TAU

    def __post_init__(self) -> None:
        if self.every_events < 0:
            raise ValueError(
                f"every_events must be >= 0, got {self.every_events}"
            )
        if self.every_seconds < 0:
            raise ValueError(
                f"every_seconds must be >= 0, got {self.every_seconds}"
            )
        if self.every_events == 0 and self.every_seconds == 0:
            raise ValueError(
                "emission policy needs at least one trigger: set "
                "every_events and/or every_seconds"
            )
        if not self.tau > 0:
            raise ValueError(f"tau must be positive, got {self.tau}")


class MetricsEmitter:
    """Writes the JSONL series for one run (see module docstring).

    Constructed by the run loop; not part of the simulation object
    graph, so checkpoints never capture it -- a restored run passes a
    fresh ``emit=`` policy and the series continues in a new file.
    """

    def __init__(self, policy: EmissionPolicy, simulation: Any) -> None:
        self.policy = policy
        self.simulation = simulation
        self.intervals = 0
        #: Fleet-size runs aggregate per-node detail into the bounded
        #: ``node_summary`` form, so interval records stay O(1) in the
        #: node count; below the threshold every record keeps the exact
        #: historical per-node lists (pinned byte-identical by CI).
        self._aggregate_nodes = (
            simulation.config.node_count > PER_NODE_DETAIL_THRESHOLD
        )
        self._appender = JsonlAppender(policy.path)
        self._window = simulation.metrics.enable_windows(
            tau=policy.tau, now=simulation.env.now
        )
        self._appender.write(
            {
                "type": "header",
                "magic": METRICS_MAGIC,
                "version": METRICS_VERSION,
                "kernel": KERNEL,
                "seed": simulation.config.seed,
                "config": simulation.config.describe(),
            }
        )

    def _record(self, kind: str, cumulative: Dict[str, Any]) -> None:
        simulation = self.simulation
        now = simulation.env.now
        self._appender.write(
            {
                "type": kind,
                "interval": self.intervals,
                "now": now,
                "events": simulation.env._seq_peek(),
                "cumulative": cumulative,
                "window": self._window.snapshot(now),
            }
        )

    def emit_interval(self) -> None:
        """Write one mid-run interval record (cumulative-so-far view)."""
        simulation = self.simulation
        self.intervals += 1
        snapshot = simulation.metrics.snapshot(simulation.env.now)
        self._record(
            "interval", snapshot.to_dict(aggregate_nodes=self._aggregate_nodes)
        )

    def emit_final(self, result: RunResult) -> None:
        """Write the closing record; its ``cumulative`` is exactly
        ``result.to_dict()`` of the run's returned :class:`RunResult`
        (aggregated-nodes form above the per-node detail threshold)."""
        self._record(
            "final", result.to_dict(aggregate_nodes=self._aggregate_nodes)
        )
        self._appender.close()


def read_metrics_series(
    path: Any, on_torn: Optional[Callable[[str], None]] = None
) -> List[Dict[str, Any]]:
    """Load an emitted series, validating the header record.

    Tolerates a torn trailing line (the writer crashed mid-record),
    reporting it through ``on_torn`` when given; an invalid or missing
    header raises :class:`CheckpointError`.
    """
    records = read_jsonl(path, on_torn=on_torn)
    if not records or records[0].get("magic") != METRICS_MAGIC:
        raise CheckpointError(f"{path}: not a repro metrics series")
    version = records[0].get("version")
    if version != METRICS_VERSION:
        raise CheckpointError(
            f"{path}: metrics series version {version} is not supported "
            f"(this build reads version {METRICS_VERSION})"
        )
    return records


def _fmt(value: Optional[float]) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    return f"{value:.4f}"


def render_series_tail(
    records: List[Dict[str, Any]], last: int = 10
) -> str:
    """Render the last ``last`` interval/final records as an aligned table."""
    rows = [r for r in records if r.get("type") in ("interval", "final")]
    rows = rows[-last:] if last > 0 else rows
    header = [
        "now", "events", "MD_local", "MD_global",
        "p99_resp", "win_miss_l", "win_miss_g",
    ]
    table = [header]
    for record in rows:
        cumulative = record.get("cumulative", {})
        result = RunResult.from_dict(cumulative) if cumulative else None
        window = record.get("window") or {}
        per_class = window.get("per_class", {})
        table.append(
            [
                f"{record.get('now', 0.0):.1f}",
                str(record.get("events", "-")),
                _fmt(result.md_local) if result else "-",
                _fmt(result.md_global) if result else "-",
                _fmt(result.global_.p99_response) if result else "-",
                _fmt(per_class.get("local", {}).get("miss_rate")),
                _fmt(per_class.get("global", {}).get("miss_rate")),
            ]
        )
    widths = [max(len(row[i]) for row in table) for i in range(len(header))]
    return "\n".join(
        "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        for row in table
    )


def summarize_series(records: List[Dict[str, Any]]) -> str:
    """One-paragraph summary of an emitted series (for ``metrics summarize``)."""
    header = records[0]
    intervals = [r for r in records if r.get("type") == "interval"]
    finals = [r for r in records if r.get("type") == "final"]
    lines = [
        f"series: seed={header.get('seed')} kernel={header.get('kernel')}",
        f"config: {header.get('config')}",
        f"records: {len(intervals)} interval(s), {len(finals)} final",
    ]
    closing = finals[-1] if finals else (intervals[-1] if intervals else None)
    if closing is not None:
        result = RunResult.from_dict(closing["cumulative"])
        status = "final" if closing["type"] == "final" else "latest (run incomplete)"
        lines.append(
            f"{status}: now={closing['now']:.1f} events={closing['events']} "
            f"MD_local={_fmt(result.md_local)} MD_global={_fmt(result.md_global)} "
            f"p99_response(global)={_fmt(result.global_.p99_response)} "
            f"p99_lateness(global)={_fmt(result.global_.p99_lateness)}"
        )
    return "\n".join(lines)
