"""Work units: what actually sits in a node's ready queue.

A :class:`WorkUnit` is one unit of service demand at one node -- either a
local task or a simple subtask of a global task.  It carries the timing
record the scheduler consults, the priority class (for Globals-First), and
a completion event the submitter can wait on.

Keeping this as its own small type decouples the node/scheduler machinery
from the task-tree algebra: nodes never see trees, only work units, exactly
as in the paper's model where local schedulers "find themselves scheduling
subtasks, or segments of global tasks, instead of complete tasks".
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from ..core.strategies.base import PriorityClass
from ..core.task import TaskClass
from ..core.timing import TimingRecord
from ..sim.core import Environment, Event

_unit_counter = itertools.count(1)


class _Pooled:
    """Sentinel stored in a recycled unit's ``_done`` slot.

    Anything still holding a reference to a released unit and asking for
    its completion event gets a hard error instead of silently attaching
    to the slot's next tenant.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return "<pooled>"


_POOLED = _Pooled()


class UnitPool:
    """Free-list recycler for :class:`WorkUnit` (cf. ``_Sleep`` pooling).

    At fleet scale every simulated task would otherwise allocate (and
    collect) a fresh 13-slot object; the pool keeps released units on a
    plain list and the workload sources re-stamp every slot on acquire.
    ``in_use``/``high_water`` are diagnostics only (surfaced by
    ``scenarios run --metrics-out``); they are approximate after a
    checkpoint restore, where live units re-enter a fresh process-global
    pool that never saw their acquisition.
    """

    __slots__ = ("free", "in_use", "high_water")

    def __init__(self) -> None:
        self.free: list = []
        self.in_use = 0
        self.high_water = 0

    def __reduce__(self):
        # Pickle by reference, like the ``_FAILED`` singleton: units in a
        # checkpoint point at the restoring process's pool, and the free
        # list itself is never serialized.
        return "UNIT_POOL"

    def __repr__(self) -> str:
        return (
            f"<UnitPool free={len(self.free)} in_use={self.in_use} "
            f"high_water={self.high_water}>"
        )


#: The process-global unit pool.  Single simulation runs recycle through
#: it; sweep workers each have their own (fork/spawn gives each process
#: a fresh module global).
UNIT_POOL = UnitPool()


class WorkUnit:
    """One schedulable unit of work at one node."""

    __slots__ = (
        "id",
        "env",
        "_name",
        "task_class",
        "node_index",
        "timing",
        "priority_class",
        "_done",
        "on_done",
        "global_id",
        "stage",
        "natural_deadline",
        "lost",
        "pool",
    )

    def __init__(
        self,
        env: Environment,
        name: Optional[str],
        task_class: TaskClass,
        node_index: int,
        timing: TimingRecord,
        priority_class: int = PriorityClass.NORMAL,
        global_id: Optional[int] = None,
        stage: Optional[int] = None,
        natural_deadline: Optional[float] = None,
        on_done: Optional[Callable[[Event], None]] = None,
    ) -> None:
        if timing.dl is None:
            raise ValueError(
                f"work unit {name!r} submitted without a deadline; the SDA "
                "strategy must assign one before submission"
            )
        self.id = next(_unit_counter)
        self.env = env
        self._name = name
        self.task_class = task_class
        self.node_index = node_index
        self.timing = timing
        self.priority_class = priority_class
        #: Lazily created completion event (see :attr:`done`).  Kept unset
        #: until someone asks: fire-and-forget submitters (the local task
        #: sources) never join on their units, and skipping the event saves
        #: an allocation plus a dead heap entry per local completion.
        self._done: Optional[Event] = None
        #: Lightweight completion callback (the process manager's
        #: continuation): when set, the node schedules it as a bare
        #: single-callback event at completion/discard time, with the unit
        #: as the event value.  Cheaper than :attr:`done` (no ``Event``
        #: construction, no lazy property, no callback-list append), but
        #: single-listener only; external joiners use :attr:`done`.
        self.on_done = on_done
        #: True when a node crash discarded this unit (as opposed to an
        #: overload-policy abort).  The process manager's retry layer only
        #: retries crash losses, never policy aborts.
        self.lost = False
        #: Id of the enclosing global task, if any (for tracing).
        self.global_id = global_id
        #: Stage index within the enclosing global task (for tracing).
        self.stage = stage
        #: The deadline after which this work is genuinely worthless: for a
        #: local task its own deadline, for a global subtask the *end-to-end*
        #: deadline of its global task.  Firm overload policies that discard
        #: useless work consult this, not the virtual deadline -- a subtask
        #: past its virtual deadline may still finish in time end to end.
        self.natural_deadline = (
            natural_deadline if natural_deadline is not None else timing.dl
        )
        #: Owning :class:`UnitPool`, or ``None`` for hand-built units
        #: (tests, blockers) that are never recycled.
        self.pool = None

    @property
    def name(self) -> str:
        """Display name of the unit.

        ``None`` at construction means "derive one lazily": mass-produced
        local tasks never need their name unless a trace or repr asks, and
        formatting one per unit is measurable at workload rates.
        """
        name = self._name
        if name is None:
            name = self._name = f"{self.task_class.value}-{self.id}"
        return name

    @property
    def done(self) -> Event:
        """Fires when the node finishes (or aborts) this unit.  The value is
        the unit itself so joiners can inspect the outcome.

        Created on first access; asking after the unit already finished
        returns an event that fires (with the recorded outcome) at the
        current simulation time.
        """
        done = self._done
        if done is _POOLED:
            raise RuntimeError(
                f"work unit {self.id} was recycled: its completion event "
                "is gone, and this object may already be serving a new "
                "task.  Hold the unit's outcome (timing/lost) before it "
                "is released, or keep units out of the pool by building "
                "them directly."
            )
        if done is None:
            done = self._done = Event(self.env)
            timing = self.timing
            if timing.completed_at is not None or timing.aborted:
                done.succeed(self)
        return done

    @property
    def is_global_subtask(self) -> bool:
        """True for subtasks of global tasks (vs. locally generated work)."""
        return self.task_class is TaskClass.GLOBAL

    def release(self) -> None:
        """Return this unit to its pool (single owner only).

        Callable only on pool-acquired units whose outcome nobody still
        needs: the node loops release fire-and-forget units (no ``done``
        event, no ``on_done``) right after recording their outcome, and
        the process manager's continuation releases its subtask units
        after consuming theirs.  The ``_done`` slot becomes the pooled
        sentinel so a stale ``unit.done`` (or a double release) raises
        instead of corrupting the next tenant.
        """
        if self._done is _POOLED:
            raise RuntimeError(f"work unit {self.id} released twice")
        pool = self.pool
        self._done = _POOLED
        self.on_done = None
        # Drop the timing record and environment: the outcome was already
        # copied into the metrics/trace layers, a stale reader failing
        # loudly on None beats silently reading the next tenant's record,
        # and a parked unit must not pin a finished run's object graph
        # across in-process replications.
        self.timing = None
        self.env = None
        pool.in_use -= 1
        pool.free.append(self)

    def __repr__(self) -> str:
        return (
            f"<WorkUnit {self.name!r} class={self.task_class.value} "
            f"node={self.node_index} dl={self.timing.dl:.4g}>"
        )


def acquire_unit(
    env: Environment,
    name: Optional[str],
    task_class: TaskClass,
    node_index: int,
    timing: TimingRecord,
    priority_class: int = PriorityClass.NORMAL,
    global_id: Optional[int] = None,
    stage: Optional[int] = None,
    natural_deadline: Optional[float] = None,
    on_done: Optional[Callable[[Event], None]] = None,
) -> WorkUnit:
    """Pool-recycling equivalent of ``WorkUnit(...)``.

    Pops a released unit from :data:`UNIT_POOL` (or allocates on a dry
    pool) and re-stamps every slot, so a recycled unit is
    indistinguishable from a fresh one -- ids stay monotone via the
    shared counter.  The workload sources inline this per-arrival; the
    process manager calls it per subtask.
    """
    if timing.dl is None:
        raise ValueError(
            f"work unit {name!r} submitted without a deadline; the SDA "
            "strategy must assign one before submission"
        )
    pool = UNIT_POOL
    free = pool.free
    if free:
        unit = free.pop()
    else:
        unit = WorkUnit.__new__(WorkUnit)
        unit.pool = pool
    in_use = pool.in_use + 1
    pool.in_use = in_use
    if in_use > pool.high_water:
        pool.high_water = in_use
    unit.id = next(_unit_counter)
    unit.env = env
    unit._name = name
    unit.task_class = task_class
    unit.node_index = node_index
    unit.timing = timing
    unit.priority_class = priority_class
    unit._done = None
    unit.on_done = on_done
    unit.lost = False
    unit.global_id = global_id
    unit.stage = stage
    unit.natural_deadline = (
        natural_deadline if natural_deadline is not None else timing.dl
    )
    return unit
