"""System configuration: Table 1's baseline and every knob the paper turns.

:class:`SystemConfig` captures the simulation model of Sec. 4.1 / 5.2.  The
load arithmetic follows the paper exactly:

* normalized load::

      load = (lambda_global * m / mu_subtask + k * lambda_local / mu_local) / k

* fraction of the load contributed by local tasks::

      frac_local = (k * lambda_local / mu_local) / (k * load)

Experiments specify ``(load, frac_local)`` and the config derives the
arrival rates:

* per-node local rate:  ``lambda_local = load * frac_local * mu_local``
* global stream rate:   ``lambda_global = load * (1 - frac_local) * k
  * mu_subtask / E[m]``

``rel_flex`` (relative flexibility of globals vs. locals) scales the
global-task slack distribution: a global task's expected execution time is
``E[m] / mu_subtask`` versus ``1 / mu_local`` for a local task, so drawing
global slack from ``U[Smin, Smax]`` scaled by
``rel_flex * E[m] * mu_local / mu_subtask`` equalizes the expected
flexibility ratio at ``rel_flex``.  With the baseline numbers the global
slack range is ``[1.0, 10.0]``.  For parallel fans the paper instead fixes
the slack range at ``[1.25, 5.0]`` (Sec. 5.2), which we honor by default
and expose as ``parallel_slack_range``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..core.estimators import Estimator, uniform_error_estimator
from ..sim.distributions import (
    Deterministic,
    DiscreteUniform,
    Distribution,
    Hyperexponential,
    Lognormal,
    MMPP2Interarrival,
    Pareto,
    Uniform,
    exponential_interarrival,
)
from .detector import DetectorSpec
from .faults import FaultSpec
from .overload import OVERLOAD_POLICIES
from .placement import PLACEMENT_POLICIES

#: Task-structure selectors (which experiment family a config runs).
SERIAL = "serial"
PARALLEL = "parallel"
SERIAL_PARALLEL = "serial-parallel"

_STRUCTURES = (SERIAL, PARALLEL, SERIAL_PARALLEL)

#: Arrival-process selectors (scenario subsystem; "poisson" is the paper).
_ARRIVAL_MODELS = ("poisson", "hyperexp", "mmpp2")

#: Service-time selectors (scenario subsystem; "exponential" is the paper).
_SERVICE_MODELS = ("exponential", "pareto", "lognormal")

#: Subtask placement selectors (scenario subsystem; "uniform" is the
#: paper).  Aliased from the policy module that implements them, so the
#: validated names and the wired policies cannot drift apart.
_PLACEMENT_MODELS = PLACEMENT_POLICIES


def harmonic(n: int) -> float:
    """``H_n = 1 + 1/2 + ... + 1/n`` -- the mean of the max of ``n`` iid
    unit-mean exponentials, used for critical-path arithmetic."""
    if n < 1:
        raise ValueError(f"harmonic number needs n >= 1, got {n}")
    return sum(1.0 / i for i in range(1, n + 1))


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of one simulation run.

    Defaults reproduce Table 1 (the baseline experiment) with serial global
    tasks and the UD strategy.
    """

    # -- Table 1 ----------------------------------------------------------
    #: Number of homogeneous nodes ``k``.
    node_count: int = 6
    #: Subtasks per global task ``m`` (fixed unless ``subtask_count_range``).
    subtask_count: int = 4
    #: Normalized system load (0 <= load < 1 for stability).
    load: float = 0.5
    #: Fraction of the load contributed by local tasks.
    frac_local: float = 0.75
    #: Local-task service *rate* ``mu_local`` (mean ex = 1/mu_local).
    mu_local: float = 1.0
    #: Subtask service *rate* ``mu_subtask``.
    mu_subtask: float = 1.0
    #: Local-task slack range ``[Smin, Smax]``.
    slack_range: Tuple[float, float] = (0.25, 2.5)
    #: Relative flexibility of global vs. local tasks.
    rel_flex: float = 1.0
    #: Relative error of execution-time prediction (0 = perfect, Table 1).
    pex_error: float = 0.0
    #: Local scheduling policy: "EDF", "MLF", or "FCFS".
    scheduler: str = "EDF"
    #: Overload policy: "no-abort" (Table 1), "abort-tardy", or
    #: "abort-virtual".
    overload_policy: str = "no-abort"
    #: Preemptive-resume servers instead of the paper's non-preemptive ones
    #: (extension; see :mod:`repro.system.preemptive`).
    preemptive: bool = False
    #: Record an execution trace (see :mod:`repro.system.tracing`).  Off by
    #: default: traces grow with every unit executed.
    trace: bool = False

    # -- SDA strategy -------------------------------------------------------
    #: Strategy name: an SSP name ("UD", "ED", "EQS", "EQF"), a PSP name
    #: ("DIV-1", "GF", ...), or a combination ("EQF-DIV1").
    strategy: str = "UD"

    # -- global task shape ---------------------------------------------------
    #: One of "serial", "parallel", "serial-parallel".
    task_structure: str = SERIAL
    #: For serial-parallel trees: number of serial stages.
    stages: int = 2
    #: For serial-parallel trees: parallel width of each stage.
    stage_width: int = 2
    #: Slack range of parallel fans (Sec. 5.2 baseline).
    parallel_slack_range: Tuple[float, float] = (1.25, 5.0)
    #: If set, the number of subtasks of each serial task is drawn uniformly
    #: from this inclusive integer range (Sec. 4.3 variation).
    subtask_count_range: Optional[Tuple[int, int]] = None

    # -- heterogeneity (Sec. 4.3 variation) -----------------------------------
    #: Optional per-node weights for the local arrival rates.  ``None``
    #: means homogeneous.  Weights are normalized; total local load is kept.
    local_load_weights: Optional[Tuple[float, ...]] = None

    # -- scenario dimensions (repro.scenarios; defaults = the paper) ----------
    #: Arrival-process family for local and global streams: "poisson"
    #: (the paper), "hyperexp" (bursty, CV^2 > 1), or "mmpp2" (2-state
    #: Markov-modulated bursts).
    arrival_model: str = "poisson"
    #: Squared coefficient of variation of hyperexponential interarrivals.
    arrival_cv2: float = 1.0
    #: MMPP2: arrival-rate multiplier of the burst state (>= 1).
    arrival_burst_ratio: float = 4.0
    #: MMPP2: stationary fraction of time spent in the burst state.
    arrival_burst_fraction: float = 0.2
    #: MMPP2: mean duration of one calm+burst cycle (simulated time).
    arrival_cycle_time: float = 200.0
    #: Service-time family for local tasks and subtasks: "exponential"
    #: (the paper), "pareto", or "lognormal".  Means are pinned to
    #: ``1/mu`` so the load arithmetic is unchanged.
    service_model: str = "exponential"
    #: Pareto shape (tail index) when ``service_model == "pareto"``.
    service_shape: float = 2.2
    #: Log-space sigma when ``service_model == "lognormal"``.
    service_sigma: float = 1.0
    #: Subtask placement policy: "uniform" (the paper), "round-robin",
    #: "zipf" (hotspot), or "least-outstanding" (join-shortest-queue).
    placement: str = "uniform"
    #: Zipf skew exponent when ``placement == "zipf"`` (0 = uniform).
    placement_zipf_s: float = 1.0
    #: Optional per-node service-speed factors (heterogeneous hardware):
    #: node ``i`` serves in ``ex / factor_i`` time.  ``None`` = homogeneous.
    node_speed_factors: Optional[Tuple[float, ...]] = None
    #: Optional piecewise time-varying load: ``((duration_fraction,
    #: rate_multiplier), ...)`` segments spanning ``sim_time`` in order;
    #: arrival rates are scaled by the active segment's multiplier (the
    #: last segment persists past the end).  ``None`` = stationary.
    load_profile: Optional[Tuple[Tuple[float, float], ...]] = None
    #: Optional node-failure model (crash/recovery processes, crash
    #: semantics, retry/backoff knobs; see :mod:`repro.system.faults`).
    #: ``None`` -- and any spec with ``mttf == 0`` -- wires nothing, so
    #: fault-free runs stay bit-identical to the pre-fault engine.
    faults: Optional[FaultSpec] = None
    #: Optional failure-detection model (heartbeats over lossy/delayed
    #: links feeding a timeout or phi-accrual detector; see
    #: :mod:`repro.system.detector`).  ``None`` -- and any spec with
    #: ``heartbeat_interval == 0`` -- wires nothing: placement and retry
    #: keep consulting the oracle live set, bit-identical to before.
    detector: Optional[DetectorSpec] = None

    # -- run control ----------------------------------------------------------
    #: Length of one run in simulated time units (the paper used 1e6).
    sim_time: float = 20_000.0
    #: Transient phase discarded before statistics start.
    warmup_time: float = 2_000.0
    #: Master random seed.
    seed: int = 1

    # -- validation ------------------------------------------------------------

    def __post_init__(self) -> None:
        # Fleet-scale configs (10^4 - 10^5 nodes) are first-class:
        # validation stays O(1) in the node count except where a
        # per-node tuple (speeds, weights) is actually supplied.  The
        # strict int check matters at that scale -- a float node count
        # (e.g. 1e5) would slip past a ``< 1`` bound and break every
        # ``range(node_count)`` downstream.
        if not isinstance(self.node_count, int) or self.node_count < 1:
            raise ValueError(
                f"node_count must be an int >= 1, got {self.node_count!r}"
            )
        if not isinstance(self.subtask_count, int) or self.subtask_count < 1:
            raise ValueError(
                f"subtask_count must be an int >= 1, got "
                f"{self.subtask_count!r}"
            )
        if not 0.0 <= self.load < 1.0:
            raise ValueError(f"load must lie in [0, 1), got {self.load}")
        if not 0.0 <= self.frac_local <= 1.0:
            raise ValueError(
                f"frac_local must lie in [0, 1], got {self.frac_local}"
            )
        if self.mu_local <= 0 or self.mu_subtask <= 0:
            raise ValueError("service rates must be positive")
        if self.slack_range[0] < 0 or self.slack_range[1] < self.slack_range[0]:
            raise ValueError(f"bad slack range {self.slack_range}")
        if self.rel_flex < 0:
            raise ValueError(f"rel_flex must be non-negative: {self.rel_flex}")
        if not 0.0 <= self.pex_error < 1.0:
            raise ValueError(f"pex_error must lie in [0, 1): {self.pex_error}")
        if self.overload_policy not in OVERLOAD_POLICIES:
            raise ValueError(
                f"unknown overload_policy {self.overload_policy!r}; "
                f"expected one of {tuple(OVERLOAD_POLICIES)}"
            )
        if self.task_structure not in _STRUCTURES:
            raise ValueError(
                f"unknown task_structure {self.task_structure!r}; "
                f"expected one of {_STRUCTURES}"
            )
        if self.warmup_time < 0 or self.sim_time <= self.warmup_time:
            raise ValueError(
                f"need 0 <= warmup_time < sim_time, got "
                f"{self.warmup_time} / {self.sim_time}"
            )
        if self.subtask_count_range is not None:
            lo, hi = self.subtask_count_range
            if lo < 1 or hi < lo:
                raise ValueError(
                    f"bad subtask_count_range {self.subtask_count_range}"
                )
        if self.local_load_weights is not None:
            if len(self.local_load_weights) != self.node_count:
                raise ValueError(
                    "local_load_weights must have one weight per node "
                    f"({self.node_count}), got {len(self.local_load_weights)}"
                )
            if any(w < 0 for w in self.local_load_weights):
                raise ValueError("local load weights must be non-negative")
            if sum(self.local_load_weights) == 0:
                raise ValueError("local load weights must not all be zero")
        if self.arrival_model not in _ARRIVAL_MODELS:
            raise ValueError(
                f"unknown arrival_model {self.arrival_model!r}; "
                f"expected one of {_ARRIVAL_MODELS}"
            )
        if self.arrival_model == "hyperexp" and self.arrival_cv2 < 1.0:
            raise ValueError(
                f"arrival_cv2 must be >= 1 for hyperexp, got {self.arrival_cv2}"
            )
        if self.arrival_model == "mmpp2":
            if self.arrival_burst_ratio < 1.0:
                raise ValueError(
                    f"arrival_burst_ratio must be >= 1, got "
                    f"{self.arrival_burst_ratio}"
                )
            if not 0.0 < self.arrival_burst_fraction < 1.0:
                raise ValueError(
                    f"arrival_burst_fraction must lie in (0, 1), got "
                    f"{self.arrival_burst_fraction}"
                )
            if self.arrival_cycle_time <= 0:
                raise ValueError(
                    f"arrival_cycle_time must be positive, got "
                    f"{self.arrival_cycle_time}"
                )
        if self.service_model not in _SERVICE_MODELS:
            raise ValueError(
                f"unknown service_model {self.service_model!r}; "
                f"expected one of {_SERVICE_MODELS}"
            )
        if self.service_model == "pareto" and self.service_shape <= 1.0:
            raise ValueError(
                f"service_shape must exceed 1, got {self.service_shape}"
            )
        if self.service_model == "lognormal" and self.service_sigma <= 0:
            raise ValueError(
                f"service_sigma must be positive, got {self.service_sigma}"
            )
        if self.placement not in _PLACEMENT_MODELS:
            raise ValueError(
                f"unknown placement {self.placement!r}; "
                f"expected one of {_PLACEMENT_MODELS}"
            )
        if self.placement == "zipf" and not (
            math.isfinite(self.placement_zipf_s) and self.placement_zipf_s >= 0
        ):
            raise ValueError(
                f"placement_zipf_s must be finite and non-negative, got "
                f"{self.placement_zipf_s}"
            )
        if self.node_speed_factors is not None:
            if len(self.node_speed_factors) != self.node_count:
                raise ValueError(
                    "node_speed_factors must have one factor per node "
                    f"({self.node_count}), got {len(self.node_speed_factors)}"
                )
            # NOT-greater-than comparisons, so NaN factors are rejected
            # too (NaN would otherwise slip past `f <= 0` and poison the
            # event clock via ex / speed).
            if not all(
                math.isfinite(f) and f > 0 for f in self.node_speed_factors
            ):
                raise ValueError(
                    f"node speed factors must be finite and positive, got "
                    f"{self.node_speed_factors}"
                )
        if self.faults is not None and not isinstance(self.faults, FaultSpec):
            raise ValueError(
                f"faults must be a FaultSpec or None, got "
                f"{type(self.faults).__name__}"
            )
        if self.detector is not None and not isinstance(
            self.detector, DetectorSpec
        ):
            raise ValueError(
                f"detector must be a DetectorSpec or None, got "
                f"{type(self.detector).__name__}"
            )
        if self.load_profile is not None:
            if not self.load_profile:
                raise ValueError("load_profile must have at least one segment")
            for segment in self.load_profile:
                if len(segment) != 2:
                    raise ValueError(
                        f"load_profile segments are (duration_fraction, "
                        f"multiplier) pairs, got {segment!r}"
                    )
                fraction, multiplier = segment
                if not (math.isfinite(fraction) and fraction > 0):
                    raise ValueError(
                        f"load_profile duration fractions must be finite "
                        f"and positive, got {fraction}"
                    )
                if not (math.isfinite(multiplier) and multiplier > 0):
                    raise ValueError(
                        f"load_profile multipliers must be finite and "
                        f"positive, got {multiplier}"
                    )
            total = sum(fraction for fraction, _ in self.load_profile)
            if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9):
                raise ValueError(
                    f"load_profile duration fractions must sum to 1, got "
                    f"{total}"
                )
        if self.peak_load >= 1.0 and self.load > 0:
            raise ValueError(
                f"peak normalized load {self.peak_load:.3f} >= 1 "
                "(unstable): lower load, flatten the load_profile, or "
                "raise the slowest node's speed factor"
            )
        if self.task_structure == PARALLEL and (
            self.subtask_count > self.node_count
        ):
            raise ValueError(
                f"parallel fan-out {self.subtask_count} exceeds node count "
                f"{self.node_count}"
            )
        if self.task_structure == SERIAL_PARALLEL and (
            self.stage_width > self.node_count
        ):
            raise ValueError(
                f"stage width {self.stage_width} exceeds node count "
                f"{self.node_count}"
            )

    # -- derived workload parameters -----------------------------------------

    @property
    def mean_subtask_count(self) -> float:
        """``E[m]``: expected number of simple subtasks per global task."""
        if self.task_structure == SERIAL_PARALLEL:
            return float(self.stages * self.stage_width)
        if self.subtask_count_range is not None:
            lo, hi = self.subtask_count_range
            return (lo + hi) / 2.0
        return float(self.subtask_count)

    @property
    def local_arrival_rate(self) -> float:
        """Per-node local arrival rate ``lambda_local``."""
        return self.load * self.frac_local * self.mu_local

    @property
    def global_arrival_rate(self) -> float:
        """Rate of the single global-task Poisson stream ``lambda_global``."""
        if self.frac_local >= 1.0:
            return 0.0
        return (
            self.load
            * (1.0 - self.frac_local)
            * self.node_count
            * self.mu_subtask
            / self.mean_subtask_count
        )

    def node_local_rates(self) -> Tuple[float, ...]:
        """Per-node local arrival rates (honors heterogeneity weights)."""
        base = self.local_arrival_rate
        if self.local_load_weights is None:
            return tuple(base for _ in range(self.node_count))
        total = sum(self.local_load_weights)
        scale = self.node_count / total
        return tuple(base * w * scale for w in self.local_load_weights)

    @property
    def mean_global_execution(self) -> float:
        """Expected total service demand of one global task."""
        return self.mean_subtask_count / self.mu_subtask

    @property
    def mean_critical_path(self) -> float:
        """Expected execution envelope (no queueing) of one global task."""
        stage_mean = 1.0 / self.mu_subtask
        if self.task_structure == SERIAL:
            return self.mean_subtask_count * stage_mean
        if self.task_structure == PARALLEL:
            return stage_mean * harmonic(self.subtask_count)
        return self.stages * stage_mean * harmonic(self.stage_width)

    @property
    def global_slack_scale(self) -> float:
        """Scale applied to the local slack range for serial(-parallel) tasks.

        Chosen so that global and local tasks have equal expected
        flexibility when ``rel_flex = 1``: slack scales with the ratio of
        expected execution demands.
        """
        mean_local_ex = 1.0 / self.mu_local
        return self.rel_flex * self.mean_critical_path / mean_local_ex

    @property
    def peak_load(self) -> float:
        """Worst-case normalized load over time and nodes.

        A conservative stability bound for the scenario dimensions: the
        stationary ``load`` scaled by the largest load-profile multiplier
        and divided by the slowest node's speed factor.  Equals ``load``
        for the paper's homogeneous stationary model; library scenarios
        are validated to keep this below 1.
        """
        peak = self.load
        if self.load_profile is not None:
            peak *= max(multiplier for _, multiplier in self.load_profile)
        if self.node_speed_factors is not None:
            peak /= min(self.node_speed_factors)
        return peak

    # -- distribution builders ---------------------------------------------

    def local_execution_distribution(self) -> Distribution:
        return self._execution_distribution(self.mu_local)

    def subtask_execution_distribution(self) -> Distribution:
        return self._execution_distribution(self.mu_subtask)

    def _execution_distribution(self, rate: float) -> Distribution:
        """Service-time distribution with mean ``1/rate`` per the scenario
        service model (the mean is pinned so load arithmetic holds)."""
        if self.service_model == "pareto":
            return Pareto(1.0 / rate, self.service_shape)
        if self.service_model == "lognormal":
            return Lognormal(1.0 / rate, self.service_sigma)
        return _exponential_with_rate(rate)

    def interarrival_distribution(self, rate: float) -> Distribution:
        """Interarrival distribution for a stream of mean rate ``rate``
        per the scenario arrival model ("poisson" is the paper)."""
        if self.arrival_model == "hyperexp":
            return Hyperexponential(1.0 / rate, self.arrival_cv2)
        if self.arrival_model == "mmpp2":
            return MMPP2Interarrival(
                1.0 / rate,
                self.arrival_burst_ratio,
                self.arrival_burst_fraction,
                self.arrival_cycle_time,
            )
        return exponential_interarrival(rate)

    def local_slack_distribution(self) -> Uniform:
        return Uniform(*self.slack_range)

    def global_slack_distribution(self) -> Uniform:
        """Slack distribution for global tasks, per task structure."""
        if self.task_structure == PARALLEL:
            return Uniform(*self.parallel_slack_range)
        return self.local_slack_distribution().scaled(self.global_slack_scale)

    def subtask_count_distribution(self) -> Distribution:
        if self.subtask_count_range is not None:
            return DiscreteUniform(*self.subtask_count_range)
        return Deterministic(self.subtask_count)

    def make_estimator(self) -> Estimator:
        return uniform_error_estimator(self.pex_error)

    # -- convenience ---------------------------------------------------------

    def with_(self, **overrides) -> "SystemConfig":
        """Functional update (``dataclasses.replace`` with a short name)."""
        return replace(self, **overrides)

    def describe(self) -> str:
        """One-line human-readable summary for logs and reports."""
        return (
            f"{self.task_structure} strategy={self.strategy} "
            f"load={self.load:g} frac_local={self.frac_local:g} "
            f"k={self.node_count} m={self.subtask_count} "
            f"sched={self.scheduler} seed={self.seed}"
        )


def _exponential_with_rate(rate: float) -> Distribution:
    from ..sim.distributions import Exponential

    return Exponential(1.0 / rate)


def baseline_config(**overrides) -> SystemConfig:
    """Table 1's baseline experiment (serial global tasks, UD strategy).

    Keyword overrides are applied on top, e.g.
    ``baseline_config(strategy="EQF", load=0.3)``.
    """
    return SystemConfig().with_(**overrides) if overrides else SystemConfig()


def parallel_baseline_config(**overrides) -> SystemConfig:
    """The Sec. 5.2 parallel baseline: fans of 4 at distinct nodes, slack
    ``U[1.25, 5.0]``."""
    config = SystemConfig(task_structure=PARALLEL)
    return config.with_(**overrides) if overrides else config


def serial_parallel_config(**overrides) -> SystemConfig:
    """The Sec. 6 experiment: serial chains of parallel stages."""
    config = SystemConfig(
        task_structure=SERIAL_PARALLEL,
        stages=2,
        stage_width=2,
        strategy="UD-UD",
    )
    return config.with_(**overrides) if overrides else config


def verify_load_arithmetic(config: SystemConfig) -> float:
    """Recompute the normalized load from the derived rates.

    Returns the reconstructed load; tests assert it equals ``config.load``.
    This is the inverse of the rate derivation and guards against the
    classic simulation bug of mis-scaled arrival rates.
    """
    local_work = config.node_count * config.local_arrival_rate / config.mu_local
    global_work = (
        config.global_arrival_rate
        * config.mean_subtask_count
        / config.mu_subtask
    )
    return (local_work + global_work) / config.node_count


def expected_frac_local(config: SystemConfig) -> float:
    """Recompute ``frac_local`` from the derived rates (test helper)."""
    if config.load == 0:
        return math.nan
    local_work = config.node_count * config.local_arrival_rate / config.mu_local
    return local_work / (config.node_count * config.load)
