"""Failure detection: heartbeats, suspicion, and the observed live view.

The fault layer (:mod:`repro.system.faults`) gives placement and retry an
*oracle* :class:`~repro.system.faults.LiveSet` -- crashes are known
everywhere, instantly and perfectly.  Real distributed soft real-time
systems operate on heartbeats that are delayed, lost, and occasionally
wrong.  This module models that regime:

* :class:`DetectorSpec` -- a frozen, JSON-round-trippable description of
  the heartbeat channel (period, per-link delay distribution, loss
  probability) plus the detector algorithm ("timeout" or "phi") and the
  misroute-recovery knobs;
* :class:`SuspicionView` -- the manager's *observed* liveness view, with
  the same O(1) interface as :class:`~repro.system.faults.LiveSet`, so
  failure-aware placement and the retry router consume it unchanged;
* :class:`FailureDetector` -- the callback machine that emits each
  node's heartbeats over its modeled channel and turns missing
  heartbeats into suspicion (and resumed heartbeats back into trust).

Detector algorithms
-------------------

Both detectors reduce to one cancellable expiry timer per node: a
delivered heartbeat marks the node trusted and re-arms the timer; the
timer firing marks it suspected.

* ``"timeout"`` suspects a node ``timeout`` after its last heartbeat.
* ``"phi"`` is the phi-accrual detector: with an exponential tail over
  the recent inter-arrival window, ``phi(t) = t / (mean * ln 10)``,
  so the suspicion threshold ``phi >= phi_threshold`` inverts to an
  expiry delay of ``phi_threshold * ln(10) * mean`` -- event-driven,
  no polling.  Until ``window`` samples accumulate the prior mean
  ``heartbeat_interval + delay_mean`` is used.

Observed vs. true state: suspicion is a *belief*.  A suspected node that
is actually up keeps executing whatever it already holds (it is merely
drained of new placements until a heartbeat rehabilitates it), and a
crashed node that is not yet suspected still attracts submits -- the
process manager's misroute path bounces those after ``misroute_delay``
with at most ``max_redirects`` re-routes.

RNG-stream isolation: heartbeat delay and loss draws come from dedicated
per-node streams (``"hb-delay/node-i"`` / ``"hb-loss/node-i"``) and
misroute re-routing from ``"detector-route"`` -- all fresh names, per
the README isolation rule.  A config without an (enabled)
``DetectorSpec`` builds no detector, schedules no events, and creates no
streams, so oracle-mode runs stay bit-identical to the pre-detector
engine; the golden gate pins this.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, fields
from collections import deque
from typing import Dict, List, Mapping, Optional, Sequence

from ..sim.distributions import Distribution
from .faults import _TIME_MODELS, _time_distribution

#: Detector algorithm selectors.
DETECTOR_KINDS = ("timeout", "phi")

_LN10 = math.log(10.0)


@dataclass(frozen=True)
class DetectorSpec:
    """Declarative description of the failure-detection dimension.

    ``heartbeat_interval = 0`` (the default) disables detection
    entirely: no detector is built, no heartbeat streams are created, no
    events are scheduled -- a disabled spec is bit-identical to no spec
    at all (pinned by the golden gate).  When enabled, the manager-side
    components (placement, retry routing, misroute recovery) consult the
    detector's :class:`SuspicionView` instead of the oracle live set.
    """

    #: Detector algorithm: "timeout" (fixed) or "phi" (phi-accrual).
    kind: str = "timeout"
    #: Heartbeat period per node (simulated time); ``0`` = disabled.
    heartbeat_interval: float = 0.0
    #: Fixed-timeout detector: suspect after this long without a
    #: heartbeat (measured from the last delivery).
    timeout: float = 15.0
    #: Phi-accrual detector: suspect when ``phi`` crosses this value.
    phi_threshold: float = 8.0
    #: Phi-accrual detector: inter-arrival sample window per node.
    window: int = 32
    #: Distribution family of per-heartbeat channel delays (same
    #: families as the fault-model time draws).
    delay_model: str = "exponential"
    #: Mean channel delay per heartbeat; ``0`` = instantaneous links
    #: (no delay stream is created or drawn from).
    delay_mean: float = 0.0
    #: Shape knob of the delay family (Erlang k / Pareto tail index /
    #: lognormal sigma; ignored by the other families).
    delay_shape: float = 2.0
    #: Probability an emitted heartbeat is dropped by its link.
    loss_probability: float = 0.0
    #: How long a submit sits at a crashed node before the manager
    #: notices the bounce and re-routes (detection/timeout delay of the
    #: misroute path).
    misroute_delay: float = 1.0
    #: Maximum bounce re-routes per leaf; once exhausted the submit
    #: stays queued at its (dead) target until recovery.
    max_redirects: int = 3

    def __post_init__(self) -> None:
        if self.kind not in DETECTOR_KINDS:
            raise ValueError(
                f"unknown detector kind {self.kind!r}; expected one of "
                f"{DETECTOR_KINDS}"
            )
        if not (
            math.isfinite(self.heartbeat_interval)
            and self.heartbeat_interval >= 0
        ):
            raise ValueError(
                f"heartbeat_interval must be finite and >= 0, got "
                f"{self.heartbeat_interval}"
            )
        if not (math.isfinite(self.timeout) and self.timeout > 0):
            raise ValueError(
                f"timeout must be finite and positive, got {self.timeout}"
            )
        if not (math.isfinite(self.phi_threshold) and self.phi_threshold > 0):
            raise ValueError(
                f"phi_threshold must be finite and positive, got "
                f"{self.phi_threshold}"
            )
        if not isinstance(self.window, int) or self.window < 1:
            raise ValueError(
                f"window must be an int >= 1, got {self.window!r}"
            )
        if self.delay_model not in _TIME_MODELS:
            raise ValueError(
                f"unknown delay_model {self.delay_model!r}; expected one "
                f"of {_TIME_MODELS}"
            )
        if not (math.isfinite(self.delay_mean) and self.delay_mean >= 0):
            raise ValueError(
                f"delay_mean must be finite and >= 0, got {self.delay_mean}"
            )
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError(
                f"loss_probability must lie in [0, 1), got "
                f"{self.loss_probability}"
            )
        if not (math.isfinite(self.misroute_delay) and self.misroute_delay >= 0):
            raise ValueError(
                f"misroute_delay must be finite and >= 0, got "
                f"{self.misroute_delay}"
            )
        if not isinstance(self.max_redirects, int) or self.max_redirects < 0:
            raise ValueError(
                f"max_redirects must be an int >= 0, got "
                f"{self.max_redirects!r}"
            )
        if self.delay_mean > 0:
            # Probe the distribution so a bad (model, mean, shape)
            # combination fails at spec definition time.
            _time_distribution(self.delay_model, self.delay_mean, self.delay_shape)

    # -- derived -----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """True when detection actually runs (``heartbeat_interval > 0``)."""
        return self.heartbeat_interval > 0

    @property
    def prior_mean(self) -> float:
        """Expected heartbeat inter-arrival before any samples exist."""
        return self.heartbeat_interval + self.delay_mean

    def delay_distribution(self) -> Optional[Distribution]:
        """The channel-delay distribution, or ``None`` for instant links."""
        if self.delay_mean <= 0:
            return None
        return _time_distribution(
            self.delay_model, self.delay_mean, self.delay_shape
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-serializable; all fields are scalars)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping) -> "DetectorSpec":
        """Inverse of :meth:`to_dict`; rejects unknown keys loudly."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown DetectorSpec fields: {sorted(unknown)}"
            )
        return cls(**data)

    def describe(self) -> str:
        """Compact summary for scenario listings."""
        parts = [self.kind, f"hb={self.heartbeat_interval:g}"]
        if self.kind == "timeout":
            parts.append(f"to={self.timeout:g}")
        else:
            parts.append(f"phi={self.phi_threshold:g}")
        if self.delay_mean > 0:
            parts.append(f"delay={self.delay_mean:g}")
        if self.loss_probability > 0:
            parts.append(f"loss={self.loss_probability:g}")
        return "detector(" + ", ".join(parts) + ")"


class SuspicionView:
    """The manager's *observed* node-liveness view.

    Same O(1) interface as :class:`~repro.system.faults.LiveSet`
    (``index in view`` / ``live_count`` / ``live_indices`` /
    ``version``), so failure-aware placement policies and the retry
    router consume either interchangeably -- but membership here means
    *trusted*, not *up*: the :class:`FailureDetector` flips entries on
    heartbeat evidence, which can lag or contradict ground truth.
    All-trusted at construction.
    """

    __slots__ = ("_trusted", "live_count", "node_count", "version")

    def __init__(self, node_count: int) -> None:
        self._trusted: List[bool] = [True] * node_count
        self.live_count = node_count
        self.node_count = node_count
        #: Bumped on every actual trust flip; cheap change detection for
        #: caches built over the membership (Zipf alias tables etc.).
        self.version = 0

    def __contains__(self, index: int) -> bool:
        return self._trusted[index]

    def mark_suspected(self, index: int) -> None:
        if self._trusted[index]:
            self._trusted[index] = False
            self.live_count -= 1
            self.version += 1

    def mark_trusted(self, index: int) -> None:
        if not self._trusted[index]:
            self._trusted[index] = True
            self.live_count += 1
            self.version += 1

    def live_indices(self) -> List[int]:
        """Indices of the nodes currently trusted, ascending."""
        return [i for i, trusted in enumerate(self._trusted) if trusted]

    def __repr__(self) -> str:
        return (
            f"<SuspicionView {self.live_count}/{self.node_count} trusted>"
        )


class _NodeChannel:
    """One node's heartbeat link plus its detector-side monitor state.

    Emitter side: a self-re-arming timer fires every
    ``heartbeat_interval``; while the node is truly up, each firing
    draws loss (``"hb-loss/node-i"``) and delay (``"hb-delay/node-i"``)
    and schedules the delivery.  Crashed nodes skip the draws entirely
    (a dead node emits nothing), so stream consumption tracks true
    uptime deterministically.

    Monitor side: ``last`` / ``samples`` feed the expiry-delay
    computation, and ``expiry`` is the single cancellable suspicion
    timer (see the module docstring).
    """

    __slots__ = (
        "detector", "index", "_delay", "_loss", "expiry", "last",
        "samples", "sample_sum",
    )

    def __init__(self, detector: "FailureDetector", index: int) -> None:
        self.detector = detector
        self.index = index
        spec = detector.spec
        streams = detector.streams
        dist = spec.delay_distribution()
        self._delay = (
            dist.bind(streams.get(f"hb-delay/node-{index}"))
            if dist is not None else None
        )
        self._loss = (
            streams.get(f"hb-loss/node-{index}")
            if spec.loss_probability > 0 else None
        )
        #: Pending suspicion timer (None while suspected).
        self.expiry = None
        #: Delivery time of the last heartbeat (None before the first).
        self.last: Optional[float] = None
        #: Phi-accrual inter-arrival window (None for "timeout").
        self.samples = (
            deque(maxlen=spec.window) if spec.kind == "phi" else None
        )
        self.sample_sum = 0.0

    def start(self) -> None:
        detector = self.detector
        env = detector.env
        interval = detector.spec.heartbeat_interval
        env._sleep(interval, self._on_emit)
        # Initial grace: the first heartbeat cannot land before one
        # period (plus channel delay), so the expiry clock starts as if
        # a heartbeat had just been delivered at t0 + one period.
        self.expiry = env._sleep(
            interval + detector._expiry_delay(self), self._on_expire
        )

    def _on_emit(self, _event) -> None:
        detector = self.detector
        env = detector.env
        # Re-arm first, unconditionally: the emission grid is fixed and
        # survives crashes (a recovered node resumes on its own period).
        env._sleep(detector.spec.heartbeat_interval, self._on_emit)
        if not detector.nodes[self.index]._up:
            return
        detector.heartbeats_sent += 1
        loss = self._loss
        if loss is not None and loss.random() < detector.spec.loss_probability:
            detector.heartbeats_lost += 1
            return
        delay = self._delay
        if delay is not None:
            env._sleep(delay(), self._on_deliver)
        else:
            detector._heartbeat(self)

    def _on_deliver(self, _event) -> None:
        self.detector._heartbeat(self)

    def _on_expire(self, _event) -> None:
        self.expiry = None
        self.detector._suspect(self)

    # -- pickling (checkpoint/resume) ------------------------------------
    #
    # The delay sampler is a bind() closure and cannot pickle, so the
    # snapshot carries its (distribution, stream) pair instead and
    # rebinds at restore -- bit-identical, since all randomness lives in
    # the stream.  Captured *here* rather than looked up through
    # ``self.detector`` in __setstate__: the detector is part of a
    # reference cycle with its channels and may still be an empty shell
    # when this channel's state is applied.

    def __getstate__(self) -> tuple:
        detector = self.detector
        dist = detector.spec.delay_distribution()
        delay_stream = (
            detector.streams.get(f"hb-delay/node-{self.index}")
            if dist is not None else None
        )
        return (
            detector, self.index, self._loss, self.expiry, self.last,
            self.samples, self.sample_sum, dist, delay_stream,
        )

    def __setstate__(self, state: tuple) -> None:
        (self.detector, self.index, self._loss, self.expiry, self.last,
         self.samples, self.sample_sum, dist, delay_stream) = state
        self._delay = dist.bind(delay_stream) if dist is not None else None


class FailureDetector:
    """Runs the heartbeat protocol and maintains the observed view.

    Pure callback machine on the kernel's cancellable timers; see the
    module docstring for the algorithm.  Ground-truth crash/recovery
    notifications (:meth:`on_node_crash` / :meth:`on_node_recover`) come
    from the :class:`~repro.system.faults.FaultInjector` when one is
    wired, and are used *only* for accounting (detection latency,
    false positives / negatives) -- never to update the view.
    """

    def __init__(
        self,
        env,
        nodes: Sequence,
        spec: DetectorSpec,
        streams,
        metrics,
        view: SuspicionView,
    ) -> None:
        if not spec.enabled:
            raise ValueError(
                "FailureDetector requires an enabled spec "
                "(heartbeat_interval > 0)"
            )
        self.env = env
        self.nodes = list(nodes)
        self.spec = spec
        self.streams = streams
        self.metrics = metrics
        self.view = view
        count = len(self.nodes)
        #: True crash instant per node (None while up); accounting only.
        self.crash_time: List[Optional[float]] = [None] * count
        #: Last true up/down flip per node (tests use this to bound the
        #: window in which view and truth may legitimately disagree).
        self.last_transition: List[float] = [0.0] * count
        #: Whether the current true down interval has been suspected
        #: (drives the false-negative count at recovery).
        self._down_detected: List[bool] = [False] * count
        #: Lifetime diagnostics (measured-window counters live in the
        #: metrics collector).
        self.heartbeats_sent = 0
        self.heartbeats_lost = 0
        self.suspicions = 0
        self._channels = [_NodeChannel(self, i) for i in range(count)]

    def start(self) -> None:
        """Arm every node's heartbeat emitter and initial expiry timer."""
        for channel in self._channels:
            channel.start()

    # -- detector core ---------------------------------------------------

    def _expiry_delay(self, channel: _NodeChannel) -> float:
        """Time after a heartbeat delivery at which suspicion fires."""
        spec = self.spec
        if spec.kind == "timeout":
            return spec.timeout
        samples = channel.samples
        mean = (
            channel.sample_sum / len(samples) if samples
            else spec.prior_mean
        )
        return spec.phi_threshold * _LN10 * mean

    def _heartbeat(self, channel: _NodeChannel) -> None:
        """A heartbeat from ``channel``'s node was delivered."""
        now = self.env._now
        index = channel.index
        view = self.view
        if index not in view:
            view.mark_trusted(index)  # rehabilitation
        samples = channel.samples
        last = channel.last
        if samples is not None and last is not None:
            if len(samples) == samples.maxlen:
                channel.sample_sum -= samples[0]
            gap = now - last
            samples.append(gap)
            channel.sample_sum += gap
        channel.last = now
        expiry = channel.expiry
        if expiry is not None:
            expiry.cancel()
        channel.expiry = self.env._sleep(
            self._expiry_delay(channel), channel._on_expire
        )

    def _suspect(self, channel: _NodeChannel) -> None:
        """``channel``'s expiry timer fired: suspect its node."""
        index = channel.index
        now = self.env._now
        self.view.mark_suspected(index)
        self.suspicions += 1
        metrics = self.metrics
        metrics.node_suspicions[index] += 1
        if self.nodes[index]._up:
            metrics.false_suspicions += 1
        elif not self._down_detected[index]:
            self._down_detected[index] = True
            metrics.detections += 1
            crashed_at = self.crash_time[index]
            if crashed_at is not None:
                metrics.detection_latency_sum += now - crashed_at

    # -- ground-truth hooks (accounting only) ----------------------------

    def on_node_crash(self, index: int, now: float) -> None:
        """Fault-injector notification: ``index`` truly crashed."""
        self.crash_time[index] = now
        self.last_transition[index] = now
        # A node suspected *before* its crash (a false positive that
        # came true) starts the down interval already detected -- no
        # latency sample, but no false negative at recovery either.
        self._down_detected[index] = index not in self.view

    def on_node_recover(self, index: int, now: float) -> None:
        """Fault-injector notification: ``index`` truly recovered."""
        if not self._down_detected[index]:
            self.metrics.missed_detections += 1
        self.crash_time[index] = None
        self.last_transition[index] = now

    def __repr__(self) -> str:
        return (
            f"<FailureDetector {self.spec.kind} "
            f"{self.view.live_count}/{self.view.node_count} trusted "
            f"suspicions={self.suspicions}>"
        )
