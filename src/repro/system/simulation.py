"""Simulation façade: build a whole system from a config and run it.

This is the main entry point for users::

    from repro import Simulation, baseline_config

    result = Simulation(baseline_config(strategy="EQF")).run()
    print(result.md_local, result.md_global)

A :class:`Simulation` wires together the environment, the named random
streams, the nodes with their schedulers, the process manager with the
chosen SDA strategy, and the workload sources, then runs for
``config.sim_time`` with the first ``config.warmup_time`` discarded.
"""

from __future__ import annotations

from typing import List, Optional

from ..checkpoint import CheckpointPolicy, _Trigger, save_checkpoint
from ..core.strategies import DeadlineAssigner, parse_assigner
from ..sim.core import Environment
from ..sim.rng import StreamFactory
from .config import PARALLEL, SERIAL, SERIAL_PARALLEL, SystemConfig
from .detector import FailureDetector, SuspicionView
from .emission import EmissionPolicy, MetricsEmitter
from .faults import FaultInjector, LiveSet
from .metrics import MetricsCollector, RunResult
from .node import Node
from .placement import (
    LeastOutstandingPlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    UniformPlacement,
    ZipfPlacement,
)
from .preemptive import PreemptiveNode
from .overload import get_overload_policy
from .process_manager import ProcessManager
from .schedulers import get_policy
from .tracing import TraceLog
from .workload import (
    GlobalTaskFactory,
    GlobalTaskSource,
    LocalTaskSource,
    ParallelFanFactory,
    PiecewiseProfile,
    SerialChainFactory,
    SerialParallelFactory,
)


class Simulation:
    """One fully wired simulation instance (single run, single seed)."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        #: True once the warmup phase has run and metrics were reset;
        #: lets a restored checkpoint resume without re-warming.
        self._warmup_done = False
        self.env = Environment()
        self.streams = StreamFactory(config.seed)
        self.metrics = MetricsCollector(config.node_count)
        self.trace_log: Optional[TraceLog] = None
        if config.trace:
            self.trace_log = TraceLog()
            self.metrics.tracer = self.trace_log
        self.assigner: DeadlineAssigner = parse_assigner(config.strategy)

        policy = get_policy(config.scheduler)
        overload = get_overload_policy(config.overload_policy)
        speeds = config.node_speed_factors
        node_type = PreemptiveNode if config.preemptive else Node
        self.nodes: List[Node] = [
            node_type(
                env=self.env,
                index=i,
                policy=policy,
                metrics=self.metrics,
                overload_policy=overload,
                speed=1.0 if speeds is None else speeds[i],
            )
            for i in range(config.node_count)
        ]
        # Fault model: a crash-enabled spec builds the live set and the
        # injector; anything else (None, or a zero-rate spec) wires
        # NOTHING -- no streams, no timers, no live set -- so fault-free
        # runs stay bit-identical to the pre-fault engine.
        faults = config.faults
        fault_spec = (
            faults if faults is not None and faults.enabled else None
        )
        self.live_set: Optional[LiveSet] = (
            LiveSet(config.node_count) if fault_spec is not None else None
        )
        self.fault_injector: Optional[FaultInjector] = None
        retry_stream = (
            self.streams.get("retry-route")
            if fault_spec is not None and fault_spec.retries_enabled
            else None
        )
        # Failure detection: an enabled spec replaces the manager-side
        # *oracle* view with the detector's observed SuspicionView --
        # placement, retry routing, and misroute recovery all consult
        # beliefs instead of ground truth.  Anything else wires NOTHING
        # (no streams, no timers, no view), so oracle-mode runs stay
        # bit-identical to the pre-detector engine.
        detector_cfg = config.detector
        detector_spec = (
            detector_cfg
            if detector_cfg is not None and detector_cfg.enabled
            else None
        )
        self.suspicion_view: Optional[SuspicionView] = (
            SuspicionView(config.node_count)
            if detector_spec is not None else None
        )
        self.failure_detector: Optional[FailureDetector] = None
        self.process_manager = ProcessManager(
            env=self.env,
            nodes=self.nodes,
            assigner=self.assigner,
            metrics=self.metrics,
            fault_spec=fault_spec,
            live_set=(
                self.suspicion_view
                if detector_spec is not None else self.live_set
            ),
            retry_stream=retry_stream,
            detector_spec=detector_spec,
            detector_stream=(
                self.streams.get("detector-route")
                if detector_spec is not None else None
            ),
        )

        estimator = config.make_estimator()
        profile = (
            PiecewiseProfile(config.load_profile, config.sim_time)
            if config.load_profile is not None
            else None
        )
        self.local_sources: List[LocalTaskSource] = []
        for node, rate in zip(self.nodes, config.node_local_rates()):
            if rate <= 0:
                continue
            self.local_sources.append(
                LocalTaskSource(
                    env=self.env,
                    node=node,
                    interarrival=config.interarrival_distribution(rate),
                    execution=config.local_execution_distribution(),
                    slack=config.local_slack_distribution(),
                    streams=self.streams,
                    estimator=estimator,
                    profile=profile,
                )
            )

        self.global_source: Optional[GlobalTaskSource] = None
        self.placement_policy: Optional[PlacementPolicy] = None
        global_rate = config.global_arrival_rate
        if global_rate > 0:
            factory = self._make_factory(estimator)
            self.global_source = GlobalTaskSource(
                env=self.env,
                process_manager=self.process_manager,
                interarrival=config.interarrival_distribution(global_rate),
                factory=factory,
                streams=self.streams,
                profile=profile,
            )

        if fault_spec is not None or detector_spec is not None:
            if self.placement_policy is not None:
                # Observed view when a detector runs, oracle otherwise.
                self.placement_policy.attach_live_set(
                    self.suspicion_view
                    if detector_spec is not None else self.live_set
                )
        if fault_spec is not None:
            self.fault_injector = FaultInjector(
                env=self.env,
                nodes=self.nodes,
                spec=fault_spec,
                streams=self.streams,
                metrics=self.metrics,
                live_set=self.live_set,
            )
        if detector_spec is not None:
            self.failure_detector = FailureDetector(
                env=self.env,
                nodes=self.nodes,
                spec=detector_spec,
                streams=self.streams,
                metrics=self.metrics,
                view=self.suspicion_view,
            )
            if self.fault_injector is not None:
                self.fault_injector.detector = self.failure_detector
        if self.fault_injector is not None:
            self.fault_injector.start()
        if self.failure_detector is not None:
            self.failure_detector.start()

    def _make_placement(self) -> PlacementPolicy:
        """Build the configured subtask placement policy.

        The baseline ``"uniform"`` policy reproduces the historical draws
        from the ``"global-route"`` stream exactly; the other policies use
        their own named streams (or none), so switching a scenario's
        placement never perturbs the rest of the workload's randomness.
        """
        config = self.config
        if config.placement == "uniform":
            return UniformPlacement(config.node_count, self.streams)
        if config.placement == "round-robin":
            return RoundRobinPlacement(config.node_count)
        if config.placement == "zipf":
            return ZipfPlacement(
                config.node_count, config.placement_zipf_s, self.streams
            )
        if config.placement == "least-outstanding":
            return LeastOutstandingPlacement(self.nodes, self.streams)
        # Config validation shares placement.PLACEMENT_POLICIES with this
        # dispatch; a name validated but not built here is a wiring bug,
        # not a user error -- never fall back to uniform silently.
        raise ValueError(
            f"placement {config.placement!r} validated but not wired"
        )

    def _make_factory(self, estimator) -> GlobalTaskFactory:
        config = self.config
        placement = self._make_placement()
        # Retained so the fault injector can attach its live set.
        self.placement_policy = placement
        if config.task_structure == SERIAL:
            return SerialChainFactory(
                node_count=config.node_count,
                count=config.subtask_count_distribution(),
                execution=config.subtask_execution_distribution(),
                slack=config.global_slack_distribution(),
                streams=self.streams,
                estimator=estimator,
                placement=placement,
            )
        if config.task_structure == PARALLEL:
            return ParallelFanFactory(
                node_count=config.node_count,
                fan_out=config.subtask_count,
                execution=config.subtask_execution_distribution(),
                slack=config.global_slack_distribution(),
                streams=self.streams,
                estimator=estimator,
                placement=placement,
            )
        if config.task_structure == SERIAL_PARALLEL:
            return SerialParallelFactory(
                node_count=config.node_count,
                stages=config.stages,
                width=config.stage_width,
                execution=config.subtask_execution_distribution(),
                slack=config.global_slack_distribution(),
                streams=self.streams,
                estimator=estimator,
                placement=placement,
            )
        raise ValueError(f"unknown task structure {config.task_structure!r}")

    def run(
        self,
        checkpoint: Optional[CheckpointPolicy] = None,
        emit: Optional[EmissionPolicy] = None,
    ) -> RunResult:
        """Execute the configured run and return its measurements.

        With a :class:`~repro.checkpoint.CheckpointPolicy`, the run is
        periodically snapshotted to the policy's path; a snapshot
        restored with :func:`~repro.checkpoint.load_checkpoint` finishes
        the run bit-identically to the uninterrupted one.  Works both on
        fresh simulations and on restored ones (which skip the already
        completed warmup).

        With an :class:`~repro.system.emission.EmissionPolicy`, the run
        additionally writes a JSONL metric time series to the policy's
        path: interval records during the measured phase, and a final
        record whose cumulative payload equals the returned result.
        Emission is observation-only and determinism-invisible.
        """
        if checkpoint is not None or emit is not None:
            return self._run_sliced(checkpoint, emit)
        config = self.config
        if config.warmup_time > 0 and not self._warmup_done:
            self.env.run(until=config.warmup_time)
            self.metrics.reset(self.env.now)
        self._warmup_done = True
        self.env.run(until=config.sim_time)
        return self.metrics.snapshot(self.env.now)

    def _run_sliced(
        self,
        checkpoint: Optional[CheckpointPolicy],
        emit: Optional[EmissionPolicy],
    ) -> RunResult:
        """The sliced run loop behind ``run(checkpoint=..., emit=...)``.

        Each phase's time horizon is cut into slices and the policies'
        triggers are checked between slices.  Slicing is free in terms
        of determinism: the run-horizon sentinel consumes no sequence
        number, so ``run(until=a); run(until=b)`` is bit-identical to
        ``run(until=b)`` (pinned by the engine kernel tests), and both
        the checkpoint snapshot and the emitted records only read state.

        Interval records are only cut during the measured phase --
        warm-up statistics are discarded at the reset, so emitting them
        would just be noise; the emitter's windowed signals still warm
        up through the transient (and restart at the reset with
        everything else).
        """
        env = self.env
        config = self.config
        checkpoint_trigger = (
            _Trigger(checkpoint, env) if checkpoint is not None else None
        )
        emitter = None
        emit_trigger = None
        if emit is not None:
            emitter = MetricsEmitter(emit, self)
            emit_trigger = _Trigger(emit, env)

        def advance(target: float, measured: bool) -> None:
            remaining = target - env.now
            if remaining <= 0:
                return
            step = remaining / 128.0
            while env.now < target:
                env.run(until=min(env.now + step, target))
                if checkpoint_trigger is not None and checkpoint_trigger.due():
                    save_checkpoint(self, checkpoint.path)
                    checkpoint_trigger.saved()
                if measured and emit_trigger is not None and emit_trigger.due():
                    emitter.emit_interval()
                    emit_trigger.saved()

        if config.warmup_time > 0 and not self._warmup_done:
            advance(config.warmup_time, measured=False)
            self.metrics.reset(env.now)
        self._warmup_done = True
        advance(config.sim_time, measured=True)
        result = self.metrics.snapshot(env.now)
        if emitter is not None:
            emitter.emit_final(result)
        return result


def simulate(
    config: SystemConfig,
    checkpoint: Optional[CheckpointPolicy] = None,
    emit: Optional[EmissionPolicy] = None,
) -> RunResult:
    """One-shot convenience: build and run a :class:`Simulation`."""
    return Simulation(config).run(checkpoint=checkpoint, emit=emit)
