"""Simulation façade: build a whole system from a config and run it.

This is the main entry point for users::

    from repro import Simulation, baseline_config

    result = Simulation(baseline_config(strategy="EQF")).run()
    print(result.md_local, result.md_global)

A :class:`Simulation` wires together the environment, the named random
streams, the nodes with their schedulers, the process manager with the
chosen SDA strategy, and the workload sources, then runs for
``config.sim_time`` with the first ``config.warmup_time`` discarded.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.strategies import DeadlineAssigner, parse_assigner
from ..sim.core import Environment
from ..sim.distributions import exponential_interarrival
from ..sim.rng import StreamFactory
from .config import PARALLEL, SERIAL, SERIAL_PARALLEL, SystemConfig
from .metrics import MetricsCollector, RunResult
from .node import Node
from .preemptive import PreemptiveNode
from .overload import get_overload_policy
from .process_manager import ProcessManager
from .schedulers import get_policy
from .tracing import TraceLog
from .workload import (
    GlobalTaskFactory,
    GlobalTaskSource,
    LocalTaskSource,
    ParallelFanFactory,
    SerialChainFactory,
    SerialParallelFactory,
)


class Simulation:
    """One fully wired simulation instance (single run, single seed)."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.env = Environment()
        self.streams = StreamFactory(config.seed)
        self.metrics = MetricsCollector(config.node_count)
        self.trace_log: Optional[TraceLog] = None
        if config.trace:
            self.trace_log = TraceLog()
            self.metrics.tracer = self.trace_log
        self.assigner: DeadlineAssigner = parse_assigner(config.strategy)

        policy = get_policy(config.scheduler)
        overload = get_overload_policy(config.overload_policy)
        node_class = PreemptiveNode if config.preemptive else Node
        self.nodes: List[Node] = [
            node_class(
                env=self.env,
                index=i,
                policy=policy,
                metrics=self.metrics,
                overload_policy=overload,
            )
            for i in range(config.node_count)
        ]
        self.process_manager = ProcessManager(
            env=self.env,
            nodes=self.nodes,
            assigner=self.assigner,
            metrics=self.metrics,
        )

        estimator = config.make_estimator()
        self.local_sources: List[LocalTaskSource] = []
        for node, rate in zip(self.nodes, config.node_local_rates()):
            if rate <= 0:
                continue
            self.local_sources.append(
                LocalTaskSource(
                    env=self.env,
                    node=node,
                    interarrival=exponential_interarrival(rate),
                    execution=config.local_execution_distribution(),
                    slack=config.local_slack_distribution(),
                    streams=self.streams,
                    estimator=estimator,
                )
            )

        self.global_source: Optional[GlobalTaskSource] = None
        global_rate = config.global_arrival_rate
        if global_rate > 0:
            factory = self._make_factory(estimator)
            self.global_source = GlobalTaskSource(
                env=self.env,
                process_manager=self.process_manager,
                interarrival=exponential_interarrival(global_rate),
                factory=factory,
                streams=self.streams,
            )

    def _make_factory(self, estimator) -> GlobalTaskFactory:
        config = self.config
        if config.task_structure == SERIAL:
            return SerialChainFactory(
                node_count=config.node_count,
                count=config.subtask_count_distribution(),
                execution=config.subtask_execution_distribution(),
                slack=config.global_slack_distribution(),
                streams=self.streams,
                estimator=estimator,
            )
        if config.task_structure == PARALLEL:
            return ParallelFanFactory(
                node_count=config.node_count,
                fan_out=config.subtask_count,
                execution=config.subtask_execution_distribution(),
                slack=config.global_slack_distribution(),
                streams=self.streams,
                estimator=estimator,
            )
        if config.task_structure == SERIAL_PARALLEL:
            return SerialParallelFactory(
                node_count=config.node_count,
                stages=config.stages,
                width=config.stage_width,
                execution=config.subtask_execution_distribution(),
                slack=config.global_slack_distribution(),
                streams=self.streams,
                estimator=estimator,
            )
        raise ValueError(f"unknown task structure {config.task_structure!r}")

    def run(self) -> RunResult:
        """Execute the configured run and return its measurements."""
        config = self.config
        if config.warmup_time > 0:
            self.env.run(until=config.warmup_time)
            self.metrics.reset(self.env.now)
        self.env.run(until=config.sim_time)
        return self.metrics.snapshot(self.env.now)


def simulate(config: SystemConfig) -> RunResult:
    """One-shot convenience: build and run a :class:`Simulation`."""
    return Simulation(config).run()
