"""Overload management policies (Table 1: "No Abort" baseline).

The paper's baseline never aborts tardy tasks ("tardy tasks are not
aborted", Sec. 3.1); its firm-deadline variant, explored in Sec. 4.3 and
references [6], [7], discards tasks whose deadline has already passed.

With a non-preemptive server the natural realization of the firm variant is
*abort at dispatch*: when the server would start a unit whose deadline has
already expired, the unit is dropped without service.  Work already in
service is never interrupted (non-preemptive), and dropping at dispatch is
where the policy saves capacity -- the expired unit would have delayed
everything behind it for no benefit.
"""

from __future__ import annotations

from typing import Dict

from .work import WorkUnit


class OverloadPolicy:
    """Decides what happens to a unit whose deadline situation is bad."""

    name: str = "abstract"

    def should_abort_at_dispatch(self, unit: WorkUnit, now: float) -> bool:
        """True if the node should discard ``unit`` instead of serving it."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<OverloadPolicy {self.name}>"


class NoAbort(OverloadPolicy):
    """Baseline: tardy tasks run to completion regardless."""

    name = "no-abort"

    def should_abort_at_dispatch(self, unit: WorkUnit, now: float) -> bool:
        return False


class AbortTardyAtDispatch(OverloadPolicy):
    """Firm variant: discard units whose *natural* deadline passed.

    The natural deadline of a local task is its own deadline; of a global
    subtask, the end-to-end deadline of its global task.  A subtask past
    its virtual deadline but inside the end-to-end deadline is still worth
    running (the global task can recover), so this policy does not touch
    it.  This matches the intent of firm-deadline scheduling: discard work
    that can no longer contribute value.
    """

    name = "abort-tardy"

    def should_abort_at_dispatch(self, unit: WorkUnit, now: float) -> bool:
        return now > unit.natural_deadline


class AbortVirtualAtDispatch(OverloadPolicy):
    """Aggressive firm variant: discard units past their *virtual* deadline.

    Models components that blindly discard any task whose assigned deadline
    expired -- the paper's caveat for GF ("GF is not applicable to
    components that discard tasks with a past deadline, virtual or not")
    and, as our V2b bench shows, a policy that actively punishes aggressive
    SDA strategies: tight virtual deadlines turn into spurious aborts of
    still-viable global tasks.
    """

    name = "abort-virtual"

    def should_abort_at_dispatch(self, unit: WorkUnit, now: float) -> bool:
        return now > unit.timing.dl


#: Policies by name, for configuration files and the CLI.
OVERLOAD_POLICIES: Dict[str, OverloadPolicy] = {
    policy.name: policy
    for policy in (NoAbort(), AbortTardyAtDispatch(), AbortVirtualAtDispatch())
}


def get_overload_policy(name: str) -> OverloadPolicy:
    """Look up an overload policy by (case-insensitive) name."""
    try:
        return OVERLOAD_POLICIES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(OVERLOAD_POLICIES))
        raise ValueError(f"unknown overload policy {name!r}; known: {known}")
