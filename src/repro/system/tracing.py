"""Execution tracing: record and render what every node did, when.

Miss-ratio numbers say *that* a strategy struggles; a trace shows *why*
(which queue backed up, which subtask burned the slack).  Attach a
:class:`TraceLog` to a :class:`~repro.system.metrics.MetricsCollector`
(or pass ``trace=True`` to :class:`~repro.system.config.SystemConfig`) and
every submit / dispatch / preempt / abort / completion is recorded.

Rendering: :meth:`TraceLog.render_timeline` draws an ASCII Gantt chart of
busy intervals per node; :meth:`TraceLog.render_events` lists events in
order.  Traces grow linearly with work executed, so tracing is off by
default and meant for short runs.  ``limit`` caps memory and counts what
it drops (:attr:`TraceLog.dropped`/:attr:`~TraceLog.truncated`); for
long runs that need the *whole* trace, :class:`JsonlTraceSink` streams
every event to a JSONL file in O(1) memory instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from ..checkpoint import JsonlAppender, read_jsonl

#: Event kinds recorded by the nodes.
SUBMIT = "submit"
DISPATCH = "dispatch"
PREEMPT = "preempt"
ABORT = "abort"
COMPLETE = "complete"
LOST = "lost"

KINDS = (SUBMIT, DISPATCH, PREEMPT, ABORT, COMPLETE, LOST)


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence at a node."""

    time: float
    kind: str
    unit_name: str
    node_index: int
    task_class: str
    deadline: float

    def __str__(self) -> str:
        return (
            f"{self.time:10.3f}  node {self.node_index}  {self.kind:8s}  "
            f"{self.unit_name}  [{self.task_class}, dl={self.deadline:.3f}]"
        )


class TraceLog:
    """An append-only log of node-level scheduling events."""

    def __init__(self, limit: Optional[int] = None) -> None:
        self.events: List[TraceEvent] = []
        #: Optional hard cap to keep long runs from exhausting memory.
        self.limit = limit
        #: Events discarded after the cap was reached.  A capped trace is
        #: still useful (the head shows the transient), but analysis must
        #: be able to tell "the run recorded 500 events" from "the run
        #: recorded 500 and threw away two million".
        self.dropped = 0

    @property
    def truncated(self) -> bool:
        """True when the cap was hit and at least one event was dropped."""
        return self.dropped > 0

    # -- recording -----------------------------------------------------------

    def record(self, time: float, kind: str, unit, node_index: int) -> None:
        """Record one event for a work unit (called by nodes)."""
        if kind not in KINDS:
            raise ValueError(f"unknown trace event kind {kind!r}")
        if self.limit is not None and len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(
            TraceEvent(
                time=time,
                kind=kind,
                unit_name=unit.name,
                node_index=node_index,
                task_class=unit.task_class.value,
                deadline=unit.timing.dl,
            )
        )

    # -- queries --------------------------------------------------------------

    def filter(
        self,
        kind: Optional[str] = None,
        node_index: Optional[int] = None,
        unit_name: Optional[str] = None,
    ) -> List[TraceEvent]:
        """Events matching all given criteria, in time order."""
        return [
            event
            for event in self.events
            if (kind is None or event.kind == kind)
            and (node_index is None or event.node_index == node_index)
            and (unit_name is None or event.unit_name == unit_name)
        ]

    def busy_intervals(self, node_index: int) -> List[Tuple[float, float, str]]:
        """``(start, end, unit_name)`` service intervals at one node.

        Reconstructed by pairing each dispatch with the next preempt or
        completion of the same unit at the same node.
        """
        intervals: List[Tuple[float, float, str]] = []
        open_since: Optional[float] = None
        open_unit: Optional[str] = None
        for event in self.events:
            if event.node_index != node_index:
                continue
            if event.kind == DISPATCH:
                open_since = event.time
                open_unit = event.unit_name
            elif event.kind in (COMPLETE, PREEMPT) and open_unit == event.unit_name:
                if open_since is not None:
                    intervals.append((open_since, event.time, event.unit_name))
                open_since = None
                open_unit = None
        return intervals

    # -- rendering -------------------------------------------------------------

    def render_events(self, limit: int = 200) -> str:
        """The first ``limit`` events as a readable listing."""
        lines = [str(event) for event in self.events[:limit]]
        if len(self.events) > limit:
            lines.append(f"... ({len(self.events) - limit} more events)")
        if self.dropped:
            lines.append(
                f"... (trace truncated: {self.dropped} events dropped "
                f"at the {self.limit}-event cap)"
            )
        return "\n".join(lines)

    def render_timeline(
        self,
        node_count: int,
        width: int = 72,
        window: Optional[Tuple[float, float]] = None,
    ) -> str:
        """ASCII Gantt chart: one row per node, ``#`` = busy, ``.`` = idle.

        ``window`` restricts the plotted time range; it defaults to the
        span of the recorded events.
        """
        if not self.events:
            return "(empty trace)"
        if window is None:
            start = self.events[0].time
            end = max(event.time for event in self.events)
        else:
            start, end = window
        if end <= start:
            end = start + 1.0
        scale = width / (end - start)

        lines = [f"timeline [{start:.3f}, {end:.3f}]"]
        for node_index in range(node_count):
            row = ["."] * width
            for s, e, _name in self.busy_intervals(node_index):
                if e < start or s > end:
                    continue
                left = max(0, int((max(s, start) - start) * scale))
                right = min(width - 1, int((min(e, end) - start) * scale))
                for i in range(left, right + 1):
                    row[i] = "#"
            lines.append(f"node {node_index} |{''.join(row)}|")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        if self.dropped:
            return (
                f"TraceLog(events={len(self.events)}, "
                f"truncated, dropped={self.dropped})"
            )
        return f"TraceLog(events={len(self.events)})"


class JsonlTraceSink:
    """Streams trace events to a JSONL file in O(1) memory.

    The same ``record()`` interface as :class:`TraceLog`, so it attaches
    anywhere a trace log does (``metrics.tracer = JsonlTraceSink(path)``)
    -- but instead of accumulating :class:`TraceEvent` objects it writes
    each event as one flushed JSON line, so arbitrarily long traced runs
    stay bounded-memory.  Load a written file back into memory with
    :func:`load_trace_events`.

    Picklable: the underlying appender reopens its file in append mode
    on restore, so a sink inside a checkpointed simulation resumes
    appending to the same file after a crash/restore cycle.
    """

    def __init__(self, path: Any, append: bool = False) -> None:
        self._appender = JsonlAppender(path, append=append)

    @property
    def path(self) -> str:
        return self._appender.path

    @property
    def written(self) -> int:
        """Events written so far (survives checkpoint/restore)."""
        return self._appender.written

    def record(self, time: float, kind: str, unit, node_index: int) -> None:
        """Record one event for a work unit (called by nodes)."""
        if kind not in KINDS:
            raise ValueError(f"unknown trace event kind {kind!r}")
        self._appender.write(
            {
                "time": time,
                "kind": kind,
                "unit": unit.name,
                "node": node_index,
                "class": unit.task_class.value,
                "deadline": unit.timing.dl,
            }
        )

    def close(self) -> None:
        self._appender.close()

    def __len__(self) -> int:
        return self._appender.written

    def __repr__(self) -> str:
        return f"JsonlTraceSink({self.path!r}, written={self.written})"


def load_trace_events(path: Any) -> List[TraceEvent]:
    """Read a :class:`JsonlTraceSink` file back as :class:`TraceEvent` s.

    Tolerates a torn final line (the writer crashed mid-record), so the
    events of a killed run remain loadable.
    """
    events: List[TraceEvent] = []
    for record in read_jsonl(path):
        events.append(
            TraceEvent(
                time=record["time"],
                kind=record["kind"],
                unit_name=record["unit"],
                node_index=record["node"],
                task_class=record["class"],
                deadline=record["deadline"],
            )
        )
    return events
