"""Preemptive-resume node: an ablation of the paper's non-preemption model.

The paper's system model fixes "some real-time scheduling algorithm with no
preemption" (Sec. 4.1).  Non-preemption is realistic for database
operations or network transmissions, but many components (CPU schedulers)
do preempt.  :class:`PreemptiveNode` implements preemptive-resume service:
when a unit arrives whose priority (per the node's policy, including the
Globals-First class) beats the unit in service, the server is interrupted,
the preempted unit returns to the ready queue with only its *remaining*
execution demand, and service continues with the newcomer.

This is an extension, not part of the reproduction proper; the ablation
bench measures how much of the paper's story depends on non-preemption.

Semantics:

* ``started_at`` records the *first* time a unit received service (waiting
  time keeps its meaning);
* preemption happens only when the arrival's priority is *strictly* higher
  -- ties never preempt, so FIFO determinism is preserved;
* the overload policy is still consulted only at (re-)dispatch, never
  mid-service.
"""

from __future__ import annotations

from heapq import heappop
from typing import Optional

from ..sim.core import NORMAL, Environment, Event
from ..sim.errors import Interrupt
from .metrics import MetricsCollector
from .node import Node
from .overload import OverloadPolicy
from .schedulers import SchedulingPolicy
from .work import WorkUnit


class PreemptiveNode(Node):
    """A node whose server implements preemptive-resume scheduling."""

    def __init__(
        self,
        env: Environment,
        index: int,
        policy: SchedulingPolicy,
        metrics: MetricsCollector,
        overload_policy: Optional[OverloadPolicy] = None,
    ) -> None:
        #: Remaining service demand of units that have been preempted at
        #: least once, keyed by unit id.  Units never seen here still need
        #: their full ``timing.ex``.
        self._remaining: dict[int, float] = {}
        self._current: Optional[WorkUnit] = None
        self._preemptions = 0
        super().__init__(env, index, policy, metrics, overload_policy)
        # Unlike the callback-machine base class, preemptive service needs
        # an interruptible process: the server is a generator that sleeps
        # on a reusable wakeup event while the queue is empty.
        self._wakeup: Optional[Event] = None
        self.process = env.process(self._server())

    @property
    def preemptions(self) -> int:
        """Number of preemption events at this node (for diagnostics)."""
        return self._preemptions

    def submit_nowait(self, unit: WorkUnit) -> None:
        """Enqueue a unit; wake the sleeping server or preempt the one in
        service.

        The base class's deferred-dispatch wake-up belongs to its callback
        state machine, which this process-based server does not use; and as
        an ablation extension this node takes the readable enqueue path
        (``queue.push`` + ``increment``) rather than the base class's
        inlined one -- same arithmetic, no duplicated hot-path code.
        """
        if unit.node_index != self.index:
            raise ValueError(
                f"{unit!r} routed to node {self.index}, expected "
                f"{unit.node_index}"
            )
        self.queue.push(unit)
        now = self.env.now
        self._queue_signal.increment(1, now)
        metrics = self.metrics
        if metrics._tracer is not None:
            metrics._tracer.record(now, "submit", unit, self.index)
        wakeup = self._wakeup
        if wakeup is not None and not wakeup.triggered:
            wakeup.succeed()
        current = self._current
        if current is not None and (
            self.queue.key_of(unit) < self.queue.key_of(current)
        ):
            self._preemptions += 1
            self.process.interrupt(cause="preempt")

    def _server(self):
        env = self.env
        index = self.index
        metrics = self.metrics
        queue = self.queue
        heap = queue._heap  # the ready queue mutates this list in place
        pop = heappop
        push = queue.push
        busy_update = metrics.node_busy[index].update
        queue_sig = self._queue_signal.increment
        dispatched = metrics.node_dispatched
        record = metrics.record_unit_completion
        sleep = env._sleep  # pooled timeouts; never retained after firing
        remaining = self._remaining
        abort_check = self._abort_check  # NoAbort fast path, bound by Node
        wakeup = env.event()
        while True:
            if not heap:
                self._wakeup = wakeup
                yield wakeup
                self._wakeup = None
                wakeup._reset()
            unit = pop(heap)[3]
            now = env._now
            queue_sig(-1, now)
            dispatched[index] += 1
            timing = unit.timing

            if abort_check is not None and abort_check(unit, now):
                timing.aborted = True
                remaining.pop(unit.id, None)
                if metrics._tracer is not None:
                    metrics._tracer.record(now, "abort", unit, index)
                record(unit)
                done = unit._done
                if done is not None:
                    done.succeed(unit)
                on_done = unit.on_done
                if on_done is not None:
                    env._schedule_call(on_done, value=unit, priority=NORMAL)
                continue

            demand = remaining.get(unit.id, timing.ex)
            if timing.started_at is None:
                timing.started_at = now
            self._busy = True
            self._current = unit
            busy_update(1, now)
            if metrics._tracer is not None:
                metrics._tracer.record(now, "dispatch", unit, index)
            service_began = now
            try:
                yield sleep(demand)
            except Interrupt:
                now = env._now
                consumed = now - service_began
                remaining[unit.id] = demand - consumed
                self._busy = False
                self._current = None
                busy_update(0, now)
                if metrics._tracer is not None:
                    metrics._tracer.record(now, "preempt", unit, index)
                # Put the preempted unit back; the newcomer (already queued
                # by submit) will win the next dispatch.
                push(unit)
                queue_sig(1, now)
                continue
            now = env._now
            timing.completed_at = now
            remaining.pop(unit.id, None)
            self._busy = False
            self._current = None
            busy_update(0, now)
            if metrics._tracer is not None:
                metrics._tracer.record(now, "complete", unit, index)
            record(unit)
            done = unit._done
            if done is not None:
                done.succeed(unit)
            on_done = unit.on_done
            if on_done is not None:
                env._schedule_call(on_done, value=unit, priority=NORMAL)
