"""Preemptive-resume node: an ablation of the paper's non-preemption model.

The paper's system model fixes "some real-time scheduling algorithm with no
preemption" (Sec. 4.1).  Non-preemption is realistic for database
operations or network transmissions, but many components (CPU schedulers)
do preempt.  :class:`PreemptiveNode` implements preemptive-resume service:
when a unit arrives whose priority (per the node's policy, including the
Globals-First class) beats the unit in service, the service timer is
cancelled, the preempted unit returns to the ready queue with only its
*remaining* execution demand, and service continues with the newcomer.

This is an extension, not part of the reproduction proper; the ablation
bench (``benchmarks/bench_preemptive.py``) measures how much of the
paper's story depends on non-preemption.

Semantics:

* ``started_at`` records the *first* time a unit received service (waiting
  time keeps its meaning);
* preemption happens only when the arrival's priority is *strictly* higher
  -- ties never preempt, so FIFO determinism is preserved;
* any burst of same-instant higher-priority arrivals causes exactly ONE
  preemption: the re-dispatch picks the best queued unit, so further
  interrupts would only charge spurious preemptions (this was a real bug
  in the old generator server, which queued one interrupt per arrival);
* remaining demand is clamped at zero: a preemption landing exactly at
  the completion instant can compute ``consumed > demand`` by a float
  ulp, and a negative remainder must not become a negative timer delay;
* with a ``speed`` factor ``s``, a unit with remaining demand ``d``
  occupies the server for ``d / s``; on preemption the demand consumed is
  ``elapsed * s``.  Remaining demand is bookkept in demand units, so a
  unit preempted on one node would re-dispatch correctly at any speed
  (nodes keep their own queues, so in practice it re-dispatches here);
* the overload policy is still consulted only at (re-)dispatch, never
  mid-service.

Like its base class, the server is a callback state machine -- no
generator process, no coroutine switch, no ``Interrupt`` exception on the
hot path.  Dispatch schedules a pooled, *cancellable* completion timer
(:meth:`repro.sim.core._Sleep.cancel`); preemption cancels it, computes
the remaining demand, re-enqueues the unit, and re-dispatches, all in one
urgent callback.  Event ordering is bit-identical to the old generator
server: the idle wake-up is a NORMAL-priority heap entry (where the
generator server triggered its wakeup event, consuming one event-list
sequence number at the same point) and the preemption poke rides the
kernel's urgent deque (where the generator server scheduled its
interrupt — urgent dispatch order is unchanged, see
:mod:`repro.sim._engine`).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Optional

from ..sim.core import NORMAL, Environment, _Call
from .metrics import MetricsCollector
from .node import Node
from .overload import OverloadPolicy
from .schedulers import SchedulingPolicy
from .work import WorkUnit


class PreemptiveNode(Node):
    """A node whose server implements preemptive-resume scheduling."""

    def __init__(
        self,
        env: Environment,
        index: int,
        policy: SchedulingPolicy,
        metrics: MetricsCollector,
        overload_policy: Optional[OverloadPolicy] = None,
        speed: float = 1.0,
    ) -> None:
        #: Remaining service demand (in demand units, not wall time) of
        #: units that have been preempted at least once, keyed by unit
        #: id.  Units never seen here still need their full ``timing.ex``.
        self._remaining: dict[int, float] = {}
        self._preemptions = 0
        #: True between scheduling the urgent preemption poke and handling
        #: it.  Guards against the double-interrupt bug: two same-instant
        #: higher-priority arrivals must cause ONE preemption, not a
        #: second poke that charges a spurious preemption to the unit
        #: dispatched by the first.
        self._preempt_pending = False
        #: The cancellable completion timer of the unit in service.
        self._sleep = None
        self._service_began = 0.0
        self._service_demand = 0.0
        super().__init__(env, index, policy, metrics, overload_policy, speed)
        self._preempt_counts = metrics.node_preemptions
        self._on_preempt = self._preempt
        # The urgent preemption poke, pooled: one bare kernel call per
        # node, reused for every schedule (the callback slot is never
        # detached, so there is nothing to re-arm).  ``_preempt_pending``
        # guarantees at most one outstanding schedule, so reuse is safe.
        self._poke = _Call(self._on_preempt)

    @property
    def preemptions(self) -> int:
        """Number of preemption events at this node (for diagnostics)."""
        return self._preemptions

    def submit_nowait(self, unit: WorkUnit) -> None:
        """Enqueue a unit; wake the idle server or preempt the one in
        service.

        Same inlined enqueue as the base class; the differences are the
        NORMAL-priority idle wake (the generator server's wakeup event
        fired at NORMAL, and the golden gate pins that ordering) and the
        preemption check against the unit in service.
        """
        if unit.node_index != self.index:
            raise ValueError(
                f"{unit!r} routed to node {self.index}, expected "
                f"{unit.node_index}"
            )
        # Inlined ReadyQueue.push (see schedulers.py for the reference).
        heappush(
            self._heap,
            (
                unit.priority_class,
                self._queue_key(unit),
                next(self._queue_seq),
                unit,
            ),
        )
        env = self.env
        now = env._now
        index = self.index
        # Inlined queue increment(1, now) against the flat arrays: kernel
        # time is monotone, and a +1 step can raise only the maximum.
        q_value = self._q_value
        old = q_value[index]
        self._q_area[index] += old * (now - self._q_last[index])
        self._q_last[index] = now
        value = old + 1.0
        q_value[index] = value
        if value > self._q_max[index]:
            self._q_max[index] = value
        metrics = self.metrics
        if metrics._tracer is not None:
            metrics._tracer.record(now, "submit", unit, index)
        listener = self._outstanding_listener
        if listener is not None:
            listener(index)
        if not self._busy:
            # Deferred dispatch, one NORMAL event: same-instant
            # submissions are scheduled as a batch, ordered by the policy.
            # Inlined NORMAL-priority _schedule_call with the pooled wake
            # event (the generator server's wakeup fired at NORMAL, and
            # the golden gate pins that ordering): same time and sequence
            # consumption, no allocation.
            if not self._wake_pending and self._up:
                self._wake_pending = True
                heappush(env._queue, (now, env._next_seq(), self._wake_event))
            return
        serving = self._serving
        if serving is not None and not self._preempt_pending:
            # Strictly-higher priority preempts: lexicographic
            # (priority_class, queue key) comparison -- the same key the
            # ready queue orders by -- short-circuited to skip the key
            # calls on the common class tie-break miss.
            arriving_class = unit.priority_class
            serving_class = serving.priority_class
            if arriving_class < serving_class or (
                arriving_class == serving_class
                and self._queue_key(unit) < self._queue_key(serving)
            ):
                # One urgent poke per preemption decision: the re-dispatch
                # re-picks the best queued unit, so further same-instant
                # arrivals need no second poke (see ``_preempt_pending``).
                # Scheduling inlines the urgent ``_schedule_call`` with
                # the pooled poke event: straight onto the kernel's
                # urgent deque, no allocation, no heap entry.
                self._preempt_pending = True
                self._preemptions += 1
                # Separate measured-window counter (reset at warm-up):
                # feeds NodeStats.preemptions so sweeps can rank by
                # preemption rate; ``self._preemptions`` stays the
                # lifetime diagnostic the node repr shows.
                self._preempt_counts[self.index] += 1
                env._urgent.append(self._poke)

    # -- server state machine ------------------------------------------------

    def _dispatch_next(self, _event=None) -> None:
        """Serve the highest-priority queued unit (for its *remaining*
        demand, scaled by the node speed), or go idle.

        Runs from the idle wake (as its event callback, clearing
        ``_wake_pending`` on entry like the base class), the completion
        callback, and the preemption callback; immediate aborts drain in
        the loop without touching the event list.
        """
        self._wake_pending = False
        if not self._up:
            return
        heap = self._heap
        if not heap:
            return
        env = self.env
        index = self.index
        metrics = self.metrics
        tracer = metrics._tracer
        dispatched = metrics.node_dispatched
        q_value = self._q_value
        q_area = self._q_area
        q_last = self._q_last
        q_min = self._q_min
        abort_check = self._abort_check
        remaining = self._remaining
        while heap:
            unit = heappop(heap)[3]
            now = env._now
            # Inlined queue increment(-1, now): a -1 step can lower only
            # the minimum.
            old = q_value[index]
            q_area[index] += old * (now - q_last[index])
            q_last[index] = now
            qlen = old - 1.0
            q_value[index] = qlen
            if qlen < q_min[index]:
                q_min[index] = qlen
            dispatched[index] += 1
            timing = unit.timing

            if abort_check is not None and abort_check(unit, now):
                timing.aborted = True
                remaining.pop(unit.id, None)
                if tracer is not None:
                    tracer.record(now, "abort", unit, index)
                metrics.record_unit_completion(unit, now)
                listener = self._outstanding_listener
                if listener is not None:
                    listener(index)
                done = unit._done
                if done is not None:
                    done.succeed(unit)
                on_done = unit.on_done
                if on_done is not None:
                    env._schedule_call(on_done, value=unit, priority=NORMAL)
                elif done is None and unit.pool is not None:
                    # Fire-and-forget unit with no waiters: recycle.
                    unit.release()
                continue

            demand = remaining.get(unit.id, timing.ex)
            if timing.started_at is None:
                timing.started_at = now
            self._busy = True
            self._serving = unit
            # Inlined busy update(1, now): the 0 -> 1 edge adds no area
            # (the signal was 0), so only the bookkeeping fields move.
            self._b_last[index] = now
            self._b_value[index] = 1.0
            if self._b_max[index] < 1.0:
                self._b_max[index] = 1.0
            if tracer is not None:
                tracer.record(now, "dispatch", unit, index)
            self._service_began = now
            self._service_demand = demand
            speed = self.speed
            # The homogeneous path keeps the exact ``demand`` delay (no
            # division), so fixed-seed results are bit-identical.
            service = demand if speed == 1.0 else demand / speed
            # Inlined env._sleep(service, self._on_complete), keeping the
            # cancellable timer (cf. Node._dispatch_next).
            pool = env._sleep_pool
            if pool and service >= 0.0:
                sleep = pool.pop()
                sleep.delay = service
                sleep.callback = self._on_complete
                sleep._processed = False
                heappush(
                    env._queue,
                    (env._now + service, env._next_seq(), sleep),
                )
            else:
                sleep = env._sleep(service, self._on_complete)
            self._sleep = sleep
            return

    def _preempt(self, _event) -> None:
        """Urgent preemption poke: revoke the completion timer, bookkeep
        the remaining demand, re-enqueue the preempted unit, re-dispatch.

        The timer is always still pending here: the poke is an URGENT
        event scheduled at the submission instant, so it runs before a
        completion landing at the same time (and a completion at an
        earlier time would have cleared ``_serving`` first, making the
        submission take the non-preempting path).
        """
        self._preempt_pending = False
        unit = self._serving
        self._serving = None
        env = self.env
        now = env._now
        self._sleep.cancel()
        self._sleep = None
        speed = self.speed
        elapsed = now - self._service_began
        consumed = elapsed if speed == 1.0 else elapsed * speed
        # Clamp: when the preemption lands exactly at the completion
        # instant, ``now - began`` can exceed the demand by a float ulp,
        # and a negative remainder would become a negative timer delay.
        left = self._service_demand - consumed
        self._remaining[unit.id] = left if left > 0.0 else 0.0
        self._busy = False
        index = self.index
        # Inlined busy update(0, now): the 1 -> 0 edge accumulates one
        # partial service interval of area (1.0 * dt == dt exactly).
        self._b_area[index] += now - self._b_last[index]
        self._b_last[index] = now
        self._b_value[index] = 0.0
        if self._b_min[index] > 0.0:
            self._b_min[index] = 0.0
        metrics = self.metrics
        if metrics._tracer is not None:
            metrics._tracer.record(now, "preempt", unit, index)
        # Put the preempted unit back; the newcomer (already queued by
        # submit) wins the re-dispatch.  Preemption is not the per-unit
        # hot path, so this takes the readable queue API rather than
        # submit_nowait's inlined copy -- same arithmetic.  The
        # outstanding count is unchanged (busy -1, queue +1), so no
        # listener notification is needed.
        self.queue.push(unit)
        self._queue_increment(1, now)
        self._dispatch_next()

    def _complete(self, _event) -> None:
        """Service interval elapsed: scrub the preemption bookkeeping,
        then record the outcome and serve the next like the base class."""
        self._sleep = None
        self._remaining.pop(self._serving.id, None)
        Node._complete(self, _event)

    # -- fault machinery ------------------------------------------------------

    def crash(self) -> None:
        """Take the node down; the preemptive freeze converts the in-flight
        unit to remaining-demand bookkeeping.

        ``in_flight="resume"`` here re-queues the frozen unit with its
        remaining demand (the node already knows how to resume partial
        work) *after* the base class applies the queue-drop policy, so
        resume semantics protect the in-flight unit even when the queue is
        dropped.  ``_preempt_pending`` is always False here: crash timers
        are heap events and the urgent deque drains first.
        """
        env = self.env
        now = env._now
        index = self.index
        held = None
        if self._busy:
            self._sleep.cancel()
            self._sleep = None
            unit = self._serving
            self._serving = None
            self._busy = False
            # Inlined busy update(0, now): 1 -> 0 edge accumulates the
            # partial service interval of area.
            self._b_area[index] += now - self._b_last[index]
            self._b_last[index] = now
            self._b_value[index] = 0.0
            if self._b_min[index] > 0.0:
                self._b_min[index] = 0.0
            if self._lose_in_flight:
                self._remaining.pop(unit.id, None)
                self._discard_lost(unit, now)
            else:
                speed = self.speed
                elapsed = now - self._service_began
                consumed = elapsed if speed == 1.0 else elapsed * speed
                left = self._service_demand - consumed
                self._remaining[unit.id] = left if left > 0.0 else 0.0
                held = unit
        Node.crash(self)  # _busy is False now: handles the queue drop only
        if held is not None:
            self.queue.push(held)
            self._queue_increment(1, now)
            # The base-class crash already notified the listener; notify
            # again so the re-queued frozen unit is counted (the touch
            # reconciles against current state, so the repeat is safe).
            listener = self._outstanding_listener
            if listener is not None:
                listener(index)

    def recover(self) -> None:
        """Bring the node back up; queued work (including any frozen unit,
        now carrying remaining demand) re-dispatches via the NORMAL wake."""
        self._up = True
        env = self.env
        if self._heap and not self._wake_pending:
            self._wake_pending = True
            heappush(
                env._queue, (env._now, env._next_seq(), self._wake_event)
            )
        listener = self._outstanding_listener
        if listener is not None:
            listener(self.index)

    def __repr__(self) -> str:
        return (
            f"<PreemptiveNode {self.index} policy={self.queue.policy.name} "
            f"queued={len(self.queue)} busy={self._busy} "
            f"preemptions={self._preemptions}>"
        )
