"""Preemptive-resume node: an ablation of the paper's non-preemption model.

The paper's system model fixes "some real-time scheduling algorithm with no
preemption" (Sec. 4.1).  Non-preemption is realistic for database
operations or network transmissions, but many components (CPU schedulers)
do preempt.  :class:`PreemptiveNode` implements preemptive-resume service:
when a unit arrives whose priority (per the node's policy, including the
Globals-First class) beats the unit in service, the server is interrupted,
the preempted unit returns to the ready queue with only its *remaining*
execution demand, and service continues with the newcomer.

This is an extension, not part of the reproduction proper; the ablation
bench measures how much of the paper's story depends on non-preemption.

Semantics:

* ``started_at`` records the *first* time a unit received service (waiting
  time keeps its meaning);
* preemption happens only when the arrival's priority is *strictly* higher
  -- ties never preempt, so FIFO determinism is preserved;
* the overload policy is still consulted only at (re-)dispatch, never
  mid-service.
"""

from __future__ import annotations

from typing import Optional

from ..sim.core import Environment, Event
from ..sim.errors import Interrupt
from .metrics import MetricsCollector
from .node import Node
from .overload import OverloadPolicy
from .schedulers import SchedulingPolicy
from .work import WorkUnit


class PreemptiveNode(Node):
    """A node whose server implements preemptive-resume scheduling."""

    def __init__(
        self,
        env: Environment,
        index: int,
        policy: SchedulingPolicy,
        metrics: MetricsCollector,
        overload_policy: Optional[OverloadPolicy] = None,
    ) -> None:
        #: Remaining service demand of units that have been preempted at
        #: least once, keyed by unit id.  Units never seen here still need
        #: their full ``timing.ex``.
        self._remaining: dict[int, float] = {}
        self._current: Optional[WorkUnit] = None
        self._preemptions = 0
        super().__init__(env, index, policy, metrics, overload_policy)

    @property
    def preemptions(self) -> int:
        """Number of preemption events at this node (for diagnostics)."""
        return self._preemptions

    def submit(self, unit: WorkUnit) -> Event:
        done = super().submit(unit)
        current = self._current
        if current is not None and (
            self.queue.key_of(unit) < self.queue.key_of(current)
        ):
            self._preemptions += 1
            self.process.interrupt(cause="preempt")
        return done

    def _server(self):
        env = self.env
        busy_signal = self.metrics.node_busy[self.index]
        queue_signal = self.metrics.node_queue[self.index]
        while True:
            if not self.queue:
                self._wakeup = env.event()
                yield self._wakeup
                self._wakeup = None
            unit = self.queue.pop()
            queue_signal.increment(-1, env.now)
            self.metrics.count_dispatch(self.index)
            timing = unit.timing

            if self.overload_policy.should_abort_at_dispatch(unit, env.now):
                timing.aborted = True
                self._remaining.pop(unit.id, None)
                self.metrics.trace(env.now, "abort", unit, self.index)
                self.metrics.record_unit_completion(unit)
                unit.done.succeed(unit)
                continue

            demand = self._remaining.get(unit.id, timing.ex)
            if timing.started_at is None:
                timing.started_at = env.now
            self._busy = True
            self._current = unit
            busy_signal.update(1, env.now)
            self.metrics.trace(env.now, "dispatch", unit, self.index)
            service_began = env.now
            try:
                yield env.timeout(demand)
            except Interrupt:
                consumed = env.now - service_began
                self._remaining[unit.id] = demand - consumed
                self._busy = False
                self._current = None
                busy_signal.update(0, env.now)
                self.metrics.trace(env.now, "preempt", unit, self.index)
                # Put the preempted unit back; the newcomer (already queued
                # by submit) will win the next dispatch.
                self.queue.push(unit)
                queue_signal.increment(1, env.now)
                continue
            timing.completed_at = env.now
            self._remaining.pop(unit.id, None)
            self._busy = False
            self._current = None
            busy_signal.update(0, env.now)
            self.metrics.trace(env.now, "complete", unit, self.index)
            self.metrics.record_unit_completion(unit)
            unit.done.succeed(unit)
