"""Registry mapping DESIGN.md experiment ids to runnable definitions.

Gives the CLI and the benchmark harness one place to look up "everything
the paper reports": ``python -m repro.cli run Fig2`` or iterating the whole
table for EXPERIMENTS.md regeneration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence

from .figures import fig2, fig3, fig4, ssp_psp
from .runner import QUICK, RunScale
from .variations import VARIATIONS


@dataclass(frozen=True)
class ExperimentDefinition:
    """One reproducible artifact of the paper.

    ``run`` accepts ``(scale, workers, batch_size)``; ``workers`` fans the
    experiment's whole simulation grid out over a process pool (``0`` =
    all cores) and ``batch_size`` groups the grid into warm-interpreter
    batches (``0`` = auto).
    """

    experiment_id: str
    paper_artifact: str
    description: str
    run: Callable[..., object]


def _figure_entry(experiment_id, artifact, description, fn) -> ExperimentDefinition:
    return ExperimentDefinition(
        experiment_id=experiment_id,
        paper_artifact=artifact,
        description=description,
        run=lambda scale=QUICK, workers=1, batch_size=0: fn(
            scale=scale, workers=workers, batch_size=batch_size
        ),
    )


def _variation_entry(experiment_id, description, fn) -> ExperimentDefinition:
    return ExperimentDefinition(
        experiment_id=experiment_id,
        paper_artifact="Sec. 4.3 narrative",
        description=description,
        run=lambda scale=QUICK, workers=1, batch_size=0: fn(
            scale=scale, workers=workers, batch_size=batch_size
        ),
    )


EXPERIMENTS: Dict[str, ExperimentDefinition] = {
    entry.experiment_id: entry
    for entry in [
        _figure_entry(
            "Fig2", "Fig. 2a/2b",
            "SSP strategies (UD/ED/EQS/EQF) vs load, serial tasks", fig2,
        ),
        _figure_entry(
            "Fig3", "Fig. 3",
            "UD vs EQF while varying frac_local", fig3,
        ),
        _figure_entry(
            "Fig4", "Fig. 4 + Sec. 5.3",
            "PSP strategies (UD/DIV-1/DIV-2/GF) vs load, parallel tasks", fig4,
        ),
        _figure_entry(
            "Sec6", "Sec. 6 narrative",
            "SSP x PSP combinations on serial-parallel tasks", ssp_psp,
        ),
    ]
} | {
    experiment_id: _variation_entry(
        experiment_id,
        fn.__doc__.splitlines()[0] if fn.__doc__ else experiment_id,
        fn,
    )
    for experiment_id, fn in VARIATIONS.items()
}


def experiment_ids() -> Sequence[str]:
    """All known experiment ids, figures first."""
    return list(EXPERIMENTS)


def get_experiment(experiment_id: str) -> ExperimentDefinition:
    """Look up an experiment by id (case-insensitive)."""
    for key, entry in EXPERIMENTS.items():
        if key.lower() == experiment_id.lower():
            return entry
    known = ", ".join(EXPERIMENTS)
    raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
