"""Experiment runner: replications, sweeps, and run-scale presets.

One *data point* of a paper figure is the miss ratio of each task class at
one parameter setting.  The paper estimates each point from two independent
runs of one million time units; at Python speed that costs minutes per
point, so the harness supports three scales:

* ``SMOKE``  -- for unit/integration tests: tiny runs, single replication;
* ``QUICK``  -- the default for benchmarks: the miss-ratio *orderings* of
  the paper are stable at this scale (tens of thousands of time units,
  two replications);
* ``FULL``   -- the paper's own setting (two runs of 1e6 time units); hours
  of wall clock in pure Python, available for final validation.

Each replication gets an independent seed derived from the base seed, and
every estimate carries a Student-t confidence interval.
"""

from __future__ import annotations

import hashlib
import json
import math
import multiprocessing
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..checkpoint import atomic_write
from ..stats.confidence import IntervalEstimate, interval_from_samples
from ..system.config import SystemConfig
from ..system.metrics import RunResult
from ..system.simulation import Simulation


def run_config(config: SystemConfig) -> RunResult:
    """Build and run one simulation (module-level so it pickles for
    multiprocessing workers)."""
    return Simulation(config).run()


def run_config_batch(configs: Sequence[SystemConfig]) -> List[RunResult]:
    """Run a batch of simulations back to back in one worker process.

    The in-process batch executor behind ``run_grid(batch_size=...)``:
    one pool task carries a whole slice of the grid, so the worker's warm
    interpreter is amortized over the slice and the pool exchanges one
    pickled config list and one result vector per batch instead of one
    round trip per run.  Module-level so it pickles for multiprocessing
    workers; runs strictly in order, which keeps grid results positional.
    """
    return [Simulation(config).run() for config in configs]


def resolve_workers(workers: int) -> int:
    """Normalize a ``workers`` argument: ``0`` means "all CPU cores"."""
    if workers == 0:
        return multiprocessing.cpu_count()
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def resolve_batch_size(batch_size: int, runs: int, workers: int) -> int:
    """Normalize a ``batch_size`` argument for a pool of ``workers``.

    ``0`` (the default everywhere) means "auto": slice the ``runs`` into
    about four batches per worker -- large enough to amortize dispatch
    and IPC, small enough that heterogeneous cell costs still balance
    across the pool.  Any positive value is used as-is (``1`` recovers
    one-run-per-dispatch).
    """
    if batch_size == 0:
        return max(1, -(-runs // (workers * 4)))
    if batch_size < 0:
        raise ValueError(f"batch_size must be >= 0, got {batch_size}")
    return batch_size


@dataclass(frozen=True)
class RunScale:
    """How long and how often to run each data point."""

    sim_time: float
    warmup_time: float
    replications: int
    label: str = "custom"

    def __post_init__(self) -> None:
        if self.replications < 1:
            raise ValueError(f"need >= 1 replication, got {self.replications}")
        if not 0 <= self.warmup_time < self.sim_time:
            raise ValueError(
                f"need 0 <= warmup < sim_time, got {self.warmup_time}, "
                f"{self.sim_time}"
            )

    def apply(self, config: SystemConfig) -> SystemConfig:
        """Stamp this scale's run lengths onto a config."""
        return config.with_(
            sim_time=self.sim_time, warmup_time=self.warmup_time
        )


#: Tiny runs for tests: enough tasks to see gross orderings, fast enough
#: for a wide test suite.
SMOKE = RunScale(sim_time=2_500.0, warmup_time=250.0, replications=1, label="smoke")

#: Benchmark default: stable orderings, seconds per point.
QUICK = RunScale(sim_time=24_000.0, warmup_time=2_400.0, replications=2, label="quick")

#: The paper's setting: two runs of one million time units.
FULL = RunScale(
    sim_time=1_000_000.0, warmup_time=50_000.0, replications=2, label="full"
)

SCALES: Dict[str, RunScale] = {s.label: s for s in (SMOKE, QUICK, FULL)}


@dataclass(frozen=True)
class PointEstimate:
    """Replicated measurement of one parameter setting."""

    config: SystemConfig
    md_local: IntervalEstimate
    md_global: IntervalEstimate
    utilization: float
    local_completed: int
    global_completed: int
    #: Total preemption events across nodes and replications (0 for
    #: non-preemptive configurations; see ``NodeStats.preemptions``).
    preemptions: int = 0
    #: Total node crashes across nodes and replications (0 fault-free).
    crashes: int = 0
    #: Total crash-discarded work units across nodes and replications.
    lost: int = 0
    #: Total retry resubmissions across replications (0 unless a
    #: retry-enabled fault spec is configured).
    retries: int = 0
    #: Global tasks that exhausted their retry budget and failed
    #: (``ClassStats.failed``; a subset of aborts), across replications.
    failed: int = 0
    #: Submits bounced off a crashed node by the failure detector's
    #: misroute path (0 in oracle mode), across replications.
    misroutes: int = 0
    #: Detector suspicions of nodes that were actually up (0 in oracle
    #: mode), across replications.
    false_suspicions: int = 0
    #: Crashes the detector never noticed before the node recovered
    #: (0 in oracle mode), across replications.
    missed_detections: int = 0
    #: Crashes the detector did notice (0 in oracle mode), across
    #: replications.
    detections: int = 0
    #: Mean crash-to-suspicion latency, weighted by each replication's
    #: detection count; ``nan`` when nothing was detected.
    detect_latency: float = math.nan
    #: Mean (over replications) of the global-class p99 lateness -- the
    #: tail the paper's mean-based measures hide.  ``nan`` when no
    #: replication completed a global task (P^2 sketches do not merge,
    #: so replications are averaged, not pooled).
    p99_late: float = math.nan

    @property
    def gap(self) -> float:
        """``MD_global - MD_local``: the discrimination the paper studies."""
        return self.md_global.mean - self.md_local.mean


def _replication_configs(
    config: SystemConfig, replications: int
) -> List[SystemConfig]:
    """The per-replication configs of one data point.

    Replication ``i`` uses seed ``config.seed * 10_000 + i`` so that points
    of a sweep never share streams.
    """
    return [
        config.with_(seed=config.seed * 10_000 + i) for i in range(replications)
    ]


def _aggregate(
    config: SystemConfig, results: Sequence[RunResult], level: float
) -> PointEstimate:
    """Fold the replications of one data point into a :class:`PointEstimate`."""
    md_locals: List[float] = []
    md_globals: List[float] = []
    utilizations: List[float] = []
    local_completed = 0
    global_completed = 0
    preemptions = 0
    crashes = 0
    lost = 0
    retries = 0
    failed = 0
    misroutes = 0
    false_suspicions = 0
    missed_detections = 0
    detections = 0
    latency_sum = 0.0
    p99_lates: List[float] = []
    for result in results:
        md_locals.append(result.md_local)
        md_globals.append(result.md_global)
        utilizations.append(result.mean_utilization)
        local_completed += result.local.completed
        global_completed += result.global_.completed
        preemptions += result.total_preemptions
        crashes += result.total_crashes
        lost += result.total_lost
        retries += result.retries
        failed += result.global_.failed
        misroutes += result.misroutes
        false_suspicions += result.false_suspicions
        missed_detections += result.missed_detections
        detections += result.detections
        if result.detections:
            latency_sum += result.detection_latency * result.detections
        p99 = result.global_.p99_lateness
        if not math.isnan(p99):
            p99_lates.append(p99)
    return PointEstimate(
        config=config,
        md_local=interval_from_samples(md_locals, level),
        md_global=interval_from_samples(md_globals, level),
        utilization=sum(utilizations) / len(utilizations),
        local_completed=local_completed,
        global_completed=global_completed,
        preemptions=preemptions,
        crashes=crashes,
        lost=lost,
        retries=retries,
        failed=failed,
        misroutes=misroutes,
        false_suspicions=false_suspicions,
        missed_detections=missed_detections,
        detections=detections,
        detect_latency=(
            latency_sum / detections if detections else math.nan
        ),
        p99_late=(
            sum(p99_lates) / len(p99_lates) if p99_lates else math.nan
        ),
    )


@dataclass(frozen=True)
class RecoveredCell:
    """One run re-executed by the resilient pool's fallback paths.

    ``mode`` is ``"resubmitted"`` (the run's batch was lost with a dying
    worker and resubmitted on a fresh pool) or ``"in-process"`` (the
    pool broke twice and the run fell back to the parent process).
    """

    mode: str
    seed: int
    description: str


class JournalError(RuntimeError):
    """A sweep journal is corrupt or belongs to a different sweep."""


#: Identifies a sweep journal file (JSON, written atomically per cell).
JOURNAL_MAGIC = "repro-sweep-journal"
JOURNAL_VERSION = 1


def _grid_fingerprint(flat: Sequence[SystemConfig]) -> str:
    """Digest of the flattened (cell x replication) config list.

    ``SystemConfig`` is a frozen dataclass with a deterministic repr
    covering every field (seeds included), so two sweeps share a
    fingerprint iff they would run exactly the same runs in the same
    order -- the condition for journal entries to be interchangeable.
    """
    digest = hashlib.sha256()
    for config in flat:
        digest.update(repr(config).encode())
        digest.update(b"\x1f")
    return digest.hexdigest()


def _load_journal(path: str, fingerprint: str) -> Dict[int, RunResult]:
    """Completed runs recorded in the journal at ``path`` (may be empty)."""
    if not os.path.exists(path):
        return {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as exc:
        raise JournalError(f"{path}: unreadable sweep journal ({exc})")
    if not isinstance(data, dict) or data.get("magic") != JOURNAL_MAGIC:
        raise JournalError(f"{path}: not a sweep journal")
    if data.get("version") != JOURNAL_VERSION:
        raise JournalError(
            f"{path}: journal version {data.get('version')} is not "
            f"supported (this build reads version {JOURNAL_VERSION})"
        )
    if data.get("fingerprint") != fingerprint:
        raise JournalError(
            f"{path}: journal belongs to a different sweep (its "
            "spec/seed/scale fingerprint does not match this one); "
            "delete it or point --journal somewhere else instead of "
            "mixing results"
        )
    return {
        int(index): RunResult.from_dict(result)
        for index, result in data["cells"].items()
    }


def _write_journal(
    path: str, fingerprint: str, runs: int, completed: Dict[int, RunResult]
) -> None:
    data = {
        "magic": JOURNAL_MAGIC,
        "version": JOURNAL_VERSION,
        "fingerprint": fingerprint,
        "runs": runs,
        "cells": {
            str(index): completed[index].to_dict()
            for index in sorted(completed)
        },
    }
    atomic_write(path, json.dumps(data, sort_keys=True).encode())


def _run_batches_resilient(
    batches: List[List[SystemConfig]],
    processes: int,
    on_batch: Optional[Callable[[int, List[RunResult]], None]] = None,
) -> Tuple[List[List[RunResult]], List[RecoveredCell]]:
    """Run config batches on a process pool, surviving worker death.

    A worker that dies mid-batch (OOM kill, a segfaulting extension, a
    stray ``os._exit``) raises :class:`BrokenProcessPool` for its future
    and poisons the whole executor, which would lose the entire sweep.
    Graceful degradation instead: collect every batch that did finish,
    resubmit the unfinished ones once on a fresh executor, and if that
    breaks too, run the remainder in-process.  Each path emits a
    :class:`RuntimeWarning` naming what happened, and every run touched
    by a fallback is returned as a :class:`RecoveredCell` so reports can
    surface what degraded.  Results are positionally identical on every
    path -- a batch is a pure function of its configs (fixed seeds), so
    *where* it runs cannot change *what* it returns.

    ``on_batch(index, results)`` fires once per batch as its results
    arrive (journaling hook).
    """
    results: List[Optional[List[RunResult]]] = [None] * len(batches)
    recovered: List[RecoveredCell] = []
    pending = list(range(len(batches)))
    for round_ in range(2):
        broken = False
        with ProcessPoolExecutor(max_workers=processes) as pool:
            futures = [
                (index, pool.submit(run_config_batch, batches[index]))
                for index in pending
            ]
            for index, future in futures:
                try:
                    results[index] = future.result()
                except BrokenProcessPool:
                    broken = True
                else:
                    if on_batch is not None:
                        on_batch(index, results[index])
        if not broken:
            return results, recovered
        pending = [index for index in pending if results[index] is None]
        if round_ == 0:
            recovered.extend(
                RecoveredCell("resubmitted", config.seed, config.describe())
                for index in pending
                for config in batches[index]
            )
            warnings.warn(
                f"a sweep worker died; resubmitting {len(pending)} "
                f"unfinished batch(es) on a fresh pool",
                RuntimeWarning,
                stacklevel=3,
            )
    recovered.extend(
        RecoveredCell("in-process", config.seed, config.describe())
        for index in pending
        for config in batches[index]
    )
    warnings.warn(
        f"the process pool broke twice; running the remaining "
        f"{len(pending)} batch(es) in-process",
        RuntimeWarning,
        stacklevel=3,
    )
    for index in pending:
        results[index] = run_config_batch(batches[index])
        if on_batch is not None:
            on_batch(index, results[index])
    return results, recovered


@dataclass(frozen=True)
class GridRunReport:
    """Estimates of one grid run plus how resiliently it got there."""

    estimates: List[PointEstimate]
    #: Runs re-executed by the pool's degradation paths (empty normally).
    recovered: Tuple[RecoveredCell, ...] = ()
    #: The journal file used, if any.
    journal_path: Optional[str] = None
    #: Runs restored from the journal instead of being re-run.
    journal_restored: int = 0


def run_grid_report(
    configs: Sequence[SystemConfig],
    replications: int,
    workers: int = 1,
    runner: Optional[Callable[[SystemConfig], RunResult]] = None,
    level: float = 0.95,
    batch_size: int = 0,
    journal: Optional[str] = None,
) -> GridRunReport:
    """Run every grid cell in ``configs``, each ``replications`` times.

    This is the shared engine behind :func:`replicate`, :func:`sweep`, and
    the variation grids.  With ``workers > 1`` the *entire*
    (cell x replication) grid is flattened into one process pool and
    sliced into per-worker batches of ``batch_size`` runs (``0`` = auto,
    about four batches per worker; see :func:`resolve_batch_size`): each
    batch executes back to back in one warm worker interpreter
    (:func:`run_config_batch`), so the pool pays one dispatch and one
    result vector per batch instead of one IPC round trip per run.
    Results are deterministic regardless of ``workers`` or ``batch_size``:
    every run's seed is fixed up front, results are collected in
    submission order, and batches are contiguous slices of the flattened
    grid.  A worker dying mid-sweep does not lose the grid: the failed
    batches are resubmitted once, then fall back to in-process execution
    (see :func:`_run_batches_resilient`); the report lists every run a
    fallback touched.

    ``journal`` makes the grid *restart-safe*: each completed run is
    appended to the JSON journal at that path (written atomically, so a
    SIGKILL never leaves a corrupt file), and a re-run with the same
    journal skips the recorded runs and reproduces the identical
    estimates.  A journal written by a *different* grid (any config or
    seed differs) raises :class:`JournalError` instead of silently
    mixing results.

    An injected ``runner`` cannot cross process boundaries (closures
    generally do not pickle), so ``workers > 1`` with a runner emits a
    :class:`RuntimeWarning` and runs serially in-process.
    """
    workers = resolve_workers(workers)
    if workers > 1 and runner is not None:
        warnings.warn(
            "workers > 1 requires picklable work; the injected runner runs "
            "serially in-process",
            RuntimeWarning,
            stacklevel=3,
        )
    flat = [
        replication
        for config in configs
        for replication in _replication_configs(config, replications)
    ]
    fingerprint = ""
    completed: Dict[int, RunResult] = {}
    if journal is not None:
        fingerprint = _grid_fingerprint(flat)
        completed = _load_journal(journal, fingerprint)
    restored = len(completed)
    flat_results: List[Optional[RunResult]] = [
        completed.get(index) for index in range(len(flat))
    ]
    pending = [index for index in range(len(flat)) if index not in completed]

    def journal_runs(indices: Sequence[int], results: Sequence[RunResult]):
        for index, result in zip(indices, results):
            completed[index] = result
        _write_journal(journal, fingerprint, len(flat), completed)

    recovered: List[RecoveredCell] = []
    # Never fork more processes than runs or CPU cores: oversubscribing a
    # CPU-bound pool only adds fork/IPC overhead.
    processes = min(workers, len(pending), multiprocessing.cpu_count())
    if processes > 1 and runner is None:
        size = resolve_batch_size(batch_size, len(pending), processes)
        index_slices = [
            pending[i:i + size] for i in range(0, len(pending), size)
        ]
        batches = [[flat[index] for index in slice_] for slice_ in index_slices]
        on_batch = None
        if journal is not None:
            def on_batch(batch_index: int, results: List[RunResult]) -> None:
                journal_runs(index_slices[batch_index], results)
        batch_results, recovered = _run_batches_resilient(
            batches, processes, on_batch
        )
        for indices, results in zip(index_slices, batch_results):
            for index, result in zip(indices, results):
                flat_results[index] = result
    else:
        run = runner or run_config
        for index in pending:
            result = run(flat[index])
            flat_results[index] = result
            if journal is not None:
                journal_runs([index], [result])
    estimates = [
        _aggregate(
            config,
            flat_results[i * replications:(i + 1) * replications],
            level,
        )
        for i, config in enumerate(configs)
    ]
    return GridRunReport(
        estimates=estimates,
        recovered=tuple(recovered),
        journal_path=journal,
        journal_restored=restored,
    )


def run_grid(
    configs: Sequence[SystemConfig],
    replications: int,
    workers: int = 1,
    runner: Optional[Callable[[SystemConfig], RunResult]] = None,
    level: float = 0.95,
    batch_size: int = 0,
    journal: Optional[str] = None,
) -> List[PointEstimate]:
    """:func:`run_grid_report`, returning just the estimates (see there)."""
    return run_grid_report(
        configs,
        replications,
        workers=workers,
        runner=runner,
        level=level,
        batch_size=batch_size,
        journal=journal,
    ).estimates


def replicate(
    config: SystemConfig,
    replications: int = 2,
    level: float = 0.95,
    runner: Optional[Callable[[SystemConfig], RunResult]] = None,
    workers: int = 1,
    batch_size: int = 0,
    journal: Optional[str] = None,
) -> PointEstimate:
    """Estimate one data point from ``replications`` independent runs.

    Replication ``i`` uses seed ``config.seed * 10_000 + i`` so that points
    of a sweep never share streams.  ``runner`` may be injected for testing
    (it defaults to building and running a real :class:`Simulation`).

    ``workers > 1`` (``0`` = all cores) runs the replications in a process
    pool -- worthwhile at FULL scale where each replication takes minutes.
    Results are deterministic either way (each replication's seed is fixed
    up front).  Parallelism here is inherently bounded by ``replications``:
    with a single replication there is nothing to fan out and the run
    proceeds serially -- parallelize across the whole grid with
    ``sweep(workers=...)`` instead.  ``workers > 1`` with an injected
    ``runner`` emits a :class:`RuntimeWarning` and runs serially, since
    closures generally do not pickle.
    """
    return run_grid(
        [config], replications, workers=workers, runner=runner, level=level,
        batch_size=batch_size, journal=journal,
    )[0]


@dataclass(frozen=True)
class SweepPoint:
    """One cell of a sweep: (x value, strategy) -> estimates."""

    x: float
    strategy: str
    estimate: PointEstimate


@dataclass(frozen=True)
class SweepResult:
    """A full parameter sweep over (x values x strategies)."""

    parameter: str
    x_values: Sequence[float]
    strategies: Sequence[str]
    points: Sequence[SweepPoint]
    #: Runs re-executed by the pool's degradation paths (empty normally).
    recovered: Tuple[RecoveredCell, ...] = ()
    #: Runs restored from a sweep journal instead of being re-run.
    journal_restored: int = 0

    @cached_property
    def _index(self) -> Dict[Tuple[float, str], SweepPoint]:
        """Points keyed by ``(x, strategy)``, built once on first lookup.

        ``point()``/``series()`` used to scan ``points`` linearly per call;
        rendering a figure table made that O(grid^2).
        """
        return {(p.x, p.strategy): p for p in self.points}

    def series(self, strategy: str, metric: str = "global") -> List[float]:
        """Miss-ratio series of one strategy along the sweep axis.

        ``metric`` is ``"global"`` or ``"local"``.
        """
        index = self._index
        points = [index[(x, strategy)] for x in self.x_values]
        if metric == "global":
            return [p.estimate.md_global.mean for p in points]
        return [p.estimate.md_local.mean for p in points]

    def point(self, x: float, strategy: str) -> SweepPoint:
        try:
            return self._index[(x, strategy)]
        except KeyError:
            raise KeyError(
                f"no point for x={x}, strategy={strategy!r}"
            ) from None


def sweep(
    base: SystemConfig,
    parameter: str,
    values: Sequence[float],
    strategies: Sequence[str],
    scale: RunScale = QUICK,
    runner: Optional[Callable[[SystemConfig], RunResult]] = None,
    workers: int = 1,
    batch_size: int = 0,
    journal: Optional[str] = None,
) -> SweepResult:
    """Run a grid of (parameter value x strategy) data points.

    ``parameter`` must be a field of :class:`SystemConfig` (e.g., ``load``
    or ``frac_local``).  Each grid cell gets a distinct base seed so the
    cells are statistically independent.  ``workers`` (``0`` = all cores)
    parallelizes the *whole* (value x strategy x replication) grid in one
    process pool, sliced into warm-interpreter batches of ``batch_size``
    runs (``0`` = auto; see :func:`run_grid`); results are identical to a
    single-worker run.  ``journal`` makes the sweep restart-safe (see
    :func:`run_grid_report`).
    """
    cells: List[Tuple[float, str]] = []
    configs: List[SystemConfig] = []
    for vi, value in enumerate(values):
        for si, strategy in enumerate(strategies):
            cells.append((value, strategy))
            configs.append(
                scale.apply(
                    base.with_(
                        **{parameter: value},
                        strategy=strategy,
                        seed=base.seed + 1_000 * vi + si,
                    )
                )
            )
    report = run_grid_report(
        configs, scale.replications, workers=workers, runner=runner,
        batch_size=batch_size, journal=journal,
    )
    return SweepResult(
        parameter=parameter,
        x_values=list(values),
        strategies=list(strategies),
        points=[
            SweepPoint(x=value, strategy=strategy, estimate=estimate)
            for (value, strategy), estimate in zip(cells, report.estimates)
        ],
        recovered=report.recovered,
        journal_restored=report.journal_restored,
    )
